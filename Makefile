GO ?= go

.PHONY: build test vet race determinism bench bench-snapshot snapshot-smoke metrics-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Reproducibility regression tests, run twice in one process (-count=2)
# to catch per-process state leaks on top of seed-determinism.
determinism:
	$(GO) test -count=2 -run 'DeterministicGivenSeed' ./internal/pipeline/ ./internal/experiments/

# One pass over every paper benchmark (including the incremental
# selection engine's pick-identity + evals/round check).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Archive the core performance baseline (incremental-selection
# evals/round for both loop flavors + the Fig2 end-to-end driver) as
# BENCH_core.json for cross-commit diffing.
bench-snapshot:
	$(GO) test -run xxx -bench 'GreedyIncremental|CostGreedyIncremental|Fig2Baselines' -benchtime 1x . \
		| $(GO) run ./cmd/hcsnap -out BENCH_core.json

# Smoke-test the snapshot pipeline (one cheap benchmark, JSON to stdout)
# without writing the baseline file.
snapshot-smoke:
	$(GO) test -run xxx -bench 'CondEntropyFast' -benchtime 1x . | $(GO) run ./cmd/hcsnap >/dev/null

# End-to-end observability smoke: boot a -sim hcserve, scrape GET
# /metrics while it labels, and assert the round counters advance.
metrics-smoke:
	$(GO) test -run 'RunSimMetricsSmoke' -count=1 ./cmd/hcserve/

verify: build vet race determinism snapshot-smoke metrics-smoke
