GO ?= go

.PHONY: build test vet lint lint-fixtures fuzz-smoke race determinism bench bench-snapshot bench-compare snapshot-smoke metrics-smoke serve-smoke crash-smoke load-smoke cluster-smoke verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# accidental test-order dependencies fail loudly instead of lurking.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# The repo's own determinism + concurrency linter (cmd/hclint): no
# global math/rand, no wall-clock or raw map iteration in deterministic
# packages, no raw float equality, must-check persistence errors — plus
# the server/journal invariant checks (guardedby lock discipline,
# append-then-Sync ack ordering, goroutine/mutex/atomic hygiene; see
# docs/lint-checks.md). Fails on any unsuppressed finding; suppressions
# require a written reason (//hclint:ignore <check> <why>).
lint:
	$(GO) run ./cmd/hclint ./...

# Self-test the linter: rerun every check against its golden fixture
# corpus under internal/lint/testdata/src/ and fail on any drift.
lint-fixtures:
	$(GO) run ./cmd/hclint -fixtures

# Short fuzz pass over every fuzz target (one -fuzz run per target, 5s
# each): checkpoint decode/round-trip, the journal frame decoder, the
# mathx entropy/log-domain kernels, and the dataset CSV/JSON loaders.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzCheckpointRoundTrip$$' -fuzztime 5s ./internal/pipeline/
	$(GO) test -run xxx -fuzz 'FuzzJournalReplay$$' -fuzztime 5s ./internal/journal/
	$(GO) test -run xxx -fuzz 'FuzzLogSumExp$$' -fuzztime 5s ./internal/mathx/
	$(GO) test -run xxx -fuzz 'FuzzEntropy$$' -fuzztime 5s ./internal/mathx/
	$(GO) test -run xxx -fuzz 'FuzzBatchKernels$$' -fuzztime 5s ./internal/mathx/
	$(GO) test -run xxx -fuzz 'FuzzReadAnswersCSV$$' -fuzztime 5s ./internal/dataset/
	$(GO) test -run xxx -fuzz 'FuzzReadDataset$$' -fuzztime 5s ./internal/dataset/

race:
	$(GO) test -race ./...

# Reproducibility regression tests, run twice in one process (-count=2)
# to catch per-process state leaks on top of seed-determinism. The
# server entries cover the multi-session service: concurrent sessions
# must label byte-identically to same-seed single sessions, a drain
# must persist exactly the last emitted checkpoint, and a session
# handed between replicas (gracefully or by kill) must finish
# byte-identically to one that never moved. The cluster entry pins the
# consistent-hash ring: identical routing from any membership ordering.
determinism:
	$(GO) test -count=2 -run 'DeterministicGivenSeed' ./internal/pipeline/ ./internal/experiments/ ./internal/server/ ./internal/taskselect/ ./internal/admit/ ./internal/cluster/

# One pass over every paper benchmark (including the incremental
# selection engine's pick-identity + evals/round check).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Snapshot the current performance numbers (incremental-selection
# evals/round for both loop flavors + the Fig2 end-to-end driver, with
# -benchmem so allocs/op and B/op are captured) as BENCH_next.json.
# BENCH_core.json is the archived pre-hot-path baseline — don't
# overwrite it; diff against it with bench-compare.
bench-snapshot:
	$(GO) test -run xxx -bench 'GreedyIncremental|CostGreedyIncremental|Fig2Baselines' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/hcsnap -out BENCH_next.json

# Print per-benchmark, per-metric deltas between the archived core
# baseline and the latest bench-snapshot.
bench-compare:
	$(GO) run ./cmd/hcsnap -compare BENCH_core.json BENCH_next.json

# Smoke-test the snapshot pipeline (one cheap benchmark, JSON to stdout)
# without writing the baseline file.
snapshot-smoke:
	$(GO) test -run xxx -bench 'CondEntropyFast' -benchtime 1x . | $(GO) run ./cmd/hcsnap >/dev/null

# End-to-end observability smoke: boot a -sim hcserve, scrape GET
# /metrics while it labels, and assert the round counters advance.
metrics-smoke:
	$(GO) test -run 'RunSimMetricsSmoke' -count=1 ./cmd/hcserve/

# End-to-end graceful-drain smoke: boot hcserve with a checkpoint
# directory, create a second session over /v1, answer one round on each,
# deliver the shutdown signal, and assert both sessions' final
# checkpoints exist and load.
serve-smoke:
	$(GO) test -run 'RunServeSmokeDrain' -count=1 ./cmd/hcserve/

# End-to-end crash-recovery smoke: build the real hcserve binary, run it
# with -journal-dir, SIGKILL it mid-round, restart it on the same
# journal, and assert the finished labels and checkpoint are
# byte-identical to an uninterrupted run.
crash-smoke:
	$(GO) test -run 'RunCrashSmoke' -count=1 ./cmd/hcserve/

# End-to-end streaming-load smoke: build the real hcserve binary, then
# drive it with hcload — several concurrent streaming sessions, Poisson
# fragment admissions over POST /v1/sessions/{id}/tasks racing
# goroutine-per-expert answer loops — and assert every session finishes
# with labels covering the grown task set.
load-smoke:
	$(GO) test -run 'RunLoadSmoke' -count=1 ./cmd/hcload/

# End-to-end replica-mode smoke: boot two real hcserve replicas forming
# a consistent-hash ring, spray hcload's streaming sessions across both
# base URLs (misdirected requests 307 to their owner), then SIGKILL one
# replica mid-session, hand its journal to the survivor via
# POST /v1/cluster/accept, and assert the finished labels and final
# checkpoint are byte-identical to an uninterrupted run — with
# cluster_redirects_total > 0 on the survivor.
cluster-smoke:
	$(GO) test -run 'RunClusterSmoke' -count=1 ./cmd/hcload/

# Gate order: cheap static analysis first (vet, then hclint and its
# fixture self-test), then the fuzz smoke, then the race/determinism
# suite and the e2e smokes.
verify: build vet lint lint-fixtures fuzz-smoke race determinism snapshot-smoke metrics-smoke serve-smoke crash-smoke load-smoke cluster-smoke
