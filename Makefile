GO ?= go

.PHONY: build test vet race determinism bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Reproducibility regression tests, run twice in one process (-count=2)
# to catch per-process state leaks on top of seed-determinism.
determinism:
	$(GO) test -count=2 -run 'DeterministicGivenSeed' ./internal/pipeline/ ./internal/experiments/

# One pass over every paper benchmark (including the incremental
# selection engine's pick-identity + evals/round check).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

verify: build vet race determinism
