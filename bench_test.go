// Benchmarks regenerating every table and figure of the paper's
// evaluation (quick-mode workloads; `go run ./cmd/hcbench` produces the
// full-size numbers) plus the ablation benches DESIGN.md calls out.
package hcrowd_test

import (
	"context"
	"fmt"
	"io"
	"slices"
	"testing"

	"hcrowd"
	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/experiments"
	"hcrowd/internal/taskselect"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Quick: true}
}

// benchFigure runs one experiment driver end to end per iteration.
func benchFigure(b *testing.B, d experiments.Driver) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		fig, err := d(ctx, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Baselines regenerates Figure 2: HC vs the 8 aggregation
// baselines across the budget grid.
func BenchmarkFig2Baselines(b *testing.B) { benchFigure(b, experiments.Fig2) }

// BenchmarkFig3VaryK regenerates Figure 3: accuracy/quality for k sweeps.
func BenchmarkFig3VaryK(b *testing.B) { benchFigure(b, experiments.Fig3) }

// BenchmarkFig4VaryTheta regenerates Figure 4: the θ sweep.
func BenchmarkFig4VaryTheta(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5Selection regenerates Figure 5: OPT vs Approx vs Random.
func BenchmarkFig5Selection(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6Init regenerates Figure 6: the initialization sweep.
func BenchmarkFig6Init(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7HCvsNoHC regenerates Figure 7: hierarchy vs flat checking.
func BenchmarkFig7HCvsNoHC(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkTable3Efficiency regenerates Table III: per-round selection
// time, OPT vs Approx with timeout.
func BenchmarkTable3Efficiency(b *testing.B) { benchFigure(b, experiments.Table3) }

// BenchmarkTable1Example measures the core belief machinery on the
// paper's Table I worked example: answer-family probability + Bayesian
// update.
func BenchmarkTable1Example(b *testing.B) {
	experts := hcrowd.Crowd{{ID: "e0", Accuracy: 0.9}, {ID: "e1", Accuracy: 0.95}}
	joint := []float64{0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18}
	fam := hcrowd.AnswerFamily{
		{Worker: experts[0], Facts: []int{0, 2}, Values: []bool{true, false}},
		{Worker: experts[1], Facts: []int{0, 2}, Values: []bool{true, true}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := hcrowd.BeliefFromJoint(joint)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.AnswerFamilyProb(fam); err != nil {
			b.Fatal(err)
		}
		if err := d.Update(fam); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDataset builds the shared micro-bench dataset once.
func benchDataset(b *testing.B) *hcrowd.Dataset {
	b.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 50
	ds, err := hcrowd.GenerateSentiLike(7, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// Ablation: the optimized conditional-entropy evaluator vs the textbook
// definition (identical results, different asymptotics — see DESIGN.md).
func benchCondEntropy(b *testing.B, naive bool) {
	d, err := hcrowd.BeliefFromJoint(randomJoint(64))
	if err != nil {
		b.Fatal(err)
	}
	experts := hcrowd.Crowd{{ID: "e0", Accuracy: 0.9}, {ID: "e1", Accuracy: 0.95}}
	facts := []int{0, 2, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h float64
		var err error
		if naive {
			h, err = taskselect.CondEntropyNaive(d, experts, facts)
		} else {
			h, err = taskselect.CondEntropy(d, experts, facts)
		}
		if err != nil || h < 0 {
			b.Fatal(h, err)
		}
	}
}

func BenchmarkCondEntropyFast(b *testing.B)  { benchCondEntropy(b, false) }
func BenchmarkCondEntropyNaive(b *testing.B) { benchCondEntropy(b, true) }

func randomJoint(n int) []float64 {
	rng := hcrowd.NewRand(11)
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() + 1e-4
	}
	return p
}

// BenchmarkGreedySelect measures one full Algorithm 2 selection over the
// standard dataset.
func BenchmarkGreedySelect(b *testing.B) {
	ds := benchDataset(b)
	beliefs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
	if err != nil {
		b.Fatal(err)
	}
	ce, _ := ds.Split()
	p := hcrowd.Problem{Beliefs: beliefs, Experts: ce}
	ctx := context.Background()
	sel := hcrowd.GreedySelector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(ctx, p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregate measures every baseline on the standard matrix.
func BenchmarkAggregate(b *testing.B) {
	ds := benchDataset(b)
	for _, agg := range aggregate.Registry(3) {
		b.Run(agg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := agg.Aggregate(ds.Prelim); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineRound measures the full select+answer+update loop.
func BenchmarkPipelineRound(b *testing.B) {
	ds := benchDataset(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := hcrowd.Run(ctx, ds, hcrowd.Config{
			K:      1,
			Budget: 10,
			Source: hcrowd.NewSimulatedSource(int64(i), ds),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: HC driven by accuracies estimated from a gold sample instead
// of the oracle-known rates (DESIGN.md "estimated vs true accuracies").
func BenchmarkAblationEstimatedAccuracy(b *testing.B) {
	ds := benchDataset(b)
	// Estimate accuracies from a simulated gold sample and substitute
	// them into a copy of the dataset's crowd.
	rng := hcrowd.NewRand(21)
	goldFacts := make([]int, 100)
	for i := range goldFacts {
		goldFacts[i] = i
	}
	var fam hcrowd.AnswerFamily
	for _, w := range ds.Crowd {
		var vals []bool
		for _, f := range goldFacts {
			v := ds.Truth[f]
			if rng.Float64() >= w.Accuracy {
				v = !v
			}
			vals = append(vals, v)
		}
		fam = append(fam, hcrowd.AnswerSet{Worker: w, Facts: goldFacts, Values: vals})
	}
	est := hcrowd.EstimateAccuracies(ds.Crowd, []hcrowd.AnswerFamily{fam}, ds.TruthFn())
	estDS := *ds
	estDS.Crowd = est
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hcrowd.Run(ctx, &estDS, hcrowd.Config{
			K:      1,
			Budget: 20,
			Source: hcrowd.NewSimulatedSource(9, ds),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Accuracy < 0.5 {
			b.Fatal("estimated-accuracy run collapsed")
		}
	}
}

// BenchmarkBeliefUpdate measures the Lemma 3 posterior update alone at
// several task widths.
func BenchmarkBeliefUpdate(b *testing.B) {
	for _, m := range []int{5, 10, 15} {
		b.Run(fmt.Sprintf("facts=%d", m), func(b *testing.B) {
			d, err := hcrowd.NewBelief(m)
			if err != nil {
				b.Fatal(err)
			}
			w := hcrowd.Worker{ID: "e", Accuracy: 0.93}
			fam := hcrowd.AnswerFamily{{Worker: w, Facts: []int{0, 1}, Values: []bool{true, false}}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Update(fam); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyParallel compares the serial and concurrent initial gain
// scans of Algorithm 2 on a many-task problem (the DESIGN.md parallelism
// ablation).
func BenchmarkGreedyParallel(b *testing.B) {
	ds := benchDataset(b)
	beliefs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
	if err != nil {
		b.Fatal(err)
	}
	ce, _ := ds.Split()
	p := hcrowd.Problem{Beliefs: beliefs, Experts: ce}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sel := taskselect.Greedy{Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(ctx, p, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyIncremental compares the per-round cost of the checking
// loop's two selection engines on the fig2 workload: the full per-round
// rescan (Greedy) against the incremental SelectionState, driven exactly
// as the pipeline drives them — select, apply the answers to the picked
// tasks, invalidate, repeat. It reports CondEntropy evaluations per round
// (the hardware-independent cost unit) and verifies pick-for-pick
// equality between the engines while running.
func BenchmarkGreedyIncremental(b *testing.B) {
	ds := benchDataset(b)
	ce, _ := ds.Split()
	ctx := context.Background()
	const rounds, k = 20, 3

	runRounds := func(b *testing.B, sel hcrowd.Selector, record [][]hcrowd.Candidate) {
		b.Helper()
		beliefs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
		if err != nil {
			b.Fatal(err)
		}
		src := hcrowd.NewSimulatedSource(5, ds)
		state, _ := sel.(*taskselect.SelectionState)
		p := hcrowd.Problem{Beliefs: beliefs, Experts: ce}
		for r := 0; r < rounds; r++ {
			picks, err := sel.Select(ctx, p, k)
			if err != nil {
				b.Fatal(err)
			}
			if record != nil {
				if record[r] == nil {
					record[r] = picks
				} else if !slices.Equal(picks, record[r]) {
					b.Fatalf("round %d: engines diverged: %v vs %v", r, picks, record[r])
				}
			}
			for _, c := range picks {
				fam, err := src.Answers(ce, []int{ds.Tasks[c.Task][c.Fact]})
				if err != nil {
					b.Fatal(err)
				}
				loc := []int{c.Fact} // re-index global -> local; Update only reads Facts
				for i := range fam {
					fam[i].Facts = loc
				}
				if err := beliefs[c.Task].Update(fam); err != nil {
					b.Fatal(err)
				}
				if state != nil {
					state.Invalidate(c.Task)
				}
			}
		}
	}

	picksByRound := make([][]hcrowd.Candidate, rounds)
	b.Run("full-rescan", func(b *testing.B) {
		taskselect.ResetEvalCount()
		for i := 0; i < b.N; i++ {
			runRounds(b, taskselect.Greedy{}, picksByRound)
		}
		b.ReportMetric(float64(taskselect.EvalCount())/float64(b.N*rounds), "evals/round")
	})
	b.Run("incremental", func(b *testing.B) {
		taskselect.ResetEvalCount()
		for i := 0; i < b.N; i++ {
			runRounds(b, taskselect.NewSelectionState(0), picksByRound)
		}
		b.ReportMetric(float64(taskselect.EvalCount())/float64(b.N*rounds), "evals/round")
	})
}

// BenchmarkCostGreedy measures the §III-D per-unit assignment selection.
func BenchmarkCostGreedy(b *testing.B) {
	ds := benchDataset(b)
	beliefs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
	if err != nil {
		b.Fatal(err)
	}
	ce, _ := ds.Split()
	p := hcrowd.Problem{Beliefs: beliefs, Experts: ce}
	sel := taskselect.CostGreedy{}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.SelectAssign(ctx, p, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostGreedyIncremental is BenchmarkGreedyIncremental for the
// cost-aware loop: the stateless gain-per-cost greedy (CostGreedy)
// against the incremental AssignState on the ablation-cost workload
// (pricier experts are more accurate), driven the way RunCostAware drives
// them — buy units, apply each purchased answer, invalidate, repeat. It
// reports CondEntropyAssign evaluations per round and verifies
// unit-for-unit pick equality between the engines while running.
func BenchmarkCostGreedyIncremental(b *testing.B) {
	ds := benchDataset(b)
	ce, _ := ds.Split()
	ctx := context.Background()
	truth := func(f int) bool { return ds.Truth[f] }
	ablation := func(w hcrowd.Worker) float64 { return 1 + 8*(w.Accuracy-0.9) }
	const rounds = 20
	const roundBudget = 4.0

	runRounds := func(b *testing.B, sel hcrowd.AssignSelector, record [][]hcrowd.TaskAssign) {
		b.Helper()
		beliefs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
		if err != nil {
			b.Fatal(err)
		}
		rng := hcrowd.NewRand(5)
		state, _ := sel.(*hcrowd.AssignState)
		p := hcrowd.Problem{Beliefs: beliefs, Experts: ce}
		for r := 0; r < rounds; r++ {
			units, err := sel.SelectAssign(ctx, p, roundBudget)
			if err != nil {
				b.Fatal(err)
			}
			if record != nil {
				if record[r] == nil {
					record[r] = units
				} else if !slices.Equal(units, record[r]) {
					b.Fatalf("round %d: engines diverged: %v vs %v", r, units, record[r])
				}
			}
			for _, u := range units {
				fam := crowd.SimulateAnswerFamily(rng, hcrowd.Crowd{u.Worker}, []int{ds.Tasks[u.Task][u.Fact]}, truth)
				for i := range fam {
					fam[i].Facts = []int{u.Fact} // re-index global -> local
				}
				if err := beliefs[u.Task].Update(fam); err != nil {
					b.Fatal(err)
				}
				if state != nil {
					state.Invalidate(u.Task)
				}
			}
		}
	}

	unitsByRound := make([][]hcrowd.TaskAssign, rounds)
	b.Run("full-rescan", func(b *testing.B) {
		taskselect.ResetEvalCount()
		for i := 0; i < b.N; i++ {
			runRounds(b, taskselect.CostGreedy{Cost: ablation}, unitsByRound)
		}
		b.ReportMetric(float64(taskselect.EvalCount())/float64(b.N*rounds), "evals/round")
	})
	b.Run("incremental", func(b *testing.B) {
		taskselect.ResetEvalCount()
		for i := 0; i < b.N; i++ {
			runRounds(b, hcrowd.IncrementalAssignSelector(ablation, 0, 0), unitsByRound)
		}
		b.ReportMetric(float64(taskselect.EvalCount())/float64(b.N*rounds), "evals/round")
	})
}

// BenchmarkCatDS measures multi-class Dawid-Skene on a 4-class matrix.
func BenchmarkCatDS(b *testing.B) {
	cfg := hcrowd.DefaultMultiClassConfig()
	cfg.NumItems = 200
	ds, err := hcrowd.GenerateMultiClass(3, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := hcrowd.CatFromOneHot(ds.Prelim, ds.Tasks)
	if err != nil {
		b.Fatal(err)
	}
	agg := hcrowd.CatDawidSkene()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.AggregateCat(cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCondEntropyAssign measures the generalized per-assignment
// conditional entropy next to the uniform-panel evaluator.
func BenchmarkCondEntropyAssign(b *testing.B) {
	d, err := hcrowd.BeliefFromJoint(randomJoint(32))
	if err != nil {
		b.Fatal(err)
	}
	ce := hcrowd.Crowd{{ID: "e0", Accuracy: 0.9}, {ID: "e1", Accuracy: 0.95}}
	assigns := []taskselect.Assign{
		{Fact: 0, Worker: ce[0]}, {Fact: 2, Worker: ce[0]},
		{Fact: 0, Worker: ce[1]}, {Fact: 4, Worker: ce[1]},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskselect.CondEntropyAssign(d, assigns); err != nil {
			b.Fatal(err)
		}
	}
}
