// Command hcagg runs standalone truth inference: it aggregates a
// `fact,worker,value` answers CSV with any of the eight baseline
// algorithms and prints per-fact posteriors (and optionally the
// estimated worker accuracies). It is the library's label-aggregation
// surface without the hierarchical checking loop.
//
// Usage:
//
//	hcagg -in answers.csv -algo EBCC
//	hcgen -tasks 20 -o - | ... (see hclabel for the full pipeline)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hcrowd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcagg:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcagg", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "answers CSV file (required; - for stdin)")
		algo    = fs.String("algo", "EBCC", "algorithm: "+strings.Join(hcrowd.AggregatorNames(), ", "))
		seed    = fs.Int64("seed", 1, "seed for sampling-based algorithms")
		workers = fs.Bool("workers", false, "also print estimated worker accuracies")
		labels  = fs.Bool("labels", false, "print hard labels instead of posteriors")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in (answers CSV)")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	m, err := hcrowd.ReadAnswersCSV(r, 0)
	if err != nil {
		return err
	}
	agg, err := hcrowd.AggregatorByName(*algo, *seed)
	if err != nil {
		return err
	}
	res, err := agg.Aggregate(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# %s over %d facts × %d workers (%d answers), %d iterations, converged=%v\n",
		agg.Name(), m.NumFacts(), m.NumWorkers(), m.NumAnswers(), res.Iterations, res.Converged)
	if *labels {
		for f, l := range res.Labels() {
			fmt.Fprintf(stdout, "%d,%t\n", f, l)
		}
	} else {
		for f, p := range res.PTrue {
			fmt.Fprintf(stdout, "%d,%.6f\n", f, p)
		}
	}
	if *workers {
		fmt.Fprintln(stdout, "# worker,estimated_accuracy")
		for w, id := range m.WorkerIDs() {
			fmt.Fprintf(stdout, "%s,%.4f\n", id, res.WorkerAcc[w])
		}
	}
	return nil
}
