package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeAnswers(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "answers.csv")
	content := "fact,worker,value\n" +
		"0,a,true\n0,b,true\n0,c,false\n" +
		"1,a,false\n1,b,false\n1,c,false\n" +
		"2,a,true\n2,b,false\n2,c,true\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPosteriors(t *testing.T) {
	path := writeAnswers(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "MV"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# MV over 3 facts × 3 workers (9 answers)") {
		t.Errorf("header missing: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header + 3 facts
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "0,0.66") {
		t.Errorf("fact 0 posterior: %q", lines[1])
	}
}

func TestRunLabelsAndWorkers(t *testing.T) {
	path := writeAnswers(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "DS", "-labels", "-workers"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "0,true") && !strings.Contains(s, "0,false") {
		t.Errorf("no hard labels: %q", s)
	}
	if !strings.Contains(s, "# worker,estimated_accuracy") {
		t.Errorf("worker section missing: %q", s)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeAnswers(t)
	for _, algo := range []string{"MV", "DS", "ZC", "GLAD", "CRH", "BWA", "BCC", "EBCC"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo}, &out); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nope.csv"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	path := writeAnswers(t)
	if err := run([]string{"-in", path, "-algo", "nope"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
