// Command hcbench regenerates the paper's evaluation: every figure
// (2–7) and Table III, printed as aligned tables and optionally exported
// as CSV for plotting. EXPERIMENTS.md records a full run next to the
// paper's numbers.
//
// Usage:
//
//	hcbench                 # run everything at full size
//	hcbench -exp fig2,fig5  # a subset
//	hcbench -quick          # CI-sized workloads (seconds)
//	hcbench -csv out/       # also write out/<exp>_<n>.csv
//	hcbench -metrics m.json # dump per-round pipeline metrics as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hcrowd"
	"hcrowd/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcbench", flag.ContinueOnError)
	var (
		expList = fs.String("exp", "all", "comma-separated experiment IDs ("+strings.Join(experiments.IDs(), ", ")+") or all")
		quick   = fs.Bool("quick", false, "reduced workloads for smoke runs")
		seed    = fs.Int64("seed", 1, "experiment seed")
		csvDir  = fs.String("csv", "", "directory for CSV export (created if missing)")
		repeats = fs.Int("repeats", 1, "average curves over this many consecutive seeds")
		mPath   = fs.String("metrics", "", "write per-round pipeline metrics (all runs, in order) to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick}
	var recorder *hcrowd.MetricsRecorder
	if *mPath != "" {
		recorder = &hcrowd.MetricsRecorder{}
		opts.Metrics = recorder
	}
	drivers := experiments.All()

	var ids []string
	if *expList == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if _, ok := drivers[id]; !ok {
				return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(experiments.IDs(), ", "))
			}
			ids = append(ids, id)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	ctx := context.Background()
	for _, id := range ids {
		start := time.Now()
		d := drivers[id]
		if *repeats > 1 {
			d = experiments.Averaged(d, *repeats)
		}
		fig, err := d(ctx, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := fig.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := exportCSV(*csvDir, fig); err != nil {
				return err
			}
		}
	}
	if recorder != nil {
		if err := writeMetrics(*mPath, recorder); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(metrics: %d rounds -> %s)\n", len(recorder.Rounds()), *mPath)
	}
	return nil
}

// writeMetrics dumps every recorded checking round as indented JSON, in
// the order the drivers ran them.
func writeMetrics(path string, rec *hcrowd.MetricsRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec.Rounds()); err != nil {
		f.Close() //hclint:ignore errcheck-lite the encode failure is returned; the close error on the already-bad file is secondary
		return err
	}
	return f.Close()
}

// exportCSV writes each grid and table of the figure as
// <dir>/<id>_<n>.csv.
func exportCSV(dir string, fig *experiments.Figure) error {
	n := 0
	write := func(render func(io.Writer) error) error {
		n++
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", fig.ID, n))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close() //hclint:ignore errcheck-lite the render failure is returned; the close error on the already-bad file is secondary
			return err
		}
		return f.Close()
	}
	for _, g := range fig.Grids {
		if err := write(g.CSV); err != nil {
			return err
		}
	}
	for _, t := range fig.Tables {
		if err := write(t.CSV); err != nil {
			return err
		}
	}
	return nil
}
