package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcrowd"
)

func TestRunQuickSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-exp", "fig7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig7", "HC", "NO HC", "completed in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table3_1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "k,OPT,Approx") {
		t.Errorf("csv header: %q", string(data[:30]))
	}
}

// TestRunMetricsExport checks -metrics dumps every checking round of the
// drivers' pipeline runs as JSON, in order and with the selector stats
// filled in.
func TestRunMetricsExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig2", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "metrics:") {
		t.Errorf("output missing metrics line: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []hcrowd.RoundMetrics
	if err := json.Unmarshal(data, &rounds); err != nil {
		t.Fatalf("metrics file not JSON: %v", err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds exported")
	}
	for i, r := range rounds {
		if r.Round < 1 || r.QueriesBought <= 0 || r.Selector.Evals <= 0 {
			t.Errorf("round %d malformed: %+v", i, r)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-wat"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
