package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-exp", "fig7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig7", "HC", "NO HC", "completed in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table3_1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "k,OPT,Approx") {
		t.Errorf("csv header: %q", string(data[:30]))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-wat"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
