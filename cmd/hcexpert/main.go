// Command hcexpert is the expert-side client for an hcserve labeling
// service: it polls for checking queries addressed to a worker and
// answers them — either interactively on the terminal or automatically
// from a dataset file's ground truth under the worker's accuracy (the
// simulation protocol, useful to stand in for absent colleagues).
//
// Usage:
//
//	hcexpert -server http://127.0.0.1:8080 -worker e0            # interactive
//	hcexpert -server http://127.0.0.1:8080 -worker e1 -sim ds.json # simulated
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"hcrowd"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcexpert:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcexpert", flag.ContinueOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "hcserve base URL")
		worker    = fs.String("worker", "", "expert worker ID (required)")
		simPath   = fs.String("sim", "", "dataset JSON: answer automatically from its ground truth")
		seed      = fs.Int64("seed", 1, "seed for simulated answering")
		poll      = fs.Duration("poll", 200*time.Millisecond, "polling interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker == "" {
		return fmt.Errorf("missing -worker")
	}
	client := server.NewClient(*serverURL)
	experts, err := client.Experts(ctx)
	if err != nil {
		return fmt.Errorf("contacting server: %w", err)
	}
	found := false
	for _, id := range experts {
		if id == *worker {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("worker %q is not an expert on this session (have %v)", *worker, experts)
	}

	var answer func(facts []int) []bool
	if *simPath != "" {
		f, err := os.Open(*simPath)
		if err != nil {
			return err
		}
		ds, err := hcrowd.ReadDataset(f)
		f.Close()
		if err != nil {
			return err
		}
		w, ok := ds.Crowd.ByID(*worker)
		if !ok {
			return fmt.Errorf("worker %q not in dataset crowd", *worker)
		}
		rng := rngutil.New(*seed)
		answer = func(facts []int) []bool {
			values := make([]bool, len(facts))
			for i, fct := range facts {
				v := ds.Truth[fct]
				if rng.Float64() >= w.PCorrect(v) {
					v = !v
				}
				values[i] = v
			}
			fmt.Fprintf(stdout, "answered %d facts\n", len(facts))
			return values
		}
	} else {
		reader := bufio.NewReader(stdin)
		answer = func(facts []int) []bool {
			values := make([]bool, len(facts))
			for i, fct := range facts {
				fmt.Fprintf(stdout, "fact %d — is it true? [y/n]: ", fct)
				line, err := reader.ReadString('\n')
				if err != nil {
					return values
				}
				values[i] = strings.HasPrefix(strings.TrimSpace(strings.ToLower(line)), "y")
			}
			return values
		}
	}
	fmt.Fprintf(stdout, "hcexpert: answering as %s\n", *worker)
	if err := client.AnswerLoop(ctx, *worker, answer, *poll); err != nil {
		return err
	}
	st, err := client.Status(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hcexpert: session done after %d rounds, quality %.4f\n", st.Rounds, st.Quality)
	return nil
}
