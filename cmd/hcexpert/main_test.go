package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/server"
)

// startServer builds a dataset file plus a live hcserve-equivalent.
func startServer(t *testing.T, budget float64) (url, dsPath string, ds *hcrowd.Dataset) {
	t.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dsPath = filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sess, err := server.NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	srv := httptest.NewServer(server.Handler(sess))
	t.Cleanup(srv.Close)
	return srv.URL, dsPath, ds
}

func TestRunSimulatedExperts(t *testing.T) {
	url, dsPath, ds := startServer(t, 8)
	ce, _ := ds.Split()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done := make(chan error, len(ce))
	for _, w := range ce {
		go func(id string) {
			var out bytes.Buffer
			done <- run(ctx, []string{
				"-server", url, "-worker", id, "-sim", dsPath, "-poll", "5ms",
			}, strings.NewReader(""), &out)
		}(w.ID)
	}
	for range ce {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunInteractive(t *testing.T) {
	url, _, ds := startServer(t, 2) // one k=1 round, |CE|=2
	ce, _ := ds.Split()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done := make(chan error, len(ce))
	for _, w := range ce {
		go func(id string) {
			var out bytes.Buffer
			// Feed enough y/n lines for the single round.
			in := strings.NewReader(strings.Repeat("y\n", 64))
			done <- run(ctx, []string{
				"-server", url, "-worker", id, "-poll", "5ms",
			}, in, &out)
		}(w.ID)
	}
	for range ce {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	url, dsPath, _ := startServer(t, 4)
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-server", url}, strings.NewReader(""), &out); err == nil {
		t.Error("missing -worker accepted")
	}
	if err := run(ctx, []string{"-server", url, "-worker", "ghost"}, strings.NewReader(""), &out); err == nil {
		t.Error("non-expert worker accepted")
	}
	if err := run(ctx, []string{"-server", url, "-worker", "e0", "-sim", "/missing.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing sim dataset accepted")
	}
	if err := run(ctx, []string{"-server", "http://127.0.0.1:1", "-worker", "e0", "-sim", dsPath}, strings.NewReader(""), &out); err == nil {
		t.Error("dead server accepted")
	}
}
