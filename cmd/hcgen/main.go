// Command hcgen generates a synthetic sentiment-like dataset (the
// paper's experimental shape; see DESIGN.md substitution 1) and writes it
// as JSON to stdout or a file. The output feeds cmd/hclabel.
//
// Usage:
//
//	hcgen -seed 1 -tasks 200 -facts 5 -theta 0.9 -o dataset.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hcrowd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcgen", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "random seed (same seed, same dataset)")
		tasks   = fs.Int("tasks", 200, "number of correlated tasks")
		facts   = fs.Int("facts", 5, "facts per task")
		theta   = fs.Float64("theta", 0.9, "expert accuracy threshold")
		alpha   = fs.Float64("alpha", 0.3, "correlation alpha (small = strongly correlated)")
		rate    = fs.Float64("rate", 1.0, "preliminary answer rate in (0,1]")
		prelim  = fs.Int("prelim", 6, "preliminary workers")
		experts = fs.Int("experts", 2, "expert workers")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = *tasks
	cfg.FactsPerTask = *facts
	cfg.Theta = *theta
	cfg.CorrelationAlpha = *alpha
	cfg.AnswerRate = *rate
	cfg.Crowd.NumPrelim = *prelim
	cfg.Crowd.NumExpert = *experts
	ds, err := hcrowd.GenerateSentiLike(*seed, cfg)
	if err != nil {
		return err
	}
	w := stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := ds.Write(w); err != nil {
		if f != nil {
			f.Close() //hclint:ignore errcheck-lite the write failure is returned; the close error on the already-bad file is secondary
		}
		return err
	}
	if f != nil {
		// Close surfaces the final flush error: a truncated dataset file
		// would fail every downstream CLI in confusing ways.
		if err := f.Close(); err != nil {
			return err
		}
	}
	ce, cp := ds.Split()
	fmt.Fprintf(os.Stderr, "hcgen: %d facts in %d tasks, %d experts / %d preliminary, %d answers\n",
		ds.NumFacts(), len(ds.Tasks), len(ce), len(cp), ds.Prelim.NumAnswers())
	return nil
}
