package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hcrowd"
)

func TestRunWritesValidDataset(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-seed", "3", "-tasks", "4", "-facts", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := hcrowd.ReadDataset(&buf)
	if err != nil {
		t.Fatalf("output not a valid dataset: %v", err)
	}
	if ds.NumFacts() != 12 || len(ds.Tasks) != 4 {
		t.Errorf("shape: %d facts, %d tasks", ds.NumFacts(), len(ds.Tasks))
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := run([]string{"-tasks", "2", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := hcrowd.ReadDataset(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-tasks", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("zero tasks accepted")
	}
	if err := run([]string{"-badflag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-theta", "0.2"}, &bytes.Buffer{}); err == nil {
		t.Error("invalid theta accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "9", "-tasks", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9", "-tasks", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed, different output")
	}
}
