// Command hclabel runs the full hierarchical crowdsourcing pipeline
// (Algorithm 3) on a dataset file produced by hcgen: initialize beliefs
// from the preliminary answers, then spend the checking budget on
// greedily selected expert queries, and print the resulting labels and
// per-round trace.
//
// Usage:
//
//	hclabel -in dataset.json -budget 500 -k 1 -init EBCC -selector approx
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hcrowd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hclabel:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hclabel", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "dataset JSON file (required; - for stdin)")
		budget   = fs.Float64("budget", 500, "expert answer budget B")
		k        = fs.Int("k", 1, "checking queries per round")
		initName = fs.String("init", "EBCC", "belief initializer: "+strings.Join(hcrowd.AggregatorNames(), ", "))
		selName  = fs.String("selector", "approx", "selection method: approx, opt, random, maxentropy")
		seed     = fs.Int64("seed", 1, "seed for simulated expert answers")
		trace    = fs.Bool("trace", false, "print one line per checking round")
		labels   = fs.Bool("labels", false, "print final labels, one fact per line")
		saveCk   = fs.String("save-checkpoint", "", "write the final belief state to this file")
		fromCk   = fs.String("resume", "", "resume from a checkpoint written by -save-checkpoint")
		costMode = fs.Bool("costaware", false, "buy (query, expert) units by gain-per-cost instead of polling the whole panel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in (dataset file)")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ds, err := hcrowd.ReadDataset(r)
	if err != nil {
		return err
	}
	init, err := hcrowd.AggregatorByName(*initName, *seed)
	if err != nil {
		return err
	}
	var sel hcrowd.Selector
	switch strings.ToLower(*selName) {
	case "approx", "greedy":
		sel = hcrowd.GreedySelector()
	case "opt", "exact":
		sel = hcrowd.ExactSelector()
	case "random":
		sel = hcrowd.RandomSelector(*seed + 1)
	case "maxentropy":
		sel = hcrowd.MaxEntropySelector()
	default:
		return fmt.Errorf("unknown selector %q", *selName)
	}
	cfg := hcrowd.Config{
		K:        *k,
		Budget:   *budget,
		Init:     init,
		Selector: sel,
		Source:   hcrowd.NewSimulatedSource(*seed+2, ds),
	}
	var res *hcrowd.Result
	switch {
	case *fromCk != "":
		ckFile, err := os.Open(*fromCk)
		if err != nil {
			return err
		}
		ck, err := hcrowd.ReadCheckpoint(ckFile)
		ckFile.Close()
		if err != nil {
			return err
		}
		resume := hcrowd.Resume
		if *costMode {
			resume = hcrowd.ResumeCostAware
		}
		res, err = resume(context.Background(), ds, cfg, ck)
		if err != nil {
			return err
		}
	case *costMode:
		var err error
		res, err = hcrowd.RunCostAware(context.Background(), ds, cfg)
		if err != nil {
			return err
		}
	default:
		var err error
		res, err = hcrowd.Run(context.Background(), ds, cfg)
		if err != nil {
			return err
		}
	}
	if *saveCk != "" {
		out, err := os.Create(*saveCk)
		if err != nil {
			return err
		}
		if err := hcrowd.NewCheckpoint(res).Write(out); err != nil {
			out.Close() //hclint:ignore errcheck-lite the checkpoint write failure is returned; the close error on the already-bad file is secondary
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "facts: %d  tasks: %d  init: %s  selector: %s\n",
		ds.NumFacts(), len(ds.Tasks), init.Name(), sel.Name())
	fmt.Fprintf(stdout, "accuracy: %.4f -> %.4f   quality: %.4f -> %.4f   budget spent: %.0f in %d rounds\n",
		res.InitAccuracy, res.Accuracy, res.InitQuality, res.Quality, res.BudgetSpent, len(res.Rounds))
	if *trace {
		for _, rd := range res.Rounds {
			fmt.Fprintf(stdout, "round %3d  spent %6.0f  accuracy %.4f  quality %.4f\n",
				rd.Round, rd.BudgetSpent, rd.Accuracy, rd.Quality)
		}
	}
	if *labels {
		for f, l := range res.Labels {
			fmt.Fprintf(stdout, "%d,%t\n", f, l)
		}
	}
	return nil
}
