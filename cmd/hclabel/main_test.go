package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcrowd"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 6
	ds, err := hcrowd.GenerateSentiLike(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-budget", "20", "-trace", "-labels"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"accuracy:", "quality:", "round", "init: EBCC", "selector: Approx"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// 30 label lines (6 tasks × 5 facts).
	labels := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, ",true") || strings.Contains(line, ",false") {
			labels++
		}
	}
	if labels != 30 {
		t.Errorf("label lines = %d, want 30", labels)
	}
}

func TestRunSelectorAndInitFlags(t *testing.T) {
	path := writeDataset(t)
	for _, sel := range []string{"approx", "random", "maxentropy", "opt"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-budget", "4", "-selector", sel}, &out); err != nil {
			t.Errorf("selector %s: %v", sel, err)
		}
	}
	for _, init := range []string{"MV", "DS", "BWA"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-budget", "4", "-init", init}, &out); err != nil {
			t.Errorf("init %s: %v", init, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-in", path, "-selector", "nope"}, &out); err == nil {
		t.Error("bad selector accepted")
	}
	if err := run([]string{"-in", path, "-init", "nope"}, &out); err == nil {
		t.Error("bad init accepted")
	}
	if err := run([]string{"-in", path, "-k", "0"}, &out); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	path := writeDataset(t)
	ck := filepath.Join(t.TempDir(), "state.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-budget", "10", "-save-checkpoint", ck}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"-in", path, "-budget", "20", "-resume", ck}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "budget spent: 20") {
		t.Errorf("resume output: %q", out.String())
	}
	// Resuming from a missing checkpoint fails cleanly.
	if err := run([]string{"-in", path, "-resume", "/missing.json"}, &out); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestRunCostAwareFlag(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-budget", "12", "-costaware"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accuracy:") {
		t.Errorf("costaware output: %q", out.String())
	}
}
