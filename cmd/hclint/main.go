// Command hclint runs this repository's determinism/correctness linter
// (internal/lint) over the module and reports diagnostics with
// file:line positions. It is the static half of the reproducibility
// contract: `make lint` (inside `make verify`) fails the build on any
// unsuppressed finding.
//
// Usage:
//
//	hclint [-json] [-checks name,name] [packages]
//
// Packages may be `./...` (the whole module, the default), `dir/...`
// (a subtree), or a single package directory. Findings are suppressed
// site-by-site with
//
//	//hclint:ignore <check>[,<check>] <reason>
//
// on the flagged line or the line above; the reason is mandatory.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hcrowd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON array")
		checks  = fs.String("checks", "", "comma-separated check names to run (default: all)")
		list    = fs.Bool("list", false, "list registered checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	selected := lint.Checks()
	if *checks != "" {
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			c, err := lint.CheckByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, "hclint:", err)
				return 2
			}
			selected = append(selected, c)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "hclint:", err)
		return 2
	}
	diags := lint.Run(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "hclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// load resolves package patterns against the enclosing module. A
// `.../`-free pattern loads just that directory; `dir/...` loads the
// module walk filtered to the subtree — so `hclint internal/pipeline`
// does not pay for type-checking the whole tree.
func load(patterns []string) ([]*lint.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	importPathFor := func(abs string) (string, error) {
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("%s is outside module %s", abs, modPath)
		}
		if rel == "." {
			return modPath, nil
		}
		return modPath + "/" + filepath.ToSlash(rel), nil
	}
	loader := lint.NewLoader()
	var out []*lint.Package
	seen := make(map[string]bool)
	add := func(ps []*lint.Package) {
		for _, p := range ps {
			key := p.Dir
			if p.XTest {
				key += " xtest"
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, p)
			}
		}
	}
	var whole []*lint.Package // the full module walk, loaded at most once
	for _, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if recursive && (dir == "." || dir == "") {
			if whole == nil {
				if whole, err = loader.LoadModule(modRoot); err != nil {
					return nil, err
				}
			}
			add(whole)
			continue
		}
		if !recursive {
			dir = pat
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if recursive {
			if whole == nil {
				if whole, err = loader.LoadModule(modRoot); err != nil {
					return nil, err
				}
			}
			matched := false
			for _, p := range whole {
				if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
					add([]*lint.Package{p})
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matched no packages", pat)
			}
			continue
		}
		importPath, err := importPathFor(abs)
		if err != nil {
			return nil, err
		}
		pkgs, err := loader.LoadDir(abs, importPath, true)
		if err != nil {
			return nil, err
		}
		if len(pkgs) == 0 {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
		add(pkgs)
	}
	return out, nil
}
