// Command hclint runs this repository's determinism/correctness linter
// (internal/lint) over the module and reports diagnostics with
// file:line positions. It is the static half of the reproducibility
// contract: `make lint` (inside `make verify`) fails the build on any
// unsuppressed finding.
//
// Usage:
//
//	hclint [-json] [-checks name,name] [-fixtures] [packages]
//
// -fixtures ignores the package arguments and instead self-tests the
// linter: every registered check runs against its golden fixture under
// internal/lint/testdata/src/<check>/ and any drift from the fixture's
// `// want` expectations — or a check with no fixture at all — fails.
//
// Packages may be `./...` (the whole module, the default), `dir/...`
// (a subtree), or a single package directory. Findings are suppressed
// site-by-site with
//
//	//hclint:ignore <check>[,<check>] <reason>
//
// on the flagged line or the line above; the reason is mandatory.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hcrowd/internal/lint"
	"hcrowd/internal/lint/linttest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array")
		checks   = fs.String("checks", "", "comma-separated check names to run (default: all)")
		list     = fs.Bool("list", false, "list registered checks and exit")
		fixtures = fs.Bool("fixtures", false, "self-test every check against its golden fixture and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fixtures {
		return runFixtures(stdout, stderr)
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	selected := lint.Checks()
	if *checks != "" {
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			c, err := lint.CheckByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, "hclint:", err)
				return 2
			}
			selected = append(selected, c)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "hclint:", err)
		return 2
	}
	diags := lint.Run(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "hclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runFixtures is the -fixtures mode: a from-the-binary rerun of the
// golden fixture suite, so `make lint-fixtures` can prove the shipped
// linter still matches its own test corpus without invoking go test.
func runFixtures(stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hclint:", err)
		return 2
	}
	modRoot, _, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "hclint:", err)
		return 2
	}
	failed := false
	for _, c := range lint.Checks() {
		dir := filepath.Join(modRoot, "internal", "lint", "testdata", "src", c.Name)
		if _, err := os.Stat(dir); err != nil {
			fmt.Fprintf(stdout, "FAIL %s: no golden fixture at %s\n", c.Name, dir)
			failed = true
			continue
		}
		mismatches, err := linttest.Verify(c, dir)
		if err != nil {
			fmt.Fprintf(stderr, "hclint: %s: %v\n", c.Name, err)
			return 2
		}
		if len(mismatches) > 0 {
			failed = true
			fmt.Fprintf(stdout, "FAIL %s:\n", c.Name)
			for _, m := range mismatches {
				fmt.Fprintf(stdout, "  %s\n", m)
			}
			continue
		}
		fmt.Fprintf(stdout, "ok   %s\n", c.Name)
	}
	if failed {
		return 1
	}
	return 0
}

// load resolves package patterns against the enclosing module. A
// `.../`-free pattern loads just that directory; `dir/...` loads the
// module walk filtered to the subtree — so `hclint internal/pipeline`
// does not pay for type-checking the whole tree.
func load(patterns []string) ([]*lint.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	importPathFor := func(abs string) (string, error) {
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("%s is outside module %s", abs, modPath)
		}
		if rel == "." {
			return modPath, nil
		}
		return modPath + "/" + filepath.ToSlash(rel), nil
	}
	loader := lint.NewLoader()
	var out []*lint.Package
	seen := make(map[string]bool)
	add := func(ps []*lint.Package) {
		for _, p := range ps {
			key := p.Dir
			if p.XTest {
				key += " xtest"
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, p)
			}
		}
	}
	var whole []*lint.Package // the full module walk, loaded at most once
	for _, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if recursive && (dir == "." || dir == "") {
			if whole == nil {
				if whole, err = loader.LoadModule(modRoot); err != nil {
					return nil, err
				}
			}
			add(whole)
			continue
		}
		if !recursive {
			dir = pat
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if recursive {
			if whole == nil {
				if whole, err = loader.LoadModule(modRoot); err != nil {
					return nil, err
				}
			}
			matched := false
			for _, p := range whole {
				if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
					add([]*lint.Package{p})
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matched no packages", pat)
			}
			continue
		}
		importPath, err := importPathFor(abs)
		if err != nil {
			return nil, err
		}
		pkgs, err := loader.LoadDir(abs, importPath, true)
		if err != nil {
			return nil, err
		}
		if len(pkgs) == 0 {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
		add(pkgs)
	}
	return out, nil
}
