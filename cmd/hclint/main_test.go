package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hcrowd/internal/lint"
)

// TestSelfSmoke is the CI gate's own gate: hclint run against the real
// module must report zero unsuppressed findings. A new violation
// anywhere in the tree — or a suppression that loses its reason —
// fails this test (and `make lint`) before the determinism suite ever
// runs.
func TestSelfSmoke(t *testing.T) {
	root, _, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module; the walk is broken", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.Checks())
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestRunTextAndJSON drives the CLI entry point (single-directory
// pattern, so it stays fast — TestSelfSmoke covers the whole module)
// and pins exit codes and the -json shape.
func TestRunTextAndJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(.) = %d, stderr=%s stdout=%s", code, stderr.String(), stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced output: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-json", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-json .) = %d", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostics array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean tree emitted %d JSON diagnostics", len(diags))
	}
}

// TestRunChecksFilter: -checks restricts the run and rejects unknown
// names.
func TestRunChecksFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "rand-hygiene,float-eq", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("filtered run = %d, stderr=%s stdout=%s", code, stderr.String(), stdout.String())
	}
	stderr.Reset()
	if code := run([]string{"-checks", "bogus", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Errorf("stderr = %q, want unknown-check error", stderr.String())
	}
}

// TestListChecks: -list names every registered check.
func TestListChecks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list = %d", code)
	}
	for _, c := range lint.Checks() {
		if !strings.Contains(stdout.String(), c.Name) {
			t.Errorf("-list output missing %q:\n%s", c.Name, stdout.String())
		}
	}
}

// TestConcurrencyChecksRegistered pins the v2 analyzer suite: the five
// invariant checks must stay registered under these exact names — a
// registry regression would otherwise silently drop them from `make
// lint` while TestSelfSmoke kept passing on whatever remained.
func TestConcurrencyChecksRegistered(t *testing.T) {
	want := []string{
		"ack-discipline",
		"atomic-mix",
		"goroutine-hygiene",
		"lock-discipline",
		"mutex-copy",
	}
	for _, name := range want {
		if _, err := lint.CheckByName(name); err != nil {
			t.Errorf("check %q not registered: %v", name, err)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list = %d", code)
	}
	for _, name := range want {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunFixtures drives the -fixtures self-test mode: every check's
// golden fixture must verify clean from the CLI, with one ok line per
// check.
func TestRunFixtures(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fixtures"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fixtures = %d, stderr=%s stdout=%s", code, stderr.String(), stdout.String())
	}
	for _, c := range lint.Checks() {
		if !strings.Contains(stdout.String(), "ok   "+c.Name) {
			t.Errorf("-fixtures output missing ok line for %q:\n%s", c.Name, stdout.String())
		}
	}
	if strings.Contains(stdout.String(), "FAIL") {
		t.Errorf("-fixtures reported a failure:\n%s", stdout.String())
	}
}
