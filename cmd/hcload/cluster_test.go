package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd/internal/cluster"
	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

// freeAddrs reserves n distinct loopback addresses by binding ephemeral
// ports and releasing them just before the replicas start. Replica mode
// needs the address list up front (-peers is static membership), so the
// usual listen-on-:0 trick does not work here.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startReplica launches one hcserve replica and returns its process
// handle (so the test can SIGKILL it) once the startup line confirms it
// is listening.
func startReplica(t *testing.T, bin, self, peers, jdir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", self, "-self", self, "-peers", peers, "-journal-dir", jdir)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on ") {
				close(ready)
				break
			}
		}
	}()
	select {
	case <-ready:
		return cmd
	case <-time.After(20 * time.Second):
		t.Fatalf("replica %s never printed its address; stderr:\n%s", self, errBuf.String())
		return nil
	}
}

// nameOwnedBy finds a session name the ring assigns to owner.
func nameOwnedBy(t *testing.T, ring *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("move-%d", i)
		if ring.Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no candidate name owned by %s", owner)
	return ""
}

// driveHTTPFlip answers a session's queries over HTTP with the
// index-only flip policy, one expert at a time in Experts() order — the
// same schedule the in-process reference run uses. n > 0 stops after n
// accepted answers (the crash point); n <= 0 drives to completion.
func driveHTTPFlip(ctx context.Context, base, id string, n int) (int, error) {
	cl := server.NewSessionClient(base, id)
	experts, err := cl.Experts(ctx)
	if err != nil {
		return 0, err
	}
	answered := 0
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := cl.Status(ctx)
		if err != nil {
			return answered, err
		}
		if st.Done || (n > 0 && answered >= n) {
			return answered, nil
		}
		if time.Now().After(deadline) {
			return answered, fmt.Errorf("session %s stalled after %d answers", id, answered)
		}
		progressed := false
		for _, w := range experts {
			q, ok, err := cl.Queries(ctx, w)
			if err != nil {
				return answered, err
			}
			if !ok {
				continue
			}
			if err := cl.Answer(ctx, q.Round, w, flipPolicy(w, q.Facts)); err != nil {
				return answered, err
			}
			answered++
			progressed = true
			if n > 0 && answered >= n {
				return answered, nil
			}
		}
		if !progressed {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// driveLocalFlip is the in-process reference driver: same flip policy,
// same expert order, no network.
func driveLocalFlip(s *server.Session) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if s.Status().Done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("reference session stalled")
		}
		progressed := false
		for _, id := range s.Experts() {
			round, facts, ok := s.Queries(id)
			if !ok {
				continue
			}
			if err := s.Answer(round, id, flipPolicy(id, facts)); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			time.Sleep(time.Millisecond)
		}
	}
}

// scrapeCounter reads one counter from a replica's /v1/metrics snapshot.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]struct {
		Value *float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	m, ok := snap[name]
	if !ok || m.Value == nil {
		t.Fatalf("metric %s missing from %s/v1/metrics", name, base)
	}
	return *m.Value
}

// checkpointJSON serializes a checkpoint for byte comparison.
func checkpointJSON(t *testing.T, ck *pipeline.Checkpoint) []byte {
	t.Helper()
	if ck == nil {
		t.Fatal("nil checkpoint")
	}
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunClusterSmoke is `make cluster-smoke`: two real hcserve
// replicas forming a ring, exercised end to end.
//
// Phase 1 sprays hcload's streaming sessions across both base URLs —
// misdirected creates 307 to their ring owner and the stock client
// follows, so every session finishes no matter which replica it hit.
//
// Phase 2 is the kill-one-replica claim over real processes: a
// deterministic non-streaming session is created on its owner, driven
// mid-panel over HTTP, the owner is SIGKILLed, the journal is salvaged
// from its dir (trimmed to the clean prefix, exactly what an operator
// does) and posted to the survivor's accept endpoint, and the job
// finishes there — with labels and final checkpoint byte-identical to
// an uninterrupted in-process run, and cluster_redirects_total > 0 on
// the survivor.
func TestRunClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster smoke")
	}
	bin := buildServe(t)
	addrs := freeAddrs(t, 2)
	peers := strings.Join(addrs, ",")
	jdirs := []string{t.TempDir(), t.TempDir()}
	cmds := make([]*exec.Cmd, 2)
	bases := make([]string, 2)
	for i := range addrs {
		cmds[i] = startReplica(t, bin, addrs[i], peers, jdirs[i])
		bases[i] = "http://" + addrs[i]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()

	// Phase 1: streaming load sprayed across the replica list.
	var out bytes.Buffer
	if err := run(ctx, []string{
		"-addr", strings.Join(bases, ","),
		"-sessions", "4",
		"-tasks", "12",
		"-streamed", "4",
		"-rate", "50",
		"-seed", "33",
	}, &out); err != nil {
		t.Fatalf("hcload against the cluster: %v\n%s", err, out.String())
	}
	t.Logf("hcload output:\n%s", out.String())
	if !strings.Contains(out.String(), "4/4 sessions done") {
		t.Error("summary line does not report 4/4 sessions done")
	}

	// The same ring the replicas built (same membership, default vnodes).
	ring, err := cluster.New(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	survivor, victim := 0, 1

	// Phase 2: a deterministic closed-set job owned by the victim.
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 8
	ds, err := dataset.SentiLike(rngutil.New(91), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	sc := server.SessionConfig{K: 1, Budget: 14, Seed: 9}

	// Reference: the identical job, in-process and uninterrupted.
	refMgr := server.NewManager(server.ManagerOptions{})
	_, ref, err := refMgr.CreateFromRequest(server.CreateSessionRequest{
		Name: "ref", Dataset: dsBuf.Bytes(), Config: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveLocalFlip(ref); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refLabels, _ := json.Marshal(refRes.Labels)
	refCk := checkpointJSON(t, ref.Checkpoint())

	name := nameOwnedBy(t, ring, addrs[victim])
	// Create through the survivor: the 307 to the owner is exactly the
	// routing layer phase 2 depends on (and pins redirects > 0 there).
	mc := server.NewManagerClient(bases[survivor])
	if _, err := mc.Create(ctx, server.CreateSessionRequest{
		Name: name, Dataset: dsBuf.Bytes(), Config: sc,
	}); err != nil {
		t.Fatalf("create %s via survivor: %v", name, err)
	}
	if _, err := driveHTTPFlip(ctx, bases[victim], name, 7); err != nil {
		t.Fatalf("pre-kill drive: %v", err)
	}

	// Kill the owner. No drain, no warning — only its journal survives.
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[victim].Wait() //nolint:errcheck

	raw, err := os.ReadFile(filepath.Join(jdirs[victim], name+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	_, good, err := journal.Decode(raw)
	if err != nil {
		t.Fatalf("decode dead replica's journal: %v", err)
	}
	resp, err := http.Post(bases[survivor]+"/v1/cluster/accept/"+name,
		"application/octet-stream", bytes.NewReader(raw[:good]))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accept on survivor = %d: %s", resp.StatusCode, body)
	}

	if _, err := driveHTTPFlip(ctx, bases[survivor], name, 0); err != nil {
		t.Fatalf("post-kill drive on survivor: %v", err)
	}
	cl := server.NewSessionClient(bases[survivor], name)
	labels, err := cl.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotLabels, _ := json.Marshal(labels)
	if !bytes.Equal(gotLabels, refLabels) {
		t.Errorf("labels after kill+handoff diverge\n got %s\nwant %s", gotLabels, refLabels)
	}
	ck, ok, err := cl.Checkpoint(ctx)
	if err != nil || !ok {
		t.Fatalf("survivor checkpoint: ok=%v err=%v", ok, err)
	}
	if gotCk := checkpointJSON(t, ck); !bytes.Equal(gotCk, refCk) {
		t.Errorf("final checkpoint after kill+handoff diverges\n got %s\nwant %s", gotCk, refCk)
	}
	if v := scrapeCounter(t, bases[survivor], "cluster_redirects_total"); v < 1 {
		t.Errorf("survivor cluster_redirects_total = %v, want >= 1", v)
	}
}
