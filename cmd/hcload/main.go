// Command hcload is a streaming traffic generator for the labeling
// service: it drives a live hcserve through the /v1 management API with
// many concurrent sessions, each fed by a seeded Poisson stream of task
// fragments and answered by one goroutine per simulated expert. It is
// the load half of the streaming-admission feature — hcserve hosts the
// event-driven scheduler, hcload supplies the open-world workload:
//
//	hcserve -in dataset.json -addr :8080 &
//	hcload -addr http://127.0.0.1:8080 -sessions 8 -tasks 60 -rate 20
//
// -addr also accepts a comma-separated replica list; sessions are
// sprayed round-robin across it, and replica-mode 307s from non-owner
// replicas are followed transparently by the client.
//
// Per session, hcload generates a seeded dataset (base tasks available
// up front, the rest held back), creates a streaming session
// (config.budget_window > 0), starts one AnswerLoop per expert with a
// deterministic index-only answer policy, and admits the held-back
// tasks as two-task fragments on a Poisson arrival schedule via POST
// /v1/sessions/{id}/tasks — the last batch carries final=true so the
// run can conclude. It then waits for the session to finish, fetches
// the labels, and reports per-session and aggregate throughput.
//
// Seeds fix the datasets, the arrival schedules, and the answer policy;
// only the interleaving of concurrent HTTP requests varies between
// runs. Total simulated experts = sessions × experts-per-dataset, so
// -sessions scales the concurrency into the thousands.
//
// Exit status: 0 when every session finishes with labels, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hcrowd/internal/admit"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcload:", err)
		os.Exit(1)
	}
}

// loadConfig is one session's worth of generator parameters.
type loadConfig struct {
	tasks     int
	baseTasks int
	rate      float64
	budget    float64
	window    float64
	k         int
	costAware bool
	poll      time.Duration
	timeout   time.Duration
}

// report is what one driven session came back with.
type report struct {
	id      string
	answers int64
	rounds  int
	frags   int
	labels  int
	quality float64
	elapsed time.Duration
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "base URL(s) of running hcserve replicas, comma-separated; sessions round-robin across them (required)")
		sessions = fs.Int("sessions", 1, "concurrent streaming sessions to drive")
		tasks    = fs.Int("tasks", 40, "total tasks per session (base + streamed)")
		streamed = fs.Int("streamed", 0, "tasks held back and admitted over time (default: a third of -tasks)")
		rate     = fs.Float64("rate", 10, "fragment arrivals per second (Poisson)")
		budget   = fs.Float64("budget", 0, "up-front checking budget (default: one pick per base task)")
		window   = fs.Float64("window", 0, "budget refill per admitted fragment (default: one pick)")
		k        = fs.Int("k", 1, "checking queries per round")
		seed     = fs.Int64("seed", 1, "base seed; session i uses seed+i")
		costAw   = fs.Bool("cost-aware", false, "create cost-aware sessions")
		poll     = fs.Duration("poll", 5*time.Millisecond, "answer-loop poll interval")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout (negative disables)")
		maxWait  = fs.Duration("max-wait", 2*time.Minute, "give up on a session after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("missing -addr (running hcserve base URL, or a comma-separated replica list)")
	}
	if *sessions < 1 || *tasks < 2 {
		return fmt.Errorf("need -sessions >= 1 and -tasks >= 2")
	}
	st := *streamed
	if st == 0 {
		st = *tasks / 3
	}
	if st < 1 || st >= *tasks {
		return fmt.Errorf("-streamed %d must be in [1, tasks)", st)
	}
	lc := loadConfig{
		tasks: *tasks, baseTasks: *tasks - st,
		rate: *rate, budget: *budget, window: *window,
		k: *k, costAware: *costAw, poll: *poll, timeout: *timeout,
	}

	runCtx, cancel := context.WithTimeout(ctx, *maxWait)
	defer cancel()
	start := time.Now()
	reports := make([]*report, *sessions)
	errs := make([]error, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Round-robin sessions across the replica list. Against a
			// replica-mode cluster each misdirected create answers with a 307
			// to the session's ring owner, which the client follows — so the
			// spray both works and exercises the routing layer.
			reports[i], errs[i] = driveSession(runCtx, addrs[i%len(addrs)], fmt.Sprintf("load-%d", i), *seed+int64(i), lc)
		}(i)
	}
	wg.Wait()

	failed := 0
	var answers int64
	for i, r := range reports {
		if errs[i] != nil {
			failed++
			fmt.Fprintf(stdout, "hcload: session %d failed: %v\n", i, errs[i])
			continue
		}
		answers += r.answers
		fmt.Fprintf(stdout, "hcload: %s: %d labels in %d rounds, %d fragments streamed, %d answers, quality %.4f, %.2fs\n",
			r.id, r.labels, r.rounds, r.frags, r.answers, r.quality, r.elapsed.Seconds())
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "hcload: %d/%d sessions done, %d answers total, %.1f answers/s over %.2fs\n",
		*sessions-failed, *sessions, answers, float64(answers)/elapsed.Seconds(), elapsed.Seconds())
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", failed, *sessions)
	}
	return nil
}

// driveSession creates and drives one streaming session end to end.
func driveSession(ctx context.Context, addr, name string, seed int64, lc loadConfig) (*report, error) {
	start := time.Now()
	ds, frags, err := buildWorkload(seed, lc)
	if err != nil {
		return nil, err
	}
	sched, err := admit.PoissonSchedule(rngutil.New(seed+7), lc.rate, len(frags))
	if err != nil {
		return nil, err
	}
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		return nil, err
	}
	ce, _ := ds.Split()
	budget, window := lc.budget, lc.window
	if budget <= 0 {
		budget = float64(lc.baseTasks * len(ce))
	}
	if window <= 0 {
		window = float64(len(ce))
	}
	mc := server.NewManagerClient(addr)
	mc.Timeout = lc.timeout
	info, err := mc.Create(ctx, server.CreateSessionRequest{
		Name:    name,
		Dataset: dsBuf.Bytes(),
		Config: server.SessionConfig{
			K: lc.k, Budget: budget, BudgetWindow: window,
			Seed: seed, CostAware: lc.costAware,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	cl := mc.Session(info.ID)

	experts, err := cl.Experts(ctx)
	if err != nil {
		return nil, err
	}
	var answers atomic.Int64
	loopErrs := make(chan error, len(experts))
	var wg sync.WaitGroup
	for _, id := range experts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			loopErrs <- cl.AnswerLoop(ctx, id, func(facts []int) []bool {
				answers.Add(int64(len(facts)))
				return flipPolicy(id, facts)
			}, lc.poll)
		}(id)
	}

	// The admission stream runs alongside the answer loops: batch i is
	// posted sched.At[i] seconds into the run, and the last post carries
	// final=true so the engine knows the workload is complete.
	admitErr := make(chan error, 1)
	go func() {
		next := 0
		for i := 0; i < sched.Len(); i++ {
			select {
			case <-ctx.Done():
				admitErr <- ctx.Err()
				return
			case <-time.After(time.Duration(sched.At[i]*float64(time.Second)) - time.Since(start)):
			}
			batch := frags[next : next+sched.Count[i]]
			next += sched.Count[i]
			if err := cl.AdmitTasks(ctx, batch, next == len(frags)); err != nil {
				admitErr <- fmt.Errorf("admit batch %d: %w", i, err)
				return
			}
		}
		admitErr <- nil
	}()

	wg.Wait()
	close(loopErrs)
	for err := range loopErrs {
		if err != nil {
			return nil, fmt.Errorf("answer loop: %w", err)
		}
	}
	if err := <-admitErr; err != nil {
		return nil, err
	}
	st, err := cl.Status(ctx)
	if err != nil {
		return nil, err
	}
	if !st.Done {
		return nil, fmt.Errorf("answer loops returned but session is not done (status %+v)", st)
	}
	labels, err := cl.Labels(ctx)
	if err != nil {
		return nil, err
	}
	return &report{
		id:      info.ID,
		answers: answers.Load(),
		rounds:  st.Rounds,
		frags:   st.AdmittedFragments,
		labels:  len(labels),
		quality: st.Quality,
		elapsed: time.Since(start),
	}, nil
}

// buildWorkload generates the session's seeded base dataset and the
// two-task fragments that will be streamed into it.
func buildWorkload(seed int64, lc loadConfig) (*dataset.Dataset, []*dataset.Fragment, error) {
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = lc.baseTasks
	ds, err := dataset.SentiLike(rngutil.New(seed), cfg)
	if err != nil {
		return nil, nil, err
	}
	frng := rngutil.New(seed + 3)
	var frags []*dataset.Fragment
	for left := lc.tasks - lc.baseTasks; left > 0; left -= 2 {
		n := 2
		if left < 2 {
			n = left
		}
		fr, err := dataset.SentiFragment(frng, ds, dataset.DefaultSentiConfig(), n)
		if err != nil {
			return nil, nil, err
		}
		frags = append(frags, fr)
	}
	return ds, frags, nil
}

// flipPolicy is the deterministic index-only answer policy: it reads
// nothing but the worker ID and the global fact indices, so concurrent
// expert goroutines share no state with the (growing) dataset and the
// same query always gets the same answer no matter when it is asked.
func flipPolicy(worker string, facts []int) []bool {
	h := 0
	for _, c := range []byte(worker) {
		h += int(c)
	}
	values := make([]bool, len(facts))
	for i, f := range facts {
		values[i] = (h+7*f)%3 == 0
	}
	return values
}
