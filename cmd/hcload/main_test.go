package main

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// buildServe compiles the real hcserve binary: the load smoke is an
// end-to-end exercise of the streaming API against a live server
// process, not an in-process handler.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hcserve-load-test")
	cmd := exec.Command("go", "build", "-o", bin, "../hcserve")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ../hcserve: %v\n%s", err, out)
	}
	return bin
}

// startServe launches hcserve on an ephemeral port and parses the bound
// address from the startup line.
func startServe(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatalf("hcserve never printed its address; stderr:\n%s", errBuf.String())
		return ""
	}
}

// writeDataset writes the seed dataset hcserve's default session needs.
func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 4
	ds, err := dataset.SentiLike(rngutil.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seed.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunLoadSmoke is `make load-smoke`: build and start a real
// hcserve, then drive it with several concurrent streaming sessions —
// Poisson fragment admissions racing goroutine-per-expert answer loops
// over real HTTP — and require every session to finish with labels.
func TestRunLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end load smoke")
	}
	bin := buildServe(t)
	base := startServe(t, bin, "-in", writeDataset(t), "-addr", "127.0.0.1:0", "-budget", "4")

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var out bytes.Buffer
	err := run(ctx, []string{
		"-addr", base,
		"-sessions", "3",
		"-tasks", "12",
		"-streamed", "4",
		"-rate", "50",
		"-seed", "21",
	}, &out)
	t.Logf("hcload output:\n%s", out.String())
	if err != nil {
		t.Fatalf("hcload run: %v", err)
	}
	if !strings.Contains(out.String(), "3/3 sessions done") {
		t.Errorf("summary line does not report 3/3 sessions done")
	}
	// Each session labels all 12 tasks × 5 facts despite only 8 tasks
	// existing at creation.
	for i := 0; i < 3; i++ {
		if !strings.Contains(out.String(), "60 labels") {
			t.Errorf("per-session report missing the grown label count (60)")
			break
		}
	}
}

// TestRunFlagValidation pins the generator's argument contract without
// touching the network.
func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, nil, &out); err == nil || !strings.Contains(err.Error(), "-addr") {
		t.Errorf("missing -addr error = %v", err)
	}
	if err := run(ctx, []string{"-addr", "http://x", "-tasks", "1"}, &out); err == nil {
		t.Error("tasks=1 accepted")
	}
	if err := run(ctx, []string{"-addr", "http://x", "-streamed", "40", "-tasks", "10"}, &out); err == nil {
		t.Error("streamed >= tasks accepted")
	}
}

// TestFlipPolicyDeterministic pins the index-only answer policy: equal
// inputs, equal answers, no dataset access.
func TestFlipPolicyDeterministic(t *testing.T) {
	a := flipPolicy("e3", []int{0, 7, 12})
	b := flipPolicy("e3", []int{0, 7, 12})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("policy unstable at %d", i)
		}
	}
	if len(flipPolicy("e0", nil)) != 0 {
		t.Error("empty query answered")
	}
}
