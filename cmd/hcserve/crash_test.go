package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd"
	"hcrowd/internal/server"
)

// buildServeBinary compiles the real hcserve binary so the crash test
// can SIGKILL an actual process — an in-process run() cannot be killed
// without tearing down the test itself.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hcserve-crash-test")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// serveProc is a running hcserve subprocess plus its base URL.
type serveProc struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

// startServe launches the binary on an ephemeral port and parses the
// bound address from the "listening on" startup line.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &serveProc{cmd: cmd, base: "http://" + addr, stderr: &errBuf}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait() // joins the stderr copier before the buffer is read
		t.Fatalf("server never printed its address; stderr:\n%s", errBuf.String())
		return nil
	}
}

// crashFlip deterministically perturbs the ground truth per (worker,
// fact) — occurrence-independent, so the reference run and the
// kill-and-recover run produce identical answers for identical queries
// no matter how the rounds are cut by the crash.
func crashFlip(ds *hcrowd.Dataset, worker string, facts []int) []bool {
	h := 0
	for _, c := range []byte(worker) {
		h += int(c)
	}
	values := make([]bool, len(facts))
	for i, f := range facts {
		v := ds.Truth[f]
		if (h+7*f)%3 == 0 {
			v = !v
		}
		values[i] = v
	}
	return values
}

// driveServe answers open queries with the flip policy until the
// session reports done, or until maxAnswers (> 0) answers have been
// accepted. Returns the number of answers delivered.
func driveServe(ctx context.Context, t *testing.T, c *server.Client, ds *hcrowd.Dataset, maxAnswers int) int {
	t.Helper()
	answered := 0
	deadline := time.After(45 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			return answered
		}
		experts, err := c.Experts(ctx)
		if err != nil {
			t.Fatal(err)
		}
		progressed := false
		for _, id := range experts {
			q, ok, err := c.Queries(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			if err := c.Answer(ctx, q.Round, id, crashFlip(ds, id, q.Facts)); err != nil {
				t.Fatal(err)
			}
			answered++
			progressed = true
			if maxAnswers > 0 && answered >= maxAnswers {
				return answered
			}
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("session stalled after %d answers", answered)
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

// TestRunCrashSmoke is the `make crash-smoke` gate: run the real binary
// with -journal-dir, SIGKILL it mid-round (no drain, no warning),
// restart it on the same journal, finish the job over HTTP, and demand
// the final labels and checkpoint are byte-identical to a server that
// was never killed. This is the tentpole's end-to-end claim at the
// process level — everything below it (fsync discipline, replay,
// round-ID monotonicity) has to hold for this to pass.
func TestRunCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := buildServeBinary(t)
	dsPath := writeDataset(t)
	raw, err := os.ReadFile(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := hcrowd.ReadDataset(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	jobFlags := []string{"-in", dsPath, "-addr", "127.0.0.1:0", "-budget", "12", "-seed", "7", "-compact-every", "3"}

	// Reference: the same journaled job, driven to completion without
	// interruption.
	refDir := t.TempDir()
	ref := startServe(t, bin, append(jobFlags, "-journal-dir", refDir)...)
	refClient := server.NewClient(ref.base)
	driveServe(ctx, t, refClient, ds, 0)
	refLabels, err := refClient.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refCk, ok, err := refClient.Checkpoint(ctx)
	if err != nil || !ok {
		t.Fatalf("reference checkpoint: ok=%v err=%v", ok, err)
	}
	var refCkBuf bytes.Buffer
	if err := refCk.Write(&refCkBuf); err != nil {
		t.Fatal(err)
	}
	ref.cmd.Process.Kill()
	ref.cmd.Wait()

	// Victim: same job, killed dead after 5 accepted answers — mid-panel
	// for every SentiLike expert set, so the journal ends in an open
	// round with partial answers.
	dir := t.TempDir()
	v1 := startServe(t, bin, append(jobFlags, "-journal-dir", dir)...)
	if got := driveServe(ctx, t, server.NewClient(v1.base), ds, 5); got != 5 {
		t.Fatalf("pre-crash answers = %d, want 5", got)
	}
	if err := v1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	v1.cmd.Wait()

	// Restart on the same journal dir and finish the job.
	v2 := startServe(t, bin, append(jobFlags, "-journal-dir", dir)...)
	c2 := server.NewClient(v2.base)
	driveServe(ctx, t, c2, ds, 0)
	gotLabels, err := c2.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotCk, ok, err := c2.Checkpoint(ctx)
	if err != nil || !ok {
		t.Fatalf("recovered checkpoint: ok=%v err=%v", ok, err)
	}
	var gotCkBuf bytes.Buffer
	if err := gotCk.Write(&gotCkBuf); err != nil {
		t.Fatal(err)
	}
	// Stop the restarted server before touching its stderr buffer: Wait
	// joins the stderr-copying goroutine exec.Cmd started.
	v2.cmd.Process.Kill()
	v2.cmd.Wait()
	stderr := v2.stderr.String()

	gotJSON, _ := json.Marshal(gotLabels)
	wantJSON, _ := json.Marshal(refLabels)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("labels after kill-and-recover diverge from uninterrupted run\n got %s\nwant %s\nrestart stderr:\n%s",
			gotJSON, wantJSON, stderr)
	}
	if !bytes.Equal(gotCkBuf.Bytes(), refCkBuf.Bytes()) {
		t.Errorf("final checkpoint after kill-and-recover diverges from uninterrupted run\n got %s\nwant %s",
			gotCkBuf.Bytes(), refCkBuf.Bytes())
	}
	if !strings.Contains(stderr, "resumed from its journal") {
		t.Errorf("restart did not log journal recovery; stderr:\n%s", stderr)
	}
}
