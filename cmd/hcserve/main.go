// Command hcserve runs the hierarchical crowdsourcing loop as an HTTP
// labeling service: it loads a dataset (hcgen output), starts the
// select–check–update pipeline, and serves checking queries to expert
// clients until the budget is spent.
//
//	GET  /experts           experts who may answer
//	GET  /queries?worker=e0 the open checking round for that expert
//	POST /answers           {"round": n, "worker": "e0", "values": [...]}
//	GET  /status            progress JSON
//	GET  /labels            final labels once done
//
// With -sim the server answers its own queries from the dataset's ground
// truth under each expert's accuracy (the paper's simulation protocol) —
// useful for demos and smoke tests.
//
// With -checkpoint the server persists the pipeline's warm checkpoint
// after every completed round (written atomically); -resume loads such a
// file and continues the job where it stopped, re-asking nothing.
//
// Observability: GET /metrics returns the session's full metrics
// snapshot as JSON — per-route HTTP request counts and latency
// histograms, round-lifecycle counters (published / completed / expired
// / rejected answers by reason), and per-round pipeline and selector
// counters. Round transitions are logged to stderr. With -pprof the
// standard net/http/pprof profiling endpoints are additionally mounted
// under /debug/pprof/ (off by default: profiles can reveal more about
// the host than a labeling endpoint should).
//
// Usage:
//
//	hcserve -in dataset.json -addr :8080 -budget 500
//	hcserve -in dataset.json -sim   # self-driving demo
//	hcserve -in dataset.json -checkpoint job.ck          # crash-safe
//	hcserve -in dataset.json -checkpoint job.ck -resume job.ck
//	hcserve -in dataset.json -pprof # also serve /debug/pprof/
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"hcrowd"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcserve", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "dataset JSON file (required)")
		addr   = fs.String("addr", "127.0.0.1:8080", "listen address")
		budget = fs.Float64("budget", 500, "expert answer budget")
		k      = fs.Int("k", 1, "checking queries per round")
		init   = fs.String("init", "EBCC", "belief initializer")
		seed   = fs.Int64("seed", 1, "seed (simulation mode)")
		sim    = fs.Bool("sim", false, "answer queries internally from ground truth")
		rt     = fs.Duration("round-timeout", 0, "proceed with partial answers after this long (0 = wait for all experts)")
		ckPath = fs.String("checkpoint", "", "persist the warm checkpoint to this file after every round")
		rsPath = fs.String("resume", "", "resume from a checkpoint file written by -checkpoint")
		pprofd = fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in (dataset file)")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := hcrowd.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}
	agg, err := hcrowd.AggregatorByName(*init, *seed)
	if err != nil {
		return err
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		return err
	}
	cfg := pipeline.Config{
		K:             *k,
		Budget:        *budget,
		Init:          agg,
		PriorCoupling: couple,
	}
	if *ckPath != "" {
		cfg.OnCheckpoint = func(ck *pipeline.Checkpoint) {
			if err := writeCheckpoint(*ckPath, ck); err != nil {
				fmt.Fprintln(os.Stderr, "hcserve: checkpoint:", err)
			}
		}
	}
	logger := log.New(os.Stderr, "hcserve: ", log.LstdFlags)
	opts := server.SessionOptions{RoundTimeout: *rt, Logger: logger}
	if *rsPath != "" {
		cf, err := os.Open(*rsPath)
		if err != nil {
			return err
		}
		ck, err := pipeline.ReadCheckpoint(cf)
		cf.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", *rsPath, err)
		}
		opts.Checkpoint = ck
	}
	sess, err := server.NewSessionOpts(ctx, ds, cfg, opts)
	if err != nil {
		return err
	}
	defer sess.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := server.HandlerLogged(sess, logger)
	if *pprofd {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(stdout, "hcserve: %d facts, experts %v, budget %.0f, listening on %s\n",
		ds.NumFacts(), sess.Experts(), *budget, ln.Addr())

	if *sim {
		go simulate(ctx, sess, ds, *seed)
		go func() {
			// In demo mode the process exits when labeling completes.
			if _, err := sess.Wait(ctx); err == nil {
				st := sess.Status()
				fmt.Fprintf(stdout, "hcserve: done after %d rounds, quality %.4f\n",
					st.Rounds, st.Quality)
			}
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		}()
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// writeCheckpoint persists a checkpoint atomically: write a temp file in
// the target's directory, then rename over it, so a crash mid-write never
// leaves a truncated checkpoint.
func writeCheckpoint(path string, ck *pipeline.Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := ck.Write(tmp); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite the temp file is removed on this path; the write failure is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// simulate answers every published round from the ground truth under each
// expert's accuracy — the offline protocol of §IV-A.
func simulate(ctx context.Context, sess *server.Session, ds *hcrowd.Dataset, seed int64) {
	rng := rngutil.New(seed + 99)
	ce, _ := ds.Split()
	for ctx.Err() == nil {
		progressed := false
		for _, w := range ce {
			round, facts, ok := sess.Queries(w.ID)
			if !ok {
				continue
			}
			values := make([]bool, len(facts))
			for i, f := range facts {
				v := ds.Truth[f]
				if rng.Float64() >= w.PCorrect(v) {
					v = !v
				}
				values[i] = v
			}
			if err := sess.Answer(round, w.ID, values); err != nil {
				return
			}
			progressed = true
		}
		if !progressed {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}
