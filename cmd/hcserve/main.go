// Command hcserve runs the hierarchical crowdsourcing loop as an HTTP
// labeling service. It starts one session from the -in dataset and
// serves it both at the server root (the legacy single-session API) and
// through the multi-session management API under /v1:
//
//	GET  /experts                 experts who may answer
//	GET  /queries?worker=e0       the open checking round for that expert
//	POST /answers                 {"round": n, "worker": "e0", "values": [...]}
//	POST /tasks                   streaming sessions: admit task fragments
//	GET  /status                  progress JSON
//	GET  /labels                  final labels once done
//	GET  /checkpoint              warm checkpoint JSON
//	GET  /metrics                 the session's metrics snapshot
//
//	POST   /v1/sessions           create another session (dataset + config JSON)
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      one session's state + status
//	DELETE /v1/sessions/{id}      cancel a session
//	*      /v1/sessions/{id}/...  that session's routes (as above)
//	GET    /v1/metrics            service-level metrics
//
// -max-running bounds how many session engines execute simultaneously
// (further sessions queue); -retention caps how many finished sessions
// stay inspectable before the oldest are evicted.
//
// With -sim the server answers the default session's queries from the
// dataset's ground truth under each expert's accuracy (the paper's
// simulation protocol) — useful for demos and smoke tests.
//
// With -checkpoint the server persists the default session's warm
// checkpoint after every completed round (written atomically); -resume
// loads such a file and continues the job where it stopped, re-asking
// nothing.
//
// With -journal-dir every session is durable: its history is appended
// to a per-session write-ahead log ("<id>.journal"), fsynced before any
// answer is acknowledged, and on startup the server recovers every
// journaled session — including a "default" from a previous run, whose
// journaled dataset and config then supersede the command-line flags.
// A kill -9 mid-round loses nothing a client was told succeeded: the
// restarted server replays the journal and continues the same rounds
// with the same IDs. -compact-every bounds log growth by folding the
// journal into its newest checkpoint after that many rounds.
// -cost-aware switches the default session to the cost-aware checking
// loop (§III-D); -cost-model picks how answers are priced (unit or
// accuracy).
//
// Shutdown is graceful: on SIGINT/SIGTERM the service drains — every
// session stops accepting answers (POST /answers returns 503), engines
// get up to -drain-timeout to absorb their in-flight completed rounds,
// one final checkpoint per session is written to -checkpoint-dir (when
// set), and only then does the HTTP server shut down. Progress since
// the last completed round before the signal is never lost.
//
// With -peers (and -self) the server runs in replica mode: the static
// peer set forms a consistent-hash ring over session IDs, requests for
// sessions owned elsewhere answer 307 to the owner (or are transparently
// proxied with -cluster-proxy), GET /v1/cluster exposes the membership,
// and POST /v1/cluster/handoff/{id} rebalances a session by quiescing
// it and streaming its journal to the new owner — which is why replica
// mode requires -journal-dir. Sessions present locally are always
// served locally, so a journal accepted from a dead peer keeps working
// even though the ring still names the old owner. -in is optional in
// replica mode; when given, the "default" session is created only on
// the replica the ring assigns it to.
//
// The http.Server carries ReadHeaderTimeout and IdleTimeout so a
// slow-header (slowloris) client cannot pin connections open forever.
//
// Observability: GET /metrics returns the session's full metrics
// snapshot as JSON; GET /v1/metrics the manager's, including
// per-session labeled families. Round transitions are logged to stderr.
// With -pprof the standard net/http/pprof profiling endpoints are
// additionally mounted under /debug/pprof/ (off by default: profiles
// can reveal more about the host than a labeling endpoint should).
//
// Usage:
//
//	hcserve -in dataset.json -addr :8080 -budget 500
//	hcserve -in dataset.json -sim   # self-driving demo
//	hcserve -in dataset.json -checkpoint job.ck          # crash-safe
//	hcserve -in dataset.json -checkpoint job.ck -resume job.ck
//	hcserve -in dataset.json -checkpoint-dir ./ckpts     # drain target
//	hcserve -in dataset.json -journal-dir ./wal          # kill -9 safe
//	hcserve -in dataset.json -pprof # also serve /debug/pprof/
//	hcserve -addr :8081 -self 10.0.0.1:8081 \
//	        -peers 10.0.0.1:8081,10.0.0.2:8081 -journal-dir ./wal  # replica
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hcrowd"
	"hcrowd/internal/cluster"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcserve", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "dataset JSON file (required)")
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address")
		budget  = fs.Float64("budget", 500, "expert answer budget")
		bw      = fs.Float64("budget-window", 0, "streaming mode: budget refilled per admitted fragment (POST /tasks); 0 = closed task set")
		k       = fs.Int("k", 1, "checking queries per round")
		init    = fs.String("init", "EBCC", "belief initializer")
		seed    = fs.Int64("seed", 1, "seed (simulation mode)")
		sim     = fs.Bool("sim", false, "answer queries internally from ground truth")
		rt      = fs.Duration("round-timeout", 0, "proceed with partial answers after this long (0 = wait for all experts)")
		ckPath  = fs.String("checkpoint", "", "persist the warm checkpoint to this file after every round")
		rsPath  = fs.String("resume", "", "resume from a checkpoint file written by -checkpoint")
		ckDir   = fs.String("checkpoint-dir", "", "write one final checkpoint per session here on graceful drain")
		jDir    = fs.String("journal-dir", "", "per-session write-ahead logs live here; sessions recover from them on start")
		compact = fs.Int("compact-every", 0, "fold each journal into its newest checkpoint after this many rounds (0 = default, negative = never); needs -journal-dir")
		costAw  = fs.Bool("cost-aware", false, "run the cost-aware checking loop (greedy per-answer purchases)")
		costMod = fs.String("cost-model", "", "answer pricing: unit (default) or accuracy")
		maxRun  = fs.Int("max-running", 4, "session engines allowed to run simultaneously (0 = unbounded)")
		keep    = fs.Int("retention", 16, "finished sessions kept before eviction (0 = keep all)")
		drainTO = fs.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight rounds")
		pprofd  = fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/")
		self    = fs.String("self", "", "replica mode: this replica's advertised address, exactly as listed in -peers")
		peers   = fs.String("peers", "", "replica mode: comma-separated static membership (all replicas, self included)")
		vnodes  = fs.Int("vnodes", 0, "replica mode: virtual nodes per ring member (0 = default)")
		cproxy  = fs.Bool("cluster-proxy", false, "replica mode: reverse-proxy misrouted session requests instead of 307-redirecting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	clusterMode := *peers != ""
	var ccfg cluster.Config
	if clusterMode {
		if *jDir == "" {
			return fmt.Errorf("-peers requires -journal-dir (rebalancing streams session journals)")
		}
		if *sim {
			return fmt.Errorf("-sim drives the default session locally and is incompatible with -peers")
		}
		var err error
		if ccfg, err = cluster.ParseConfig(*self, *peers, *vnodes); err != nil {
			return err
		}
	} else {
		if *self != "" || *cproxy {
			return fmt.Errorf("-self and -cluster-proxy require -peers")
		}
		if *in == "" {
			return fmt.Errorf("missing -in (dataset file)")
		}
	}
	if *compact != 0 && *jDir == "" {
		return fmt.Errorf("-compact-every requires -journal-dir")
	}
	var (
		rawDS []byte
		ds    *hcrowd.Dataset
	)
	if *in != "" {
		var err error
		if rawDS, err = os.ReadFile(*in); err != nil {
			return err
		}
		if ds, err = hcrowd.ReadDataset(bytes.NewReader(rawDS)); err != nil {
			return err
		}
	}
	logger := log.New(os.Stderr, "hcserve: ", log.LstdFlags)
	var (
		rawResume []byte
		resumeCk  *pipeline.Checkpoint
	)
	if *rsPath != "" {
		var err error
		if rawResume, err = os.ReadFile(*rsPath); err != nil {
			return err
		}
		if resumeCk, err = pipeline.ReadCheckpoint(bytes.NewReader(rawResume)); err != nil {
			return fmt.Errorf("resume %s: %w", *rsPath, err)
		}
	}

	// Sessions run on the background context, not the signal context: a
	// signal triggers the graceful drain below, which checkpoints every
	// session before anything is cancelled.
	mgr := server.NewManager(server.ManagerOptions{
		MaxRunning:    *maxRun,
		Retention:     *keep,
		CheckpointDir: *ckDir,
		JournalDir:    *jDir,
		CompactEvery:  *compact,
		Logger:        logger,
	})
	var clu *server.Cluster
	if clusterMode {
		var err error
		if clu, err = server.NewCluster(mgr, server.ClusterOptions{
			Self:   ccfg.Self,
			Peers:  ccfg.Peers,
			VNodes: ccfg.VNodes,
			Proxy:  *cproxy,
			Logger: logger,
		}); err != nil {
			return err
		}
	}
	var sess *server.Session
	if *jDir != "" {
		// Durable mode: recover every journaled session first. A recovered
		// "default" carries its own dataset and config — the flags that
		// described the original job are superseded by the journal.
		recovered, err := mgr.Recover()
		if err != nil {
			return err
		}
		if len(recovered) > 0 {
			logger.Printf("recovered %d session(s) from %s: %v", len(recovered), *jDir, recovered)
		}
		if s, ok := mgr.Get("default"); ok {
			sess = s
			logger.Printf("default session resumed from its journal; dataset/config flags ignored")
		} else if *in != "" {
			// In replica mode the "default" session belongs to exactly one
			// ring member; the others ignore -in rather than all creating a
			// divergent copy of the same job.
			if clusterMode && clu.Ring().Owner("default") != ccfg.Self {
				logger.Printf("replica %s does not own session %q (owner %s); -in ignored here",
					ccfg.Self, "default", clu.Ring().Owner("default"))
			} else {
				sc := server.SessionConfig{
					K:            *k,
					Budget:       *budget,
					BudgetWindow: *bw,
					Init:         *init,
					Seed:         *seed,
					CostAware:    *costAw,
					CostModel:    *costMod,
					Checkpoint:   rawResume,
				}
				if *rt > 0 {
					sc.RoundTimeout = rt.String()
				}
				if _, sess, err = mgr.CreateFromRequest(server.CreateSessionRequest{
					Name: "default", Dataset: rawDS, Config: sc,
				}); err != nil {
					return err
				}
			}
		}
		if *ckPath != "" {
			// The per-round checkpoint file callback only rides the flag-built
			// config; journaled sessions already persist every round.
			logger.Printf("-checkpoint is superseded by -journal-dir; not writing %s", *ckPath)
		}
	} else {
		agg, err := hcrowd.AggregatorByName(*init, *seed)
		if err != nil {
			return err
		}
		couple, err := ds.EstimateCoupling()
		if err != nil {
			return err
		}
		cost, err := server.CostModelByName(*costMod)
		if err != nil {
			return err
		}
		cfg := pipeline.Config{
			K:             *k,
			Budget:        *budget,
			BudgetWindow:  *bw,
			Init:          agg,
			PriorCoupling: couple,
			Cost:          cost,
		}
		if *ckPath != "" {
			cfg.OnCheckpoint = func(ck *pipeline.Checkpoint) {
				if err := server.WriteCheckpointFile(*ckPath, ck); err != nil {
					fmt.Fprintln(os.Stderr, "hcserve: checkpoint:", err)
				}
			}
		}
		opts := server.SessionOptions{RoundTimeout: *rt, CostAware: *costAw, Checkpoint: resumeCk}
		if _, sess, err = mgr.Create("default", ds, cfg, opts); err != nil {
			return err
		}
	}
	rootHandler, haveDefault := mgr.SessionHandler("default")
	if !haveDefault && !clusterMode {
		return fmt.Errorf("default session not registered")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	if clusterMode {
		mux.Handle("/v1/", clu.Handler())
	} else {
		mux.Handle("/v1/", mgr.Handler())
	}
	if haveDefault {
		mux.Handle("/", rootHandler)
	}
	if *pprofd {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{
		Handler: mux,
		// Slowloris hardening: a client that trickles its header bytes (or
		// parks an idle keep-alive connection) cannot hold a connection
		// slot indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Drain before shutdown, in this order: sessions stop accepting
	// answers and are checkpointed while the server still responds (so
	// clients see 503s and a draining status, not connection resets),
	// then the listener closes.
	var shutdownOnce sync.Once
	shutdown := func() {
		shutdownOnce.Do(func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
			defer cancel()
			if err := mgr.Drain(drainCtx); err != nil {
				logger.Printf("drain: %v", err)
			}
			shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel2()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				logger.Printf("shutdown: %v", err)
			}
		})
	}
	go func() {
		<-ctx.Done()
		shutdown()
	}()
	if clusterMode {
		fmt.Fprintf(stdout, "hcserve: replica %s of %d-member ring, listening on %s\n",
			ccfg.Self, len(ccfg.Peers), ln.Addr())
	} else {
		fmt.Fprintf(stdout, "hcserve: %d facts, experts %v, budget %.0f, listening on %s\n",
			ds.NumFacts(), sess.Experts(), *budget, ln.Addr())
	}

	if *sim {
		go simulate(ctx, sess, ds, *seed)
		go func() {
			// In demo mode the process exits when labeling completes.
			if _, err := sess.Wait(ctx); err == nil {
				st := sess.Status()
				fmt.Fprintf(stdout, "hcserve: done after %d rounds, quality %.4f\n",
					st.Rounds, st.Quality)
			}
			shutdown()
		}()
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// simulate answers every published round from the ground truth under each
// expert's accuracy — the offline protocol of §IV-A.
func simulate(ctx context.Context, sess *server.Session, ds *hcrowd.Dataset, seed int64) {
	rng := rngutil.New(seed + 99)
	ce, _ := ds.Split()
	for ctx.Err() == nil {
		progressed := false
		for _, w := range ce {
			round, facts, ok := sess.Queries(w.ID)
			if !ok {
				continue
			}
			values := make([]bool, len(facts))
			for i, f := range facts {
				v := ds.Truth[f]
				if rng.Float64() >= w.PCorrect(v) {
					v = !v
				}
				values[i] = v
			}
			if err := sess.Answer(round, w.ID, values); err != nil {
				return
			}
			progressed = true
		}
		if !progressed {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}
