// Command hcserve runs the hierarchical crowdsourcing loop as an HTTP
// labeling service: it loads a dataset (hcgen output), starts the
// select–check–update pipeline, and serves checking queries to expert
// clients until the budget is spent.
//
//	GET  /experts           experts who may answer
//	GET  /queries?worker=e0 the open checking round for that expert
//	POST /answers           {"round": n, "worker": "e0", "values": [...]}
//	GET  /status            progress JSON
//	GET  /labels            final labels once done
//
// With -sim the server answers its own queries from the dataset's ground
// truth under each expert's accuracy (the paper's simulation protocol) —
// useful for demos and smoke tests.
//
// Usage:
//
//	hcserve -in dataset.json -addr :8080 -budget 500
//	hcserve -in dataset.json -sim   # self-driving demo
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"hcrowd"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcserve", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "dataset JSON file (required)")
		addr   = fs.String("addr", "127.0.0.1:8080", "listen address")
		budget = fs.Float64("budget", 500, "expert answer budget")
		k      = fs.Int("k", 1, "checking queries per round")
		init   = fs.String("init", "EBCC", "belief initializer")
		seed   = fs.Int64("seed", 1, "seed (simulation mode)")
		sim    = fs.Bool("sim", false, "answer queries internally from ground truth")
		rt     = fs.Duration("round-timeout", 0, "proceed with partial answers after this long (0 = wait for all experts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in (dataset file)")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := hcrowd.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}
	agg, err := hcrowd.AggregatorByName(*init, *seed)
	if err != nil {
		return err
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		return err
	}
	sess, err := server.NewSessionTimeout(ctx, ds, pipeline.Config{
		K:             *k,
		Budget:        *budget,
		Init:          agg,
		PriorCoupling: couple,
	}, *rt)
	if err != nil {
		return err
	}
	defer sess.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.Handler(sess)}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(stdout, "hcserve: %d facts, experts %v, budget %.0f, listening on %s\n",
		ds.NumFacts(), sess.Experts(), *budget, ln.Addr())

	if *sim {
		go simulate(ctx, sess, ds, *seed)
		go func() {
			// In demo mode the process exits when labeling completes.
			if _, err := sess.Wait(ctx); err == nil {
				st := sess.Status()
				fmt.Fprintf(stdout, "hcserve: done after %d rounds, quality %.4f\n",
					st.Rounds, st.Quality)
			}
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		}()
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// simulate answers every published round from the ground truth under each
// expert's accuracy — the offline protocol of §IV-A.
func simulate(ctx context.Context, sess *server.Session, ds *hcrowd.Dataset, seed int64) {
	rng := rngutil.New(seed + 99)
	ce, _ := ds.Split()
	for ctx.Err() == nil {
		progressed := false
		for _, w := range ce {
			round, facts, ok := sess.Queries(w.ID)
			if !ok {
				continue
			}
			values := make([]bool, len(facts))
			for i, f := range facts {
				v := ds.Truth[f]
				if rng.Float64() >= w.PCorrect(v) {
					v = !v
				}
				values[i] = v
			}
			if err := sess.Answer(round, w.ID, values); err != nil {
				return
			}
			progressed = true
		}
		if !progressed {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}
