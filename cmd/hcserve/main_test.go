package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd"
	"hcrowd/internal/obsv"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimModeCompletes(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err := run(ctx, []string{"-in", path, "-addr", "127.0.0.1:0", "-budget", "10", "-sim"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "listening on") || !strings.Contains(s, "done after") {
		t.Errorf("output: %q", s)
	}
}

func TestRunServesHTTP(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18764"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", path, "-addr", addr, "-budget", "10"}, &out)
	}()
	// Poll /status until the server is up.
	var status struct {
		Done bool `json:"done"`
	}
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Experts endpoint works.
	resp, err := http.Get("http://" + addr + "/experts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/experts = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunSimMetricsSmoke is the end-to-end observability smoke: start a
// self-driving (-sim) server with -pprof, scrape GET /metrics while the
// session runs, and assert the round counters advance and the pprof
// index answers. The budget is large enough that the session outlives
// the test, so the scrapes are deterministic; the test stops the server
// by cancelling the context. This is the check `make verify` runs.
func TestRunSimMetricsSmoke(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18765"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", path, "-addr", addr, "-budget", "1e7", "-sim", "-pprof"}, &out)
	}()

	scrape := func() (map[string]obsv.MetricSnapshot, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/metrics = %d", resp.StatusCode)
		}
		var snap map[string]obsv.MetricSnapshot
		return snap, json.NewDecoder(resp.Body).Decode(&snap)
	}
	counter := func(snap map[string]obsv.MetricSnapshot, name string) float64 {
		if ms, ok := snap[name]; ok && ms.Value != nil {
			return *ms.Value
		}
		return 0
	}

	// Scrape until the pipeline has completed at least one round.
	var snap map[string]obsv.MetricSnapshot
	deadline := time.After(20 * time.Second)
	for {
		s, err := scrape()
		if err == nil && counter(s, "pipeline_rounds_total") > 0 {
			snap = s
			break
		}
		select {
		case <-deadline:
			t.Fatalf("metrics never advanced (last err: %v)", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	for _, name := range []string{
		"session_rounds_published_total",
		"session_rounds_completed_total",
		"session_answers_accepted_total",
		"selector_evals_total",
	} {
		if counter(snap, name) <= 0 {
			t.Errorf("counter %s not advancing: %+v", name, snap[name])
		}
	}
	// The counters keep advancing while the sim runs.
	first := counter(snap, "pipeline_rounds_total")
	deadline = time.After(20 * time.Second)
	for {
		s, err := scrape()
		if err == nil && counter(s, "pipeline_rounds_total") > first {
			snap = s
			break
		}
		select {
		case <-deadline:
			t.Fatalf("pipeline_rounds_total stuck at %v (last err: %v)", first, err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	// By now at least the first scrape has been counted per route.
	if hr, ok := snap["http_requests_total"]; !ok || len(hr.Values) == 0 {
		t.Errorf("no per-route HTTP stats: %+v", hr)
	}

	// -pprof mounted the profiling index on the same listener.
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(ctx, []string{"-in", "/missing.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	path := writeDataset(t)
	if err := run(ctx, []string{"-in", path, "-init", "nope"}, &out); err == nil {
		t.Error("bad init accepted")
	}
	if err := run(ctx, []string{"-in", path, "-addr", "256.0.0.1:99999"}, &out); err == nil {
		t.Error("bad address accepted")
	}
}
