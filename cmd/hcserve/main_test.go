package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimModeCompletes(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err := run(ctx, []string{"-in", path, "-addr", "127.0.0.1:0", "-budget", "10", "-sim"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "listening on") || !strings.Contains(s, "done after") {
		t.Errorf("output: %q", s)
	}
}

func TestRunServesHTTP(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18764"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", path, "-addr", addr, "-budget", "10"}, &out)
	}()
	// Poll /status until the server is up.
	var status struct {
		Done bool `json:"done"`
	}
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Experts endpoint works.
	resp, err := http.Get("http://" + addr + "/experts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/experts = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(ctx, []string{"-in", "/missing.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	path := writeDataset(t)
	if err := run(ctx, []string{"-in", path, "-init", "nope"}, &out); err == nil {
		t.Error("bad init accepted")
	}
	if err := run(ctx, []string{"-in", path, "-addr", "256.0.0.1:99999"}, &out); err == nil {
		t.Error("bad address accepted")
	}
}
