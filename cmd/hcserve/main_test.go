package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd"
	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/server"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimModeCompletes(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err := run(ctx, []string{"-in", path, "-addr", "127.0.0.1:0", "-budget", "10", "-sim"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "listening on") || !strings.Contains(s, "done after") {
		t.Errorf("output: %q", s)
	}
}

func TestRunServesHTTP(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18764"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", path, "-addr", addr, "-budget", "10"}, &out)
	}()
	// Poll /status until the server is up.
	var status struct {
		Done bool `json:"done"`
	}
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Experts endpoint works.
	resp, err := http.Get("http://" + addr + "/experts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/experts = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunSimMetricsSmoke is the end-to-end observability smoke: start a
// self-driving (-sim) server with -pprof, scrape GET /metrics while the
// session runs, and assert the round counters advance and the pprof
// index answers. The budget is large enough that the session outlives
// the test, so the scrapes are deterministic; the test stops the server
// by cancelling the context. This is the check `make verify` runs.
func TestRunSimMetricsSmoke(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18765"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", path, "-addr", addr, "-budget", "1e7", "-sim", "-pprof"}, &out)
	}()

	scrape := func() (map[string]obsv.MetricSnapshot, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/metrics = %d", resp.StatusCode)
		}
		var snap map[string]obsv.MetricSnapshot
		return snap, json.NewDecoder(resp.Body).Decode(&snap)
	}
	counter := func(snap map[string]obsv.MetricSnapshot, name string) float64 {
		if ms, ok := snap[name]; ok && ms.Value != nil {
			return *ms.Value
		}
		return 0
	}

	// Scrape until the pipeline has completed at least one round.
	var snap map[string]obsv.MetricSnapshot
	deadline := time.After(20 * time.Second)
	for {
		s, err := scrape()
		if err == nil && counter(s, "pipeline_rounds_total") > 0 {
			snap = s
			break
		}
		select {
		case <-deadline:
			t.Fatalf("metrics never advanced (last err: %v)", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	for _, name := range []string{
		"session_rounds_published_total",
		"session_rounds_completed_total",
		"session_answers_accepted_total",
		"selector_evals_total",
	} {
		if counter(snap, name) <= 0 {
			t.Errorf("counter %s not advancing: %+v", name, snap[name])
		}
	}
	// The counters keep advancing while the sim runs.
	first := counter(snap, "pipeline_rounds_total")
	deadline = time.After(20 * time.Second)
	for {
		s, err := scrape()
		if err == nil && counter(s, "pipeline_rounds_total") > first {
			snap = s
			break
		}
		select {
		case <-deadline:
			t.Fatalf("pipeline_rounds_total stuck at %v (last err: %v)", first, err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	// By now at least the first scrape has been counted per route.
	if hr, ok := snap["http_requests_total"]; !ok || len(hr.Values) == 0 {
		t.Errorf("no per-route HTTP stats: %+v", hr)
	}

	// -pprof mounted the profiling index on the same listener.
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(ctx, []string{"-in", "/missing.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	path := writeDataset(t)
	if err := run(ctx, []string{"-in", path, "-init", "nope"}, &out); err == nil {
		t.Error("bad init accepted")
	}
	if err := run(ctx, []string{"-in", path, "-addr", "256.0.0.1:99999"}, &out); err == nil {
		t.Error("bad address accepted")
	}
}

// TestRunServeSmokeDrain is the graceful-drain smoke `make serve-smoke`
// runs: start the service with a -checkpoint-dir, create a second
// session over the /v1 API, answer one full round on each session, then
// deliver the shutdown signal (the context run() gets from
// signal.NotifyContext) and assert both sessions' final checkpoints
// were persisted and load cleanly — the progress Ctrl-C must not lose.
func TestRunServeSmokeDrain(t *testing.T) {
	path := writeDataset(t)
	ckDir := filepath.Join(t.TempDir(), "ckpts")
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const addr = "127.0.0.1:18766"
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-in", path, "-addr", addr, "-budget", "1e6",
			"-checkpoint-dir", ckDir, "-drain-timeout", "5s",
		}, &out)
	}()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := hcrowd.ReadDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	rawDS, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	testCtx, cancelReqs := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelReqs()
	mc := server.NewManagerClient("http://" + addr)
	waitUp := time.After(10 * time.Second)
	for {
		if _, err := mc.List(testCtx); err == nil {
			break
		}
		select {
		case <-waitUp:
			t.Fatal("server never came up")
		case <-time.After(20 * time.Millisecond):
		}
	}
	info, err := mc.Create(testCtx, server.CreateSessionRequest{
		Name:    "smoke2",
		Dataset: rawDS,
		Config:  server.SessionConfig{K: 1, Budget: 1e6, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "smoke2" {
		t.Fatalf("created id = %q", info.ID)
	}

	// Answer one full round per session (truthful answers), then wait for
	// the warm checkpoint to appear so the drain has progress to persist.
	answerRound := func(c *server.Client) {
		t.Helper()
		experts, err := c.Experts(testCtx)
		if err != nil {
			t.Fatal(err)
		}
		answered := make(map[string]bool)
		deadline := time.After(20 * time.Second)
		for len(answered) < len(experts) {
			progressed := false
			for _, id := range experts {
				if answered[id] {
					continue
				}
				q, ok, err := c.Queries(testCtx, id)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				values := make([]bool, len(q.Facts))
				for i, fi := range q.Facts {
					values[i] = ds.Truth[fi]
				}
				if err := c.Answer(testCtx, q.Round, id, values); err != nil {
					t.Fatal(err)
				}
				answered[id] = true
				progressed = true
			}
			if !progressed {
				select {
				case <-deadline:
					t.Fatalf("round never fully answered (%d/%d)", len(answered), len(experts))
				case <-time.After(2 * time.Millisecond):
				}
			}
		}
		for {
			_, ok, err := c.Checkpoint(testCtx)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				return
			}
			select {
			case <-deadline:
				t.Fatal("checkpoint never emitted")
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	answerRound(server.NewClient("http://" + addr)) // default session, legacy root routes
	answerRound(mc.Session("smoke2"))               // managed session, /v1 routes

	// Deliver the shutdown signal and wait for the graceful drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain and shut down")
	}

	for _, id := range []string{"default", "smoke2"} {
		raw, err := os.ReadFile(filepath.Join(ckDir, id+".ckpt.json"))
		if err != nil {
			t.Fatalf("drain left no checkpoint for %s: %v", id, err)
		}
		ck, err := pipeline.ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("checkpoint for %s does not load: %v", id, err)
		}
		if ck.BudgetSpent <= 0 {
			t.Errorf("checkpoint for %s spent = %v, want > 0", id, ck.BudgetSpent)
		}
	}
}
