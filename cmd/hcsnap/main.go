// Command hcsnap converts `go test -bench` output into a JSON snapshot,
// so CI can archive benchmark baselines (see `make bench-snapshot`) and
// diff them across commits without re-parsing the text format.
//
// It reads benchmark result lines —
//
//	BenchmarkGreedyIncremental/incremental-8   12   913 ns/op   41.5 evals/round
//
// — from stdin (or -in) and writes
//
//	{"benchmarks": [{"name": ..., "iterations": 12,
//	                 "metrics": {"ns/op": 913, "evals/round": 41.5}}]}
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1x . | hcsnap -out BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the output document.
type Snapshot struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcsnap", flag.ContinueOnError)
	var (
		in  = fs.String("in", "-", "benchmark output file (- for stdin)")
		out = fs.String("out", "-", "JSON snapshot destination (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := Parse(r)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	w := stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		if f != nil {
			f.Close() //hclint:ignore errcheck-lite the encode failure is returned; the close error on the already-bad file is secondary
		}
		return err
	}
	if f != nil {
		// Close is the write's last failure point (flush to disk); a
		// snapshot that "succeeded" but lost bytes would poison every
		// later benchmark diff.
		return f.Close()
	}
	return nil
}

// Parse extracts every benchmark result line from go test -bench output.
// A result line is "Benchmark<Name>[-P] <iterations> {<value> <unit>}..."
// with at least one value/unit pair; anything else is skipped.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// name + iterations + at least one value/unit pair, pairs complete
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       stripProcsSuffix(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// stripProcsSuffix drops the trailing -GOMAXPROCS number go test appends
// to benchmark names (when > 1), so snapshots from machines with
// different core counts diff cleanly.
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
		return name[:i]
	}
	return name
}
