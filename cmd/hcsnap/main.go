// Command hcsnap converts `go test -bench` output into a JSON snapshot,
// so CI can archive benchmark baselines (see `make bench-snapshot`) and
// diff them across commits without re-parsing the text format.
//
// It reads benchmark result lines —
//
//	BenchmarkGreedyIncremental/incremental-8   12   913 ns/op   41.5 evals/round
//
// — from stdin (or -in) and writes
//
//	{"benchmarks": [{"name": ..., "iterations": 12,
//	                 "metrics": {"ns/op": 913, "evals/round": 41.5}}]}
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1x . | hcsnap -out BENCH_next.json
//	hcsnap -compare BENCH_core.json BENCH_next.json
//
// The -compare mode reads two snapshot files and prints a per-benchmark,
// per-metric old→new delta report instead of parsing benchmark output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the output document.
type Snapshot struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hcsnap", flag.ContinueOnError)
	var (
		in      = fs.String("in", "-", "benchmark output file (- for stdin)")
		out     = fs.String("out", "-", "JSON snapshot destination (- for stdout)")
		compare = fs.Bool("compare", false, "compare two snapshot files: hcsnap -compare OLD.json NEW.json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two snapshot files, got %d", fs.NArg())
		}
		oldSnap, err := loadSnapshot(fs.Arg(0))
		if err != nil {
			return err
		}
		newSnap, err := loadSnapshot(fs.Arg(1))
		if err != nil {
			return err
		}
		Compare(stdout, oldSnap, newSnap)
		return nil
	}
	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := Parse(r)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	w := stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		if f != nil {
			f.Close() //hclint:ignore errcheck-lite the encode failure is returned; the close error on the already-bad file is secondary
		}
		return err
	}
	if f != nil {
		// Close is the write's last failure point (flush to disk); a
		// snapshot that "succeeded" but lost bytes would poison every
		// later benchmark diff.
		return f.Close()
	}
	return nil
}

// Parse extracts every benchmark result line from go test -bench output.
// A result line is "Benchmark<Name>[-P] <iterations> {<value> <unit>}..."
// with at least one value/unit pair; anything else is skipped.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// name + iterations + at least one value/unit pair, pairs complete
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       stripProcsSuffix(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// loadSnapshot reads one JSON snapshot file written by -out.
func loadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(raw, snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// Compare prints a per-benchmark, per-metric old→new report: the raw
// values, the new/old ratio, and the percentage change. Benchmarks keep
// the old snapshot's order (new-only ones follow in the new snapshot's
// order); metrics are sorted by unit so the report diffs cleanly.
func Compare(w io.Writer, oldSnap, newSnap *Snapshot) {
	oldBy := indexByName(oldSnap)
	newBy := indexByName(newSnap)
	var names []string
	seen := make(map[string]bool)
	for _, b := range oldSnap.Benchmarks {
		if !seen[b.Name] {
			names = append(names, b.Name)
			seen[b.Name] = true
		}
	}
	for _, b := range newSnap.Benchmarks {
		if !seen[b.Name] {
			names = append(names, b.Name)
			seen[b.Name] = true
		}
	}
	for _, name := range names {
		fmt.Fprintln(w, name)
		ob, nb := oldBy[name], newBy[name]
		switch {
		case nb == nil:
			fmt.Fprintln(w, "  (dropped in new snapshot)")
		case ob == nil:
			for _, unit := range sortedUnits(nil, nb.Metrics) {
				fmt.Fprintf(w, "  %-12s (new) %s\n", unit, fmtMetric(nb.Metrics[unit]))
			}
		default:
			for _, unit := range sortedUnits(ob.Metrics, nb.Metrics) {
				ov, hasOld := ob.Metrics[unit]
				nv, hasNew := nb.Metrics[unit]
				switch {
				case !hasNew:
					fmt.Fprintf(w, "  %-12s %s -> (gone)\n", unit, fmtMetric(ov))
				case !hasOld:
					fmt.Fprintf(w, "  %-12s (new) %s\n", unit, fmtMetric(nv))
				case ov == 0:
					fmt.Fprintf(w, "  %-12s %s -> %s\n", unit, fmtMetric(ov), fmtMetric(nv))
				default:
					fmt.Fprintf(w, "  %-12s %s -> %s  %.2fx (%+.1f%%)\n",
						unit, fmtMetric(ov), fmtMetric(nv), nv/ov, 100*(nv-ov)/ov)
				}
			}
		}
	}
}

// indexByName maps benchmark names to their entries (last wins on
// duplicates, matching how a re-run overwrites a snapshot).
func indexByName(snap *Snapshot) map[string]*Benchmark {
	by := make(map[string]*Benchmark, len(snap.Benchmarks))
	for i := range snap.Benchmarks {
		by[snap.Benchmarks[i].Name] = &snap.Benchmarks[i]
	}
	return by
}

// sortedUnits returns the union of both metric maps' units in sorted
// order, so the comparison output is deterministic.
func sortedUnits(a, b map[string]float64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for u := range a {
		set[u] = true
	}
	for u := range b {
		set[u] = true
	}
	units := make([]string, 0, len(set))
	for u := range set {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// fmtMetric renders a metric value with full precision but no trailing
// noise: integral values print as integers (1008467, not 1.008467e+06),
// everything else keeps the shortest exact form (39.2).
func fmtMetric(v float64) string {
	if v-math.Trunc(v) == 0 && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// stripProcsSuffix drops the trailing -GOMAXPROCS number go test appends
// to benchmark names (when > 1), so snapshots from machines with
// different core counts diff cleanly.
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
		return name[:i]
	}
	return name
}
