package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: hcrowd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGreedyIncremental/full-rescan         	       2	  26678624 ns/op	      1500 evals/round
BenchmarkGreedyIncremental/incremental-8       	       2	   3288458 ns/op	        68.80 evals/round
BenchmarkCondEntropyFast                       	  482894	      2467 ns/op	     288 B/op	       5 allocs/op
PASS
ok  	hcrowd	0.033s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	first := snap.Benchmarks[0]
	if first.Name != "BenchmarkGreedyIncremental/full-rescan" || first.Iterations != 2 {
		t.Errorf("first = %+v", first)
	}
	if first.Metrics["ns/op"] != 26678624 || first.Metrics["evals/round"] != 1500 {
		t.Errorf("first metrics = %v", first.Metrics)
	}
	// The -8 GOMAXPROCS suffix is stripped; custom metrics survive.
	second := snap.Benchmarks[1]
	if second.Name != "BenchmarkGreedyIncremental/incremental" {
		t.Errorf("procs suffix not stripped: %q", second.Name)
	}
	if second.Metrics["evals/round"] != 68.80 {
		t.Errorf("second metrics = %v", second.Metrics)
	}
	// -benchmem columns parse as plain metrics.
	third := snap.Benchmarks[2]
	if third.Metrics["allocs/op"] != 5 || third.Metrics["B/op"] != 288 {
		t.Errorf("third metrics = %v", third.Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	snap, err := Parse(strings.NewReader("PASS\nok hcrowd 1s\nBenchmarkBroken 2 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("junk input produced %d benchmarks", len(snap.Benchmarks))
	}
}

func TestRunWritesSnapshotFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-out", out}, strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("snapshot has %d benchmarks, want 3", len(snap.Benchmarks))
	}
}

func TestRunStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sampleBench), &buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("stdout snapshot has %d benchmarks", len(snap.Benchmarks))
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `{"benchmarks": [
		{"name": "BenchmarkA/x", "iterations": 1, "metrics": {"ns/op": 1000, "evals/round": 40}},
		{"name": "BenchmarkGone", "iterations": 1, "metrics": {"ns/op": 5}}
	]}`
	newJSON := `{"benchmarks": [
		{"name": "BenchmarkA/x", "iterations": 1, "metrics": {"ns/op": 400, "evals/round": 40, "allocs/op": 796}},
		{"name": "BenchmarkFresh", "iterations": 1, "metrics": {"ns/op": 7}}
	]}`
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkA/x",
		"1000 -> 400  0.40x (-60.0%)",
		"(new) 796",       // metric only in the new snapshot
		"40 -> 40  1.00x", // unchanged metric still reported
		"(dropped in new snapshot)",
		"BenchmarkFresh",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// Benchmarks follow the old snapshot's order, new-only ones last.
	if strings.Index(out, "BenchmarkGone") > strings.Index(out, "BenchmarkFresh") {
		t.Errorf("benchmark order wrong:\n%s", out)
	}
}

func TestCompareArgErrors(t *testing.T) {
	if err := run([]string{"-compare", "one.json"}, nil, io.Discard); err == nil {
		t.Fatal("one-file -compare accepted")
	}
	if err := run([]string{"-compare", "no-such.json", "also-missing.json"}, nil, io.Discard); err == nil {
		t.Fatal("missing snapshot files accepted")
	}
}

func TestRunEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &buf); err == nil {
		t.Fatal("empty benchmark input accepted")
	}
}
