// Package hcrowd is a Go implementation of "Hierarchical Crowdsourcing
// for Data Labeling with Heterogeneous Crowd" (Zhang et al., ICDE 2023).
//
// The framework improves crowd-labeled data without extra labor cost by
// splitting a heterogeneous worker pool at an accuracy threshold θ into
// preliminary workers (who label everything) and expert workers (who
// check selected labels), then running an initialize–select–check–update
// loop:
//
//  1. Initialize a belief state over each task's joint label assignment
//     from the preliminary answers (any aggregation algorithm works; the
//     package ships MV, DS, ZC, GLAD, CRH, BWA, BCC and EBCC).
//  2. Select the checking query set that maximizes the expected quality
//     improvement. The paper proves this equals minimizing the
//     conditional entropy H(O | AS^T_CE) of the observations given the
//     expert answer families (Theorems 1–2), that the exact problem is
//     NP-hard (Theorem 3), and that greedy selection is a (1−1/e)
//     approximation.
//  3. Collect expert answers and apply the Bayesian belief update
//     (Lemma 3); repeat until the checking budget is exhausted.
//
// Quick start:
//
//	ds, _ := hcrowd.GenerateSentiLike(1, hcrowd.DefaultSentiConfig())
//	res, _ := hcrowd.Run(context.Background(), ds, hcrowd.Config{
//		K:      1,
//		Budget: 500,
//		Init:   hcrowd.EBCC(1),
//		Source: hcrowd.NewSimulatedSource(2, ds),
//	})
//	fmt.Printf("accuracy %.3f -> %.3f\n", res.InitAccuracy, res.Accuracy)
//
// The cmd/hcbench tool regenerates every figure and table of the paper's
// evaluation; see DESIGN.md for the experiment-to-module map and
// EXPERIMENTS.md for paper-vs-measured results.
package hcrowd
