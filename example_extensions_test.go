package hcrowd_test

import (
	"context"
	"fmt"

	"hcrowd"
)

// ExamplePartitionPrior shows transitivity propagating a checking answer
// across an entity-resolution block's pairs.
func ExamplePartitionPrior() {
	// Three records a, b, c: facts are the pairs (a,b), (a,c), (b,c).
	d, err := hcrowd.PartitionPrior(3)
	if err != nil {
		panic(err)
	}
	ab, _ := hcrowd.PairIndex(0, 1, 3)
	bc, _ := hcrowd.PairIndex(1, 2, 3)
	ac, _ := hcrowd.PairIndex(0, 2, 3)

	oracle := hcrowd.Worker{ID: "expert", Accuracy: 1}
	err = d.Update(hcrowd.AnswerFamily{{
		Worker: oracle,
		Facts:  []int{ab, bc},
		Values: []bool{true, true},
	}})
	if err != nil {
		panic(err)
	}
	// Nobody asked about (a,c); transitivity settles it anyway.
	fmt.Printf("P(a~c | a~b, b~c) = %.0f\n", d.Marginal(ac))
	// Output:
	// P(a~c | a~b, b~c) = 1
}

// ExampleRunCostAware demonstrates the per-unit cost extension: answers
// are bought individually by gain-per-cost under accuracy-linked prices.
func ExampleRunCostAware() {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 10
	ds, err := hcrowd.GenerateSentiLike(1, cfg)
	if err != nil {
		panic(err)
	}
	res, err := hcrowd.RunCostAware(context.Background(), ds, hcrowd.Config{
		K:      2,
		Budget: 12,
		Source: hcrowd.NewSimulatedSource(2, ds),
		Cost: func(w hcrowd.Worker) float64 {
			return 1 + 10*(w.Accuracy-0.9) // pricier when more accurate
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("stayed within budget: %v\n", res.BudgetSpent <= 12)
	fmt.Printf("improved: %v\n", res.Quality > res.InitQuality)
	// Output:
	// stayed within budget: true
	// improved: true
}

// ExampleEstimateConfusion recovers class-conditional worker rates from
// gold tasks — the confusion-matrix generalization of the accuracy-rate
// error model.
func ExampleEstimateConfusion() {
	// A worker who always says Yes: perfect on true facts, useless on
	// false ones.
	w := hcrowd.Worker{ID: "optimist", Accuracy: 0.75}
	facts := []int{0, 1, 2, 3}
	truth := func(f int) bool { return f < 2 } // facts 0,1 true; 2,3 false
	gold := []hcrowd.AnswerFamily{{{
		Worker: w,
		Facts:  facts,
		Values: []bool{true, true, true, true},
	}}}
	est := hcrowd.EstimateConfusion(hcrowd.Crowd{w}, gold, truth)
	fmt.Printf("TPR=%.2f TNR=%.2f\n", est[0].TPR, est[0].TNR)
	// Output:
	// TPR=0.75 TNR=0.50
}

// ExampleCondEntropy scores a checking query set by the objective the
// selection minimizes (Theorem 2).
func ExampleCondEntropy() {
	d, _ := hcrowd.BeliefFromJoint([]float64{0.25, 0.25, 0.25, 0.25})
	experts := hcrowd.Crowd{{ID: "e", Accuracy: 1}} // an oracle
	h0 := d.Entropy()
	h1, _ := hcrowd.CondEntropy(d, experts, []int{0})
	h2, _ := hcrowd.CondEntropy(d, experts, []int{0, 1})
	// Each oracle answer removes exactly one bit (ln 2 nats).
	fmt.Printf("bits left: %.0f -> %.0f -> %.0f\n", h0/0.6931, h1/0.6931, h2/0.6931)
	// Output:
	// bits left: 2 -> 1 -> 0
}
