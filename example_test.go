package hcrowd_test

import (
	"context"
	"fmt"

	"hcrowd"
)

// ExampleRun demonstrates the full hierarchical crowdsourcing loop on a
// small synthetic dataset.
func ExampleRun() {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 10
	ds, err := hcrowd.GenerateSentiLike(1, cfg)
	if err != nil {
		panic(err)
	}
	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 20,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rounds: %d, budget spent: %.0f\n", len(res.Rounds), res.BudgetSpent)
	fmt.Printf("improved: %v\n", res.Quality > res.InitQuality)
	// Output:
	// rounds: 10, budget spent: 20
	// improved: true
}

// ExampleBeliefFromJoint walks the paper's Table I worked example.
func ExampleBeliefFromJoint() {
	d, err := hcrowd.BeliefFromJoint([]float64{
		0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(f1)=%.2f P(f2)=%.2f P(f3)=%.2f\n",
		d.Marginal(0), d.Marginal(1), d.Marginal(2))
	labels := d.Labels()
	fmt.Printf("MAP labels: %v\n", labels)
	// Output:
	// P(f1)=0.58 P(f2)=0.63 P(f3)=0.50
	// MAP labels: [true true false]
}

// ExampleQualityGain scores candidate checking queries per Theorem 1.
func ExampleQualityGain() {
	d, _ := hcrowd.BeliefFromJoint([]float64{0.4, 0.1, 0.1, 0.4})
	experts := hcrowd.Crowd{{ID: "e", Accuracy: 0.95}}
	g0, _ := hcrowd.QualityGain(d, experts, []int{0})
	gBoth, _ := hcrowd.QualityGain(d, experts, []int{0, 1})
	fmt.Printf("one query gains %.3f, two gain %.3f\n", g0, gBoth)
	fmt.Printf("diminishing returns: %v\n", gBoth < 2*g0)
	// Output:
	// one query gains 0.495, two gain 0.866
	// diminishing returns: true
}

// ExampleCrowd_Split shows Definition 1's expert/preliminary partition.
func ExampleCrowd_Split() {
	crowd := hcrowd.Crowd{
		{ID: "alice", Accuracy: 0.95},
		{ID: "bob", Accuracy: 0.72},
		{ID: "carol", Accuracy: 0.91},
	}
	experts, preliminary := crowd.Split(0.9)
	fmt.Printf("experts: %d, preliminary: %d\n", len(experts), len(preliminary))
	// Output:
	// experts: 2, preliminary: 1
}
