// Costaware: the §III-D extensions together — per-worker answer pricing
// tied to accuracy, and a multi-tier expert hierarchy. A fixed monetary
// budget buys fewer answers from better checkers; the example compares
// (a) a flat expert group under unit cost, (b) the same group under
// accuracy-linked pricing, and (c) a two-tier hierarchy where the elite
// tier checks first and a cheaper tier continues.
//
// Run with: go run ./examples/costaware
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 80
	// A wider expert band so pricing and tiering have something to bite:
	// two near-oracle checkers and two merely good ones.
	cfg.Crowd = hcrowd.HeterogeneousConfig{
		NumPrelim: 6, PrelimLo: 0.58, PrelimHi: 0.78,
		NumExpert: 4, ExpertLo: 0.90, ExpertHi: 0.99,
	}
	ds, err := hcrowd.GenerateSentiLike(11, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ce, _ := ds.Split()
	fmt.Printf("expert pool:")
	for _, w := range ce {
		fmt.Printf(" %s=%.3f", w.ID, w.Accuracy)
	}
	fmt.Println()

	const budget = 300
	base := hcrowd.Config{
		K:      1,
		Budget: budget,
		Init:   hcrowd.EBCC(1),
	}

	// (a) Flat group, unit cost.
	flat := base
	flat.Source = hcrowd.NewSimulatedSource(21, ds)
	resFlat, err := hcrowd.Run(context.Background(), ds, flat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat, unit cost:        accuracy %.4f -> %.4f (%d rounds)\n",
		resFlat.InitAccuracy, resFlat.Accuracy, len(resFlat.Rounds))

	// (b) Flat group, accuracy-linked pricing: an answer from a worker
	// with accuracy a costs 1 + 10·(a − 0.9), so the 0.99 checker is
	// nearly twice the price of the 0.90 one.
	priced := base
	priced.Source = hcrowd.NewSimulatedSource(21, ds)
	priced.Cost = func(w hcrowd.Worker) float64 { return 1 + 10*(w.Accuracy-0.9) }
	resPriced, err := hcrowd.Run(context.Background(), ds, priced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat, priced answers:   accuracy %.4f -> %.4f (%d rounds)\n",
		resPriced.InitAccuracy, resPriced.Accuracy, len(resPriced.Rounds))

	// (c) Two tiers: the elite half checks first with half the budget,
	// then the value tier continues from the updated beliefs.
	tiers, _, err := hcrowd.SplitTiers(ds.Crowd, ds.Theta, 2, budget)
	if err != nil {
		log.Fatal(err)
	}
	tiered := base
	tiered.Source = hcrowd.NewSimulatedSource(21, ds)
	resTiers, err := hcrowd.RunTiers(context.Background(), ds, tiered, tiers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-tier hierarchy:     accuracy %.4f -> %.4f (%d rounds)\n",
		resTiers.InitAccuracy, resTiers.Accuracy, len(resTiers.Rounds))

	// (d) Per-unit cost-aware selection: the §III-D future-work design —
	// buy individual (query, expert) answers by gain-per-cost instead of
	// paying the whole panel each round.
	unit := base
	unit.Source = hcrowd.NewSimulatedSource(21, ds)
	unit.Cost = priced.Cost
	resUnit, err := hcrowd.RunCostAware(context.Background(), ds, unit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-unit cost greedy:   accuracy %.4f -> %.4f (%d rounds)\n",
		resUnit.InitAccuracy, resUnit.Accuracy, len(resUnit.Rounds))

	fmt.Println("\nPricing shrinks the answer count the same budget buys; the tiered")
	fmt.Println("design concentrates the elite checkers on the earliest (most")
	fmt.Println("uncertain) queries, and per-unit selection routes each answer to")
	fmt.Println("whichever expert buys the most entropy per unit of cost.")
}
