// Entityres: crowdsourced entity resolution — the crowdsourced-joins
// setting of the paper's related work ([19] question selection for crowd
// entity resolution, [20] leveraging transitive relations). Candidate
// records are blocked into groups of four; the crowd answers pair
// questions "do these two records refer to the same entity?". Ground
// truth is an equivalence relation, so the transitivity-constrained
// partition prior lets one expert answer about pair (a,b) move the
// belief about (a,c) and (b,c) for free — the correlation structure the
// paper's framework was built to exploit.
//
// Run with: go run ./examples/entityres
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	cfg := hcrowd.DefaultEntityResConfig()
	ds, err := hcrowd.GenerateEntityRes(33, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d blocks of %d records: %d pair facts\n",
		len(ds.Tasks), cfg.RecordsPerBlock, ds.NumFacts())

	const budget = 120

	// Product-form beliefs: transitivity ignored.
	plain, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: budget,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HC, product beliefs:       pair accuracy %.4f -> %.4f\n",
		plain.InitAccuracy, plain.Accuracy)

	// Partition prior: only equivalence relations carry mass.
	constrained, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: budget,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
		Prior: func(m int) (*hcrowd.Belief, error) {
			// m = C(n,2) pair facts; recover the record count n.
			n := 2
			for n*(n-1)/2 < m {
				n++
			}
			return hcrowd.PartitionPrior(n)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HC, transitivity prior:    pair accuracy %.4f -> %.4f\n",
		constrained.InitAccuracy, constrained.Accuracy)

	// How much of the final beliefs violates transitivity? With the
	// partition prior the answer is structurally zero; measure the MAP
	// labels of the unconstrained run for contrast.
	violations := countViolations(ds, plain.Labels, cfg.RecordsPerBlock)
	fmt.Printf("\ntransitivity violations in MAP labels: product=%d, constrained=%d\n",
		violations, countViolations(ds, constrained.Labels, cfg.RecordsPerBlock))
}

// countViolations counts (i, j, k) triples whose MAP pair labels break
// transitivity.
func countViolations(ds *hcrowd.Dataset, labels []bool, n int) int {
	count := 0
	for _, facts := range ds.Tasks {
		same := func(i, j int) bool {
			if i == j {
				return true
			}
			if i > j {
				i, j = j, i
			}
			idx, err := hcrowd.PairIndex(i, j, n)
			if err != nil {
				log.Fatal(err)
			}
			return labels[facts[idx]]
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					if same(i, j) && same(j, k) && !same(i, k) ||
						same(i, j) && same(i, k) && !same(j, k) ||
						same(i, k) && same(j, k) && !same(i, j) {
						count++
					}
				}
			}
		}
	}
	return count
}
