// Medical: the CheXpert-style scenario from the paper's introduction —
// X-ray findings labeled by many ordinary crowdsourcing doctors while a
// small radiologist panel adjudicates. Each study is a task of five
// correlated binary findings (e.g. cardiomegaly, edema, consolidation,
// atelectasis, effusion — comorbidities make them correlate); the
// radiologists are modeled as near-oracle checkers (§III-D's oracle
// discussion), and the stopping rule of Abraham et al. [38] prevents
// re-checking a finding the panel has already settled.
//
// Run with: go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	// 120 studies × 5 findings; ordinary doctors are noisier than generic
	// crowd workers on subtle findings, radiologists are near-perfect.
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 120
	cfg.CorrelationAlpha = 0.2 // strong comorbidity correlation
	cfg.Crowd = hcrowd.HeterogeneousConfig{
		NumPrelim: 10, PrelimLo: 0.60, PrelimHi: 0.80, // ordinary doctors
		NumExpert: 3, ExpertLo: 0.97, ExpertHi: 1.0, // radiologist panel
	}
	cfg.Theta = 0.95
	ds, err := hcrowd.GenerateSentiLike(2024, cfg)
	if err != nil {
		log.Fatal(err)
	}
	panel, doctors := ds.Split()
	fmt.Printf("%d studies, %d findings; %d radiologists adjudicate labels from %d doctors\n",
		len(ds.Tasks), ds.NumFacts(), len(panel), len(doctors))

	// Radiologist time is the scarce resource: a budget of 600 panel
	// answers (~40 studies' worth), with the stopping rule retiring
	// findings once the panel's verdict is decisive.
	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      2, // send two findings per adjudication round
		Budget: 600,
		Init:   hcrowd.AggregatorMust("DS", 1), // confusion-matrix model suits doctors
		Source: hcrowd.NewSimulatedSource(5, ds),
		Stop:   &hcrowd.StopRule{C: 1.5, Eps: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("label accuracy: %.4f -> %.4f after %d panel rounds (%.0f answers)\n",
		res.InitAccuracy, res.Accuracy, len(res.Rounds), res.BudgetSpent)

	// How many findings still disagree with a full-panel majority would
	// tell a deployment where to spend the next batch of panel time; the
	// belief state exposes exactly that uncertainty.
	uncertain := 0
	for _, b := range res.Beliefs {
		for f := 0; f < b.NumFacts(); f++ {
			if p := b.Marginal(f); p > 0.2 && p < 0.8 {
				uncertain++
			}
		}
	}
	fmt.Printf("findings still uncertain (0.2 < P < 0.8): %d of %d\n",
		uncertain, ds.NumFacts())
}
