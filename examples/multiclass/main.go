// Multiclass: the §II-A construction end to end. A single-label
// classification task over m classes is split into m binary facts ("is
// this item class c?") that are mutually exclusive — exactly the
// correlated-facts setting the paper's data model exists for. The one-hot
// joint prior carries the exclusivity constraint through every Bayesian
// update, so one expert answer about one class moves the belief about
// all of them.
//
// Run with: go run ./examples/multiclass
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	cfg := hcrowd.DefaultMultiClassConfig()
	ds, err := hcrowd.GenerateMultiClass(7, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d items × %d classes = %d binary facts\n",
		len(ds.Tasks), cfg.NumClasses, ds.NumFacts())

	itemAccuracy := func(labels []bool) float64 {
		pred := hcrowd.ClassOf(labels, ds.Tasks)
		want := hcrowd.ClassOf(ds.Truth, ds.Tasks)
		correct := 0
		for i := range pred {
			if pred[i] == want[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(pred))
	}

	// Baseline: majority vote over the preliminary answers, no experts.
	mv, err := hcrowd.MajorityVote().Aggregate(ds.Prelim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority vote:            item accuracy %.4f\n", itemAccuracy(mv.Labels()))

	// HC without the constraint: product-form beliefs.
	plain, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 150,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HC, product beliefs:      item accuracy %.4f\n", itemAccuracy(plain.Labels))

	// HC with the one-hot prior: the exclusivity constraint makes every
	// expert answer about one class inform all the others.
	oneHot, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 150,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
		Prior:  hcrowd.OneHotPrior,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HC, one-hot constraint:   item accuracy %.4f\n", itemAccuracy(oneHot.Labels))

	// Native multi-class initialization: reconstruct the categorical
	// matrix and run K×K-confusion Dawid-Skene before checking.
	catRun, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 150,
		Init:   hcrowd.CatInitializer(hcrowd.CatDawidSkene(), ds.Tasks),
		Source: hcrowd.NewSimulatedSource(2, ds),
		Prior:  hcrowd.OneHotPrior,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HC, CatDS + constraint:   item accuracy %.4f\n", itemAccuracy(catRun.Labels))
	fmt.Printf("\nbudget spent: %.0f expert answers in %d rounds (constraint run)\n",
		oneHot.BudgetSpent, len(oneHot.Rounds))
}
