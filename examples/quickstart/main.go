// Quickstart: the smallest end-to-end use of the hcrowd public API.
//
// It first walks through the paper's Table I worked example — a 3-fact
// task with a correlated joint belief — showing marginals, quality, and
// what one expert checking round does to the belief. It then runs the
// full hierarchical crowdsourcing pipeline on a small synthetic dataset.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	tableIExample()
	pipelineExample()
}

// tableIExample reproduces Table I of the paper.
func tableIExample() {
	fmt.Println("== Table I worked example ==")
	// Observations o1..o8 over facts f1..f3 (f1 = bit 0).
	d, err := hcrowd.BeliefFromJoint([]float64{
		0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(f1)=%.2f P(f2)=%.2f P(f3)=%.2f (Equation 4)\n",
		d.Marginal(0), d.Marginal(1), d.Marginal(2))
	fmt.Printf("quality Q(F) = -H(O) = %.4f\n", d.Quality())

	// One expert with accuracy 0.95; which single fact is the best
	// checking query? (Theorem 2: minimize conditional entropy.)
	experts := hcrowd.Crowd{{ID: "expert", Accuracy: 0.95}}
	bestFact, bestGain := -1, -1.0
	for f := 0; f < d.NumFacts(); f++ {
		gain, err := hcrowd.QualityGain(d, experts, []int{f})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  checking f%d: expected quality gain %.4f\n", f+1, gain)
		if gain > bestGain {
			bestFact, bestGain = f, gain
		}
	}
	fmt.Printf("best single checking query: f%d (the 0.50 marginal — most uncertain)\n", bestFact+1)

	// Simulate the expert answering "f3 is true" and update (Lemma 3).
	fam := hcrowd.AnswerFamily{{
		Worker: experts[0],
		Facts:  []int{bestFact},
		Values: []bool{true},
	}}
	if err := d.Update(fam); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: P(f3)=%.4f, quality %.4f\n\n", d.Marginal(2), d.Quality())
}

// pipelineExample runs Algorithm 3 end to end on synthetic data.
func pipelineExample() {
	fmt.Println("== Hierarchical crowdsourcing pipeline ==")
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 40 // 200 facts
	ds, err := hcrowd.GenerateSentiLike(1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ce, cp := ds.Split()
	fmt.Printf("dataset: %d facts in %d tasks; crowd: %d experts / %d preliminary (theta=%.2f)\n",
		ds.NumFacts(), len(ds.Tasks), len(ce), len(cp), ds.Theta)

	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 120,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: %.4f -> %.4f\n", res.InitAccuracy, res.Accuracy)
	fmt.Printf("quality:  %.4f -> %.4f\n", res.InitQuality, res.Quality)
	fmt.Printf("%d checking rounds, %.0f expert answers spent\n",
		len(res.Rounds), res.BudgetSpent)
}
