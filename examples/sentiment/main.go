// Sentiment: the paper's main experimental scenario end to end — the
// Figure 2 comparison in miniature. A thousand sentiment facts (200
// correlated 5-fact tasks, the tweets-about-a-company workload of §IV-A)
// are labeled by a heterogeneous 8-worker crowd; hierarchical
// crowdsourcing spends an expert checking budget on selected queries
// while each aggregation baseline spends the same budget as undirected
// extra redundancy.
//
// Run with: go run ./examples/sentiment
package main

import (
	"context"
	"fmt"
	"log"

	"hcrowd"
)

func main() {
	ds, err := hcrowd.GenerateSentiLike(42, hcrowd.DefaultSentiConfig())
	if err != nil {
		log.Fatal(err)
	}
	ce, cp := ds.Split()
	fmt.Printf("senti-like dataset: %d facts, %d tasks, %d experts / %d preliminary\n\n",
		ds.NumFacts(), len(ds.Tasks), len(ce), len(cp))

	const budget = 400

	// Hierarchical crowdsourcing: EBCC initialization + greedy checking.
	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: budget,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(7, ds),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s accuracy %.4f (from %.4f with %d rounds of checking)\n",
		"HC", res.Accuracy, res.InitAccuracy, len(res.Rounds))

	// Baselines: preliminary answers + the same budget of random expert
	// answers, aggregated by each algorithm.
	extra, err := ds.WithExpertAnswers(hcrowd.NewRand(8), budget)
	if err != nil {
		log.Fatal(err)
	}
	for _, agg := range hcrowd.Aggregators(9) {
		r, err := agg.Aggregate(extra)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := r.Accuracy(ds.Truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s accuracy %.4f\n", agg.Name(), acc)
	}

	fmt.Println("\nHC turns the same expert budget into targeted checks instead of")
	fmt.Println("blanket redundancy, which is why it tops every baseline above.")
}
