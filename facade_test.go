package hcrowd_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"hcrowd"
)

// TestFacadeNewerSurfaces smoke-tests the later public-API additions so
// the wiring between the façade and the internals stays covered.
func TestFacadeNewerSurfaces(t *testing.T) {
	// Priors.
	prior, err := hcrowd.MarkovPrior(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	blended, err := hcrowd.BeliefFromMarginalsWithPrior([]float64{0.8, 0.5, 0.5}, prior)
	if err != nil {
		t.Fatal(err)
	}
	if blended.Correlation(0, 1) <= 0.5 {
		t.Error("prior correlation not injected")
	}
	if _, err := hcrowd.OneHotPrior(4); err != nil {
		t.Fatal(err)
	}

	// Crowd constructors and confusion estimation.
	pool, err := hcrowd.NewCrowd(hcrowd.NewRand(1), hcrowd.DefaultCrowdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 8 {
		t.Fatalf("pool size %d", len(pool))
	}
	truth := func(f int) bool { return f%2 == 0 }
	facts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var fam hcrowd.AnswerFamily
	for _, w := range pool {
		vals := make([]bool, len(facts))
		for i, f := range facts {
			vals[i] = truth(f)
		}
		fam = append(fam, hcrowd.AnswerSet{Worker: w, Facts: facts, Values: vals})
	}
	conf := hcrowd.EstimateConfusion(pool, []hcrowd.AnswerFamily{fam}, truth)
	if err := conf.Validate(); err != nil {
		t.Fatal(err)
	}

	// Extra aggregators.
	if got := len(hcrowd.ExtraAggregators()); got != 2 {
		t.Errorf("ExtraAggregators = %d", got)
	}
	if hcrowd.AggregatorMust("DS", 1).Name() != "DS" {
		t.Error("AggregatorMust(DS)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AggregatorMust(unknown) did not panic")
			}
		}()
		hcrowd.AggregatorMust("nope", 1)
	}()
}

func TestFacadeMultiClassFlow(t *testing.T) {
	cfg := hcrowd.DefaultMultiClassConfig()
	cfg.NumItems = 30
	ds, err := hcrowd.GenerateMultiClass(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := hcrowd.CatFromOneHot(ds.Prelim, ds.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []hcrowd.CatAggregator{hcrowd.CatMajorityVote(), hcrowd.CatDawidSkene()} {
		res, err := agg.AggregateCat(cat)
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		if len(res.Posterior) != 30 {
			t.Fatalf("%s: posterior size %d", agg.Name(), len(res.Posterior))
		}
	}
	if _, err := hcrowd.NewCatMatrix(5, 3, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	classes := hcrowd.ClassOf(ds.Truth, ds.Tasks)
	if len(classes) != 30 {
		t.Fatalf("ClassOf size %d", len(classes))
	}
	// Full run with categorical init + constraint.
	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 10,
		Init:   hcrowd.CatInitializer(hcrowd.CatDawidSkene(), ds.Tasks),
		Source: hcrowd.NewSimulatedSource(3, ds),
		Prior:  hcrowd.OneHotPrior,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < res.InitQuality {
		t.Error("multiclass run lost quality")
	}
}

func TestFacadeCheckpointAndCostAware(t *testing.T) {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 10
	ds, err := hcrowd.GenerateSentiLike(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := hcrowd.Config{K: 1, Budget: 10, Source: hcrowd.NewSimulatedSource(6, ds)}
	res, err := hcrowd.Run(context.Background(), ds, run)
	if err != nil {
		t.Fatal(err)
	}
	ck := hcrowd.NewCheckpoint(res)
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := hcrowd.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run2 := run
	run2.Budget = 20
	run2.Source = hcrowd.NewSimulatedSource(7, ds)
	resumed, err := hcrowd.Resume(context.Background(), ds, run2, back)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resumed.BudgetSpent-20) > 1e-9 {
		t.Errorf("resumed spend %v", resumed.BudgetSpent)
	}
	ca, err := hcrowd.RunCostAware(context.Background(), ds, run)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Quality < ca.InitQuality {
		t.Error("cost-aware run lost quality")
	}
}

func TestFacadeAnswersCSV(t *testing.T) {
	in := "fact,worker,value\n0,a,yes\n1,b,no\n"
	m, err := hcrowd.ReadAnswersCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 2 || m.NumWorkers() != 2 {
		t.Fatalf("shape %d/%d", m.NumFacts(), m.NumWorkers())
	}
}
