module hcrowd

go 1.22
