package hcrowd

import (
	"context"
	"io"
	"math/rand"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

// Core model types, aliased from the internal packages so their methods
// are part of the public API.
type (
	// Worker is a crowdsourcing worker with a private accuracy rate
	// Pr_cr ∈ [0.5, 1].
	Worker = crowd.Worker
	// Crowd is a worker pool; Split(θ) divides it into experts and
	// preliminary workers (Definition 1).
	Crowd = crowd.Crowd
	// AnswerSet is one worker's Yes/No answers to a query set
	// (Definition 3).
	AnswerSet = crowd.AnswerSet
	// AnswerFamily is the answer sets of a whole crowd for one query set.
	AnswerFamily = crowd.AnswerFamily
	// Truth adapts ground-truth lookups for the answer simulator.
	Truth = crowd.Truth
	// HeterogeneousConfig parameterizes sampled worker pools.
	HeterogeneousConfig = crowd.HeterogeneousConfig

	// Belief is a joint distribution over the 2^m observations of an
	// m-fact task; quality is Q(F) = −H(O) (Definition 2).
	Belief = belief.Dist

	// Dataset bundles ground truth, task grouping, the worker pool and
	// the preliminary answer matrix.
	Dataset = dataset.Dataset
	// Matrix is a sparse fact × worker answer matrix.
	Matrix = dataset.Matrix
	// SentiConfig parameterizes the synthetic sentiment-like generator.
	SentiConfig = dataset.SentiConfig

	// Config drives one hierarchical crowdsourcing run (Algorithm 3).
	Config = pipeline.Config
	// Result is the outcome of a run, including the per-round trace.
	Result = pipeline.Result
	// RoundStats records one checking round.
	RoundStats = pipeline.RoundStats
	// StopRule is the optional per-fact stopping rule of Abraham et
	// al. [38].
	StopRule = pipeline.StopRule
	// TierConfig describes one tier of the multi-level hierarchy
	// extension.
	TierConfig = pipeline.TierConfig
	// AnswerSource supplies expert answers; implement it to connect a
	// live crowdsourcing platform, or use NewSimulatedSource.
	AnswerSource = pipeline.AnswerSource

	// Fragment is a self-contained batch of new tasks for streaming
	// admission: its own ground truth, task grouping and preliminary
	// answers, folded into a running job through Config.Admit (or POST
	// /tasks against a streaming session).
	Fragment = dataset.Fragment
	// FragmentAnswer is one preliminary answer inside a Fragment,
	// addressed by fragment-local fact index and worker ID.
	FragmentAnswer = dataset.FragmentAnswer
	// AdmissionSource feeds fragments into a running engine at round
	// boundaries, turning the closed checking loop into an event-driven
	// scheduler; set it via Config.Admit together with a positive
	// Config.BudgetWindow.
	AdmissionSource = pipeline.AdmissionSource
	// ScheduleSource is the deterministic AdmissionSource used by the
	// streaming experiments: batch i is handed to the engine on the i-th
	// round-boundary poll.
	ScheduleSource = pipeline.ScheduleSource

	// RoundMetrics is one checking round's observability record: wall
	// time, queries bought, answers requested vs received, spend, quality
	// movement and selector cache statistics. Purely observational —
	// attaching a sink never changes a run's results.
	RoundMetrics = pipeline.RoundMetrics
	// MetricsSink receives one RoundMetrics per completed round; set it
	// via Config.Metrics.
	MetricsSink = pipeline.MetricsSink
	// MetricsRecorder is the in-memory MetricsSink: it appends every
	// record and hands back the ordered slice via Rounds(). The zero
	// value is ready to use.
	MetricsRecorder = pipeline.MetricsRecorder
	// MultiMetrics fans records out to several sinks (nils are skipped).
	MultiMetrics = pipeline.MultiMetrics

	// SelectStats counts the selection engine's work during a round:
	// Select calls, CondEntropy evaluations, task re-scans and cache
	// reuses.
	SelectStats = taskselect.SelectStats

	// Aggregator is a label-aggregation algorithm (truth inference).
	Aggregator = aggregate.Aggregator
	// AggregateResult is an aggregation outcome: per-fact posteriors and
	// estimated worker accuracies.
	AggregateResult = aggregate.Result

	// Selector chooses checking queries; Greedy is the paper's
	// Algorithm 2.
	Selector = taskselect.Selector
	// Candidate identifies one checking query (task, local fact).
	Candidate = taskselect.Candidate
	// Problem is a selection instance (beliefs + experts).
	Problem = taskselect.Problem
)

// Run executes the hierarchical crowdsourcing loop (Algorithm 3, or
// Algorithm 1 when cfg.Selector is ExactSelector()) on the dataset.
func Run(ctx context.Context, ds *Dataset, cfg Config) (*Result, error) {
	return pipeline.Run(ctx, ds, cfg)
}

// RunCostAware executes the §III-D cost extension: each round buys
// individual (query, expert) answer units greedily by gain-per-cost
// instead of sending every query to every expert.
func RunCostAware(ctx context.Context, ds *Dataset, cfg Config) (*Result, error) {
	return pipeline.RunCostAware(ctx, ds, cfg)
}

// RunTiers executes the multi-level hierarchy extension: sequential
// expert tiers each with their own budget (§III-D).
func RunTiers(ctx context.Context, ds *Dataset, base Config, tiers []TierConfig) (*Result, error) {
	return pipeline.RunTiers(ctx, ds, base, tiers)
}

// SplitTiers divides a crowd into n expert tiers above theta plus the
// preliminary remainder, sharing the budget equally.
func SplitTiers(c Crowd, theta float64, n int, budget float64) ([]TierConfig, Crowd, error) {
	return pipeline.SplitTiers(c, theta, n, budget)
}

// Checkpoint captures a run's resumable state: the beliefs and budget
// spent, plus the optional warm sections (incremental selection cache,
// stopping-rule votes). Persist it between rounds of a long labeling job
// — see Config.OnCheckpoint — and continue with Resume (or
// ResumeCostAware) after a restart.
type Checkpoint = pipeline.Checkpoint

// SelectionCache is the serialized round-start gain state of an
// incremental selection engine, carried inside a Checkpoint so a resumed
// loop re-scans no unchanged task.
type SelectionCache = taskselect.SelectionCache

// StopVotes is the stopping rule's checkpointed per-fact vote counts.
type StopVotes = pipeline.StopVotes

// NewCheckpoint snapshots a result's state for later Resume.
func NewCheckpoint(res *Result) *Checkpoint { return pipeline.NewCheckpoint(res) }

// ReadCheckpoint deserializes a checkpoint written by (*Checkpoint).Write.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return pipeline.ReadCheckpoint(r) }

// Resume continues a run from a checkpoint; cfg.Budget is the job's
// total budget, of which the checkpoint's spend is already consumed. A
// checkpoint carrying the warm sections resumes without re-scanning any
// unchanged task.
func Resume(ctx context.Context, ds *Dataset, cfg Config, c *Checkpoint) (*Result, error) {
	return pipeline.Resume(ctx, ds, cfg, c)
}

// ResumeCostAware is Resume for runs started by RunCostAware.
func ResumeCostAware(ctx context.Context, ds *Dataset, cfg Config, c *Checkpoint) (*Result, error) {
	return pipeline.ResumeCostAware(ctx, ds, cfg, c)
}

// NewSimulatedSource answers checking queries from the dataset's ground
// truth under each expert's accuracy — the paper's offline evaluation
// protocol.
func NewSimulatedSource(seed int64, ds *Dataset) AnswerSource {
	return pipeline.NewSimulated(seed, ds)
}

// InitBeliefs aggregates the preliminary answers and builds one belief
// per task (Equation 15 product form); uniform = true skips the answers
// and starts every task at the uniform distribution.
func InitBeliefs(ds *Dataset, init Aggregator, uniform bool) ([]*Belief, error) {
	return pipeline.InitBeliefs(ds, init, uniform)
}

// NewBelief returns the uniform belief over m facts.
func NewBelief(m int) (*Belief, error) { return belief.New(m) }

// BeliefFromJoint builds a belief from an explicit joint distribution of
// length 2^m.
func BeliefFromJoint(p []float64) (*Belief, error) { return belief.FromJoint(p) }

// BeliefFromMarginals builds the independent-product belief of
// Equation 15 from per-fact posteriors.
func BeliefFromMarginals(pTrue []float64) (*Belief, error) {
	return belief.FromMarginals(pTrue)
}

// MarkovPrior returns the chain-structured joint prior with the given
// copy probability; it carries the intra-task correlations the plain
// product initialization discards (Definition 6 takes the joint
// distribution as an input of the problem).
func MarkovPrior(m int, couple float64) (*Belief, error) {
	return belief.MarkovPrior(m, couple)
}

// BeliefFromMarginalsWithPrior blends per-fact posteriors with a
// structural joint prior: P(o) ∝ prior(o) · Π_f m_f(o ⊨ f).
func BeliefFromMarginalsWithPrior(pTrue []float64, prior *Belief) (*Belief, error) {
	return belief.FromMarginalsWithPrior(pTrue, prior)
}

// CondEntropy computes H(O | AS^T_CE) (Equation 34), the quantity the
// checking-task selection minimizes.
func CondEntropy(d *Belief, experts Crowd, facts []int) (float64, error) {
	return taskselect.CondEntropy(d, experts, facts)
}

// QualityGain computes the expected quality improvement ΔQ(F|T) =
// H(O) − H(O | AS^T_CE) of Theorem 1.
func QualityGain(d *Belief, experts Crowd, facts []int) (float64, error) {
	return taskselect.QualityGain(d, experts, facts)
}

// GreedySelector returns the paper's Algorithm 2: (1−1/e)-approximate
// greedy selection.
func GreedySelector() Selector { return taskselect.Greedy{} }

// SelectionState is the incremental variant of GreedySelector: identical
// picks round for round, but the per-task round-start gains are cached
// between Select calls and recomputed only for tasks the caller has
// Invalidated, so a steady-state round costs O(touched tasks) instead of
// a full O(N·m) conditional-entropy scan. Run and its variants wire one
// in automatically when cfg.Selector is GreedySelector() (or nil);
// construct one with IncrementalSelector to drive a custom checking loop.
type SelectionState = taskselect.SelectionState

// IncrementalSelector returns a fresh incremental greedy selection
// engine; workers bounds the goroutines of the invalidation re-scan
// (<= 1 means serial). After mutating a task's belief, call
// Invalidate(task) before the next Select.
func IncrementalSelector(workers int) *SelectionState {
	return taskselect.NewSelectionState(workers)
}

// TaskAssign is one purchased answer unit of the cost-aware design: a
// specific expert answering a specific fact of a specific task.
type TaskAssign = taskselect.TaskAssign

// AssignSelector chooses assignment units under a budget; the cost-aware
// loop's counterpart of Selector.
type AssignSelector = taskselect.AssignSelector

// AssignState is the incremental assignment engine behind RunCostAware:
// unit purchases identical to the stateless gain-per-cost greedy, with
// per-task unit-gain tables cached between SelectAssign calls and
// recomputed only for Invalidated tasks.
type AssignState = taskselect.AssignState

// IncrementalAssignSelector returns a fresh incremental cost-aware
// assignment engine. cost prices one answer from a worker (nil = 1),
// maxAssignsPerTask caps the answer variables accumulated per task
// (<= 0 = 12), workers bounds the re-scan goroutines (<= 1 = serial).
// After mutating a task's belief, call Invalidate(task) before the next
// SelectAssign.
func IncrementalAssignSelector(cost func(w Worker) float64, maxAssignsPerTask, workers int) *AssignState {
	return taskselect.NewAssignState(cost, maxAssignsPerTask, workers)
}

// ExactSelector returns the brute-force OPT selector (exponential; used
// by the Figure 5 and Table III experiments).
func ExactSelector() Selector { return taskselect.Exact{} }

// RandomSelector returns the uniform-random baseline selector.
func RandomSelector(seed int64) Selector {
	return taskselect.Random{Rng: rngutil.New(seed)}
}

// MaxEntropySelector returns the marginal-entropy heuristic (the trivial
// optimum of the single-query single-worker special case).
func MaxEntropySelector() Selector { return taskselect.MaxEntropy{} }

// Aggregators returns every baseline aggregation algorithm in the
// paper's order: MV, DS, ZC, GLAD, CRH, BWA, BCC, EBCC.
func Aggregators(seed int64) []Aggregator { return aggregate.Registry(seed) }

// AggregatorByName resolves one baseline by its paper name.
func AggregatorByName(name string, seed int64) (Aggregator, error) {
	return aggregate.ByName(name, seed)
}

// AggregatorMust is AggregatorByName for statically known names; it
// panics on an unknown name.
func AggregatorMust(name string, seed int64) Aggregator {
	a, err := aggregate.ByName(name, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// Categorical (multi-class) truth inference: the native Dawid-Skene
// setting §II-A's one-hot construction decomposes.
type (
	// CatMatrix is a sparse items × workers categorical answer matrix.
	CatMatrix = dataset.CatMatrix
	// CatResult is a multi-class inference outcome (per-item class
	// posteriors).
	CatResult = aggregate.CatResult
	// CatAggregator infers multi-class truth from a CatMatrix.
	CatAggregator = aggregate.CatAggregator
)

// NewCatMatrix creates an empty categorical answer matrix.
func NewCatMatrix(numItems, numClasses int, workerIDs []string) (*CatMatrix, error) {
	return dataset.NewCatMatrix(numItems, numClasses, workerIDs)
}

// CatMajorityVote returns multi-class majority voting.
func CatMajorityVote() CatAggregator { return aggregate.CatMV{} }

// CatDawidSkene returns multi-class Dawid-Skene (K×K confusion EM).
func CatDawidSkene() CatAggregator { return aggregate.NewCatDS() }

// CatFromOneHot reconstructs a categorical matrix from one-hot binary
// answers (the inverse of §II-A's construction).
func CatFromOneHot(m *Matrix, tasks [][]int) (*CatMatrix, error) {
	return dataset.CatFromOneHot(m, tasks)
}

// CatInitializer adapts a categorical aggregator into a pipeline belief
// initializer for one-hot datasets; pair with OneHotPrior.
func CatInitializer(cat CatAggregator, tasks [][]int) Aggregator {
	return aggregate.CatInit{Cat: cat, Tasks: tasks}
}

// ExtraAggregators returns the additional MV variants the paper's
// introduction cites (MV-Freq, MV-Beta of Sheng et al. [15]), outside the
// eight evaluated baselines.
func ExtraAggregators() []Aggregator { return aggregate.Extras() }

// AggregatorNames lists the baseline names in registry order.
func AggregatorNames() []string { return aggregate.Names() }

// MajorityVote returns the MV aggregator (Equation 5).
func MajorityVote() Aggregator { return aggregate.MV{} }

// EBCC returns the enhanced Bayesian classifier combination aggregator,
// the initializer the paper uses in its main experiments.
func EBCC(seed int64) Aggregator { return aggregate.NewEBCC(seed) }

// DefaultSentiConfig matches the paper's dataset shape: 1000 facts as
// 200 correlated tasks of 5, eight workers per task, θ = 0.9.
func DefaultSentiConfig() SentiConfig { return dataset.DefaultSentiConfig() }

// GenerateSentiLike produces a synthetic dataset with the paper's
// sentiment-benchmark shape (see DESIGN.md for the substitution
// rationale).
func GenerateSentiLike(seed int64, cfg SentiConfig) (*Dataset, error) {
	return dataset.SentiLike(rngutil.New(seed), cfg)
}

// GenerateWideTask produces the single wide task of the efficiency study
// (Table III).
func GenerateWideTask(seed int64, numFacts int, cfg HeterogeneousConfig, theta, alpha float64) (*Dataset, error) {
	return dataset.WideTask(rngutil.New(seed), numFacts, cfg, theta, alpha)
}

// MultiClassConfig parameterizes the one-hot multi-class workload of
// §II-A (each labeling task split into per-class binary facts).
type MultiClassConfig = dataset.MultiClassConfig

// DefaultMultiClassConfig is the multiclass example's shape.
func DefaultMultiClassConfig() MultiClassConfig { return dataset.DefaultMultiClassConfig() }

// GenerateMultiClass produces a one-hot dataset: one task per item,
// NumClasses mutually exclusive facts. Pair it with OneHotPrior via
// Config.Prior.
func GenerateMultiClass(seed int64, cfg MultiClassConfig) (*Dataset, error) {
	return dataset.MultiClass(rngutil.New(seed), cfg)
}

// OneHotPrior returns the exactly-one-true joint prior for m-class tasks.
func OneHotPrior(m int) (*Belief, error) { return belief.OneHotPrior(m) }

// ClassOf recovers per-item class labels from one-hot fact labels.
func ClassOf(labels []bool, tasks [][]int) []int { return dataset.ClassOf(labels, tasks) }

// EntityResConfig parameterizes the crowdsourced entity-resolution
// workload (blocks of records, pair-match facts, transitive ground
// truth).
type EntityResConfig = dataset.EntityResConfig

// DefaultEntityResConfig is the entityres example's shape.
func DefaultEntityResConfig() EntityResConfig { return dataset.DefaultEntityResConfig() }

// GenerateEntityRes produces an entity-resolution dataset; pair it with
// PartitionPrior so checking answers propagate through transitivity.
func GenerateEntityRes(seed int64, cfg EntityResConfig) (*Dataset, error) {
	return dataset.EntityRes(rngutil.New(seed), cfg)
}

// PartitionPrior returns the transitivity-constrained joint prior for an
// n-record entity-resolution block (uniform over set partitions).
func PartitionPrior(records int) (*Belief, error) { return belief.PartitionPrior(records) }

// PairIndex returns the fact index of record pair (i, j) within an
// n-record block, matching GenerateEntityRes's fact layout.
func PairIndex(i, j, n int) (int, error) { return belief.PairIndex(i, j, n) }

// ReadDataset deserializes a dataset written by (*Dataset).Write.
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.Read(r) }

// ReadFragment deserializes a task fragment written by (*Fragment).Write.
func ReadFragment(r io.Reader) (*Fragment, error) { return dataset.ReadFragment(r) }

// GenerateSentiFragment draws a streaming task fragment shaped like the
// dataset's generator config: numTasks new tasks with Markov-coupled
// truth and preliminary answers from ds's preliminary workers.
func GenerateSentiFragment(rng *rand.Rand, ds *Dataset, cfg SentiConfig, numTasks int) (*Fragment, error) {
	return dataset.SentiFragment(rng, ds, cfg, numTasks)
}

// ReadAnswersCSV parses a `fact,worker,value` CSV (the interchange format
// of crowdsourcing platform exports) into an answer matrix; numFacts = 0
// infers the fact space from the data.
func ReadAnswersCSV(r io.Reader, numFacts int) (*Matrix, error) {
	return dataset.ReadAnswersCSV(r, numFacts)
}

// NewCrowd samples a heterogeneous worker pool.
func NewCrowd(rng *rand.Rand, cfg HeterogeneousConfig) (Crowd, error) {
	return crowd.NewHeterogeneous(rng, cfg)
}

// DefaultCrowdConfig is the experiments' default pool shape.
func DefaultCrowdConfig() HeterogeneousConfig { return crowd.DefaultHeterogeneous() }

// EstimateAccuracies estimates worker accuracy rates from answers to
// gold sample facts (§II-A).
func EstimateAccuracies(c Crowd, gold []AnswerFamily, truth Truth) Crowd {
	return crowd.EstimateAccuracies(c, gold, truth)
}

// EstimateConfusion estimates class-conditional worker rates (TPR/TNR)
// from gold sample answers — the confusion-model generalization of the
// paper's symmetric accuracy (the "diverse accuracy rates" setting of its
// predecessor [24]). Workers with TPR/TNR set are handled natively by the
// belief updates and the selection objective.
func EstimateConfusion(c Crowd, gold []AnswerFamily, truth Truth) Crowd {
	return crowd.EstimateConfusion(c, gold, truth)
}

// NewRand returns a deterministic random source for the simulation
// helpers.
func NewRand(seed int64) *rand.Rand { return rngutil.New(seed) }
