package hcrowd_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"hcrowd"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 20
	ds, err := hcrowd.GenerateSentiLike(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hcrowd.Run(context.Background(), ds, hcrowd.Config{
		K:      1,
		Budget: 40,
		Init:   hcrowd.EBCC(1),
		Source: hcrowd.NewSimulatedSource(2, ds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < res.InitQuality {
		t.Errorf("quality fell: %v -> %v", res.InitQuality, res.Quality)
	}
	if len(res.Labels) != ds.NumFacts() {
		t.Errorf("labels = %d, want %d", len(res.Labels), ds.NumFacts())
	}
}

func TestPublicTableIExample(t *testing.T) {
	// The paper's Table I as a public-API walkthrough.
	d, err := hcrowd.BeliefFromJoint([]float64{0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Marginal(0); math.Abs(got-0.58) > 1e-12 {
		t.Errorf("P(f1) = %v", got)
	}
	experts := hcrowd.Crowd{{ID: "e", Accuracy: 0.95}}
	gain, err := hcrowd.QualityGain(d, experts, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("gain = %v, want > 0", gain)
	}
	h, err := hcrowd.CondEntropy(d, experts, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((d.Entropy()-h)-gain) > 1e-12 {
		t.Error("CondEntropy and QualityGain disagree")
	}
}

func TestPublicSelectors(t *testing.T) {
	names := map[string]hcrowd.Selector{
		"Approx":     hcrowd.GreedySelector(),
		"OPT":        hcrowd.ExactSelector(),
		"Random":     hcrowd.RandomSelector(1),
		"MaxEntropy": hcrowd.MaxEntropySelector(),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("selector %q != %q", s.Name(), want)
		}
	}
}

func TestPublicAggregators(t *testing.T) {
	if len(hcrowd.Aggregators(1)) != 8 {
		t.Error("expected 8 baselines")
	}
	a, err := hcrowd.AggregatorByName("DS", 1)
	if err != nil || a.Name() != "DS" {
		t.Errorf("AggregatorByName: %v %v", a, err)
	}
	if hcrowd.MajorityVote().Name() != "MV" {
		t.Error("MajorityVote name")
	}
	if len(hcrowd.AggregatorNames()) != 8 {
		t.Error("AggregatorNames size")
	}
}

func TestPublicDatasetRoundTrip(t *testing.T) {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := hcrowd.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFacts() != ds.NumFacts() {
		t.Error("round trip changed size")
	}
}

func TestPublicTiers(t *testing.T) {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 10
	ds, err := hcrowd.GenerateSentiLike(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiers, cp, err := hcrowd.SplitTiers(ds.Crowd, ds.Theta, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp) == 0 {
		t.Fatal("no preliminary workers")
	}
	res, err := hcrowd.RunTiers(context.Background(), ds, hcrowd.Config{
		K:      1,
		Source: hcrowd.NewSimulatedSource(5, ds),
	}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < res.InitQuality {
		t.Error("tiers did not improve quality")
	}
}

func TestPublicEstimateAccuracies(t *testing.T) {
	c := hcrowd.Crowd{{ID: "w", Accuracy: 0.8}}
	rng := hcrowd.NewRand(1)
	truth := func(f int) bool { return f%2 == 0 }
	facts := make([]int, 200)
	for i := range facts {
		facts[i] = i
	}
	var fams []hcrowd.AnswerFamily
	for i := 0; i < 1; i++ {
		var fam hcrowd.AnswerFamily
		for _, w := range c {
			var vals []bool
			for _, f := range facts {
				v := truth(f)
				if rng.Float64() >= w.Accuracy {
					v = !v
				}
				vals = append(vals, v)
			}
			fam = append(fam, hcrowd.AnswerSet{Worker: w, Facts: facts, Values: vals})
		}
		fams = append(fams, fam)
	}
	est := hcrowd.EstimateAccuracies(c, fams, truth)
	if math.Abs(est[0].Accuracy-0.8) > 0.08 {
		t.Errorf("estimate %v, want ~0.8", est[0].Accuracy)
	}
}

func TestPublicBeliefConstructors(t *testing.T) {
	if _, err := hcrowd.NewBelief(3); err != nil {
		t.Fatal(err)
	}
	if _, err := hcrowd.BeliefFromMarginals([]float64{0.7, 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := hcrowd.BeliefFromJoint([]float64{0.5, 0.5, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := hcrowd.NewBelief(0); err == nil {
		t.Error("NewBelief(0) accepted")
	}
}

func TestPublicInitBeliefs(t *testing.T) {
	cfg := hcrowd.DefaultSentiConfig()
	cfg.NumTasks = 5
	ds, err := hcrowd.GenerateSentiLike(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := hcrowd.InitBeliefs(ds, hcrowd.MajorityVote(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 {
		t.Fatalf("beliefs = %d", len(bs))
	}
	uni, err := hcrowd.InitBeliefs(ds, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uni[0].Entropy()-5*math.Ln2) > 1e-9 {
		t.Error("uniform init entropy wrong")
	}
}

func TestPublicWideTask(t *testing.T) {
	ds, err := hcrowd.GenerateWideTask(1, 10, hcrowd.DefaultCrowdConfig(), 0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tasks) != 1 || len(ds.Tasks[0]) != 10 {
		t.Error("wide task shape wrong")
	}
}
