// Package admit generates seeded arrival schedules for streaming task
// admission. A streaming session (pipeline.Config.BudgetWindow > 0)
// receives its tasks over time instead of up front; this package turns
// a seed and a rate into the deterministic Poisson arrival process the
// streaming experiment driver and the hcload generator both feed from,
// so "same seed, same admission schedule" is reproducible across runs
// and across machines.
//
// Everything here is pure: the only state is the caller's *rand.Rand,
// and equal seeds yield identical schedules. The package is on the
// determinism lint list (internal/lint) — no wall-clock, no global RNG.
package admit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Poisson draws a Poisson(lambda) count with Knuth's multiplication
// method. exp(-lambda) underflows float64 near lambda ≈ 745, so large
// means are drawn as a sum of bounded chunks — the sum of independent
// Poissons is Poisson in the combined mean, and the chunked draw keeps
// the stream of rng consumptions deterministic for a given lambda.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0
	}
	const chunk = 500.0
	n := 0
	for lambda > chunk {
		n += knuthPoisson(rng, chunk)
		lambda -= chunk
	}
	return n + knuthPoisson(rng, lambda)
}

func knuthPoisson(rng *rand.Rand, lambda float64) int {
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Exp draws an exponential inter-arrival gap for a process with the
// given rate (mean gap 1/rate).
func Exp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	// Float64 is in [0, 1); flip to (0, 1] so the log is finite.
	return -math.Log(1-rng.Float64()) / rate
}

// Times returns the arrival times of a rate-`rate` Poisson process on
// [0, horizon), strictly increasing, built from exponential gaps.
func Times(rng *rand.Rand, rate, horizon float64) []float64 {
	var ts []float64
	for t := Exp(rng, rate); t < horizon; t += Exp(rng, rate) {
		ts = append(ts, t)
	}
	return ts
}

// Batches counts the arrivals of a rate-`rate` Poisson process inside
// each half-open window [boundaries[i], boundaries[i+1]). Boundaries
// must be non-decreasing with at least two entries; the result has
// len(boundaries)-1 counts. Conditioning on the window totals rather
// than binning Times keeps a schedule's shape stable when only the
// window layout changes.
func Batches(rng *rand.Rand, rate float64, boundaries []float64) ([]int, error) {
	if len(boundaries) < 2 {
		return nil, fmt.Errorf("admit: need at least 2 boundaries, got %d", len(boundaries))
	}
	counts := make([]int, len(boundaries)-1)
	for i := range counts {
		lo, hi := boundaries[i], boundaries[i+1]
		if hi < lo {
			return nil, fmt.Errorf("admit: boundaries not sorted: [%v, %v)", lo, hi)
		}
		counts[i] = Poisson(rng, rate*(hi-lo))
	}
	return counts, nil
}

// Schedule is a concrete admission plan: how many tasks arrive at each
// of a sequence of strictly increasing times.
type Schedule struct {
	// At[i] is the arrival time of batch i, in the caller's time unit
	// (seconds for hcload, round indices for in-process drivers).
	At []float64
	// Count[i] is the number of tasks arriving at At[i]; always >= 1.
	Count []int
}

// Total is the number of tasks across all batches.
func (s *Schedule) Total() int {
	n := 0
	for _, c := range s.Count {
		n += c
	}
	return n
}

// Len is the number of batches.
func (s *Schedule) Len() int { return len(s.At) }

// PoissonSchedule draws a Poisson arrival plan for `tasks` tasks at the
// given rate (tasks per time unit): arrival times come from the process
// on [0, tasks/rate·slack) and are truncated or padded so exactly
// `tasks` arrivals exist, then coalesced into batches at equal times.
// The padding falls at the end of the horizon, so a too-quiet draw
// still admits everything.
func PoissonSchedule(rng *rand.Rand, rate float64, tasks int) (*Schedule, error) {
	if tasks <= 0 {
		return nil, fmt.Errorf("admit: schedule needs tasks > 0, got %d", tasks)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("admit: schedule needs a finite rate > 0, got %v", rate)
	}
	// 1.5× the expected horizon leaves room for a slow draw before the
	// deterministic padding kicks in.
	horizon := 1.5 * float64(tasks) / rate
	ts := Times(rng, rate, horizon)
	if len(ts) > tasks {
		ts = ts[:tasks]
	}
	for len(ts) < tasks {
		ts = append(ts, horizon)
	}
	sort.Float64s(ts)
	s := &Schedule{}
	for _, t := range ts {
		//hclint:ignore float-eq exact-identity coalescing of duplicated padding times, not a tolerance comparison
		if n := len(s.At); n > 0 && s.At[n-1] == t {
			s.Count[n-1]++
			continue
		}
		s.At = append(s.At, t)
		s.Count = append(s.Count, 1)
	}
	return s, nil
}
