package admit

import (
	"math"
	"reflect"
	"testing"

	"hcrowd/internal/rngutil"
)

// TestPoissonDeterministicGivenSeed pins that equal seeds reproduce the
// identical draw sequence — the property every streaming schedule rests
// on — and that independent seeds actually differ.
func TestPoissonDeterministicGivenSeed(t *testing.T) {
	draw := func(seed int64) []int {
		rng := rngutil.New(seed)
		out := make([]int, 40)
		for i := range out {
			out[i] = Poisson(rng, 3.5)
		}
		return out
	}
	if a, b := draw(7), draw(7); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := draw(7), draw(8); reflect.DeepEqual(a, b) {
		t.Error("different seeds drew identical sequences")
	}
}

// TestPoissonMoments sanity-checks the sampler's mean and variance for
// both the direct Knuth regime and the chunked large-lambda regime.
func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 1200} {
		rng := rngutil.New(11)
		const n = 4000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := float64(Poisson(rng, lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Poisson mean == variance == lambda; 4000 samples hold both to
		// within ~10% at these sizes.
		if math.Abs(mean-lambda) > 0.1*lambda+0.2 {
			t.Errorf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.25*lambda+0.5 {
			t.Errorf("lambda=%v: variance %v", lambda, variance)
		}
	}
	if got := Poisson(rngutil.New(1), 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(rngutil.New(1), -3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

// TestTimesAndBatches pins the process helpers: Times is strictly
// increasing within the horizon, Batches validates its boundaries and
// matches the process rate in expectation.
func TestTimesAndBatches(t *testing.T) {
	ts := Times(rngutil.New(5), 2.0, 50)
	for i, x := range ts {
		if x < 0 || x >= 50 {
			t.Fatalf("arrival %d = %v outside [0, 50)", i, x)
		}
		if i > 0 && ts[i-1] >= x {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, ts[i-1], x)
		}
	}
	// rate 2 on a 50-wide horizon: ~100 arrivals.
	if len(ts) < 60 || len(ts) > 150 {
		t.Errorf("rate-2 process on [0,50) produced %d arrivals", len(ts))
	}

	counts, err := Batches(rngutil.New(6), 3.0, []float64{0, 10, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("counts = %v, want 3 windows", counts)
	}
	if counts[1] != 0 {
		t.Errorf("empty window drew %d arrivals", counts[1])
	}
	if _, err := Batches(rngutil.New(6), 1, []float64{0}); err == nil {
		t.Error("single boundary accepted")
	}
	if _, err := Batches(rngutil.New(6), 1, []float64{3, 1}); err == nil {
		t.Error("unsorted boundaries accepted")
	}
}

// TestPoissonScheduleDeterministicGivenSeed pins the full schedule
// constructor: exact task conservation, strictly increasing batch
// times, and byte-identical plans from equal seeds.
func TestPoissonScheduleDeterministicGivenSeed(t *testing.T) {
	build := func(seed int64) *Schedule {
		s, err := PoissonSchedule(rngutil.New(seed), 4.0, 37)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := build(9)
	if s.Total() != 37 {
		t.Fatalf("schedule carries %d tasks, want 37", s.Total())
	}
	if len(s.At) != len(s.Count) || s.Len() != len(s.At) {
		t.Fatalf("ragged schedule: %d times, %d counts", len(s.At), len(s.Count))
	}
	for i := range s.At {
		if s.Count[i] < 1 {
			t.Errorf("batch %d carries %d tasks", i, s.Count[i])
		}
		if i > 0 && s.At[i-1] >= s.At[i] {
			t.Errorf("batch times not strictly increasing at %d", i)
		}
	}
	if !reflect.DeepEqual(s, build(9)) {
		t.Error("same seed produced different schedules")
	}
	if _, err := PoissonSchedule(rngutil.New(1), 0, 5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PoissonSchedule(rngutil.New(1), 1, 0); err == nil {
		t.Error("zero tasks accepted")
	}
}
