// Package aggregate implements the eight label-aggregation baselines the
// paper evaluates against (§IV-B) plus the shared Aggregator interface the
// HC pipeline uses for belief initialization (§IV-C.4): MV, DS, ZC, GLAD,
// CRH, BWA, BCC and EBCC. Every algorithm consumes a sparse answer matrix
// and produces soft per-fact posteriors P(fact = true) together with its
// estimate of each worker's accuracy.
//
// The original reference implementations are Python (Zheng et al. [29],
// Li et al. [35]); these are from-scratch Go ports of the published
// algorithm descriptions built on the internal/mathx numeric substrate.
package aggregate

import (
	"errors"
	"fmt"

	"hcrowd/internal/dataset"
)

// Result is the output of an aggregation run.
type Result struct {
	// PTrue[f] is the posterior probability that fact f is true. Facts
	// with no answers get 0.5.
	PTrue []float64
	// WorkerAcc[w] is the algorithm's estimate of worker w's accuracy
	// (probability of agreeing with the inferred truth).
	WorkerAcc []float64
	// Iterations is the number of EM/Gibbs/gradient iterations performed.
	Iterations int
	// Converged reports whether the stopping tolerance was reached before
	// the iteration cap.
	Converged bool
}

// Labels thresholds the posteriors at 1/2 (Equation 5's majority rule
// applied to the soft output).
func (r *Result) Labels() []bool {
	out := make([]bool, len(r.PTrue))
	for f, p := range r.PTrue {
		out[f] = p >= 0.5
	}
	return out
}

// Accuracy returns the fraction of facts whose thresholded label matches
// the ground truth.
func (r *Result) Accuracy(truth []bool) (float64, error) {
	if len(truth) != len(r.PTrue) {
		return 0, fmt.Errorf("aggregate: truth has %d facts, result has %d", len(truth), len(r.PTrue))
	}
	if len(truth) == 0 {
		return 0, errors.New("aggregate: empty result")
	}
	correct := 0
	for f, l := range r.Labels() {
		if l == truth[f] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}

// Aggregator infers truth posteriors from a crowd answer matrix.
type Aggregator interface {
	// Name is the algorithm identifier used in experiment output; it
	// matches the paper's baseline names ("MV", "DS", "ZC", "GLAD",
	// "CRH", "BWA", "BCC", "EBCC").
	Name() string
	Aggregate(m *dataset.Matrix) (*Result, error)
}

// validate performs the shared input checking.
func validate(m *dataset.Matrix) error {
	if m == nil {
		return errors.New("aggregate: nil matrix")
	}
	if m.NumFacts() == 0 {
		return errors.New("aggregate: matrix has no facts")
	}
	return nil
}

// Registry returns one instance of every baseline in the paper's order,
// with default settings and the given seed for the sampling-based ones.
func Registry(seed int64) []Aggregator {
	return []Aggregator{
		MV{},
		NewDS(),
		NewZC(),
		NewGLAD(),
		NewCRH(),
		NewBWA(),
		NewBCC(seed),
		NewEBCC(seed),
	}
}

// ByName returns the baseline with the given name from Registry.
func ByName(name string, seed int64) (Aggregator, error) {
	for _, a := range Registry(seed) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("aggregate: unknown aggregator %q", name)
}

// Names lists the registry names in order.
func Names() []string {
	names := make([]string, 0, 8)
	for _, a := range Registry(0) {
		names = append(names, a.Name())
	}
	return names
}
