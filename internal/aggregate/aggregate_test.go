package aggregate

import (
	"math"
	"testing"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// synthMatrix builds a matrix of nF facts answered by workers with the
// given accuracies; returns the matrix and ground truth.
func synthMatrix(t *testing.T, seed int64, nF int, accs []float64) (*dataset.Matrix, []bool) {
	t.Helper()
	rng := rngutil.New(seed)
	truth := make([]bool, nF)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	ids := make([]string, len(accs))
	for i := range ids {
		ids[i] = string(rune('a' + i))
	}
	m, err := dataset.NewMatrix(nF, ids)
	if err != nil {
		t.Fatal(err)
	}
	for w, acc := range accs {
		for f := 0; f < nF; f++ {
			v := truth[f]
			if !rngutil.Bernoulli(rng, acc) {
				v = !v
			}
			if err := m.Add(f, w, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, truth
}

func accuracyOf(t *testing.T, a Aggregator, m *dataset.Matrix, truth []bool) float64 {
	t.Helper()
	res, err := a.Aggregate(m)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	acc, err := res.Accuracy(truth)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return acc
}

func TestAllAggregatorsBeatChance(t *testing.T) {
	m, truth := synthMatrix(t, 1, 300, []float64{0.75, 0.7, 0.8, 0.65, 0.72})
	for _, a := range Registry(42) {
		acc := accuracyOf(t, a, m, truth)
		if acc < 0.8 {
			t.Errorf("%s accuracy %v below 0.8 on easy instance", a.Name(), acc)
		}
	}
}

func TestAllAggregatorsResultShape(t *testing.T) {
	m, _ := synthMatrix(t, 2, 50, []float64{0.7, 0.9})
	for _, a := range Registry(42) {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(res.PTrue) != 50 {
			t.Errorf("%s: PTrue len %d", a.Name(), len(res.PTrue))
		}
		if len(res.WorkerAcc) != 2 {
			t.Errorf("%s: WorkerAcc len %d", a.Name(), len(res.WorkerAcc))
		}
		for f, p := range res.PTrue {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Errorf("%s: PTrue[%d] = %v", a.Name(), f, p)
			}
		}
		for w, p := range res.WorkerAcc {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Errorf("%s: WorkerAcc[%d] = %v", a.Name(), w, p)
			}
		}
		if res.Iterations < 1 {
			t.Errorf("%s: Iterations = %d", a.Name(), res.Iterations)
		}
	}
}

func TestAllAggregatorsRejectNil(t *testing.T) {
	for _, a := range Registry(42) {
		if _, err := a.Aggregate(nil); err == nil {
			t.Errorf("%s accepted nil matrix", a.Name())
		}
	}
}

func TestWeightedModelsBeatMVWithHeterogeneousCrowd(t *testing.T) {
	// One excellent worker among noisy ones: reliability-aware models must
	// beat plain majority voting.
	m, truth := synthMatrix(t, 3, 600, []float64{0.95, 0.58, 0.58, 0.58, 0.58})
	mvAcc := accuracyOf(t, MV{}, m, truth)
	for _, a := range []Aggregator{NewDS(), NewZC(), NewBWA(), NewBCC(7), NewEBCC(7)} {
		acc := accuracyOf(t, a, m, truth)
		if acc < mvAcc {
			t.Errorf("%s accuracy %v below MV %v despite expert present", a.Name(), acc, mvAcc)
		}
	}
}

func TestWorkerAccuracyRecovery(t *testing.T) {
	// DS, ZC and BWA must rank the strong worker above the weak ones.
	m, _ := synthMatrix(t, 4, 500, []float64{0.95, 0.6, 0.6, 0.6})
	for _, a := range []Aggregator{NewDS(), NewZC(), NewBWA(), NewCRH(), NewBCC(5), NewEBCC(5)} {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		best := 0
		for w := 1; w < 4; w++ {
			if res.WorkerAcc[w] > res.WorkerAcc[best] {
				best = w
			}
		}
		if best != 0 {
			t.Errorf("%s ranked worker %d best (%v), want worker 0", a.Name(), best, res.WorkerAcc)
		}
	}
}

func TestDSRecoversAccuracyMagnitude(t *testing.T) {
	m, _ := synthMatrix(t, 5, 800, []float64{0.9, 0.65, 0.65, 0.7, 0.75})
	res, err := NewDS().Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WorkerAcc[0]-0.9) > 0.08 {
		t.Errorf("DS worker 0 accuracy %v, want ~0.9", res.WorkerAcc[0])
	}
	if math.Abs(res.WorkerAcc[1]-0.65) > 0.08 {
		t.Errorf("DS worker 1 accuracy %v, want ~0.65", res.WorkerAcc[1])
	}
	if !res.Converged {
		t.Error("DS did not converge on easy instance")
	}
}

func TestMVSimpleMajority(t *testing.T) {
	m, err := dataset.NewMatrix(2, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// Fact 0: 2 yes 1 no; fact 1: no answers.
	_ = m.Add(0, 0, true)
	_ = m.Add(0, 1, true)
	_ = m.Add(0, 2, false)
	res, err := (MV{}).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PTrue[0]-2.0/3.0) > 1e-12 {
		t.Errorf("PTrue[0] = %v, want 2/3", res.PTrue[0])
	}
	if res.PTrue[1] != 0.5 {
		t.Errorf("PTrue[1] = %v, want 0.5 (no answers)", res.PTrue[1])
	}
}

func TestUnanimousAnswersConvergeToCertainty(t *testing.T) {
	// Every worker agrees on everything: posteriors must be extreme in
	// the voted direction for every algorithm.
	m, err := dataset.NewMatrix(30, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 30; f++ {
		want := f%2 == 0
		for w := 0; w < 4; w++ {
			_ = m.Add(f, w, want)
		}
	}
	for _, a := range Registry(11) {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for f, p := range res.PTrue {
			want := f%2 == 0
			if want && p < 0.6 || !want && p > 0.4 {
				t.Errorf("%s: unanimous fact %d got %v", a.Name(), f, p)
			}
		}
	}
}

func TestLabelFlipSymmetry(t *testing.T) {
	// Flipping every answer must flip the inferred posteriors for the
	// symmetric models (MV, ZC, BWA, CRH).
	m, _ := synthMatrix(t, 6, 200, []float64{0.8, 0.7, 0.75})
	flipped, err := dataset.NewMatrix(200, m.WorkerIDs())
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 200; f++ {
		for _, o := range m.ByFact(f) {
			_ = flipped.Add(f, o.Worker, !o.Value)
		}
	}
	for _, a := range []Aggregator{MV{}, NewZC(), NewBWA(), NewCRH()} {
		r1, err := a.Aggregate(m)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Aggregate(flipped)
		if err != nil {
			t.Fatal(err)
		}
		for f := range r1.PTrue {
			if math.Abs(r1.PTrue[f]-(1-r2.PTrue[f])) > 1e-6 {
				t.Errorf("%s: flip symmetry broken at fact %d: %v vs %v",
					a.Name(), f, r1.PTrue[f], r2.PTrue[f])
				break
			}
		}
	}
}

func TestBCCDeterministicGivenSeed(t *testing.T) {
	m, _ := synthMatrix(t, 7, 100, []float64{0.8, 0.7})
	r1, err := NewBCC(99).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewBCC(99).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	for f := range r1.PTrue {
		if r1.PTrue[f] != r2.PTrue[f] {
			t.Fatal("BCC not deterministic for fixed seed")
		}
	}
}

func TestEBCCDeterministicGivenSeed(t *testing.T) {
	m, _ := synthMatrix(t, 8, 100, []float64{0.8, 0.7})
	r1, err := NewEBCC(99).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewEBCC(99).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	for f := range r1.PTrue {
		if r1.PTrue[f] != r2.PTrue[f] {
			t.Fatal("EBCC not deterministic for fixed seed")
		}
	}
}

func TestEBCCHandlesCorrelatedWorkers(t *testing.T) {
	// Three workers are exact copies of one error process (a clique);
	// two independents are individually better. EBCC's subtype model is
	// built for this; it must at least match MV here.
	rng := rngutil.New(9)
	nF := 400
	truth := make([]bool, nF)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	m, err := dataset.NewMatrix(nF, []string{"c1", "c2", "c3", "i1", "i2"})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nF; f++ {
		// Clique answer: correct with probability 0.62, shared by c1-c3.
		cv := truth[f]
		if !rngutil.Bernoulli(rng, 0.62) {
			cv = !cv
		}
		for w := 0; w < 3; w++ {
			_ = m.Add(f, w, cv)
		}
		for w := 3; w < 5; w++ {
			v := truth[f]
			if !rngutil.Bernoulli(rng, 0.85) {
				v = !v
			}
			_ = m.Add(f, w, v)
		}
	}
	mvAcc := accuracyOf(t, MV{}, m, truth)
	ebccAcc := accuracyOf(t, NewEBCC(3), m, truth)
	if ebccAcc < mvAcc-0.02 {
		t.Errorf("EBCC %v worse than MV %v on correlated crowd", ebccAcc, mvAcc)
	}
}

func TestRegistryAndByName(t *testing.T) {
	reg := Registry(1)
	if len(reg) != 8 {
		t.Fatalf("registry has %d entries, want 8", len(reg))
	}
	want := []string{"MV", "DS", "ZC", "GLAD", "CRH", "BWA", "BCC", "EBCC"}
	for i, a := range reg {
		if a.Name() != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, a.Name(), want[i])
		}
	}
	for _, n := range want {
		a, err := ByName(n, 1)
		if err != nil || a.Name() != n {
			t.Errorf("ByName(%s) = %v, %v", n, a, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	names := Names()
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %s", i, names[i])
		}
	}
}

func TestResultLabelsAndAccuracy(t *testing.T) {
	r := &Result{PTrue: []float64{0.9, 0.2, 0.5}}
	labels := r.Labels()
	if !labels[0] || labels[1] || !labels[2] {
		t.Errorf("Labels = %v", labels)
	}
	acc, err := r.Accuracy([]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Errorf("Accuracy = %v", acc)
	}
	if _, err := r.Accuracy([]bool{true}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSparseMatrixHandled(t *testing.T) {
	// Workers answering disjoint subsets must not break any algorithm.
	rng := rngutil.New(10)
	nF := 200
	truth := make([]bool, nF)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	m, err := dataset.NewMatrix(nF, []string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nF; f++ {
		for w := 0; w < 6; w++ {
			if rng.Float64() > 0.4 {
				continue
			}
			v := truth[f]
			if !rngutil.Bernoulli(rng, 0.8) {
				v = !v
			}
			_ = m.Add(f, w, v)
		}
	}
	for _, a := range Registry(13) {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatalf("%s on sparse matrix: %v", a.Name(), err)
		}
		acc, _ := res.Accuracy(truth)
		if acc < 0.6 {
			t.Errorf("%s sparse accuracy %v", a.Name(), acc)
		}
	}
}

func TestIterativeAggregatorsConverge(t *testing.T) {
	m, _ := synthMatrix(t, 12, 150, []float64{0.85, 0.75, 0.7})
	for _, a := range []Aggregator{NewDS(), NewZC(), NewCRH(), NewBWA(), NewEBCC(4)} {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s failed to converge in default iterations (%d)", a.Name(), res.Iterations)
		}
	}
}

func TestGLADDifficultyAdvantage(t *testing.T) {
	// GLAD runs and produces sane output on a mixed-difficulty instance.
	m, truth := synthMatrix(t, 14, 300, []float64{0.8, 0.75, 0.7, 0.85})
	acc := accuracyOf(t, NewGLAD(), m, truth)
	if acc < 0.85 {
		t.Errorf("GLAD accuracy %v", acc)
	}
}
