package aggregate

import (
	"math/rand"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// BCC is Bayesian classifier combination [36] via collapsed Gibbs
// sampling: true labels z_f are categorical with a Beta-prior class
// proportion, every worker has a 2×2 confusion matrix with Beta-prior
// rows favoring the diagonal, and both are integrated out analytically so
// the sampler only walks the label vector. The posterior P(fact true) is
// the empirical frequency of z_f = true across retained samples.
type BCC struct {
	Seed    int64
	BurnIn  int
	Samples int
	// ClassPrior is the symmetric Beta/Dirichlet hyperparameter on the
	// class proportion.
	ClassPrior float64
	// DiagPrior and OffPrior are the Beta hyperparameters on each
	// confusion row: prior mass on answering correctly vs. incorrectly.
	DiagPrior, OffPrior float64
}

// NewBCC returns BCC with the customary settings and the given seed.
func NewBCC(seed int64) BCC {
	return BCC{Seed: seed, BurnIn: 60, Samples: 140, ClassPrior: 1, DiagPrior: 2, OffPrior: 1}
}

// Name implements Aggregator.
func (BCC) Name() string { return "BCC" }

// Aggregate implements Aggregator.
func (a BCC) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	rng := rand.New(rand.NewSource(a.Seed))

	// State: current labels plus sufficient statistics.
	z := make([]bool, nF)
	classCnt := [2]float64{}          // #facts per class
	conf := make([][2][2]float64, nW) // counts: [truth][answer]
	for f := 0; f < nF; f++ {
		share, _ := m.VoteShare(f)
		z[f] = share >= 0.5
		ci := btoi(z[f])
		classCnt[ci]++
		for _, o := range m.ByFact(f) {
			conf[o.Worker][ci][btoi(o.Value)]++
		}
	}

	trueFreq := make([]float64, nF)
	total := a.BurnIn + a.Samples
	for sweep := 0; sweep < total; sweep++ {
		for f := 0; f < nF; f++ {
			// Remove fact f from the statistics.
			ci := btoi(z[f])
			classCnt[ci]--
			obs := m.ByFact(f)
			for _, o := range obs {
				conf[o.Worker][ci][btoi(o.Value)]--
			}
			// Collapsed conditional for both classes.
			var w [2]float64
			for c := 0; c < 2; c++ {
				p := classCnt[c] + a.ClassPrior
				for _, o := range obs {
					row := conf[o.Worker][c]
					den := row[0] + row[1] + a.DiagPrior + a.OffPrior
					var num float64
					if btoi(o.Value) == c {
						num = row[btoi(o.Value)] + a.DiagPrior
					} else {
						num = row[btoi(o.Value)] + a.OffPrior
					}
					p *= num / den
				}
				w[c] = p
			}
			c := rngutil.Categorical(rng, w[:])
			z[f] = c == 1
			classCnt[c]++
			for _, o := range obs {
				conf[o.Worker][c][btoi(o.Value)]++
			}
		}
		if sweep >= a.BurnIn {
			for f, v := range z {
				if v {
					trueFreq[f]++
				}
			}
		}
	}
	p := make([]float64, nF)
	for f := range p {
		p[f] = trueFreq[f] / float64(a.Samples)
	}
	// Posterior-mean worker accuracy from the final confusion counts.
	acc := make([]float64, nW)
	for w := 0; w < nW; w++ {
		diag := conf[w][0][0] + conf[w][1][1] + 2*a.DiagPrior
		all := conf[w][0][0] + conf[w][0][1] + conf[w][1][0] + conf[w][1][1] +
			2*(a.DiagPrior+a.OffPrior)
		acc[w] = diag / all
	}
	return &Result{PTrue: p, WorkerAcc: acc, Iterations: total, Converged: true}, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
