package aggregate

import (
	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// BWA is the Bayesian weighted average of Li et al. [35]: an EM scheme
// with conjugate Beta priors on each worker's accuracy and a Beta prior
// on the class proportion. Unlike ZC's maximum-likelihood reliabilities,
// every M-step is a posterior mean under the prior, which is what lets
// BWA adjudicate highly redundant annotations without overfitting
// low-activity workers.
type BWA struct {
	MaxIter int
	Tol     float64
	// PriorA/PriorB parameterize the Beta prior on worker accuracy
	// (defaults 4, 1: workers are assumed competent a priori, per the
	// paper's conjugate construction).
	PriorA, PriorB float64
}

// NewBWA returns BWA with the published defaults.
func NewBWA() BWA { return BWA{MaxIter: 200, Tol: 1e-5, PriorA: 4, PriorB: 1} }

// Name implements Aggregator.
func (BWA) Name() string { return "BWA" }

// Aggregate implements Aggregator.
func (a BWA) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	mu := make([]float64, nF)
	for f := range mu {
		share, _ := m.VoteShare(f)
		mu[f] = share
	}
	acc := make([]float64, nW)
	mathx.Fill(acc, a.PriorA/(a.PriorA+a.PriorB))
	prior := 0.5
	prev := mathx.Clone(mu)
	iter := 0
	converged := false
	for ; iter < a.MaxIter; iter++ {
		// M-step: posterior-mean accuracy under Beta(PriorA, PriorB).
		for w := 0; w < nW; w++ {
			var agree, n float64
			for _, o := range m.ByWorker(w) {
				n++
				if o.Value {
					agree += mu[o.Fact]
				} else {
					agree += 1 - mu[o.Fact]
				}
			}
			acc[w] = mathx.Clamp((agree+a.PriorA)/(n+a.PriorA+a.PriorB), 1e-6, 1-1e-6)
		}
		// Class proportion under Beta(1,1).
		var yes float64
		for _, p := range mu {
			yes += p
		}
		prior = mathx.Clamp((yes+1)/(float64(nF)+2), 1e-6, 1-1e-6)

		// E-step.
		for f := 0; f < nF; f++ {
			lt := mathx.Log(prior)
			lf := mathx.Log(1 - prior)
			for _, o := range m.ByFact(f) {
				r := acc[o.Worker]
				if o.Value {
					lt += mathx.Log(r)
					lf += mathx.Log(1 - r)
				} else {
					lt += mathx.Log(1 - r)
					lf += mathx.Log(r)
				}
			}
			logw := []float64{lf, lt}
			mathx.SoftmaxInPlace(logw)
			mu[f] = logw[1]
		}
		if mathx.MaxAbsDiff(mu, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, mu)
	}
	return &Result{PTrue: mu, WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}
