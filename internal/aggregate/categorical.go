package aggregate

import (
	"errors"
	"fmt"

	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// CatResult is the outcome of categorical (multi-class) truth inference.
type CatResult struct {
	// Posterior[i] is the class distribution inferred for item i.
	Posterior [][]float64
	// WorkerAcc[w] estimates the probability worker w labels the true
	// class.
	WorkerAcc  []float64
	Iterations int
	Converged  bool
}

// Labels returns the MAP class per item.
func (r *CatResult) Labels() []int {
	out := make([]int, len(r.Posterior))
	for i, p := range r.Posterior {
		out[i] = mathx.ArgMax(p)
	}
	return out
}

// Accuracy returns the fraction of items whose MAP class matches truth.
func (r *CatResult) Accuracy(truth []int) (float64, error) {
	if len(truth) != len(r.Posterior) {
		return 0, fmt.Errorf("aggregate: truth has %d items, result has %d", len(truth), len(r.Posterior))
	}
	if len(truth) == 0 {
		return 0, errors.New("aggregate: empty result")
	}
	correct := 0
	for i, l := range r.Labels() {
		if l == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}

// CatAggregator infers multi-class truth from a categorical matrix.
type CatAggregator interface {
	Name() string
	AggregateCat(m *dataset.CatMatrix) (*CatResult, error)
}

// CatMV is multi-class majority voting: the posterior is the normalized
// vote histogram per item (uniform when unlabeled).
type CatMV struct{}

// Name implements CatAggregator.
func (CatMV) Name() string { return "CatMV" }

// AggregateCat implements CatAggregator.
func (CatMV) AggregateCat(m *dataset.CatMatrix) (*CatResult, error) {
	if m == nil || m.NumItems() == 0 {
		return nil, errors.New("aggregate: nil or empty cat matrix")
	}
	K := m.NumClasses()
	post := make([][]float64, m.NumItems())
	for i := range post {
		p := make([]float64, K)
		obs := m.ByItem(i)
		if len(obs) == 0 {
			mathx.Fill(p, 1/float64(K))
		} else {
			for _, o := range obs {
				p[o.Label]++
			}
			mathx.Normalize(p)
		}
		post[i] = p
	}
	acc := make([]float64, m.NumWorkers())
	labels := (&CatResult{Posterior: post}).Labels()
	for w := range acc {
		agree, total := 1.0, 2.0
		for _, o := range m.ByWorker(w) {
			total++
			if o.Label == labels[o.Item] {
				agree++
			}
		}
		acc[w] = agree / total
	}
	return &CatResult{Posterior: post, WorkerAcc: acc, Iterations: 1, Converged: true}, nil
}

// CatDS is multi-class Dawid–Skene [31]: EM over per-worker K×K
// confusion matrices and a class prior, the original formulation the
// binary DS above specializes.
type CatDS struct {
	MaxIter int
	Tol     float64
}

// NewCatDS returns CatDS with the customary settings.
func NewCatDS() CatDS { return CatDS{MaxIter: 200, Tol: 1e-5} }

// Name implements CatAggregator.
func (CatDS) Name() string { return "CatDS" }

// AggregateCat implements CatAggregator.
func (a CatDS) AggregateCat(m *dataset.CatMatrix) (*CatResult, error) {
	if m == nil || m.NumItems() == 0 {
		return nil, errors.New("aggregate: nil or empty cat matrix")
	}
	nI, nW, K := m.NumItems(), m.NumWorkers(), m.NumClasses()

	// mu[i] = posterior over classes, initialized from vote shares.
	mu := make([][]float64, nI)
	for i := range mu {
		p := make([]float64, K)
		for _, o := range m.ByItem(i) {
			p[o.Label]++
		}
		for c := range p {
			p[c] += 0.1 // smoothing keeps unlabeled items uniform-ish
		}
		mathx.Normalize(p)
		mu[i] = p
	}
	// conf[w][c][l]: P(worker w answers l | true class c).
	conf := make([][][]float64, nW)
	for w := range conf {
		conf[w] = make([][]float64, K)
		for c := range conf[w] {
			conf[w][c] = make([]float64, K)
		}
	}
	prior := make([]float64, K)
	prev := make([]float64, nI)
	cur := make([]float64, nI)
	iter := 0
	converged := false
	for ; iter < a.MaxIter; iter++ {
		// M-step.
		mathx.Fill(prior, 0)
		for i := range mu {
			for c, p := range mu[i] {
				prior[c] += p
			}
		}
		for c := range prior {
			prior[c] += 1 // add-one
		}
		mathx.Normalize(prior)
		for w := 0; w < nW; w++ {
			for c := 0; c < K; c++ {
				mathx.Fill(conf[w][c], 1) // add-one smoothing
			}
			for _, o := range m.ByWorker(w) {
				for c := 0; c < K; c++ {
					conf[w][c][o.Label] += mu[o.Item][c]
				}
			}
			for c := 0; c < K; c++ {
				mathx.Normalize(conf[w][c])
			}
		}
		// E-step in the log domain.
		for i := 0; i < nI; i++ {
			logw := make([]float64, K)
			for c := 0; c < K; c++ {
				logw[c] = mathx.Log(prior[c])
			}
			for _, o := range m.ByItem(i) {
				for c := 0; c < K; c++ {
					logw[c] += mathx.Log(conf[o.Worker][c][o.Label])
				}
			}
			mathx.SoftmaxInPlace(logw)
			copy(mu[i], logw)
			cur[i] = logw[mathx.ArgMax(logw)]
		}
		if iter > 0 && mathx.MaxAbsDiff(cur, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, cur)
	}
	acc := make([]float64, nW)
	for w := range acc {
		var diag float64
		for c := 0; c < K; c++ {
			diag += prior[c] * conf[w][c][c]
		}
		acc[w] = mathx.Clamp(diag, 0, 1)
	}
	return &CatResult{Posterior: mu, WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}

// CatInit adapts a categorical aggregator into a binary Aggregator for
// one-hot datasets: it reconstructs the categorical matrix from the
// one-hot answers, infers class posteriors, and flattens them back to
// per-fact marginals, so CatDS can initialize the HC pipeline on
// multi-class data (pair with belief.OneHotPrior).
type CatInit struct {
	Cat   CatAggregator
	Tasks [][]int
}

// Name implements Aggregator.
func (c CatInit) Name() string { return c.Cat.Name() }

// Aggregate implements Aggregator.
func (c CatInit) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	if c.Cat == nil || len(c.Tasks) == 0 {
		return nil, errors.New("aggregate: CatInit needs Cat and Tasks")
	}
	cat, err := dataset.CatFromOneHot(m, c.Tasks)
	if err != nil {
		return nil, err
	}
	res, err := c.Cat.AggregateCat(cat)
	if err != nil {
		return nil, err
	}
	pTrue := make([]float64, m.NumFacts())
	for i := range pTrue {
		pTrue[i] = 0.5 // facts outside any task stay uninformative
	}
	for i, facts := range c.Tasks {
		for cls, f := range facts {
			pTrue[f] = res.Posterior[i][cls]
		}
	}
	return &Result{
		PTrue:      pTrue,
		WorkerAcc:  res.WorkerAcc,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}, nil
}
