package aggregate

import (
	"math"
	"testing"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// synthCatMatrix simulates workers labeling nI items over K classes.
func synthCatMatrix(t *testing.T, seed int64, nI, K int, accs []float64) (*dataset.CatMatrix, []int) {
	t.Helper()
	rng := rngutil.New(seed)
	truth := make([]int, nI)
	for i := range truth {
		truth[i] = rng.Intn(K)
	}
	ids := make([]string, len(accs))
	for w := range ids {
		ids[w] = string(rune('a' + w))
	}
	m, err := dataset.NewCatMatrix(nI, K, ids)
	if err != nil {
		t.Fatal(err)
	}
	for w, acc := range accs {
		for i := 0; i < nI; i++ {
			label := truth[i]
			if rng.Float64() >= acc {
				label = (label + 1 + rng.Intn(K-1)) % K
			}
			if err := m.Add(i, w, label); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, truth
}

func TestCatMVAndCatDSRecoverTruth(t *testing.T) {
	m, truth := synthCatMatrix(t, 1, 400, 4, []float64{0.8, 0.7, 0.75, 0.65})
	for _, a := range []CatAggregator{CatMV{}, NewCatDS()} {
		res, err := a.AggregateCat(m)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		acc, err := res.Accuracy(truth)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.9 {
			t.Errorf("%s accuracy %v", a.Name(), acc)
		}
		for i, p := range res.Posterior {
			var sum float64
			for _, v := range p {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("%s: bad posterior at item %d: %v", a.Name(), i, p)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: posterior sums to %v", a.Name(), sum)
			}
		}
	}
}

func TestCatDSBeatsCatMVWithWeakMajority(t *testing.T) {
	// One strong labeler among noisy ones — confusion modeling must help.
	m, truth := synthCatMatrix(t, 2, 600, 3, []float64{0.95, 0.45, 0.45, 0.45})
	mvRes, err := (CatMV{}).AggregateCat(m)
	if err != nil {
		t.Fatal(err)
	}
	dsRes, err := NewCatDS().AggregateCat(m)
	if err != nil {
		t.Fatal(err)
	}
	mvAcc, _ := mvRes.Accuracy(truth)
	dsAcc, _ := dsRes.Accuracy(truth)
	if dsAcc < mvAcc {
		t.Errorf("CatDS %v below CatMV %v despite expert present", dsAcc, mvAcc)
	}
	// CatDS must rank the strong worker best.
	best := 0
	for w := 1; w < 4; w++ {
		if dsRes.WorkerAcc[w] > dsRes.WorkerAcc[best] {
			best = w
		}
	}
	if best != 0 {
		t.Errorf("CatDS worker ranking: %v", dsRes.WorkerAcc)
	}
}

func TestCatDSRecoversAsymmetricConfusion(t *testing.T) {
	// A worker who systematically confuses class 1 with class 2 but is
	// perfect elsewhere: the per-class confusion must capture it and the
	// posterior must exploit the structure. Three structured workers
	// provide redundancy.
	rng := rngutil.New(3)
	K := 3
	nI := 600
	truth := make([]int, nI)
	for i := range truth {
		truth[i] = rng.Intn(K)
	}
	m, err := dataset.NewCatMatrix(nI, K, []string{"s1", "s2", "u"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nI; i++ {
		for w := 0; w < 2; w++ { // structured workers
			label := truth[i]
			if label == 1 && rng.Float64() < 0.45 {
				label = 2
			}
			_ = m.Add(i, w, label)
		}
		// A uniform 0.6 worker.
		label := truth[i]
		if rng.Float64() >= 0.6 {
			label = (label + 1 + rng.Intn(K-1)) % K
		}
		_ = m.Add(i, 2, label)
	}
	res, err := NewCatDS().AggregateCat(m)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := res.Accuracy(truth)
	mvRes, _ := (CatMV{}).AggregateCat(m)
	mvAcc, _ := mvRes.Accuracy(truth)
	if acc < mvAcc-0.01 {
		t.Errorf("CatDS %v below CatMV %v on structured confusion", acc, mvAcc)
	}
}

func TestCatFromOneHotRoundTrip(t *testing.T) {
	cfg := dataset.DefaultMultiClassConfig()
	cfg.NumItems = 60
	ds, err := dataset.MultiClass(rngutil.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := dataset.CatFromOneHot(ds.Prelim, ds.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumItems() != 60 || cat.NumClasses() != cfg.NumClasses {
		t.Fatalf("shape: %d items, %d classes", cat.NumItems(), cat.NumClasses())
	}
	// Every preliminary worker labeled every item exactly once.
	if cat.NumAnswers() != 60*ds.Prelim.NumWorkers() {
		t.Errorf("answers = %d", cat.NumAnswers())
	}
	// The reconstructed picks match the one-hot Yes positions.
	for i, facts := range ds.Tasks {
		for _, o := range cat.ByItem(i) {
			f := facts[o.Label]
			yes := false
			for _, bo := range ds.Prelim.ByFact(f) {
				if bo.Worker == o.Worker && bo.Value {
					yes = true
				}
			}
			if !yes {
				t.Fatalf("item %d: reconstructed pick %d has no Yes answer", i, o.Label)
			}
		}
	}
}

func TestCatInitDrivesPipelineInit(t *testing.T) {
	cfg := dataset.DefaultMultiClassConfig()
	cfg.NumItems = 80
	ds, err := dataset.MultiClass(rngutil.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := CatInit{Cat: NewCatDS(), Tasks: ds.Tasks}
	res, err := init.Aggregate(ds.Prelim)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PTrue) != ds.NumFacts() {
		t.Fatalf("PTrue len %d", len(res.PTrue))
	}
	acc, err := res.Accuracy(ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	// Must be competitive with binary MV on the same data (the class
	// structure and confusion modeling trade blows with raw redundancy
	// on easy instances; a large deficit would indicate a bridge bug).
	mvRes, _ := (MV{}).Aggregate(ds.Prelim)
	mvAcc, _ := mvRes.Accuracy(ds.Truth)
	if acc < mvAcc-0.03 {
		t.Errorf("CatDS init %v far below binary MV %v", acc, mvAcc)
	}
	// Per-item class posteriors flattened: each task's marginals sum to 1.
	for _, facts := range ds.Tasks {
		var sum float64
		for _, f := range facts {
			sum += res.PTrue[f]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("task marginals sum to %v", sum)
		}
	}
}

func TestCatMatrixValidation(t *testing.T) {
	if _, err := dataset.NewCatMatrix(0, 3, []string{"a"}); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := dataset.NewCatMatrix(3, 1, []string{"a"}); err == nil {
		t.Error("single class accepted")
	}
	m, err := dataset.NewCatMatrix(3, 3, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 0, 5); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := m.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 0, 2); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestCatAggregatorsRejectNil(t *testing.T) {
	for _, a := range []CatAggregator{CatMV{}, NewCatDS()} {
		if _, err := a.AggregateCat(nil); err == nil {
			t.Errorf("%s accepted nil", a.Name())
		}
	}
	if _, err := (CatInit{}).Aggregate(nil); err == nil {
		t.Error("CatInit accepted nil")
	}
}
