package aggregate

import (
	"math"

	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// CRH is the conflict-resolution truth-discovery framework of Li et
// al. [34]: it alternates (1) truth update — a weighted vote of the
// sources — and (2) source-weight update — w_s = log(Σ_s' loss_s' /
// loss_s), where loss is the 0-1 distance between the source's answers
// and the current truths. Workers who disagree with the emerging
// consensus lose weight multiplicatively.
type CRH struct {
	MaxIter int
	Tol     float64
}

// NewCRH returns CRH with the customary settings.
func NewCRH() CRH { return CRH{MaxIter: 200, Tol: 1e-5} }

// Name implements Aggregator.
func (CRH) Name() string { return "CRH" }

// Aggregate implements Aggregator.
func (a CRH) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	weight := make([]float64, nW)
	mathx.Fill(weight, 1)
	truths := make([]float64, nF) // weighted vote share in [0,1]
	for f := range truths {
		share, _ := m.VoteShare(f)
		truths[f] = share
	}
	prev := mathx.Clone(truths)
	iter := 0
	converged := false
	for ; iter < a.MaxIter; iter++ {
		// Source weight update from 0-1 losses against hard truths.
		losses := make([]float64, nW)
		var total float64
		for w := 0; w < nW; w++ {
			loss := 0.5 // smoothing: half a disagreement
			for _, o := range m.ByWorker(w) {
				if o.Value != (truths[o.Fact] >= 0.5) {
					loss++
				}
			}
			losses[w] = loss
			total += loss
		}
		for w := 0; w < nW; w++ {
			weight[w] = math.Log(total / losses[w])
			if weight[w] < 0 {
				weight[w] = 0 // worse-than-everything sources are ignored
			}
		}
		// Truth update: weighted vote.
		for f := 0; f < nF; f++ {
			var yes, den float64
			for _, o := range m.ByFact(f) {
				den += weight[o.Worker]
				if o.Value {
					yes += weight[o.Worker]
				}
			}
			if den == 0 {
				truths[f] = 0.5
			} else {
				truths[f] = yes / den
			}
		}
		if mathx.MaxAbsDiff(truths, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, truths)
	}
	// Report a [0.5, 1] accuracy per worker from its final agreement.
	acc := make([]float64, nW)
	for w := 0; w < nW; w++ {
		agree, total := 1.0, 2.0
		for _, o := range m.ByWorker(w) {
			total++
			if o.Value == (truths[o.Fact] >= 0.5) {
				agree++
			}
		}
		acc[w] = agree / total
	}
	return &Result{PTrue: truths, WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}
