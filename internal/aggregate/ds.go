package aggregate

import (
	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// DS is the Dawid–Skene estimator [31]: EM over per-worker 2×2 confusion
// matrices and a class prior. The E-step computes the posterior of each
// fact's truth given the current confusions; the M-step re-estimates each
// worker's confusion matrix and the prior from the posteriors, with
// add-one smoothing so a worker never gets a degenerate row.
type DS struct {
	MaxIter int
	Tol     float64
}

// NewDS returns DS with the customary settings.
func NewDS() DS { return DS{MaxIter: 200, Tol: 1e-5} }

// Name implements Aggregator.
func (DS) Name() string { return "DS" }

// Aggregate implements Aggregator.
func (a DS) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()

	// mu[f] = posterior P(fact f is true); initialized from majority vote.
	mu := make([]float64, nF)
	for f := range mu {
		share, _ := m.VoteShare(f)
		mu[f] = share
	}
	// conf[w][c][a]: P(worker w answers a | truth c); c,a ∈ {0,1}.
	conf := make([][2][2]float64, nW)
	prior := 0.5
	iter := 0
	converged := false
	prev := mathx.Clone(mu)
	for ; iter < a.MaxIter; iter++ {
		// M-step (first, from current mu — the vote init plays the role
		// of the 0th E-step as in Dawid & Skene's original scheme).
		var priorNum, priorDen float64
		for w := 0; w < nW; w++ {
			var cnt [2][2]float64
			for _, o := range m.ByWorker(w) {
				pTrue := mu[o.Fact]
				ai := 0
				if o.Value {
					ai = 1
				}
				cnt[1][ai] += pTrue
				cnt[0][ai] += 1 - pTrue
			}
			for c := 0; c < 2; c++ {
				den := cnt[c][0] + cnt[c][1] + 2 // add-one smoothing
				conf[w][c][0] = (cnt[c][0] + 1) / den
				conf[w][c][1] = (cnt[c][1] + 1) / den
			}
		}
		for _, p := range mu {
			priorNum += p
			priorDen++
		}
		prior = mathx.Clamp(priorNum/priorDen, 1e-6, 1-1e-6)

		// E-step in the log domain for stability.
		for f := 0; f < nF; f++ {
			lt := mathx.Log(prior)
			lf := mathx.Log(1 - prior)
			for _, o := range m.ByFact(f) {
				ai := 0
				if o.Value {
					ai = 1
				}
				lt += mathx.Log(conf[o.Worker][1][ai])
				lf += mathx.Log(conf[o.Worker][0][ai])
			}
			logw := []float64{lf, lt}
			mathx.SoftmaxInPlace(logw)
			mu[f] = logw[1]
		}
		if mathx.MaxAbsDiff(mu, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, mu)
	}
	acc := make([]float64, nW)
	for w := range acc {
		// Diagonal of the confusion matrix weighted by the class prior.
		acc[w] = (1-prior)*conf[w][0][0] + prior*conf[w][1][1]
	}
	return &Result{PTrue: mu, WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}
