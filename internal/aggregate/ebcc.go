package aggregate

import (
	"math"

	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// EBCC is the enhanced Bayesian classifier combination of Li et al. [30]:
// every true class is refined into latent subtypes, and workers have
// subtype-specific confusions, which captures correlation between workers
// (two workers who confuse the same subtype err together — the effect
// plain BCC and DS cannot represent). Inference is mean-field variational:
// q(z_f, g_f) over the (class, subtype) pair per fact, Dirichlet
// posteriors over the class-subtype proportions and Beta posteriors over
// each worker's per-subtype accuracy, with digamma-based expectations.
type EBCC struct {
	Seed     int64
	Subtypes int
	MaxIter  int
	Tol      float64
	// AlphaPrior is the Dirichlet hyperparameter over (class, subtype)
	// proportions; BetaDiag/BetaOff are the Beta hyperparameters on each
	// worker's subtype-specific accuracy.
	AlphaPrior, BetaDiag, BetaOff float64
}

// NewEBCC returns EBCC with the published defaults (two subtypes per
// class). Inference is deterministic; the seed is kept for interface
// parity with the sampling-based baselines.
func NewEBCC(seed int64) EBCC {
	return EBCC{
		Seed: seed, Subtypes: 2, MaxIter: 600, Tol: 1e-4,
		AlphaPrior: 1, BetaDiag: 6, BetaOff: 1,
	}
}

// Name implements Aggregator.
func (EBCC) Name() string { return "EBCC" }

// Aggregate implements Aggregator.
func (a EBCC) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	if a.Subtypes < 1 {
		a.Subtypes = 1
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	M := a.Subtypes
	K := 2 * M // latent states: class (0/1) × subtype

	// q[f][s]: variational posterior over latent state s = class*M + sub.
	// Initialization anchors each fact's class mass to its majority-vote
	// share and breaks the subtype symmetry with a small deterministic
	// tilt toward the first subtype. Random jitter is deliberately
	// avoided: on weak crowds it can seed a label-flipped mode that
	// mean-field then locks in.
	q := make([][]float64, nF)
	for f := range q {
		share, _ := m.VoteShare(f)
		share = mathx.Clamp(share, 0.02, 0.98)
		q[f] = make([]float64, K)
		for s := 0; s < K; s++ {
			cls, sub := s/M, s%M
			base := 1 - share
			if cls == 1 {
				base = share
			}
			tilt := 1 + 0.05*float64(M-sub)
			q[f][s] = base * tilt / float64(M)
		}
		mathx.Normalize(q[f])
	}

	prevP := make([]float64, nF)
	pTrue := make([]float64, nF)
	iter := 0
	converged := false
	elogRho := make([]float64, K)
	// elogTau[w][s][a]: E[log P(worker w answers a | state s)].
	elogTau := make([][][2]float64, nW)
	for w := range elogTau {
		elogTau[w] = make([][2]float64, K)
	}
	for ; iter < a.MaxIter; iter++ {
		// Variational M-step: Dirichlet posterior over states.
		alpha := make([]float64, K)
		mathx.Fill(alpha, a.AlphaPrior/float64(M))
		for f := 0; f < nF; f++ {
			for s := 0; s < K; s++ {
				alpha[s] += q[f][s]
			}
		}
		sumAlpha := mathx.Sum(alpha)
		digSum := mathx.Digamma(sumAlpha)
		for s := 0; s < K; s++ {
			elogRho[s] = mathx.Digamma(alpha[s]) - digSum
		}
		// Cap any single state's prior share at one half: an
		// uninformative ("garbage") subtype otherwise grows its
		// proportion and absorbs every mixed-vote fact, a degenerate
		// rich-get-richer attractor on weak crowds. No legitimate
		// (class, subtype) pair needs more than half the corpus.
		maxRho := mathx.Log(0.5)
		for s := 0; s < K; s++ {
			if elogRho[s] > maxRho {
				elogRho[s] = maxRho
			}
		}
		// Beta posteriors for every worker × state over the probability of
		// answering YES in that state. The prior is oriented by the
		// state's class (class-1 states expect Yes, class-0 states expect
		// No), which encodes the paper's Pr >= 1/2 error model as a prior
		// rather than a hard projection: a worker who answers Yes for
		// both classes (a spammer) learns a high yes-rate in *both* and
		// becomes uninformative, instead of being misread as class-1
		// evidence.
		for w := 0; w < nW; w++ {
			for s := 0; s < K; s++ {
				cls := s / M
				yes, no := a.BetaOff, a.BetaDiag
				if cls == 1 {
					yes, no = a.BetaDiag, a.BetaOff
				}
				for _, o := range m.ByWorker(w) {
					if o.Value {
						yes += q[o.Fact][s]
					} else {
						no += q[o.Fact][s]
					}
				}
				digAll := mathx.Digamma(yes + no)
				elogTau[w][s][1] = mathx.Digamma(yes) - digAll
				elogTau[w][s][0] = mathx.Digamma(no) - digAll
			}
		}
		// Variational E-step, damped: synchronous mean-field updates can
		// enter period-two oscillations on weak crowds, and averaging the
		// new responsibilities with the previous ones restores the
		// fixed-point convergence.
		for f := 0; f < nF; f++ {
			logw := make([]float64, K)
			copy(logw, elogRho)
			for _, o := range m.ByFact(f) {
				ai := btoi(o.Value)
				for s := 0; s < K; s++ {
					logw[s] += elogTau[o.Worker][s][ai]
				}
			}
			mathx.SoftmaxInPlace(logw)
			for s := 0; s < K; s++ {
				q[f][s] = 0.5*q[f][s] + 0.5*logw[s]
			}
		}
		for f := 0; f < nF; f++ {
			var pt float64
			for s := M; s < K; s++ {
				pt += q[f][s]
			}
			pTrue[f] = pt
		}
		if iter > 0 && mathx.MaxAbsDiff(pTrue, prevP) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prevP, pTrue)
	}

	// Worker accuracy: posterior-mean agreement with the inferred state
	// mixture.
	acc := make([]float64, nW)
	for w := 0; w < nW; w++ {
		var agree, n float64
		for _, o := range m.ByWorker(w) {
			n++
			if o.Value {
				agree += pTrue[o.Fact]
			} else {
				agree += 1 - pTrue[o.Fact]
			}
		}
		if n == 0 {
			acc[w] = 0.5
			continue
		}
		acc[w] = (agree + a.BetaDiag) / (n + a.BetaDiag + a.BetaOff)
	}
	// Guard against NaN leakage from degenerate digamma inputs.
	for f, p := range pTrue {
		if math.IsNaN(p) {
			pTrue[f] = 0.5
		}
	}
	return &Result{PTrue: mathx.Clone(pTrue), WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}
