package aggregate

import (
	"math"

	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// GLAD is the Whitehill et al. model [33]: each worker has an ability
// α_w ∈ (-∞, ∞) and each fact a difficulty encoded as β_f = exp(γ_f) > 0;
// the probability that worker w labels fact f correctly is
// σ(α_w · β_f). Inference is EM whose M-step has no closed form, so it
// runs a few steps of gradient ascent on the expected complete-data
// log-likelihood with respect to α and γ (the log-difficulty), exactly as
// the published implementation does.
type GLAD struct {
	MaxIter   int
	Tol       float64
	GradSteps int
	LearnRate float64
}

// NewGLAD returns GLAD with the published defaults.
func NewGLAD() GLAD {
	return GLAD{MaxIter: 50, Tol: 1e-5, GradSteps: 10, LearnRate: 0.05}
}

// Name implements Aggregator.
func (GLAD) Name() string { return "GLAD" }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Aggregate implements Aggregator.
func (a GLAD) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	mu := make([]float64, nF)
	for f := range mu {
		share, _ := m.VoteShare(f)
		mu[f] = share
	}
	alpha := make([]float64, nW)
	mathx.Fill(alpha, 1)
	gamma := make([]float64, nF) // beta = exp(gamma), starts at 1
	prev := mathx.Clone(mu)
	iter := 0
	converged := false
	for ; iter < a.MaxIter; iter++ {
		// E-step: posterior over each fact given abilities/difficulties.
		for f := 0; f < nF; f++ {
			beta := math.Exp(gamma[f])
			lt, lf := math.Log(0.5), math.Log(0.5)
			for _, o := range m.ByFact(f) {
				p := mathx.Clamp(sigmoid(alpha[o.Worker]*beta), 1e-9, 1-1e-9)
				if o.Value {
					lt += math.Log(p)
					lf += math.Log(1 - p)
				} else {
					lt += math.Log(1 - p)
					lf += math.Log(p)
				}
			}
			logw := []float64{lf, lt}
			mathx.SoftmaxInPlace(logw)
			mu[f] = logw[1]
		}
		// M-step: gradient ascent on E[log p(labels | α, β)].
		for step := 0; step < a.GradSteps; step++ {
			gradA := make([]float64, nW)
			gradG := make([]float64, nF)
			for f := 0; f < nF; f++ {
				beta := math.Exp(gamma[f])
				for _, o := range m.ByFact(f) {
					// q = posterior probability this answer is correct.
					var q float64
					if o.Value {
						q = mu[f]
					} else {
						q = 1 - mu[f]
					}
					s := sigmoid(alpha[o.Worker] * beta)
					diff := q - s
					gradA[o.Worker] += beta * diff
					gradG[f] += alpha[o.Worker] * beta * diff
				}
			}
			for w := 0; w < nW; w++ {
				// Gaussian prior N(1,1) on ability regularizes workers
				// with few answers.
				alpha[w] += a.LearnRate * (gradA[w] - (alpha[w] - 1))
			}
			for f := 0; f < nF; f++ {
				gamma[f] += a.LearnRate * (gradG[f] - gamma[f]) // N(0,1) prior
			}
		}
		if mathx.MaxAbsDiff(mu, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, mu)
	}
	// Report ability as an accuracy on the average-difficulty task.
	var meanBeta float64
	for _, g := range gamma {
		meanBeta += math.Exp(g)
	}
	meanBeta /= float64(nF)
	acc := make([]float64, nW)
	for w := range acc {
		acc[w] = sigmoid(alpha[w] * meanBeta)
	}
	return &Result{PTrue: mu, WorkerAcc: acc, Iterations: iter, Converged: converged}, nil
}
