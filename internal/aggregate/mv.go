package aggregate

import "hcrowd/internal/dataset"

// MV is majority voting (Equation 5): the final label of each fact is the
// one most workers chose. The soft posterior is the raw vote share, which
// is exactly the ob(o, f) frequency the paper's Equation 16 uses for
// belief initialization. Facts without answers get 0.5.
type MV struct{}

// Name implements Aggregator.
func (MV) Name() string { return "MV" }

// Aggregate implements Aggregator.
func (MV) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	p := make([]float64, m.NumFacts())
	for f := range p {
		share, _ := m.VoteShare(f)
		p[f] = share
	}
	// Worker accuracy estimate: agreement with the majority label,
	// add-one smoothed.
	acc := make([]float64, m.NumWorkers())
	for w := range acc {
		agree, total := 1.0, 2.0
		for _, o := range m.ByWorker(w) {
			total++
			if o.Value == (p[o.Fact] >= 0.5) {
				agree++
			}
		}
		acc[w] = agree / total
	}
	return &Result{PTrue: p, WorkerAcc: acc, Iterations: 1, Converged: true}, nil
}
