package aggregate

import (
	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// MVFreq is the frequency-based majority-voting variant of Sheng et
// al. [15] (cited in the paper's introduction): the soft label is the raw
// Yes frequency among the collected answers, with no smoothing. It
// coincides with MV's posterior but reports hard worker-agreement
// estimates differently (no Laplace smoothing), and exists so the
// MV-family comparison in [15] is reproducible.
type MVFreq struct{}

// Name implements Aggregator.
func (MVFreq) Name() string { return "MV-Freq" }

// Aggregate implements Aggregator.
func (MVFreq) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	p := make([]float64, m.NumFacts())
	for f := range p {
		share, _ := m.VoteShare(f)
		p[f] = share
	}
	acc := make([]float64, m.NumWorkers())
	for w := range acc {
		agree, total := 0.0, 0.0
		for _, o := range m.ByWorker(w) {
			total++
			if o.Value == (p[o.Fact] >= 0.5) {
				agree++
			}
		}
		if total == 0 {
			acc[w] = 0.5
			continue
		}
		acc[w] = agree / total
	}
	return &Result{PTrue: p, WorkerAcc: acc, Iterations: 1, Converged: true}, nil
}

// MVBeta is the Beta-integration majority-voting variant of Sheng et
// al. [15]: the soft label is the posterior probability that the
// underlying Yes rate exceeds 1/2 under a Beta(yes+1, no+1) posterior,
// P = 1 − I_{1/2}(yes+1, no+1). Unlike the raw frequency it accounts for
// the number of votes: 2-of-3 and 20-of-30 share a frequency but not a
// certainty.
type MVBeta struct{}

// Name implements Aggregator.
func (MVBeta) Name() string { return "MV-Beta" }

// Aggregate implements Aggregator.
func (MVBeta) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	p := make([]float64, m.NumFacts())
	for f := range p {
		yes, n := 0, 0
		for _, o := range m.ByFact(f) {
			n++
			if o.Value {
				yes++
			}
		}
		if n == 0 {
			p[f] = 0.5
			continue
		}
		p[f] = 1 - mathx.RegIncBeta(float64(yes)+1, float64(n-yes)+1, 0.5)
	}
	acc := make([]float64, m.NumWorkers())
	for w := range acc {
		agree, total := 1.0, 2.0
		for _, o := range m.ByWorker(w) {
			total++
			if o.Value == (p[o.Fact] >= 0.5) {
				agree++
			}
		}
		acc[w] = agree / total
	}
	return &Result{PTrue: p, WorkerAcc: acc, Iterations: 1, Converged: true}, nil
}

// Extras returns the additional aggregation strategies beyond the
// paper's eight evaluated baselines: the MV variants its introduction
// cites.
func Extras() []Aggregator {
	return []Aggregator{MVFreq{}, MVBeta{}}
}
