package aggregate

import (
	"math"
	"testing"

	"hcrowd/internal/dataset"
)

func TestMVBetaCertaintyGrowsWithVotes(t *testing.T) {
	// Same 2:1 frequency, different counts: the Beta integration must be
	// more certain with more votes.
	small, err := dataset.NewMatrix(1, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	_ = small.Add(0, 0, true)
	_ = small.Add(0, 1, true)
	_ = small.Add(0, 2, false)

	ids := make([]string, 30)
	for i := range ids {
		ids[i] = string(rune('A' + i))
	}
	big, err := dataset.NewMatrix(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 30; w++ {
		_ = big.Add(0, w, w < 20)
	}
	rSmall, err := (MVBeta{}).Aggregate(small)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := (MVBeta{}).Aggregate(big)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.PTrue[0] <= rSmall.PTrue[0] {
		t.Errorf("20/30 (%v) not more certain than 2/3 (%v)", rBig.PTrue[0], rSmall.PTrue[0])
	}
	// Frequency variant sees them identically.
	fSmall, _ := (MVFreq{}).Aggregate(small)
	fBig, _ := (MVFreq{}).Aggregate(big)
	if math.Abs(fSmall.PTrue[0]-fBig.PTrue[0]) > 1e-12 {
		t.Errorf("MV-Freq differs: %v vs %v", fSmall.PTrue[0], fBig.PTrue[0])
	}
}

func TestMVBetaSymmetry(t *testing.T) {
	// A tied vote must land exactly at 0.5.
	m, err := dataset.NewMatrix(2, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Add(0, 0, true)
	_ = m.Add(0, 1, false)
	r, err := (MVBeta{}).Aggregate(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PTrue[0]-0.5) > 1e-9 {
		t.Errorf("tied MV-Beta = %v, want 0.5", r.PTrue[0])
	}
	if r.PTrue[1] != 0.5 {
		t.Errorf("unanswered fact = %v, want 0.5", r.PTrue[1])
	}
}

func TestMVVariantsAccuracy(t *testing.T) {
	m, truth := synthMatrix(t, 30, 300, []float64{0.75, 0.7, 0.8})
	for _, a := range Extras() {
		res, err := a.Aggregate(m)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		acc, err := res.Accuracy(truth)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.8 {
			t.Errorf("%s accuracy %v", a.Name(), acc)
		}
	}
	// The two variants threshold identically (they share the majority
	// decision boundary), so hard labels agree.
	rf, _ := (MVFreq{}).Aggregate(m)
	rb, _ := (MVBeta{}).Aggregate(m)
	lf, lb := rf.Labels(), rb.Labels()
	for f := range lf {
		if lf[f] != lb[f] {
			t.Fatalf("hard labels differ at fact %d", f)
		}
	}
}

func TestMVVariantsRejectNil(t *testing.T) {
	for _, a := range Extras() {
		if _, err := a.Aggregate(nil); err == nil {
			t.Errorf("%s accepted nil", a.Name())
		}
	}
}

func TestExtrasNames(t *testing.T) {
	names := []string{"MV-Freq", "MV-Beta"}
	for i, a := range Extras() {
		if a.Name() != names[i] {
			t.Errorf("Extras()[%d] = %s, want %s", i, a.Name(), names[i])
		}
	}
}
