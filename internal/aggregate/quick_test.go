package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// decodeMatrix builds a small random answer matrix from a seed.
func decodeMatrix(seed int64) (*dataset.Matrix, []bool) {
	rng := rngutil.New(seed)
	nF := 20 + rng.Intn(30)
	nW := 3 + rng.Intn(3)
	truth := make([]bool, nF)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	ids := make([]string, nW)
	accs := make([]float64, nW)
	for w := range ids {
		ids[w] = string(rune('a' + w))
		accs[w] = 0.55 + 0.4*rng.Float64()
	}
	m, err := dataset.NewMatrix(nF, ids)
	if err != nil {
		panic(err)
	}
	for f := 0; f < nF; f++ {
		for w := 0; w < nW; w++ {
			if rng.Float64() < 0.2 {
				continue // sparse
			}
			v := truth[f]
			if rng.Float64() >= accs[w] {
				v = !v
			}
			if err := m.Add(f, w, v); err != nil {
				panic(err)
			}
		}
	}
	return m, truth
}

func TestQuickAllAggregatorsProduceValidPosteriors(t *testing.T) {
	f := func(seed int64) bool {
		m, _ := decodeMatrix(seed)
		for _, a := range Registry(seed) {
			res, err := a.Aggregate(m)
			if err != nil {
				return false
			}
			if len(res.PTrue) != m.NumFacts() || len(res.WorkerAcc) != m.NumWorkers() {
				return false
			}
			for _, p := range res.PTrue {
				if math.IsNaN(p) || p < 0 || p > 1 {
					return false
				}
			}
			for _, p := range res.WorkerAcc {
				if math.IsNaN(p) || p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickWorkerPermutationInvariance(t *testing.T) {
	// Property: renaming/reordering workers must not change the inferred
	// per-fact posteriors for the deterministic EM models.
	f := func(seed int64) bool {
		m, _ := decodeMatrix(seed)
		rng := rngutil.New(seed + 1)
		perm := rng.Perm(m.NumWorkers())
		ids := make([]string, m.NumWorkers())
		for newIdx, oldIdx := range perm {
			ids[newIdx] = m.WorkerIDs()[oldIdx]
		}
		shuffled, err := dataset.NewMatrix(m.NumFacts(), ids)
		if err != nil {
			return false
		}
		inv := make([]int, len(perm)) // old -> new
		for newIdx, oldIdx := range perm {
			inv[oldIdx] = newIdx
		}
		for f := 0; f < m.NumFacts(); f++ {
			for _, o := range m.ByFact(f) {
				if err := shuffled.Add(f, inv[o.Worker], o.Value); err != nil {
					return false
				}
			}
		}
		for _, mk := range []func() Aggregator{
			func() Aggregator { return MV{} },
			func() Aggregator { return NewDS() },
			func() Aggregator { return NewZC() },
			func() Aggregator { return NewBWA() },
			func() Aggregator { return NewCRH() },
		} {
			a := mk()
			r1, err1 := a.Aggregate(m)
			r2, err2 := a.Aggregate(shuffled)
			if err1 != nil || err2 != nil {
				return false
			}
			for f := range r1.PTrue {
				if math.Abs(r1.PTrue[f]-r2.PTrue[f]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQuickMoreRedundancyNeverHurtsMuch(t *testing.T) {
	// Property (statistical): duplicating the whole answer matrix with a
	// fresh strong worker must not reduce MV/DS accuracy by more than
	// noise.
	f := func(seed int64) bool {
		m, truth := decodeMatrix(seed)
		ids := append(append([]string{}, m.WorkerIDs()...), "strong")
		bigger, err := dataset.NewMatrix(m.NumFacts(), ids)
		if err != nil {
			return false
		}
		for f := 0; f < m.NumFacts(); f++ {
			for _, o := range m.ByFact(f) {
				if err := bigger.Add(f, o.Worker, o.Value); err != nil {
					return false
				}
			}
		}
		rng := rngutil.New(seed + 2)
		strong := len(ids) - 1
		for f := 0; f < m.NumFacts(); f++ {
			v := truth[f]
			if rng.Float64() >= 0.95 {
				v = !v
			}
			if err := bigger.Add(f, strong, v); err != nil {
				return false
			}
		}
		for _, a := range []Aggregator{MV{}, NewDS()} {
			r1, err1 := a.Aggregate(m)
			r2, err2 := a.Aggregate(bigger)
			if err1 != nil || err2 != nil {
				return false
			}
			a1, _ := r1.Accuracy(truth)
			a2, _ := r2.Accuracy(truth)
			if a2 < a1-0.1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
