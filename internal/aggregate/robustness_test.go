package aggregate

import (
	"testing"

	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// robustnessDataset builds a 40-task dataset with the given behavior
// injections applied to its preliminary matrix.
func robustnessDataset(t *testing.T, seed int64, behaviors map[int]dataset.Behavior, cliqueAcc float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 80
	ds, err := dataset.SentiLike(rngutil.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ds.InjectBehaviors(rngutil.New(seed+1), behaviors, cliqueAcc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAggregatorsSurviveSpammer(t *testing.T) {
	// One always-yes spammer among six workers: every algorithm must stay
	// above 0.7 accuracy, and the reliability-aware ones must down-weight
	// the spammer relative to the honest workers.
	ds := robustnessDataset(t, 10, map[int]dataset.Behavior{0: dataset.SpammerYes}, 0.7)
	for _, a := range Registry(3) {
		res, err := a.Aggregate(ds.Prelim)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		acc, err := res.Accuracy(ds.Truth)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.7 {
			t.Errorf("%s collapsed to %v with one spammer", a.Name(), acc)
		}
	}
	// DS's confusion matrix is the designed defense: the spammer must
	// rank at the bottom.
	res, err := NewDS().Aggregate(ds.Prelim)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w < len(res.WorkerAcc); w++ {
		if res.WorkerAcc[0] > res.WorkerAcc[w] {
			t.Errorf("DS ranked spammer above honest worker %d (%v vs %v)",
				w, res.WorkerAcc[0], res.WorkerAcc[w])
		}
	}
}

func TestAggregatorsSurviveCoinSpammer(t *testing.T) {
	ds := robustnessDataset(t, 11, map[int]dataset.Behavior{1: dataset.SpammerCoin}, 0.7)
	for _, a := range Registry(4) {
		res, err := a.Aggregate(ds.Prelim)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		acc, _ := res.Accuracy(ds.Truth)
		if acc < 0.7 {
			t.Errorf("%s collapsed to %v with a coin spammer", a.Name(), acc)
		}
	}
}

func TestCliqueEchoChamber(t *testing.T) {
	// Three workers giving byte-identical answers at 0.62 shared accuracy
	// defeat every reliability-weighting model: mutual agreement reads as
	// near-perfect accuracy, the learned weights follow the clique, and
	// accuracy collapses below flat majority voting. This documents the
	// known echo-chamber limitation of conditional-independence truth
	// inference (the motivation for EBCC's subtype model, which softens
	// partial correlation but cannot break perfect duplication either).
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 80
	cfg.Crowd.PrelimLo, cfg.Crowd.PrelimHi = 0.78, 0.88 // competent honest pool
	base, err := dataset.SentiLike(rngutil.New(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := base.InjectBehaviors(rngutil.New(13), map[int]dataset.Behavior{
		0: dataset.CliqueMember, 1: dataset.CliqueMember, 2: dataset.CliqueMember,
	}, 0.62)
	if err != nil {
		t.Fatal(err)
	}
	mvRes, err2 := (MV{}).Aggregate(ds.Prelim)
	if err2 != nil {
		t.Fatal(err2)
	}
	mvAcc, _ := mvRes.Accuracy(ds.Truth)
	if mvAcc < 0.7 {
		t.Fatalf("MV collapsed to %v; scenario miscalibrated", mvAcc)
	}
	for _, a := range []Aggregator{NewDS(), NewEBCC(5)} {
		res, err := a.Aggregate(ds.Prelim)
		if err != nil {
			t.Fatal(err)
		}
		acc, _ := res.Accuracy(ds.Truth)
		// The weighted models trust the clique: their accuracy lands at
		// the clique's own rate, below MV. If this ever flips, the
		// aggregator gained collusion resistance — update this test and
		// EXPERIMENTS.md.
		if acc > mvAcc {
			t.Errorf("%s (%v) unexpectedly beat MV (%v) under perfect collusion", a.Name(), acc, mvAcc)
		}
		// And the clique must be the workers they over-trust.
		for w := 0; w < 3; w++ {
			if res.WorkerAcc[w] < 0.9 {
				t.Errorf("%s did not over-trust clique member %d: %v", a.Name(), w, res.WorkerAcc[w])
			}
		}
	}
}
