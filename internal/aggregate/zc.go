package aggregate

import (
	"hcrowd/internal/dataset"
	"hcrowd/internal/mathx"
)

// ZC is the ZenCrowd estimator [32]: EM with one symmetric reliability
// parameter per worker (the probability the worker's answer matches the
// truth, regardless of class) and a uniform class prior. It is the
// factor-graph model of Demartini et al. restricted to binary facts, where
// belief propagation reduces to closed-form EM updates.
type ZC struct {
	MaxIter int
	Tol     float64
}

// NewZC returns ZC with the customary settings.
func NewZC() ZC { return ZC{MaxIter: 500, Tol: 1e-4} }

// Name implements Aggregator.
func (ZC) Name() string { return "ZC" }

// Aggregate implements Aggregator.
func (a ZC) Aggregate(m *dataset.Matrix) (*Result, error) {
	if err := validate(m); err != nil {
		return nil, err
	}
	nF, nW := m.NumFacts(), m.NumWorkers()
	mu := make([]float64, nF) // P(fact true)
	for f := range mu {
		share, _ := m.VoteShare(f)
		mu[f] = share
	}
	rel := make([]float64, nW)
	mathx.Fill(rel, 0.8) // optimistic start, as in the original
	prev := mathx.Clone(mu)
	iter := 0
	converged := false
	for ; iter < a.MaxIter; iter++ {
		// M-step: reliability = expected agreement with current posterior
		// (maximum likelihood, no smoothing — ZenCrowd's distinguishing
		// trait next to BWA's Bayesian prior).
		for w := 0; w < nW; w++ {
			obs := m.ByWorker(w)
			if len(obs) == 0 {
				rel[w] = 0.5
				continue
			}
			var agree float64
			for _, o := range obs {
				if o.Value {
					agree += mu[o.Fact]
				} else {
					agree += 1 - mu[o.Fact]
				}
			}
			rel[w] = mathx.Clamp(agree/float64(len(obs)), 1e-6, 1-1e-6)
		}
		// E-step with the uniform prior of the original model.
		for f := 0; f < nF; f++ {
			lt, lf := 0.0, 0.0
			for _, o := range m.ByFact(f) {
				r := rel[o.Worker]
				if o.Value {
					lt += mathx.Log(r)
					lf += mathx.Log(1 - r)
				} else {
					lt += mathx.Log(1 - r)
					lf += mathx.Log(r)
				}
			}
			logw := []float64{lf, lt}
			mathx.SoftmaxInPlace(logw)
			mu[f] = logw[1]
		}
		if mathx.MaxAbsDiff(mu, prev) < a.Tol {
			converged = true
			iter++
			break
		}
		copy(prev, mu)
	}
	return &Result{PTrue: mu, WorkerAcc: rel, Iterations: iter, Converged: converged}, nil
}
