// Package belief implements the paper's data model (§II-A): facts,
// observations, joint belief distributions over the 2^m truth-value
// interpretations of a task's facts, the data quality function
// Q(F) = -H(O) (Definition 2), and the Bayesian belief update from
// crowdsourced answers (Lemma 3).
//
// Within a task the m facts carry local indices 0..m-1. An observation is
// encoded as an integer in [0, 2^m) whose i-th bit gives the truth value
// of fact i; o_1..o_8 in the paper's Table I correspond to codes 0..7 with
// f_1 as bit 0.
package belief

import (
	"errors"
	"fmt"
	"math"

	"hcrowd/internal/crowd"
	"hcrowd/internal/mathx"
)

// MaxFacts caps the number of facts a single joint distribution may hold;
// 2^25 float64s is 256 MiB, past any workload in the paper (which uses
// 5-fact tasks and >20-fact efficiency stress tests).
const MaxFacts = 25

// Dist is a belief state: a probability distribution over the 2^m
// observations of an m-fact task. The zero value is not usable; construct
// with New, FromJoint or FromMarginals.
type Dist struct {
	m int
	p []float64
	// scratch is the posterior buffer Update writes before committing; it
	// swaps with p on success so steady-state updates allocate nothing.
	scratch []float64
}

// New returns the uniform belief over m facts: every observation equally
// likely (the "NO HC" initialization of §IV-C.5).
func New(m int) (*Dist, error) {
	if m < 1 || m > MaxFacts {
		return nil, fmt.Errorf("belief: fact count %d outside [1, %d]", m, MaxFacts)
	}
	p := make([]float64, 1<<uint(m))
	mathx.Fill(p, 1/float64(len(p)))
	return &Dist{m: m, p: p}, nil
}

// FromJoint builds a belief from an explicit joint distribution whose
// length must be a power of two (2^m). The vector is copied and
// normalized; it must be non-negative with a positive finite sum.
func FromJoint(p []float64) (*Dist, error) {
	n := len(p)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("belief: joint length %d is not a power of two >= 2", n)
	}
	m := 0
	for 1<<uint(m) < n {
		m++
	}
	if m > MaxFacts {
		return nil, fmt.Errorf("belief: %d facts exceeds MaxFacts", m)
	}
	var sum float64
	for _, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("belief: joint contains negative, NaN or Inf mass")
		}
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("belief: joint has zero total mass")
	}
	cp := mathx.Clone(p)
	mathx.Normalize(cp)
	return &Dist{m: m, p: cp}, nil
}

// FromMarginals builds the independent-product belief of Equation 15:
// P(o) = prod_f ob(o, f), where pTrue[f] is the vote share (or any
// per-fact posterior) for fact f being true. Values are clamped into
// [eps, 1-eps] so no observation starts with exactly zero mass, which
// would make it unrecoverable by Bayesian updates.
func FromMarginals(pTrue []float64) (*Dist, error) {
	m := len(pTrue)
	if m < 1 || m > MaxFacts {
		return nil, fmt.Errorf("belief: fact count %d outside [1, %d]", m, MaxFacts)
	}
	const eps = 1e-6
	var qBuf [MaxFacts]float64
	q := qBuf[:m]
	for i, v := range pTrue {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, fmt.Errorf("belief: marginal %d = %v outside [0, 1]", i, v)
		}
		q[i] = mathx.Clamp(v, eps, 1-eps)
	}
	p := make([]float64, 1<<uint(m))
	for o := range p {
		prob := 1.0
		for f := 0; f < m; f++ {
			if Models(o, f) {
				prob *= q[f]
			} else {
				prob *= 1 - q[f]
			}
		}
		p[o] = prob
	}
	mathx.Normalize(p)
	return &Dist{m: m, p: p}, nil
}

// Models reports whether observation o is a positive model of fact f
// (o ⊨ f in the paper): bit f of o is set.
func Models(o, f int) bool { return o&(1<<uint(f)) != 0 }

// WithFact returns the observation equal to o except that fact f is set to
// v.
func WithFact(o, f int, v bool) int {
	if v {
		return o | 1<<uint(f)
	}
	return o &^ (1 << uint(f))
}

// NumFacts returns m, the number of facts in the task.
func (d *Dist) NumFacts() int { return d.m }

// NumObservations returns 2^m.
func (d *Dist) NumObservations() int { return len(d.p) }

// P returns the current probability of observation o.
func (d *Dist) P(o int) float64 { return d.p[o] }

// Probs returns a copy of the full joint distribution.
func (d *Dist) Probs() []float64 { return mathx.Clone(d.p) }

// Clone returns an independent copy of the belief.
func (d *Dist) Clone() *Dist {
	return &Dist{m: d.m, p: mathx.Clone(d.p)}
}

// Entropy returns H(O) in nats.
func (d *Dist) Entropy() float64 { return mathx.Entropy(d.p) }

// Quality returns the data quality Q(F) = -H(O) of Definition 2.
func (d *Dist) Quality() float64 { return mathx.NegEntropy(d.p) }

// Marginal returns P(f): the total mass of observations modeling fact f
// (Equation 2).
func (d *Dist) Marginal(f int) float64 {
	if f < 0 || f >= d.m {
		panic(fmt.Sprintf("belief: Marginal fact %d out of range [0,%d)", f, d.m))
	}
	var s float64
	bit := 1 << uint(f)
	for o, v := range d.p {
		if o&bit != 0 {
			s += v
		}
	}
	return s
}

// Marginals returns P(f) for every fact.
func (d *Dist) Marginals() []float64 {
	out := make([]float64, d.m)
	for f := range out {
		out[f] = d.Marginal(f)
	}
	return out
}

// MAP returns the maximum a-posteriori observation o* = argmax P(o), ties
// broken toward the lowest code.
func (d *Dist) MAP() int { return mathx.ArgMax(d.p) }

// Labels finalizes discrete labels from the belief per Equation 20:
// label(f) = truth value of f in the MAP observation.
func (d *Dist) Labels() []bool {
	o := d.MAP()
	out := make([]bool, d.m)
	for f := range out {
		out[f] = Models(o, f)
	}
	return out
}

// FactEntropy returns the entropy of the marginal Bernoulli distribution
// of fact f; the max-entropy selector of [41]'s special case uses it.
func (d *Dist) FactEntropy(f int) float64 {
	return mathx.BernoulliEntropy(d.Marginal(f))
}

// validateLocalFacts checks every queried fact index is within this task.
func (d *Dist) validateLocalFacts(facts []int) error {
	for _, f := range facts {
		if f < 0 || f >= d.m {
			return fmt.Errorf("belief: fact %d outside task with %d facts", f, d.m)
		}
	}
	return nil
}

// AnswerSetLikelihood computes P(A_cr^T | o) of Lemma 1 (Equation 6):
// the worker's accuracy raised to the size of the consistent set times
// the error rate raised to the size of the inconsistent set. For
// confusion-model workers the per-fact correctness probability is
// class-conditional (TPR when o ⊨ f, TNR otherwise).
func AnswerSetLikelihood(o int, as crowd.AnswerSet) float64 {
	like := 1.0
	for i, f := range as.Facts {
		tv := Models(o, f)
		pc := as.Worker.PCorrect(tv)
		if tv == as.Values[i] {
			like *= pc
		} else {
			like *= 1 - pc
		}
	}
	return like
}

// AnswerSetProb computes P(A_cr^T) of Lemma 1 (Equation 8): the marginal
// probability of receiving this answer set under the current belief.
func (d *Dist) AnswerSetProb(as crowd.AnswerSet) (float64, error) {
	if err := d.validateLocalFacts(as.Facts); err != nil {
		return 0, err
	}
	var s float64
	for o, po := range d.p {
		if po == 0 {
			continue
		}
		s += po * AnswerSetLikelihood(o, as)
	}
	return s, nil
}

// FamilyLikelihood computes P(A_C^T | o) = prod_cr P(A_cr^T | o): workers
// answer independently given the ground truth (§II-A).
func FamilyLikelihood(o int, fam crowd.AnswerFamily) float64 {
	like := 1.0
	for _, as := range fam {
		like *= AnswerSetLikelihood(o, as)
	}
	return like
}

// AnswerFamilyProb computes P(A_C^T) of Lemma 2 (Equation 11).
func (d *Dist) AnswerFamilyProb(fam crowd.AnswerFamily) (float64, error) {
	for _, as := range fam {
		if err := d.validateLocalFacts(as.Facts); err != nil {
			return 0, err
		}
	}
	var s float64
	for o, po := range d.p {
		if po == 0 {
			continue
		}
		s += po * FamilyLikelihood(o, fam)
	}
	return s, nil
}

// Update applies the Bayesian belief update of Lemma 3 (Equations 19/23)
// in place: P(o | A) ∝ P(o) · prod_cr P(A_cr^T | o). It returns an error
// if the answers reference facts outside the task or if the evidence has
// zero probability under the current belief (which can only happen when
// the belief already excludes every observation consistent with the
// answers).
func (d *Dist) Update(fam crowd.AnswerFamily) error {
	if err := fam.Validate(); err != nil {
		return err
	}
	for _, as := range fam {
		if err := d.validateLocalFacts(as.Facts); err != nil {
			return err
		}
	}
	// Hoist the per-answer likelihood factors out of the 2^m observation
	// loop: each answer contributes one of exactly two values depending
	// only on its fact's truth bit, so PCorrect runs once per answer here
	// instead of once per (answer, observation). The per-answer-set
	// subproducts keep FamilyLikelihood's association, so the posterior is
	// bitwise the one the direct evaluation produces.
	var facStack [24][2]float64
	var factStack [24]int
	var lenStack [8]int
	nUnits := 0
	for _, as := range fam {
		nUnits += len(as.Facts)
	}
	facs, facts, lens := facStack[:0], factStack[:0], lenStack[:0]
	if nUnits > len(facStack) {
		facs = make([][2]float64, 0, nUnits)
		facts = make([]int, 0, nUnits)
	}
	if len(fam) > len(lenStack) {
		lens = make([]int, 0, len(fam))
	}
	for _, as := range fam {
		pcT := as.Worker.PCorrect(true)
		pcF := as.Worker.PCorrect(false)
		for j, f := range as.Facts {
			var fac [2]float64
			if as.Values[j] {
				fac[1], fac[0] = pcT, 1-pcF
			} else {
				fac[1], fac[0] = 1-pcT, pcF
			}
			facs = append(facs, fac)
			facts = append(facts, f)
		}
		lens = append(lens, len(as.Facts))
	}
	post := d.scratch
	if cap(post) < len(d.p) {
		post = make([]float64, len(d.p))
	} else {
		post = post[:len(d.p)]
	}
	var sum float64
	for o, po := range d.p {
		if po == 0 {
			post[o] = 0
			continue
		}
		like := 1.0
		u := 0
		for _, n := range lens {
			sub := 1.0
			for j := 0; j < n; j++ {
				tv := 0
				if Models(o, facts[u]) {
					tv = 1
				}
				sub *= facs[u][tv]
				u++
			}
			like *= sub
		}
		v := po * like
		post[o] = v
		sum += v
	}
	if sum <= 0 {
		return errors.New("belief: answers have zero probability under current belief")
	}
	inv := 1 / sum
	for o := range post {
		post[o] *= inv
	}
	// Commit by swapping: the outgoing distribution becomes the next
	// call's posterior buffer. On the error path above d.p is untouched.
	d.scratch = d.p
	d.p = post
	return nil
}

// Accuracy returns the fraction of facts whose MAP label matches truth; it
// is the per-task accuracy metric of the evaluation.
func (d *Dist) Accuracy(truth []bool) (float64, error) {
	if len(truth) != d.m {
		return 0, fmt.Errorf("belief: truth has %d facts, task has %d", len(truth), d.m)
	}
	labels := d.Labels()
	correct := 0
	for f, l := range labels {
		if l == truth[f] {
			correct++
		}
	}
	return float64(correct) / float64(d.m), nil
}

// ConditionalMarginal returns P(f | g = val): the marginal of fact f
// after conditioning the belief on a hypothetical truth value for fact g.
// It quantifies how evidence would propagate through the task's
// correlations without mutating the belief; downstream tools use it to
// preview the impact of a checking answer.
func (d *Dist) ConditionalMarginal(f, g int, val bool) (float64, error) {
	if f < 0 || f >= d.m || g < 0 || g >= d.m {
		return 0, fmt.Errorf("belief: facts (%d, %d) outside task with %d facts", f, g, d.m)
	}
	var joint, mass float64
	for o, p := range d.p {
		if Models(o, g) != val {
			continue
		}
		mass += p
		if Models(o, f) {
			joint += p
		}
	}
	if mass == 0 {
		return 0, fmt.Errorf("belief: conditioning event f%d=%v has zero probability", g, val)
	}
	return joint / mass, nil
}
