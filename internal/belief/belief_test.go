package belief

import (
	"math"
	"testing"
	"testing/quick"

	"hcrowd/internal/crowd"
	"hcrowd/internal/mathx"
	"hcrowd/internal/rngutil"
)

// tableI is the worked example of the paper's Table I: three facts with
// observation codes (f1 = bit 0, f2 = bit 1, f3 = bit 2)
// o1=000, o2=001, o3=010, o4=011, o5=100, o6=101, o7=110, o8=111.
var tableI = []float64{0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18}

func tableIDist(t *testing.T) *Dist {
	t.Helper()
	d, err := FromJoint(tableI)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestTableIMarginals(t *testing.T) {
	d := tableIDist(t)
	// Equation 4 of the paper.
	want := []float64{0.58, 0.63, 0.50}
	for f, w := range want {
		if got := d.Marginal(f); !almostEqual(got, w, 1e-12) {
			t.Errorf("P(f%d) = %v, want %v", f+1, got, w)
		}
	}
	ms := d.Marginals()
	for f := range want {
		if !almostEqual(ms[f], want[f], 1e-12) {
			t.Errorf("Marginals()[%d] = %v, want %v", f, ms[f], want[f])
		}
	}
}

func TestTableINotIndependent(t *testing.T) {
	// The paper stresses Equation 3 fails here: prod P(¬f_i) != P(o1).
	d := tableIDist(t)
	prod := (1 - d.Marginal(0)) * (1 - d.Marginal(1)) * (1 - d.Marginal(2))
	if almostEqual(prod, d.P(0), 1e-6) {
		t.Errorf("facts look independent; prod=%v P(o1)=%v", prod, d.P(0))
	}
}

func TestTableIMAP(t *testing.T) {
	d := tableIDist(t)
	if got := d.MAP(); got != 3 { // o4 = f1,f2 true, f3 false: 0.20
		t.Errorf("MAP = %d, want 3 (o4)", got)
	}
	labels := d.Labels()
	if !labels[0] || !labels[1] || labels[2] {
		t.Errorf("Labels = %v, want [true true false]", labels)
	}
}

func TestNewUniform(t *testing.T) {
	d, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFacts() != 3 || d.NumObservations() != 8 {
		t.Fatalf("dims: %d facts, %d obs", d.NumFacts(), d.NumObservations())
	}
	if !almostEqual(d.Entropy(), 3*math.Log(2), 1e-12) {
		t.Errorf("uniform entropy = %v, want 3 ln 2", d.Entropy())
	}
	for f := 0; f < 3; f++ {
		if !almostEqual(d.Marginal(f), 0.5, 1e-12) {
			t.Errorf("uniform marginal = %v", d.Marginal(f))
		}
	}
}

func TestNewBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(MaxFacts + 1); err == nil {
		t.Error("New over MaxFacts accepted")
	}
	if _, err := New(MaxFacts); err != nil {
		t.Skip("MaxFacts allocation refused (memory)")
	}
}

func TestFromJointRejectsBadInput(t *testing.T) {
	cases := [][]float64{
		nil,
		{1},                    // not >= 2
		{0.2, 0.3, 0.5},        // not power of two
		{0.5, -0.5, 0.5, 0.5},  // negative
		{math.NaN(), 0, 0, 1},  // NaN
		{math.Inf(1), 0, 0, 0}, // Inf
		{0, 0, 0, 0},           // zero mass
	}
	for _, c := range cases {
		if _, err := FromJoint(c); err == nil {
			t.Errorf("FromJoint(%v) accepted", c)
		}
	}
}

func TestFromJointNormalizes(t *testing.T) {
	d, err := FromJoint([]float64{1, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.P(3), 0.5, 1e-12) {
		t.Errorf("P(3) = %v, want 0.5", d.P(3))
	}
	if !almostEqual(mathx.Sum(d.Probs()), 1, 1e-12) {
		t.Error("not normalized")
	}
}

func TestFromMarginalsProduct(t *testing.T) {
	d, err := FromMarginals([]float64{0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// P(o with f0 true, f1 false) = 0.9 * 0.5.
	if !almostEqual(d.P(1), 0.45, 1e-9) {
		t.Errorf("P(01) = %v, want 0.45", d.P(1))
	}
	if !almostEqual(d.Marginal(0), 0.9, 1e-5) {
		t.Errorf("marginal = %v, want ~0.9", d.Marginal(0))
	}
}

func TestFromMarginalsClampsExtremes(t *testing.T) {
	d, err := FromMarginals([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zero marginal is clamped so every observation keeps positive mass.
	for o := 0; o < d.NumObservations(); o++ {
		if d.P(o) <= 0 {
			t.Errorf("P(%d) = %v, want > 0", o, d.P(o))
		}
	}
	if _, err := FromMarginals([]float64{1.2}); err == nil {
		t.Error("marginal > 1 accepted")
	}
	if _, err := FromMarginals([]float64{math.NaN()}); err == nil {
		t.Error("NaN marginal accepted")
	}
}

func TestModelsAndWithFact(t *testing.T) {
	o := 0b101
	if !Models(o, 0) || Models(o, 1) || !Models(o, 2) {
		t.Errorf("Models wrong for %b", o)
	}
	if got := WithFact(o, 1, true); got != 0b111 {
		t.Errorf("WithFact set = %b", got)
	}
	if got := WithFact(o, 0, false); got != 0b100 {
		t.Errorf("WithFact clear = %b", got)
	}
	if got := WithFact(o, 2, true); got != o {
		t.Errorf("WithFact idempotent set = %b", got)
	}
}

func TestAnswerSetLikelihoodLemma1(t *testing.T) {
	// Worker accuracy 0.9 answering two facts; observation agrees on one.
	w := crowd.Worker{ID: "e", Accuracy: 0.9}
	as := crowd.AnswerSet{Worker: w, Facts: []int{0, 1}, Values: []bool{true, true}}
	o := 0b01 // f0 true (agree), f1 false (disagree)
	want := 0.9 * 0.1
	if got := AnswerSetLikelihood(o, as); !almostEqual(got, want, 1e-12) {
		t.Errorf("likelihood = %v, want %v", got, want)
	}
	// Full agreement and full disagreement.
	if got := AnswerSetLikelihood(0b11, as); !almostEqual(got, 0.81, 1e-12) {
		t.Errorf("likelihood agree = %v", got)
	}
	if got := AnswerSetLikelihood(0b00, as); !almostEqual(got, 0.01, 1e-12) {
		t.Errorf("likelihood disagree = %v", got)
	}
}

func TestAnswerSetProbSingleFactEq10(t *testing.T) {
	// Equation 10: for a single fact, P('Yes') = P(f)·Pr + (1-P(f))·(1-Pr).
	d := tableIDist(t)
	w := crowd.Worker{ID: "e", Accuracy: 0.9}
	as := crowd.AnswerSet{Worker: w, Facts: []int{0}, Values: []bool{true}}
	pf := d.Marginal(0)
	want := pf*0.9 + (1-pf)*0.1
	got, err := d.AnswerSetProb(as)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("P(A) = %v, want %v", got, want)
	}
}

func TestAnswerSetProbIsDistribution(t *testing.T) {
	// Sum over all 2^|T| possible answer sets must be 1.
	d := tableIDist(t)
	w := crowd.Worker{ID: "e", Accuracy: 0.93}
	facts := []int{0, 2}
	var total float64
	for bits := 0; bits < 4; bits++ {
		as := crowd.AnswerSet{
			Worker: w,
			Facts:  facts,
			Values: []bool{bits&1 != 0, bits&2 != 0},
		}
		p, err := d.AnswerSetProb(as)
		if err != nil {
			t.Fatal(err)
		}
		total += p
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("answer-set probabilities sum to %v", total)
	}
}

func TestAnswerFamilyProbIsDistribution(t *testing.T) {
	// Lemma 2: summing P(A_C^T) over every possible family gives 1.
	d := tableIDist(t)
	ce := crowd.Crowd{{ID: "e0", Accuracy: 0.9}, {ID: "e1", Accuracy: 0.95}}
	facts := []int{1}
	var total float64
	for bits := 0; bits < 4; bits++ {
		fam := crowd.AnswerFamily{
			{Worker: ce[0], Facts: facts, Values: []bool{bits&1 != 0}},
			{Worker: ce[1], Facts: facts, Values: []bool{bits&2 != 0}},
		}
		p, err := d.AnswerFamilyProb(fam)
		if err != nil {
			t.Fatal(err)
		}
		total += p
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("family probabilities sum to %v", total)
	}
}

func TestUpdateBayesByHand(t *testing.T) {
	// Two facts, uniform prior, one expert (0.8) answers f0 = Yes.
	d, _ := New(2)
	w := crowd.Worker{ID: "e", Accuracy: 0.8}
	fam := crowd.AnswerFamily{{Worker: w, Facts: []int{0}, Values: []bool{true}}}
	if err := d.Update(fam); err != nil {
		t.Fatal(err)
	}
	// P(o | A): observations with f0 true get 0.8, others 0.2 (normalized).
	for o := 0; o < 4; o++ {
		want := 0.1
		if Models(o, 0) {
			want = 0.4
		}
		if !almostEqual(d.P(o), want, 1e-12) {
			t.Errorf("P(%b) = %v, want %v", o, d.P(o), want)
		}
	}
	if !almostEqual(d.Marginal(0), 0.8, 1e-12) {
		t.Errorf("posterior marginal = %v, want 0.8", d.Marginal(0))
	}
}

func TestUpdateOracleCollapses(t *testing.T) {
	d := tableIDist(t)
	oracle := crowd.Worker{ID: "o", Accuracy: 1.0}
	fam := crowd.AnswerFamily{{
		Worker: oracle,
		Facts:  []int{0, 1, 2},
		Values: []bool{true, true, false}, // observation o4 = code 3
	}}
	if err := d.Update(fam); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.P(3), 1, 1e-12) {
		t.Errorf("P(o4) = %v, want 1", d.P(3))
	}
	if d.Entropy() > 1e-12 {
		t.Errorf("entropy after oracle = %v, want 0", d.Entropy())
	}
}

func TestUpdateZeroEvidence(t *testing.T) {
	// Point-mass belief contradicted by an oracle answer: zero-probability
	// evidence must be reported, not silently renormalized.
	d, err := FromJoint([]float64{0, 1}) // f0 certainly true
	if err != nil {
		t.Fatal(err)
	}
	oracle := crowd.Worker{ID: "o", Accuracy: 1.0}
	fam := crowd.AnswerFamily{{Worker: oracle, Facts: []int{0}, Values: []bool{false}}}
	if err := d.Update(fam); err == nil {
		t.Error("zero-probability evidence accepted")
	}
}

func TestUpdateValidatesFacts(t *testing.T) {
	d, _ := New(2)
	w := crowd.Worker{ID: "e", Accuracy: 0.9}
	fam := crowd.AnswerFamily{{Worker: w, Facts: []int{5}, Values: []bool{true}}}
	if err := d.Update(fam); err == nil {
		t.Error("out-of-range fact accepted")
	}
}

func TestUpdateNeutralWorkerIsNoOp(t *testing.T) {
	// A 0.5-accuracy worker carries no information; belief must not move.
	d := tableIDist(t)
	before := d.Probs()
	w := crowd.Worker{ID: "n", Accuracy: 0.5}
	fam := crowd.AnswerFamily{{Worker: w, Facts: []int{0, 1}, Values: []bool{true, false}}}
	if err := d.Update(fam); err != nil {
		t.Fatal(err)
	}
	if mathx.MaxAbsDiff(before, d.Probs()) > 1e-12 {
		t.Error("neutral worker changed the belief")
	}
}

func TestUpdateCommutesWithSplitFamily(t *testing.T) {
	// Updating with a two-worker family equals sequential updates with each
	// worker (independence given o).
	rng := rngutil.New(11)
	f := func(seed int64) bool {
		r := rngutil.New(seed)
		raw := make([]float64, 8)
		for i := range raw {
			raw[i] = r.Float64() + 1e-3
		}
		d1, err := FromJoint(raw)
		if err != nil {
			return false
		}
		d2 := d1.Clone()
		w1 := crowd.Worker{ID: "a", Accuracy: 0.6 + 0.39*r.Float64()}
		w2 := crowd.Worker{ID: "b", Accuracy: 0.6 + 0.39*r.Float64()}
		facts := []int{0, 2}
		v1 := []bool{r.Intn(2) == 0, r.Intn(2) == 0}
		v2 := []bool{r.Intn(2) == 0, r.Intn(2) == 0}
		famBoth := crowd.AnswerFamily{
			{Worker: w1, Facts: facts, Values: v1},
			{Worker: w2, Facts: facts, Values: v2},
		}
		if err := d1.Update(famBoth); err != nil {
			return false
		}
		if err := d2.Update(crowd.AnswerFamily{{Worker: w1, Facts: facts, Values: v1}}); err != nil {
			return false
		}
		if err := d2.Update(crowd.AnswerFamily{{Worker: w2, Facts: facts, Values: v2}}); err != nil {
			return false
		}
		return mathx.MaxAbsDiff(d1.Probs(), d2.Probs()) < 1e-10
	}
	for i := 0; i < 50; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("sequential and joint updates differ (case %d)", i)
		}
	}
}

func TestUpdatePreservesNormalization(t *testing.T) {
	q := func(seed int64) bool {
		r := rngutil.New(seed)
		raw := make([]float64, 16)
		for i := range raw {
			raw[i] = r.Float64()
		}
		d, err := FromJoint(raw)
		if err != nil {
			return true // zero-mass draw; FromJoint correctly rejected
		}
		w := crowd.Worker{ID: "e", Accuracy: 0.51 + 0.49*r.Float64()}
		fam := crowd.AnswerFamily{{
			Worker: w,
			Facts:  []int{r.Intn(4)},
			Values: []bool{r.Intn(2) == 0},
		}}
		if err := d.Update(fam); err != nil {
			return false
		}
		return almostEqual(mathx.Sum(d.Probs()), 1, 1e-9)
	}
	if err := quick.Check(q, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	d := tableIDist(t) // MAP labels: [true true false]
	acc, err := d.Accuracy([]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	acc, _ = d.Accuracy([]bool{false, true, false})
	if !almostEqual(acc, 2.0/3.0, 1e-12) {
		t.Errorf("accuracy = %v, want 2/3", acc)
	}
	if _, err := d.Accuracy([]bool{true}); err == nil {
		t.Error("truth length mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := tableIDist(t)
	c := d.Clone()
	w := crowd.Worker{ID: "e", Accuracy: 0.99}
	_ = c.Update(crowd.AnswerFamily{{Worker: w, Facts: []int{0}, Values: []bool{true}}})
	if mathx.MaxAbsDiff(d.Probs(), tableI) > 1e-12 {
		t.Error("updating a clone mutated the original")
	}
}

func TestFactEntropy(t *testing.T) {
	d, _ := New(2) // marginals 0.5
	if got := d.FactEntropy(0); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("FactEntropy = %v, want ln 2", got)
	}
}

func TestMarginalPanicsOutOfRange(t *testing.T) {
	d, _ := New(2)
	defer func() {
		if recover() == nil {
			t.Error("Marginal(5) did not panic")
		}
	}()
	d.Marginal(5)
}

func TestAsymmetricAnswerSetLikelihood(t *testing.T) {
	// Confusion worker: TPR 0.9, TNR 0.6, answering two facts.
	w := crowd.Worker{ID: "a", TPR: 0.9, TNR: 0.6}
	as := crowd.AnswerSet{Worker: w, Facts: []int{0, 1}, Values: []bool{true, true}}
	// o = 0b01: f0 true (answer yes: correct, 0.9), f1 false (answer yes:
	// wrong, 1-TNR = 0.4).
	want := 0.9 * 0.4
	if got := AnswerSetLikelihood(0b01, as); !almostEqual(got, want, 1e-12) {
		t.Errorf("asym likelihood = %v, want %v", got, want)
	}
	// o = 0b10: f0 false (yes: wrong, 0.4), f1 true (yes: correct, 0.9).
	if got := AnswerSetLikelihood(0b10, as); !almostEqual(got, 0.4*0.9, 1e-12) {
		t.Errorf("asym likelihood = %v", got)
	}
}

func TestAsymmetricUpdate(t *testing.T) {
	// A worker who rarely answers Yes incorrectly (high TNR) makes a Yes
	// answer strong evidence; a symmetric worker of equal mean makes it
	// weaker.
	dAsym, _ := New(1)
	dSym, _ := New(1)
	yes := func(w crowd.Worker) crowd.AnswerFamily {
		return crowd.AnswerFamily{{Worker: w, Facts: []int{0}, Values: []bool{true}}}
	}
	if err := dAsym.Update(yes(crowd.Worker{ID: "a", TPR: 0.7, TNR: 0.99})); err != nil {
		t.Fatal(err)
	}
	if err := dSym.Update(yes(crowd.Worker{ID: "s", Accuracy: 0.845})); err != nil {
		t.Fatal(err)
	}
	// Posterior for the asym worker: 0.5*0.7 / (0.5*0.7 + 0.5*0.01) ≈ 0.986.
	want := 0.35 / (0.35 + 0.005)
	if got := dAsym.Marginal(0); !almostEqual(got, want, 1e-9) {
		t.Errorf("asym posterior = %v, want %v", got, want)
	}
	if dAsym.Marginal(0) <= dSym.Marginal(0) {
		t.Errorf("high-TNR Yes (%v) not stronger than symmetric Yes (%v)",
			dAsym.Marginal(0), dSym.Marginal(0))
	}
}

func TestConditionalMarginal(t *testing.T) {
	d := tableIDist(t)
	// P(f1 | f2=true) = (P(o4)+P(o8)) / P(f2) = 0.38/0.63.
	got, err := d.ConditionalMarginal(0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.20 + 0.18) / 0.63
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("P(f1|f2) = %v, want %v", got, want)
	}
	// Conditioning on itself is deterministic.
	if v, _ := d.ConditionalMarginal(2, 2, true); v != 1 {
		t.Errorf("P(f3|f3=true) = %v", v)
	}
	if v, _ := d.ConditionalMarginal(2, 2, false); v != 0 {
		t.Errorf("P(f3|f3=false) = %v", v)
	}
	// Law of total probability: P(f) = P(f|g)P(g) + P(f|¬g)P(¬g).
	pt, _ := d.ConditionalMarginal(0, 2, true)
	pf, _ := d.ConditionalMarginal(0, 2, false)
	pg := d.Marginal(2)
	if !almostEqual(pt*pg+pf*(1-pg), d.Marginal(0), 1e-12) {
		t.Error("total probability law violated")
	}
	if _, err := d.ConditionalMarginal(9, 0, true); err == nil {
		t.Error("out-of-range fact accepted")
	}
	// Zero-probability conditioning event errors.
	point, _ := FromJoint([]float64{0, 1})
	if _, err := point.ConditionalMarginal(0, 0, false); err == nil {
		t.Error("zero-probability event accepted")
	}
}
