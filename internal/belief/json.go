package belief

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonDist is the serialized form: the fact count is implied by the
// joint's length, which must be a power of two.
type jsonDist struct {
	Joint []float64 `json:"joint"`
}

// MarshalJSON serializes the belief as its joint distribution, enabling
// checkpoint/restore of long-running labeling jobs.
func (d *Dist) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonDist{Joint: d.Probs()})
}

// normalizedTol bounds how far an incoming joint's mass may sit from 1
// while still being restored verbatim. A belief that went through Update
// sums to 1 only up to accumulated rounding, so renormalizing it on load
// would divide by that ≈1 sum and perturb the last ulps — enough to break
// the byte-identical warm-resume guarantee, since Go's JSON float64
// round-trip is otherwise exact.
const normalizedTol = 1e-9

// UnmarshalJSON restores a belief serialized by MarshalJSON, revalidating
// the joint (non-negative, normalizable, power-of-two length). A joint
// already normalized to within normalizedTol is restored bitwise; only a
// materially denormalized one (hand-edited, produced elsewhere) is
// renormalized.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var in jsonDist
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("belief: %w", err)
	}
	restored, err := FromJoint(in.Joint)
	if err != nil {
		return err
	}
	var sum float64
	for _, v := range in.Joint {
		sum += v
	}
	if math.Abs(sum-1) <= normalizedTol {
		copy(restored.p, in.Joint)
	}
	*d = *restored
	return nil
}
