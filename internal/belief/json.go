package belief

import (
	"encoding/json"
	"fmt"
)

// jsonDist is the serialized form: the fact count is implied by the
// joint's length, which must be a power of two.
type jsonDist struct {
	Joint []float64 `json:"joint"`
}

// MarshalJSON serializes the belief as its joint distribution, enabling
// checkpoint/restore of long-running labeling jobs.
func (d *Dist) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonDist{Joint: d.Probs()})
}

// UnmarshalJSON restores a belief serialized by MarshalJSON, revalidating
// the joint (non-negative, normalizable, power-of-two length).
func (d *Dist) UnmarshalJSON(data []byte) error {
	var in jsonDist
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("belief: %w", err)
	}
	restored, err := FromJoint(in.Joint)
	if err != nil {
		return err
	}
	*d = *restored
	return nil
}
