package belief

import (
	"encoding/json"
	"testing"

	"hcrowd/internal/crowd"
)

// TestJSONRoundTripBitwise pins the warm-resume guarantee: a belief that
// has been through Bayesian updates (so its mass sums to 1 only up to
// rounding) must survive marshal/unmarshal with every probability
// bit-identical. Go's JSON encoder emits float64s in shortest
// round-tripping form, so the only way to lose bits is to renormalize on
// load — which UnmarshalJSON must therefore not do for an
// already-normalized joint.
func TestJSONRoundTripBitwise(t *testing.T) {
	d, err := FromMarginals([]float64{0.62, 0.3, 0.81})
	if err != nil {
		t.Fatal(err)
	}
	w := crowd.Worker{ID: "e", Accuracy: 0.9}
	fam := crowd.AnswerFamily{{Worker: w, Facts: []int{0, 2}, Values: []bool{true, false}}}
	for i := 0; i < 5; i++ {
		if err := d.Update(fam); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dist
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	want, got := d.Probs(), back.Probs()
	if len(want) != len(got) {
		t.Fatalf("round trip changed size: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("p[%d] changed across round trip: %v -> %v", i, want[i], got[i])
		}
	}
}

// TestJSONUnmarshalRenormalizesDenormalized: a materially denormalized
// joint (hand-written, produced by other tooling) is still normalized on
// load rather than trusted.
func TestJSONUnmarshalRenormalizesDenormalized(t *testing.T) {
	var d Dist
	if err := json.Unmarshal([]byte(`{"joint":[2,2,2,2]}`), &d); err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Probs() {
		if v != 0.25 {
			t.Fatalf("p[%d] = %v, want 0.25", i, v)
		}
	}
}

// TestJSONUnmarshalRejectsInvalid keeps the validation intact.
func TestJSONUnmarshalRejectsInvalid(t *testing.T) {
	for _, raw := range []string{
		`{"joint":[0.5,0.25,0.25]}`, // not a power of two
		`{"joint":[1,-1]}`,          // negative mass
		`{"joint":[0,0]}`,           // zero mass
	} {
		var d Dist
		if err := json.Unmarshal([]byte(raw), &d); err == nil {
			t.Errorf("%s accepted", raw)
		}
	}
}
