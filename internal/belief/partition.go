package belief

import (
	"fmt"

	"hcrowd/internal/mathx"
)

// MaxPartitionRecords caps PartitionPrior's block size: n records yield
// C(n,2) pair facts, and 7 records already need 2^21 observations.
const MaxPartitionRecords = 7

// PairIndex returns the fact index of the record pair (i, j), i < j,
// under the lexicographic pair ordering PairFacts uses: (0,1), (0,2), …,
// (0,n-1), (1,2), …
func PairIndex(i, j, n int) (int, error) {
	if i < 0 || j <= i || j >= n {
		return 0, fmt.Errorf("belief: invalid pair (%d, %d) of %d records", i, j, n)
	}
	// Pairs before row i: sum_{r<i} (n-1-r); then offset within row i.
	idx := i*(n-1) - i*(i-1)/2 + (j - i - 1)
	return idx, nil
}

// NumPairFacts returns C(n, 2), the fact count of an n-record block.
func NumPairFacts(n int) int { return n * (n - 1) / 2 }

// PartitionPrior returns the joint prior for an entity-resolution block
// of n records: the facts are the C(n,2) match questions "do records i
// and j refer to the same entity?", and the only observations with mass
// are those consistent with an equivalence relation (transitivity: if
// i~j and j~k then i~k). Mass is uniform over the Bell(n) set
// partitions. Updates preserve the constraint — a checking answer about
// one pair propagates through transitivity to the others — which is the
// crowdsourced-joins structure of the paper's related work [19, 20].
func PartitionPrior(n int) (*Dist, error) {
	if n < 2 || n > MaxPartitionRecords {
		return nil, fmt.Errorf("belief: record count %d outside [2, %d]", n, MaxPartitionRecords)
	}
	m := NumPairFacts(n)
	p := make([]float64, 1<<uint(m))
	count := 0
	// Enumerate set partitions via restricted growth strings.
	assign := make([]int, n)
	var rec func(pos, maxUsed int)
	rec = func(pos, maxUsed int) {
		if pos == n {
			o := 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if assign[i] == assign[j] {
						idx, _ := PairIndex(i, j, n)
						o |= 1 << uint(idx)
					}
				}
			}
			p[o]++
			count++
			return
		}
		for b := 0; b <= maxUsed+1; b++ {
			assign[pos] = b
			next := maxUsed
			if b > maxUsed {
				next = b
			}
			rec(pos+1, next)
		}
	}
	assign[0] = 0
	rec(1, 0)
	mathx.Normalize(p)
	return &Dist{m: m, p: p}, nil
}

// BellNumber returns the number of set partitions of n elements, the
// support size of PartitionPrior.
func BellNumber(n int) int {
	// Bell triangle.
	row := []int{1}
	for i := 1; i <= n; i++ {
		next := make([]int, i+1)
		next[0] = row[len(row)-1]
		for j := 1; j <= i; j++ {
			next[j] = next[j-1] + row[j-1]
		}
		row = next
	}
	return row[0]
}
