package belief

import (
	"math/bits"
	"testing"

	"hcrowd/internal/crowd"
)

func TestBellNumber(t *testing.T) {
	want := []int{1, 1, 2, 5, 15, 52, 203, 877}
	for n, w := range want {
		if got := BellNumber(n); got != w {
			t.Errorf("Bell(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestPairIndex(t *testing.T) {
	// n = 4: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
	cases := []struct{ i, j, want int }{
		{0, 1, 0}, {0, 2, 1}, {0, 3, 2}, {1, 2, 3}, {1, 3, 4}, {2, 3, 5},
	}
	for _, c := range cases {
		got, err := PairIndex(c.i, c.j, 4)
		if err != nil || got != c.want {
			t.Errorf("PairIndex(%d,%d,4) = %d,%v want %d", c.i, c.j, got, err, c.want)
		}
	}
	for _, bad := range [][2]int{{1, 1}, {2, 1}, {-1, 2}, {0, 4}} {
		if _, err := PairIndex(bad[0], bad[1], 4); err == nil {
			t.Errorf("PairIndex(%d,%d,4) accepted", bad[0], bad[1])
		}
	}
	if NumPairFacts(5) != 10 {
		t.Errorf("NumPairFacts(5) = %d", NumPairFacts(5))
	}
}

// isTransitive reports whether observation o over n records encodes an
// equivalence relation.
func isTransitive(o, n int) bool {
	same := func(i, j int) bool {
		if i == j {
			return true
		}
		if i > j {
			i, j = j, i
		}
		idx, _ := PairIndex(i, j, n)
		return o&(1<<uint(idx)) != 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if same(i, j) && same(j, k) && !same(i, k) {
					return false
				}
			}
		}
	}
	return true
}

func TestPartitionPriorSupport(t *testing.T) {
	for n := 2; n <= 5; n++ {
		d, err := PartitionPrior(n)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumFacts() != NumPairFacts(n) {
			t.Fatalf("n=%d: facts %d", n, d.NumFacts())
		}
		support := 0
		for o := 0; o < d.NumObservations(); o++ {
			if d.P(o) == 0 {
				continue
			}
			support++
			if !isTransitive(o, n) {
				t.Fatalf("n=%d: mass on non-transitive observation %b", n, o)
			}
		}
		if support != BellNumber(n) {
			t.Errorf("n=%d: support %d, want Bell(%d)=%d", n, support, n, BellNumber(n))
		}
	}
}

func TestPartitionPriorBounds(t *testing.T) {
	if _, err := PartitionPrior(1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PartitionPrior(MaxPartitionRecords + 1); err == nil {
		t.Error("oversized n accepted")
	}
}

func TestPartitionPriorTransitivityPropagation(t *testing.T) {
	// Three records a,b,c. An oracle confirms a~b and b~c; transitivity
	// must force P(a~c) to 1 without anyone asking about it.
	d, err := PartitionPrior(3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := crowd.Worker{ID: "o", Accuracy: 1}
	ab, _ := PairIndex(0, 1, 3)
	bc, _ := PairIndex(1, 2, 3)
	ac, _ := PairIndex(0, 2, 3)
	fam := crowd.AnswerFamily{{
		Worker: oracle,
		Facts:  []int{ab, bc},
		Values: []bool{true, true},
	}}
	if err := d.Update(fam); err != nil {
		t.Fatal(err)
	}
	if got := d.Marginal(ac); got != 1 {
		t.Errorf("P(a~c | a~b, b~c) = %v, want 1", got)
	}
	// And a noisy match signal on a~b raises a~c through b~c mass too.
	d2, _ := PartitionPrior(3)
	before := d2.Marginal(ac)
	noisy := crowd.Worker{ID: "w", Accuracy: 0.9}
	_ = d2.Update(crowd.AnswerFamily{{Worker: noisy, Facts: []int{ab}, Values: []bool{true}}})
	_ = d2.Update(crowd.AnswerFamily{{Worker: noisy, Facts: []int{bc}, Values: []bool{true}}})
	if d2.Marginal(ac) <= before {
		t.Errorf("transitive evidence did not raise P(a~c): %v -> %v", before, d2.Marginal(ac))
	}
}

func TestPartitionPriorNonMatchDoesNotForce(t *testing.T) {
	// a~b together with b!~c must force a!~c (else transitivity breaks).
	d, _ := PartitionPrior(3)
	oracle := crowd.Worker{ID: "o", Accuracy: 1}
	ab, _ := PairIndex(0, 1, 3)
	bc, _ := PairIndex(1, 2, 3)
	ac, _ := PairIndex(0, 2, 3)
	_ = d.Update(crowd.AnswerFamily{{Worker: oracle, Facts: []int{ab, bc}, Values: []bool{true, false}}})
	if got := d.Marginal(ac); got != 0 {
		t.Errorf("P(a~c | a~b, b!~c) = %v, want 0", got)
	}
}

func TestPartitionPriorMarginals(t *testing.T) {
	// Sanity: the pair-match marginal under the uniform-partition prior
	// matches the combinatorial value #partitions-with-pair / Bell(n).
	d, _ := PartitionPrior(4)
	// Partitions of 4 with records 0,1 together: Bell(3) = 5 (merge 0,1
	// into one element). So P = 5/15 = 1/3.
	idx, _ := PairIndex(0, 1, 4)
	if got := d.Marginal(idx); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("P(0~1) = %v, want 1/3", got)
	}
	// Every observation with support is a union of blocks: ones count of
	// valid observations is sum over blocks of C(size,2).
	for o := 0; o < d.NumObservations(); o++ {
		if d.P(o) > 0 && bits.OnesCount(uint(o)) == 2 {
			// Two matched pairs sharing a record would violate
			// transitivity; verify no such observation has mass.
			if !isTransitive(o, 4) {
				t.Fatalf("invalid 2-pair observation %b has mass", o)
			}
		}
	}
}
