package belief

import (
	"errors"
	"fmt"

	"hcrowd/internal/mathx"
)

// MarkovPrior returns the chain-structured joint prior the synthetic
// workload draws its ground truth from: fact j agrees with fact j-1 with
// probability agree = (1+couple)/2, where couple ∈ [0, 1) is the copy
// probability. couple = 0 is the uniform (independent) prior. The paper's
// problem statement (Definition 6) takes the observations' joint
// distribution as given; this is that structural input for chain-coupled
// tasks.
func MarkovPrior(m int, couple float64) (*Dist, error) {
	if couple < 0 || couple >= 1 {
		return nil, fmt.Errorf("belief: coupling %v outside [0, 1)", couple)
	}
	d, err := New(m)
	if err != nil {
		return nil, err
	}
	if couple == 0 {
		return d, nil
	}
	agree := (1 + couple) / 2
	p := make([]float64, 1<<uint(m))
	for o := range p {
		prob := 0.5
		for f := 1; f < m; f++ {
			if Models(o, f) == Models(o, f-1) {
				prob *= agree
			} else {
				prob *= 1 - agree
			}
		}
		p[o] = prob
	}
	mathx.Normalize(p)
	d.p = p
	return d, nil
}

// FromMarginalsWithPrior combines per-fact posteriors with a structural
// joint prior: P(o) ∝ prior(o) · Π_f m_f(o ⊨ f), i.e. the prior carries
// the correlations Equation 15's plain product form discards, and the
// aggregated marginals carry the evidence. With a uniform prior it
// reduces to FromMarginals.
func FromMarginalsWithPrior(pTrue []float64, prior *Dist) (*Dist, error) {
	if prior == nil {
		return FromMarginals(pTrue)
	}
	if len(pTrue) != prior.NumFacts() {
		return nil, fmt.Errorf("belief: %d marginals for a %d-fact prior", len(pTrue), prior.NumFacts())
	}
	evidence, err := FromMarginals(pTrue)
	if err != nil {
		return nil, err
	}
	p := make([]float64, prior.NumObservations())
	var sum float64
	for o := range p {
		v := prior.P(o) * evidence.P(o)
		p[o] = v
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("belief: prior and marginals have disjoint support")
	}
	inv := 1 / sum
	for o := range p {
		p[o] *= inv
	}
	return &Dist{m: prior.m, p: p}, nil
}

// Correlation returns the probability mass on observations where facts a
// and b agree (both true or both false); 0.5 means uncorrelated under a
// symmetric belief.
func (d *Dist) Correlation(a, b int) float64 {
	if a < 0 || a >= d.m || b < 0 || b >= d.m {
		panic(fmt.Sprintf("belief: Correlation facts (%d,%d) out of range", a, b))
	}
	var agree float64
	for o, p := range d.p {
		if Models(o, a) == Models(o, b) {
			agree += p
		}
	}
	return agree
}

// OneHotPrior returns the joint prior for a task derived from an m-class
// single-label classification (§II-A: "each labeling task can be divided
// into m queries about m binary facts. The facts are of course
// correlated"): uniform mass over the m one-hot observations and zero
// elsewhere. Observations outside the constraint keep zero probability
// through every Bayesian update.
func OneHotPrior(m int) (*Dist, error) {
	if m < 1 || m > MaxFacts {
		return nil, fmt.Errorf("belief: class count %d outside [1, %d]", m, MaxFacts)
	}
	p := make([]float64, 1<<uint(m))
	for c := 0; c < m; c++ {
		p[1<<uint(c)] = 1 / float64(m)
	}
	return &Dist{m: m, p: p}, nil
}
