package belief

import (
	"math"
	"testing"

	"hcrowd/internal/crowd"
)

func TestMarkovPriorUniformAtZero(t *testing.T) {
	d, err := MarkovPrior(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 8; o++ {
		if !almostEqual(d.P(o), 0.125, 1e-12) {
			t.Fatalf("P(%d) = %v, want uniform", o, d.P(o))
		}
	}
}

func TestMarkovPriorAgreement(t *testing.T) {
	couple := 0.8
	d, err := MarkovPrior(4, couple)
	if err != nil {
		t.Fatal(err)
	}
	agree := (1 + couple) / 2
	for f := 1; f < 4; f++ {
		if got := d.Correlation(f-1, f); !almostEqual(got, agree, 1e-9) {
			t.Errorf("adjacent agreement P(f%d==f%d) = %v, want %v", f-1, f, got, agree)
		}
	}
	// Marginals stay symmetric at 1/2.
	for f := 0; f < 4; f++ {
		if got := d.Marginal(f); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("marginal %d = %v, want 0.5", f, got)
		}
	}
	// Non-adjacent correlation is weaker than adjacent (chain structure).
	if d.Correlation(0, 3) >= d.Correlation(0, 1) {
		t.Errorf("chain decay violated: %v >= %v", d.Correlation(0, 3), d.Correlation(0, 1))
	}
}

func TestMarkovPriorRejectsBadCoupling(t *testing.T) {
	for _, c := range []float64{-0.1, 1.0, 2.0} {
		if _, err := MarkovPrior(3, c); err == nil {
			t.Errorf("coupling %v accepted", c)
		}
	}
}

func TestFromMarginalsWithPriorNilPrior(t *testing.T) {
	a, err := FromMarginalsWithPrior([]float64{0.9, 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromMarginals([]float64{0.9, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 4; o++ {
		if !almostEqual(a.P(o), b.P(o), 1e-12) {
			t.Fatal("nil prior does not reduce to FromMarginals")
		}
	}
}

func TestFromMarginalsWithUniformPriorReduces(t *testing.T) {
	prior, _ := MarkovPrior(3, 0)
	a, err := FromMarginalsWithPrior([]float64{0.8, 0.4, 0.6}, prior)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FromMarginals([]float64{0.8, 0.4, 0.6})
	for o := 0; o < 8; o++ {
		if !almostEqual(a.P(o), b.P(o), 1e-12) {
			t.Fatal("uniform prior changed the product belief")
		}
	}
}

func TestFromMarginalsWithPriorInjectsCorrelation(t *testing.T) {
	prior, _ := MarkovPrior(2, 0.9)
	d, err := FromMarginalsWithPrior([]float64{0.5, 0.5}, prior)
	if err != nil {
		t.Fatal(err)
	}
	// Uninformative marginals: correlation comes purely from the prior.
	if got := d.Correlation(0, 1); got < 0.9 {
		t.Errorf("correlation %v, want >= 0.9 (prior agreement 0.95)", got)
	}
	// And the correlated belief propagates evidence across facts: strong
	// evidence on f0 must raise P(f1) above its 0.5 marginal.
	d2, err := FromMarginalsWithPrior([]float64{0.95, 0.5}, prior)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Marginal(1); got <= 0.6 {
		t.Errorf("P(f1 | evidence on f0) = %v, want > 0.6", got)
	}
}

func TestFromMarginalsWithPriorSizeMismatch(t *testing.T) {
	prior, _ := MarkovPrior(3, 0.5)
	if _, err := FromMarginalsWithPrior([]float64{0.5, 0.5}, prior); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCorrelationBounds(t *testing.T) {
	d := tableIDist(t)
	// Table I: agreement of f1 and f2 = P(o1)+P(o4)+P(o5)+P(o8)... codes
	// where bits 0 and 1 agree: 0(00),3(11),4(00),7(11).
	want := 0.09 + 0.20 + 0.08 + 0.18
	if got := d.Correlation(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Correlation = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Correlation did not panic")
		}
	}()
	d.Correlation(0, 9)
}

func TestOneHotPrior(t *testing.T) {
	d, err := OneHotPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	// Mass only on the 4 one-hot observations, 1/4 each.
	var total float64
	for o := 0; o < 16; o++ {
		bits := 0
		for f := 0; f < 4; f++ {
			if Models(o, f) {
				bits++
			}
		}
		if bits == 1 {
			if !almostEqual(d.P(o), 0.25, 1e-12) {
				t.Errorf("P(%b) = %v, want 0.25", o, d.P(o))
			}
		} else if d.P(o) != 0 {
			t.Errorf("P(%b) = %v, want 0", o, d.P(o))
		}
		total += d.P(o)
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("total mass %v", total)
	}
	// Marginals are 1/m.
	for f := 0; f < 4; f++ {
		if !almostEqual(d.Marginal(f), 0.25, 1e-12) {
			t.Errorf("marginal %d = %v", f, d.Marginal(f))
		}
	}
	if _, err := OneHotPrior(0); err == nil {
		t.Error("OneHotPrior(0) accepted")
	}
}

func TestOneHotConstraintSurvivesUpdate(t *testing.T) {
	prior, err := OneHotPrior(3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromMarginalsWithPrior([]float64{0.6, 0.3, 0.4}, prior)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-one-hot observation stays at zero, and evidence for one
	// class pushes the others down (negative correlation).
	for o := 0; o < 8; o++ {
		oneHot := o == 1 || o == 2 || o == 4
		if !oneHot && d.P(o) != 0 {
			t.Errorf("constraint violated at %b: %v", o, d.P(o))
		}
	}
	before1 := d.Marginal(1)
	expert := crowd.Worker{ID: "e", Accuracy: 0.95}
	fam := crowd.AnswerFamily{{Worker: expert, Facts: []int{0}, Values: []bool{true}}}
	if err := d.Update(fam); err != nil {
		t.Fatal(err)
	}
	if d.Marginal(1) >= before1 {
		t.Errorf("evidence for class 0 did not lower class 1: %v -> %v", before1, d.Marginal(1))
	}
	var sum float64
	for c := 0; c < 3; c++ {
		sum += d.Marginal(c)
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("one-hot marginals sum to %v, want 1", sum)
	}
}
