// Package cluster is the stdlib-only routing brain of hcserve's replica
// mode: a deterministic consistent-hash ring over a static membership
// list. Each session ID hashes to exactly one owning replica, every
// replica computes the same answer from the same membership (the ring is
// stable across member reordering and across processes), and membership
// changes move only the keys they must — the properties the routing and
// journal-handoff layers in internal/server build on. The package holds
// no I/O and no clocks; it is a pure function from (members, session ID)
// to an owner.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0. 64 points per member keeps the expected load imbalance
// across a handful of replicas within a few percent while the ring
// stays small enough to rebuild instantly on startup.
const DefaultVNodes = 64

// point is one virtual node on the ring: a hash position claimed by a
// member.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring. Build one with New; a nil
// or zero Ring is not usable. All methods are safe for concurrent use
// (the ring never mutates after construction).
type Ring struct {
	members []string // sorted, deduplicated
	vnodes  int
	points  []point // sorted by (hash, member)
}

// New builds a ring over the given members with vnodes virtual nodes
// per member (0 means DefaultVNodes). Members are deduplicated and the
// ring is independent of their order: every replica that was handed the
// same membership set — in any order — computes byte-identical routing.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		m = strings.TrimSpace(m)
		if m == "" {
			return nil, errors.New("cluster: empty member address")
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if len(uniq) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	// Ties on the hash value (possible, if vanishingly rare, with 64-bit
	// FNV) are broken by member name so the ring order is a pure function
	// of the membership set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hashKey positions a string on the ring: FNV-1a 64, chosen because it
// is in the standard library, byte-stable across platforms, and fast
// enough that the hash never shows up in a routing profile.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //hclint:ignore errcheck-lite hash.Hash.Write never returns an error
	return h.Sum64()
}

// Owner returns the member that owns key (a session ID): the first
// virtual node at or clockwise of the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Has reports whether addr is a ring member.
func (r *Ring) Has(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Members returns the membership in sorted order (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Moved is the rebalance diff between two rings: for each key whose
// owner differs between r and next, it maps the key to its new owner.
// An operator drains a membership change by calling the handoff
// endpoint for exactly these keys — everything else stays put, which is
// the bounded-movement property the ring tests pin down.
func (r *Ring) Moved(next *Ring, keys []string) map[string]string {
	moved := make(map[string]string)
	for _, k := range keys {
		if from, to := r.Owner(k), next.Owner(k); from != to {
			moved[k] = to
		}
	}
	return moved
}

// Partition groups keys by owning member. Keys preserve their input
// order within each owner's slice, so the result is deterministic for a
// deterministic input order.
func (r *Ring) Partition(keys []string) map[string][]string {
	part := make(map[string][]string)
	for _, k := range keys {
		o := r.Owner(k)
		part[o] = append(part[o], k)
	}
	return part
}

// Config is a replica's static membership view, parsed from the
// -self/-peers/-vnodes flags.
type Config struct {
	// Self is this replica's advertised address, exactly as it appears
	// in Peers.
	Self string
	// Peers is the full membership (including Self), sorted and
	// deduplicated.
	Peers []string
	// VNodes is the per-member virtual-node count (0 = DefaultVNodes).
	VNodes int
}

// ParseConfig validates the flag spellings: self must be non-empty and
// a member of the comma-separated peers list (every replica must agree
// on the full membership, itself included).
func ParseConfig(self, peers string, vnodes int) (Config, error) {
	if strings.TrimSpace(self) == "" {
		return Config{}, errors.New("cluster: -self is required with -peers")
	}
	self = strings.TrimSpace(self)
	var list []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			list = append(list, p)
		}
	}
	if len(list) == 0 {
		return Config{}, errors.New("cluster: -peers lists no addresses")
	}
	r, err := New(list, vnodes)
	if err != nil {
		return Config{}, err
	}
	if !r.Has(self) {
		return Config{}, fmt.Errorf("cluster: -self %q is not in -peers %v", self, r.Members())
	}
	return Config{Self: self, Peers: r.Members(), VNodes: vnodes}, nil
}

// Ring builds the config's ring.
func (c Config) Ring() (*Ring, error) {
	return New(c.Peers, c.VNodes)
}
