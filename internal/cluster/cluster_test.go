package cluster

import (
	"fmt"
	"testing"

	"hcrowd/internal/rngutil"
)

// testMembers returns n synthetic replica addresses.
func testMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return ms
}

// testKeys returns k session-ID-shaped keys from a seeded stream.
func testKeys(seed int64, k int) []string {
	rng := rngutil.New(seed)
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("s%d-%d", i, rng.Intn(1<<20))
	}
	return keys
}

// TestRingOwnerDeterministicGivenSeed pins the ring's core contract:
// the owner of every key is a pure function of the membership SET —
// shuffling the member list (as different replicas parsing the same
// -peers flag in different orders might) never changes any routing
// decision, and rebuilding the ring from scratch reproduces it exactly.
func TestRingOwnerDeterministicGivenSeed(t *testing.T) {
	members := testMembers(5)
	keys := testKeys(1, 500)
	ref, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = ref.Owner(k)
	}
	rng := rngutil.New(2)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		r, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if got := r.Owner(k); got != want[i] {
				t.Fatalf("trial %d: Owner(%q) = %q from permuted members, want %q", trial, k, got, want[i])
			}
		}
	}
}

// TestRingBoundedMovementOnJoin: adding one member moves keys ONLY onto
// the new member (no key changes hands between surviving members), and
// the moved share is roughly 1/(n+1) of the keyspace, not a reshuffle.
func TestRingBoundedMovementOnJoin(t *testing.T) {
	members := testMembers(4)
	keys := testKeys(3, 2000)
	before, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	joined := "10.0.0.99:8080"
	after, err := New(append(append([]string(nil), members...), joined), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := before.Moved(after, keys)
	if len(moved) == 0 {
		t.Fatal("no keys moved to the joining member (2000 keys, 4->5 members)")
	}
	for k, to := range moved {
		if to != joined {
			t.Fatalf("key %q moved to surviving member %q; joins must only move keys onto the new member", k, to)
		}
	}
	// Expected share is 1/5 of the keys; triple it for slack so the test
	// only fails on a genuinely broken ring, not hash-placement variance.
	if max := 3 * len(keys) / 5; len(moved) > max {
		t.Fatalf("join moved %d of %d keys (bound %d)", len(moved), len(keys), max)
	}
}

// TestRingBoundedMovementOnLeave: removing a member moves exactly that
// member's keys; everything owned by a survivor stays put.
func TestRingBoundedMovementOnLeave(t *testing.T) {
	members := testMembers(5)
	keys := testKeys(4, 2000)
	before, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	gone := members[2]
	var rest []string
	for _, m := range members {
		if m != gone {
			rest = append(rest, m)
		}
	}
	after, err := New(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		from, to := before.Owner(k), after.Owner(k)
		if from == gone {
			if to == gone {
				t.Fatalf("key %q still owned by removed member %q", k, gone)
			}
			continue
		}
		if to != from {
			t.Fatalf("key %q moved %q -> %q although its owner never left", k, from, to)
		}
	}
}

// TestRingDistribution sanity-checks that virtual nodes spread load:
// with 5 members no member owns more than half of a 2000-key sample.
func TestRingDistribution(t *testing.T) {
	r, err := New(testMembers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	part := r.Partition(testKeys(5, 2000))
	if len(part) != 5 {
		t.Fatalf("only %d of 5 members own keys", len(part))
	}
	for _, m := range r.Members() {
		if n := len(part[m]); n > 1000 {
			t.Fatalf("member %s owns %d of 2000 keys", m, n)
		}
	}
}

func TestRingRejectsEmptyMembership(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("New(nil) succeeded")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("New with empty member succeeded")
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("b:1", " c:1, a:1 ,b:1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a:1", "b:1", "c:1"}; fmt.Sprint(cfg.Peers) != fmt.Sprint(want) {
		t.Fatalf("peers = %v, want %v", cfg.Peers, want)
	}
	if _, err := cfg.Ring(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseConfig("", "a:1", 0); err == nil {
		t.Fatal("empty -self accepted")
	}
	if _, err := ParseConfig("d:1", "a:1,b:1", 0); err == nil {
		t.Fatal("-self outside -peers accepted")
	}
	if _, err := ParseConfig("a:1", " , ", 0); err == nil {
		t.Fatal("empty -peers accepted")
	}
}
