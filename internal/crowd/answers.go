package crowd

import (
	"fmt"
	"math/rand"
	"sort"

	"hcrowd/internal/rngutil"
)

// AnswerSet is the crowdsourced answer set A_cr^T of Definition 3: one
// worker's Yes/No answers to every query in a query set T. Facts holds the
// fact indices of T in ascending order and Values is parallel to it
// (true = "Yes", the worker asserts the fact holds).
type AnswerSet struct {
	Worker Worker
	Facts  []int
	Values []bool
}

// Validate checks structural invariants: parallel slices, sorted unique
// facts, and a valid worker.
func (a AnswerSet) Validate() error {
	if err := a.Worker.Validate(); err != nil {
		return err
	}
	if len(a.Facts) != len(a.Values) {
		return fmt.Errorf("crowd: answer set has %d facts but %d values", len(a.Facts), len(a.Values))
	}
	for i := 1; i < len(a.Facts); i++ {
		if a.Facts[i] <= a.Facts[i-1] {
			return fmt.Errorf("crowd: answer set facts not strictly increasing at %d", i)
		}
	}
	return nil
}

// Answer returns the worker's answer for fact f; ok is false when f is not
// in the query set (the paper: an answer set is not a complete assignment,
// so "no answer" is distinct from "No").
func (a AnswerSet) Answer(f int) (value, ok bool) {
	i := sort.SearchInts(a.Facts, f)
	if i < len(a.Facts) && a.Facts[i] == f {
		return a.Values[i], true
	}
	return false, false
}

// AnswerFamily is the crowdsourced answer family A_C^T: the answer sets
// from every worker in a crowd for the same query set.
type AnswerFamily []AnswerSet

// Validate checks each member answers the same query set.
func (fam AnswerFamily) Validate() error {
	for i, a := range fam {
		if err := a.Validate(); err != nil {
			return err
		}
		if i > 0 {
			if len(a.Facts) != len(fam[0].Facts) {
				return fmt.Errorf("crowd: answer family member %d has different query set size", i)
			}
			for j, f := range a.Facts {
				if fam[0].Facts[j] != f {
					return fmt.Errorf("crowd: answer family member %d answers different query set", i)
				}
			}
		}
	}
	return nil
}

// ForFact collects every worker's answer to fact f (the A_C^T(f) of the
// paper). Workers whose query set excluded f are skipped.
func (fam AnswerFamily) ForFact(f int) []bool {
	var out []bool
	for _, a := range fam {
		if v, ok := a.Answer(f); ok {
			out = append(out, v)
		}
	}
	return out
}

// Truth is a ground-truth assignment consulted by the simulator: Truth(f)
// reports whether fact f holds in the real world.
type Truth func(f int) bool

// SimulateAnswerSet draws one worker's answers to the query set under the
// accuracy-rate error model: each answer independently matches the truth
// with probability Worker.Accuracy. The facts slice is copied and sorted.
func SimulateAnswerSet(rng *rand.Rand, w Worker, facts []int, truth Truth) AnswerSet {
	fs := make([]int, len(facts))
	copy(fs, facts)
	sort.Ints(fs)
	vals := make([]bool, len(fs))
	for i, f := range fs {
		tv := truth(f)
		if rngutil.Bernoulli(rng, w.PCorrect(tv)) {
			vals[i] = tv
		} else {
			vals[i] = !tv
		}
	}
	return AnswerSet{Worker: w, Facts: fs, Values: vals}
}

// SimulateAnswerFamily draws an answer family: every worker in the crowd
// answers the same query set independently.
func SimulateAnswerFamily(rng *rand.Rand, c Crowd, facts []int, truth Truth) AnswerFamily {
	fam := make(AnswerFamily, len(c))
	for i, w := range c {
		fam[i] = SimulateAnswerSet(rng, w, facts, truth)
	}
	return fam
}

// EstimateAccuracies estimates each worker's accuracy rate from answers to
// gold sample facts with known truth, as §II-A prescribes ("easily
// estimated with a set of sample tasks with ground truth"). It applies
// add-one (Laplace) smoothing and clamps into [0.5, 1] so the estimate
// remains a valid error-model accuracy. Workers with no gold answers get
// the prior 0.75.
func EstimateAccuracies(c Crowd, gold []AnswerFamily, truth Truth) Crowd {
	correct := make(map[string]int, len(c))
	total := make(map[string]int, len(c))
	for _, fam := range gold {
		for _, as := range fam {
			for i, f := range as.Facts {
				total[as.Worker.ID]++
				if as.Values[i] == truth(f) {
					correct[as.Worker.ID]++
				}
			}
		}
	}
	out := make(Crowd, len(c))
	for i, w := range c {
		est := 0.75
		if n := total[w.ID]; n > 0 {
			est = (float64(correct[w.ID]) + 1) / (float64(n) + 2)
		}
		if est < 0.5 {
			est = 0.5
		}
		if est > 1 {
			est = 1
		}
		out[i] = Worker{ID: w.ID, Accuracy: est}
	}
	return out
}

// EstimateConfusion estimates each worker's class-conditional rates (TPR,
// TNR) from gold sample answers, the confusion-model counterpart of
// EstimateAccuracies. Rates are add-one smoothed and clamped into
// [0.5, 1]; workers with no gold answers for a class fall back to 0.75.
func EstimateConfusion(c Crowd, gold []AnswerFamily, truth Truth) Crowd {
	type counts struct{ tp, tn, pos, neg int }
	stats := make(map[string]*counts, len(c))
	for _, w := range c {
		stats[w.ID] = &counts{}
	}
	for _, fam := range gold {
		for _, as := range fam {
			st, ok := stats[as.Worker.ID]
			if !ok {
				continue
			}
			for i, f := range as.Facts {
				if truth(f) {
					st.pos++
					if as.Values[i] {
						st.tp++
					}
				} else {
					st.neg++
					if !as.Values[i] {
						st.tn++
					}
				}
			}
		}
	}
	clamp := func(v float64) float64 {
		if v < 0.5 {
			return 0.5
		}
		if v > 1 {
			return 1
		}
		return v
	}
	out := make(Crowd, len(c))
	for i, w := range c {
		st := stats[w.ID]
		tpr, tnr := 0.75, 0.75
		if st.pos > 0 {
			tpr = clamp((float64(st.tp) + 1) / (float64(st.pos) + 2))
		}
		if st.neg > 0 {
			tnr = clamp((float64(st.tn) + 1) / (float64(st.neg) + 2))
		}
		out[i] = Worker{ID: w.ID, TPR: tpr, TNR: tnr}
	}
	return out
}
