package crowd

import (
	"math"
	"testing"

	"hcrowd/internal/rngutil"
)

func truthAllTrue(int) bool    { return true }
func truthEvenTrue(f int) bool { return f%2 == 0 }

func TestAnswerSetAnswer(t *testing.T) {
	a := AnswerSet{
		Worker: Worker{ID: "w", Accuracy: 0.9},
		Facts:  []int{2, 5, 9},
		Values: []bool{true, false, true},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.Answer(5); !ok || v {
		t.Errorf("Answer(5) = %v,%v", v, ok)
	}
	if v, ok := a.Answer(9); !ok || !v {
		t.Errorf("Answer(9) = %v,%v", v, ok)
	}
	if _, ok := a.Answer(3); ok {
		t.Error("Answer(3) found for fact outside query set")
	}
}

func TestAnswerSetValidate(t *testing.T) {
	bad := AnswerSet{Worker: Worker{ID: "w", Accuracy: 0.9}, Facts: []int{1, 1}, Values: []bool{true, true}}
	if bad.Validate() == nil {
		t.Error("duplicate facts accepted")
	}
	bad2 := AnswerSet{Worker: Worker{ID: "w", Accuracy: 0.9}, Facts: []int{1, 2}, Values: []bool{true}}
	if bad2.Validate() == nil {
		t.Error("length mismatch accepted")
	}
	bad3 := AnswerSet{Worker: Worker{ID: "w", Accuracy: 0.3}, Facts: nil, Values: nil}
	if bad3.Validate() == nil {
		t.Error("invalid worker accepted")
	}
}

func TestAnswerFamilyValidate(t *testing.T) {
	w1 := Worker{ID: "a", Accuracy: 0.9}
	w2 := Worker{ID: "b", Accuracy: 0.95}
	good := AnswerFamily{
		{Worker: w1, Facts: []int{1, 2}, Values: []bool{true, false}},
		{Worker: w2, Facts: []int{1, 2}, Values: []bool{false, false}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := AnswerFamily{
		{Worker: w1, Facts: []int{1, 2}, Values: []bool{true, false}},
		{Worker: w2, Facts: []int{1, 3}, Values: []bool{false, false}},
	}
	if bad.Validate() == nil {
		t.Error("mismatched query sets accepted")
	}
}

func TestForFact(t *testing.T) {
	fam := AnswerFamily{
		{Worker: Worker{ID: "a", Accuracy: 0.9}, Facts: []int{1, 2}, Values: []bool{true, false}},
		{Worker: Worker{ID: "b", Accuracy: 0.9}, Facts: []int{1, 2}, Values: []bool{true, true}},
	}
	got := fam.ForFact(1)
	if len(got) != 2 || !got[0] || !got[1] {
		t.Errorf("ForFact(1) = %v", got)
	}
	if got := fam.ForFact(99); got != nil {
		t.Errorf("ForFact(99) = %v, want nil", got)
	}
}

func TestSimulateAnswerSetSortsFacts(t *testing.T) {
	rng := rngutil.New(1)
	a := SimulateAnswerSet(rng, Worker{ID: "w", Accuracy: 1.0}, []int{9, 2, 5}, truthEvenTrue)
	if a.Facts[0] != 2 || a.Facts[1] != 5 || a.Facts[2] != 9 {
		t.Errorf("facts not sorted: %v", a.Facts)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateOracleAlwaysCorrect(t *testing.T) {
	rng := rngutil.New(2)
	for i := 0; i < 100; i++ {
		a := SimulateAnswerSet(rng, Worker{ID: "o", Accuracy: 1.0}, []int{0, 1, 2, 3}, truthEvenTrue)
		for j, f := range a.Facts {
			if a.Values[j] != truthEvenTrue(f) {
				t.Fatal("oracle gave a wrong answer")
			}
		}
	}
}

func TestSimulateAccuracyFrequency(t *testing.T) {
	rng := rngutil.New(3)
	w := Worker{ID: "w", Accuracy: 0.8}
	const n = 50000
	correct := 0
	for i := 0; i < n; i++ {
		a := SimulateAnswerSet(rng, w, []int{7}, truthAllTrue)
		if a.Values[0] {
			correct++
		}
	}
	got := float64(correct) / n
	if math.Abs(got-0.8) > 0.01 {
		t.Errorf("simulated accuracy = %v, want 0.8", got)
	}
}

func TestSimulateAnswerFamily(t *testing.T) {
	rng := rngutil.New(4)
	c := Crowd{{ID: "a", Accuracy: 0.9}, {ID: "b", Accuracy: 0.95}, {ID: "c", Accuracy: 1.0}}
	fam := SimulateAnswerFamily(rng, c, []int{0, 1}, truthEvenTrue)
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fam) != 3 {
		t.Fatalf("family size = %d", len(fam))
	}
	for i, as := range fam {
		if as.Worker.ID != c[i].ID {
			t.Errorf("family order changed: %v", as.Worker)
		}
	}
}

func TestEstimateAccuracies(t *testing.T) {
	rng := rngutil.New(5)
	c := Crowd{{ID: "lo", Accuracy: 0.6}, {ID: "hi", Accuracy: 0.95}}
	// Gold sample: 400 facts answered by both workers.
	facts := make([]int, 400)
	for i := range facts {
		facts[i] = i
	}
	gold := []AnswerFamily{SimulateAnswerFamily(rng, c, facts, truthEvenTrue)}
	est := EstimateAccuracies(c, gold, truthEvenTrue)
	for i, w := range est {
		if math.Abs(w.Accuracy-c[i].Accuracy) > 0.06 {
			t.Errorf("estimate for %s = %v, want ~%v", w.ID, w.Accuracy, c[i].Accuracy)
		}
	}
}

func TestEstimateAccuraciesNoData(t *testing.T) {
	c := Crowd{{ID: "a", Accuracy: 0.8}}
	est := EstimateAccuracies(c, nil, truthAllTrue)
	if est[0].Accuracy != 0.75 {
		t.Errorf("prior estimate = %v, want 0.75", est[0].Accuracy)
	}
}

func TestEstimateAccuraciesClamped(t *testing.T) {
	// A worker who answers everything wrong in the sample must still get a
	// valid error-model accuracy (>= 0.5).
	c := Crowd{{ID: "w", Accuracy: 0.5}}
	gold := []AnswerFamily{{
		{Worker: c[0], Facts: []int{0, 1, 2, 3}, Values: []bool{false, false, false, false}},
	}}
	est := EstimateAccuracies(c, gold, truthAllTrue)
	if est[0].Accuracy < 0.5 {
		t.Errorf("estimate %v below 0.5", est[0].Accuracy)
	}
	if err := est.Validate(); err != nil {
		t.Fatal(err)
	}
}
