package crowd

import (
	"math"
	"testing"

	"hcrowd/internal/rngutil"
)

func TestAsymmetricWorkerValidate(t *testing.T) {
	cases := []struct {
		w  Worker
		ok bool
	}{
		{Worker{ID: "a", TPR: 0.9, TNR: 0.7}, true},
		{Worker{ID: "a", TPR: 1, TNR: 1}, true},
		{Worker{ID: "a", TPR: 0.4, TNR: 0.9}, false},
		{Worker{ID: "a", TPR: 0.9, TNR: 1.1}, false},
		{Worker{ID: "a", TPR: math.NaN(), TNR: 0.9}, false},
		// Asymmetric fields set means Accuracy is ignored entirely.
		{Worker{ID: "a", Accuracy: 0.2, TPR: 0.8, TNR: 0.8}, true},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.w, err, c.ok)
		}
	}
}

func TestPCorrectDispatch(t *testing.T) {
	sym := Worker{ID: "s", Accuracy: 0.8}
	if sym.PCorrect(true) != 0.8 || sym.PCorrect(false) != 0.8 {
		t.Error("symmetric PCorrect wrong")
	}
	if sym.Asymmetric() {
		t.Error("symmetric worker flagged asymmetric")
	}
	asym := Worker{ID: "a", TPR: 0.9, TNR: 0.6}
	if asym.PCorrect(true) != 0.9 || asym.PCorrect(false) != 0.6 {
		t.Error("asymmetric PCorrect wrong")
	}
	if !asym.Asymmetric() {
		t.Error("asymmetric worker not flagged")
	}
	if got := asym.MeanCorrect(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MeanCorrect = %v, want 0.75", got)
	}
}

func TestAsymmetricOracle(t *testing.T) {
	if !(Worker{ID: "o", TPR: 1, TNR: 1}).IsOracle() {
		t.Error("perfect confusion worker not oracle")
	}
	if (Worker{ID: "o", TPR: 1, TNR: 0.9}).IsOracle() {
		t.Error("imperfect TNR counted as oracle")
	}
}

func TestSplitUsesMeanCorrect(t *testing.T) {
	c := Crowd{
		{ID: "a", TPR: 0.95, TNR: 0.95}, // mean 0.95 -> expert
		{ID: "b", TPR: 0.95, TNR: 0.6},  // mean 0.775 -> preliminary
	}
	ce, cp := c.Split(0.9)
	if len(ce) != 1 || ce[0].ID != "a" || len(cp) != 1 {
		t.Errorf("split = %v / %v", ce, cp)
	}
}

func TestSimulateAsymmetricFrequencies(t *testing.T) {
	rng := rngutil.New(1)
	w := Worker{ID: "a", TPR: 0.9, TNR: 0.6}
	const n = 60000
	tpHits, tnHits := 0, 0
	for i := 0; i < n; i++ {
		as := SimulateAnswerSet(rng, w, []int{0, 1}, truthEvenTrue) // f0 true, f1 false
		if v, _ := as.Answer(0); v {
			tpHits++
		}
		if v, _ := as.Answer(1); !v {
			tnHits++
		}
	}
	if got := float64(tpHits) / n; math.Abs(got-0.9) > 0.01 {
		t.Errorf("TPR realized %v, want 0.9", got)
	}
	if got := float64(tnHits) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("TNR realized %v, want 0.6", got)
	}
}

func TestEstimateConfusion(t *testing.T) {
	rng := rngutil.New(2)
	c := Crowd{{ID: "w", TPR: 0.92, TNR: 0.68}}
	facts := make([]int, 1000)
	for i := range facts {
		facts[i] = i
	}
	gold := []AnswerFamily{SimulateAnswerFamily(rng, c, facts, truthEvenTrue)}
	est := EstimateConfusion(c, gold, truthEvenTrue)
	if math.Abs(est[0].TPR-0.92) > 0.04 {
		t.Errorf("TPR estimate %v, want ~0.92", est[0].TPR)
	}
	if math.Abs(est[0].TNR-0.68) > 0.04 {
		t.Errorf("TNR estimate %v, want ~0.68", est[0].TNR)
	}
	if err := est.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateConfusionNoData(t *testing.T) {
	c := Crowd{{ID: "w", Accuracy: 0.8}}
	est := EstimateConfusion(c, nil, truthEvenTrue)
	if est[0].TPR != 0.75 || est[0].TNR != 0.75 {
		t.Errorf("prior estimates = %v", est[0])
	}
}

func TestEstimateConfusionClamped(t *testing.T) {
	c := Crowd{{ID: "w", Accuracy: 0.5}}
	gold := []AnswerFamily{{
		// Always answers No: TNR perfect, TPR terrible -> clamped to 0.5.
		{Worker: c[0], Facts: []int{0, 1, 2, 3}, Values: []bool{false, false, false, false}},
	}}
	est := EstimateConfusion(c, gold, truthEvenTrue)
	if est[0].TPR != 0.5 {
		t.Errorf("TPR = %v, want clamped 0.5", est[0].TPR)
	}
	if est[0].TNR <= 0.5 {
		t.Errorf("TNR = %v, want > 0.5", est[0].TNR)
	}
}
