// Package crowd implements the heterogeneous crowd model of the paper
// (§II): workers with private accuracy rates, the split into expert and
// preliminary groups by an accuracy threshold (Definition 1), crowdsourced
// answer sets and families (Definition 3), simulation of worker answers
// under the accuracy-rate error model, and accuracy estimation from gold
// sample tasks.
package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hcrowd/internal/rngutil"
)

// Worker is a single crowdsourcing worker cr with accuracy rate Pr_cr: the
// probability that any answer it gives matches the ground truth. The paper
// assumes Pr_cr >= 1/2 ("otherwise the collected answer is useless").
//
// TPR and TNR optionally generalize the symmetric rate to a Dawid-Skene
// style confusion model (the "diverse accuracy rates" extension of the
// paper's predecessor [24]): TPR is the probability of answering Yes when
// the fact is true, TNR of answering No when it is false. When both are
// zero the symmetric Accuracy applies to either class.
type Worker struct {
	ID       string
	Accuracy float64
	TPR, TNR float64
}

// Asymmetric reports whether the worker uses the confusion-matrix model.
func (w Worker) Asymmetric() bool { return w.TPR != 0 || w.TNR != 0 }

// PCorrect returns the probability that the worker answers correctly for
// a fact whose ground truth is the given value.
func (w Worker) PCorrect(truth bool) float64 {
	if w.Asymmetric() {
		if truth {
			return w.TPR
		}
		return w.TNR
	}
	return w.Accuracy
}

// MeanCorrect returns the class-averaged correctness probability, the
// quantity comparable to the symmetric Accuracy.
func (w Worker) MeanCorrect() float64 {
	if w.Asymmetric() {
		return (w.TPR + w.TNR) / 2
	}
	return w.Accuracy
}

// Validate reports whether the worker satisfies the paper's error model;
// for confusion-model workers both class-conditional rates must lie in
// [0.5, 1] so answers never anti-correlate with the truth.
func (w Worker) Validate() error {
	if w.Asymmetric() {
		for _, r := range []float64{w.TPR, w.TNR} {
			if math.IsNaN(r) || r < 0.5 || r > 1 {
				return fmt.Errorf("crowd: worker %q confusion rates (%v, %v) outside [0.5, 1]", w.ID, w.TPR, w.TNR)
			}
		}
		return nil
	}
	if math.IsNaN(w.Accuracy) || w.Accuracy < 0.5 || w.Accuracy > 1 {
		return fmt.Errorf("crowd: worker %q accuracy %v outside [0.5, 1]", w.ID, w.Accuracy)
	}
	return nil
}

// IsOracle reports whether the worker always answers correctly
// (the oracle setting discussed in §III-D).
func (w Worker) IsOracle() bool {
	if w.Asymmetric() {
		//hclint:ignore float-eq oracle-ness is exact by construction: rates are configured constants, never accumulated, and §III-D's oracle fast path needs pr == 1 precisely
		return w.TPR == 1 && w.TNR == 1
	}
	return w.Accuracy == 1 //hclint:ignore float-eq same exactness argument as the asymmetric branch above
}

// Crowd is a set of workers C.
type Crowd []Worker

// Validate checks every worker in the crowd.
func (c Crowd) Validate() error {
	if len(c) == 0 {
		return errors.New("crowd: empty crowd")
	}
	seen := make(map[string]bool, len(c))
	for _, w := range c {
		if err := w.Validate(); err != nil {
			return err
		}
		if seen[w.ID] {
			return fmt.Errorf("crowd: duplicate worker ID %q", w.ID)
		}
		seen[w.ID] = true
	}
	return nil
}

// Split divides the crowd into expert workers CE (accuracy >= theta) and
// preliminary workers CP (Definition 1, Equation 1). The returned slices
// preserve the original order and share no backing storage with each other.
func (c Crowd) Split(theta float64) (ce, cp Crowd) {
	for _, w := range c {
		if w.MeanCorrect() >= theta {
			ce = append(ce, w)
		} else {
			cp = append(cp, w)
		}
	}
	return ce, cp
}

// MeanAccuracy returns the average accuracy rate of the crowd, or 0 for an
// empty crowd.
func (c Crowd) MeanAccuracy() float64 {
	if len(c) == 0 {
		return 0
	}
	var s float64
	for _, w := range c {
		s += w.MeanCorrect()
	}
	return s / float64(len(c))
}

// Accuracies returns the accuracy rates of the workers, in crowd order.
func (c Crowd) Accuracies() []float64 {
	a := make([]float64, len(c))
	for i, w := range c {
		a[i] = w.Accuracy
	}
	return a
}

// ByID returns the worker with the given ID, or false if absent.
func (c Crowd) ByID(id string) (Worker, bool) {
	for _, w := range c {
		if w.ID == id {
			return w, true
		}
	}
	return Worker{}, false
}

// HeterogeneousConfig describes a simulated crowd: a pool of preliminary
// workers drawn uniformly from [PrelimLo, PrelimHi) and experts from
// [ExpertLo, ExpertHi). It mirrors the experimental setup of §IV-A where 8
// workers per task include both preliminary and expert workers split at
// theta = 0.9.
type HeterogeneousConfig struct {
	NumPrelim int
	PrelimLo  float64
	PrelimHi  float64
	NumExpert int
	ExpertLo  float64
	ExpertHi  float64
}

// DefaultHeterogeneous is the crowd shape used throughout the experiments:
// six preliminary workers in [0.55, 0.80) and two experts in [0.91, 0.97),
// eight workers per task as in the paper's setup. The preliminary band is
// deliberately noisy so initialization lands in the high-80s accuracy
// regime the paper reports, leaving the checking loop room to improve.
func DefaultHeterogeneous() HeterogeneousConfig {
	return HeterogeneousConfig{
		NumPrelim: 6, PrelimLo: 0.55, PrelimHi: 0.80,
		NumExpert: 2, ExpertLo: 0.91, ExpertHi: 0.97,
	}
}

// NewHeterogeneous samples a crowd from the config using rng. Worker IDs
// are stable ("p0".."pN", "e0".."eM") so that answer matrices are joinable
// across runs with the same config.
func NewHeterogeneous(rng *rand.Rand, cfg HeterogeneousConfig) (Crowd, error) {
	if cfg.NumPrelim < 0 || cfg.NumExpert < 0 {
		return nil, errors.New("crowd: negative worker count")
	}
	if cfg.NumPrelim+cfg.NumExpert == 0 {
		return nil, errors.New("crowd: config yields empty crowd")
	}
	c := make(Crowd, 0, cfg.NumPrelim+cfg.NumExpert)
	for i := 0; i < cfg.NumPrelim; i++ {
		c = append(c, Worker{
			ID:       fmt.Sprintf("p%d", i),
			Accuracy: rngutil.UniformIn(rng, cfg.PrelimLo, cfg.PrelimHi),
		})
	}
	for i := 0; i < cfg.NumExpert; i++ {
		c = append(c, Worker{
			ID:       fmt.Sprintf("e%d", i),
			Accuracy: rngutil.UniformIn(rng, cfg.ExpertLo, cfg.ExpertHi),
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SortByAccuracy returns a copy of the crowd sorted by descending
// accuracy, ties broken by ID for determinism.
func (c Crowd) SortByAccuracy() Crowd {
	out := make(Crowd, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool {
		//hclint:ignore float-eq exact != is required in a comparator tie-break: a tolerance would break strict-weak-order transitivity and make the sort order itself nondeterministic
		if out[i].MeanCorrect() != out[j].MeanCorrect() {
			return out[i].MeanCorrect() > out[j].MeanCorrect()
		}
		return out[i].ID < out[j].ID
	})
	return out
}
