package crowd

import (
	"math"
	"testing"
	"testing/quick"

	"hcrowd/internal/rngutil"
)

func TestWorkerValidate(t *testing.T) {
	cases := []struct {
		w  Worker
		ok bool
	}{
		{Worker{ID: "a", Accuracy: 0.5}, true},
		{Worker{ID: "a", Accuracy: 1.0}, true},
		{Worker{ID: "a", Accuracy: 0.75}, true},
		{Worker{ID: "a", Accuracy: 0.49}, false},
		{Worker{ID: "a", Accuracy: 1.01}, false},
		{Worker{ID: "a", Accuracy: math.NaN()}, false},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.w, err, c.ok)
		}
	}
}

func TestCrowdValidateDuplicates(t *testing.T) {
	c := Crowd{{ID: "a", Accuracy: 0.8}, {ID: "a", Accuracy: 0.9}}
	if c.Validate() == nil {
		t.Error("duplicate IDs not rejected")
	}
	if (Crowd{}).Validate() == nil {
		t.Error("empty crowd not rejected")
	}
}

func TestSplitDefinition1(t *testing.T) {
	c := Crowd{{ID: "a", Accuracy: 0.95}, {ID: "b", Accuracy: 0.7}, {ID: "c", Accuracy: 0.9}, {ID: "d", Accuracy: 0.89}}
	ce, cp := c.Split(0.9)
	if len(ce) != 2 || ce[0].ID != "a" || ce[1].ID != "c" {
		t.Errorf("CE = %v", ce)
	}
	if len(cp) != 2 || cp[0].ID != "b" || cp[1].ID != "d" {
		t.Errorf("CP = %v", cp)
	}
}

func TestSplitPartition(t *testing.T) {
	// Split is always a partition: CE ∪ CP = C, CE ∩ CP = ∅ (Eq. 1).
	f := func(accs []float64, rawTheta float64) bool {
		theta := 0.5 + math.Abs(rawTheta-math.Trunc(rawTheta))/2
		c := make(Crowd, 0, len(accs))
		for i, a := range accs {
			if math.IsNaN(a) {
				a = 0
			}
			acc := 0.5 + math.Abs(a-math.Trunc(a))/2
			c = append(c, Worker{ID: string(rune('a' + i%26)), Accuracy: acc})
		}
		ce, cp := c.Split(theta)
		if len(ce)+len(cp) != len(c) {
			return false
		}
		for _, w := range ce {
			if w.Accuracy < theta {
				return false
			}
		}
		for _, w := range cp {
			if w.Accuracy >= theta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAccuracy(t *testing.T) {
	c := Crowd{{ID: "a", Accuracy: 0.6}, {ID: "b", Accuracy: 0.8}}
	if got := c.MeanAccuracy(); got != 0.7 {
		t.Errorf("MeanAccuracy = %v", got)
	}
	if got := (Crowd{}).MeanAccuracy(); got != 0 {
		t.Errorf("MeanAccuracy(empty) = %v", got)
	}
}

func TestNewHeterogeneous(t *testing.T) {
	rng := rngutil.New(1)
	cfg := DefaultHeterogeneous()
	c, err := NewHeterogeneous(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 8 {
		t.Fatalf("crowd size = %d, want 8", len(c))
	}
	ce, cp := c.Split(0.9)
	if len(ce) != 2 || len(cp) != 6 {
		t.Errorf("split sizes CE=%d CP=%d, want 2/6", len(ce), len(cp))
	}
	for _, w := range cp {
		if w.Accuracy < 0.55 || w.Accuracy >= 0.80 {
			t.Errorf("preliminary accuracy out of range: %v", w)
		}
	}
	for _, w := range ce {
		if w.Accuracy < 0.91 || w.Accuracy >= 0.97 {
			t.Errorf("expert accuracy out of range: %v", w)
		}
	}
}

func TestNewHeterogeneousErrors(t *testing.T) {
	rng := rngutil.New(1)
	if _, err := NewHeterogeneous(rng, HeterogeneousConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewHeterogeneous(rng, HeterogeneousConfig{NumPrelim: -1, NumExpert: 2, ExpertLo: 0.9, ExpertHi: 0.95}); err == nil {
		t.Error("negative count accepted")
	}
	bad := HeterogeneousConfig{NumPrelim: 1, PrelimLo: 0.1, PrelimHi: 0.2}
	if _, err := NewHeterogeneous(rng, bad); err == nil {
		t.Error("sub-0.5 accuracy range accepted")
	}
}

func TestNewHeterogeneousDeterministic(t *testing.T) {
	a, _ := NewHeterogeneous(rngutil.New(9), DefaultHeterogeneous())
	b, _ := NewHeterogeneous(rngutil.New(9), DefaultHeterogeneous())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different crowds")
		}
	}
}

func TestSortByAccuracy(t *testing.T) {
	c := Crowd{{ID: "b", Accuracy: 0.7}, {ID: "a", Accuracy: 0.9}, {ID: "c", Accuracy: 0.9}}
	s := c.SortByAccuracy()
	if s[0].ID != "a" || s[1].ID != "c" || s[2].ID != "b" {
		t.Errorf("sorted = %v", s)
	}
	// Original untouched.
	if c[0].ID != "b" {
		t.Error("SortByAccuracy mutated its receiver")
	}
}

func TestByID(t *testing.T) {
	c := Crowd{{ID: "a", Accuracy: 0.8}}
	if w, ok := c.ByID("a"); !ok || w.Accuracy != 0.8 {
		t.Errorf("ByID(a) = %v,%v", w, ok)
	}
	if _, ok := c.ByID("zzz"); ok {
		t.Error("ByID found nonexistent worker")
	}
}

func TestIsOracle(t *testing.T) {
	if !(Worker{ID: "o", Accuracy: 1.0}).IsOracle() {
		t.Error("accuracy-1.0 worker not oracle")
	}
	if (Worker{ID: "o", Accuracy: 0.99}).IsOracle() {
		t.Error("0.99 worker is oracle")
	}
}
