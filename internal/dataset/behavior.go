package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hcrowd/internal/rngutil"
)

// Behavior is a non-ideal preliminary-worker answering strategy used for
// robustness studies. The error model of §II-A assumes every worker is
// honest with accuracy ≥ 1/2; real crowds contain workers who are not,
// and these injections measure how the aggregators and the HC pipeline
// degrade when the assumption is violated.
type Behavior int

const (
	// Honest answers with the worker's accuracy (the paper's model).
	Honest Behavior = iota
	// SpammerYes always answers Yes regardless of the fact.
	SpammerYes
	// SpammerCoin answers by a fair coin flip (accuracy exactly 1/2).
	SpammerCoin
	// CliqueMember copies a shared noisy answer stream: every clique
	// member gives the same answer, which breaks the conditional
	// independence the aggregators assume (EBCC's target failure mode).
	CliqueMember
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case SpammerYes:
		return "spammer-yes"
	case SpammerCoin:
		return "spammer-coin"
	case CliqueMember:
		return "clique"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// InjectBehaviors returns a copy of the dataset whose preliminary answer
// matrix is regenerated with the given per-worker behaviors (indexed in
// CP order; missing entries default to Honest). Clique members share one
// answer stream drawn at CliqueAccuracy. Expert workers are never
// altered — the hierarchy's premise is that the checking tier is vetted.
func (ds *Dataset) InjectBehaviors(rng *rand.Rand, behaviors map[int]Behavior, cliqueAccuracy float64) (*Dataset, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	_, cp := ds.Split()
	for wi, b := range behaviors {
		if wi < 0 || wi >= len(cp) {
			return nil, fmt.Errorf("dataset: behavior for worker %d outside CP size %d", wi, len(cp))
		}
		if b == CliqueMember && (cliqueAccuracy < 0.5 || cliqueAccuracy > 1) {
			return nil, errors.New("dataset: clique accuracy outside [0.5, 1]")
		}
	}
	ids := make([]string, len(cp))
	for i, w := range cp {
		ids[i] = w.ID
	}
	m, err := NewMatrix(ds.NumFacts(), ids)
	if err != nil {
		return nil, err
	}
	// One shared clique stream per fact.
	clique := make([]bool, ds.NumFacts())
	for f := range clique {
		v := ds.Truth[f]
		if !rngutil.Bernoulli(rng, cliqueAccuracy) {
			v = !v
		}
		clique[f] = v
	}
	for wi, w := range cp {
		for f := 0; f < ds.NumFacts(); f++ {
			if !ds.Prelim.Has(f, wi) {
				continue // preserve the original sparsity pattern
			}
			var v bool
			switch behaviors[wi] {
			case SpammerYes:
				v = true
			case SpammerCoin:
				v = rng.Intn(2) == 0
			case CliqueMember:
				v = clique[f]
			default:
				v = ds.Truth[f]
				if !rngutil.Bernoulli(rng, w.Accuracy) {
					v = !v
				}
			}
			if err := m.Add(f, wi, v); err != nil {
				return nil, err
			}
		}
	}
	out := *ds
	out.Prelim = m
	return &out, nil
}
