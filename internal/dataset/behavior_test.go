package dataset

import (
	"testing"

	"hcrowd/internal/rngutil"
)

func behaviorDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 40
	ds, err := SentiLike(rngutil.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBehaviorString(t *testing.T) {
	cases := map[Behavior]string{
		Honest:       "honest",
		SpammerYes:   "spammer-yes",
		SpammerCoin:  "spammer-coin",
		CliqueMember: "clique",
		Behavior(9):  "Behavior(9)",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(b), got, want)
		}
	}
}

func TestInjectSpammerYes(t *testing.T) {
	ds := behaviorDataset(t)
	out, err := ds.InjectBehaviors(rngutil.New(2), map[int]Behavior{0: SpammerYes}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out.Prelim.ByWorker(0) {
		if !o.Value {
			t.Fatal("spammer-yes answered No")
		}
	}
	// Original untouched.
	anyNo := false
	for _, o := range ds.Prelim.ByWorker(0) {
		if !o.Value {
			anyNo = true
		}
	}
	if !anyNo {
		t.Skip("original worker coincidentally all-yes")
	}
}

func TestInjectCliqueShared(t *testing.T) {
	ds := behaviorDataset(t)
	out, err := ds.InjectBehaviors(rngutil.New(3), map[int]Behavior{
		0: CliqueMember, 1: CliqueMember, 2: CliqueMember,
	}, 0.65)
	if err != nil {
		t.Fatal(err)
	}
	// All clique members answer identically on every fact.
	for f := 0; f < out.NumFacts(); f++ {
		var vals []bool
		for _, o := range out.Prelim.ByFact(f) {
			if o.Worker <= 2 {
				vals = append(vals, o.Value)
			}
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("clique disagrees on fact %d", f)
			}
		}
	}
}

func TestInjectPreservesSparsity(t *testing.T) {
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 30
	cfg.AnswerRate = 0.6
	ds, err := SentiLike(rngutil.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ds.InjectBehaviors(rngutil.New(5), map[int]Behavior{1: SpammerCoin}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Prelim.NumAnswers() != ds.Prelim.NumAnswers() {
		t.Errorf("answer count changed: %d -> %d", ds.Prelim.NumAnswers(), out.Prelim.NumAnswers())
	}
	for f := 0; f < ds.NumFacts(); f++ {
		for w := 0; w < ds.Prelim.NumWorkers(); w++ {
			if ds.Prelim.Has(f, w) != out.Prelim.Has(f, w) {
				t.Fatalf("sparsity pattern changed at (%d, %d)", f, w)
			}
		}
	}
}

func TestInjectValidation(t *testing.T) {
	ds := behaviorDataset(t)
	if _, err := ds.InjectBehaviors(rngutil.New(6), map[int]Behavior{99: SpammerYes}, 0.7); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if _, err := ds.InjectBehaviors(rngutil.New(6), map[int]Behavior{0: CliqueMember}, 0.2); err == nil {
		t.Error("invalid clique accuracy accepted")
	}
}

func TestInjectHonestMatchesStatistics(t *testing.T) {
	// Honest re-draw keeps every worker near their configured accuracy.
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 300
	ds, err := SentiLike(rngutil.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ds.InjectBehaviors(rngutil.New(8), nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	_, cp := out.Split()
	for wi, w := range cp {
		correct, total := 0, 0
		for _, o := range out.Prelim.ByWorker(wi) {
			total++
			if o.Value == out.Truth[o.Fact] {
				correct++
			}
		}
		got := float64(correct) / float64(total)
		if got < w.Accuracy-0.04 || got > w.Accuracy+0.04 {
			t.Errorf("worker %s honest accuracy %v vs configured %v", w.ID, got, w.Accuracy)
		}
	}
}
