package dataset

import (
	"errors"
	"fmt"
)

// CatObs is one worker's categorical label for an item.
type CatObs struct {
	Worker int
	Label  int
}

// CatWObs is one label keyed by item, for worker-centric passes.
type CatWObs struct {
	Item  int
	Label int
}

// CatMatrix is a sparse categorical answer matrix over items × workers
// with labels in [0, NumClasses) — the native input of multi-class truth
// inference (the original Dawid–Skene setting, which §II-A's one-hot
// construction decomposes into binary facts).
type CatMatrix struct {
	numClasses int
	workerIDs  []string
	byItem     [][]CatObs
	byWorker   [][]CatWObs
	answered   map[int64]bool
	n          int
}

// NewCatMatrix creates an empty categorical matrix.
func NewCatMatrix(numItems, numClasses int, workerIDs []string) (*CatMatrix, error) {
	if numItems <= 0 {
		return nil, errors.New("dataset: cat matrix needs at least one item")
	}
	if numClasses < 2 {
		return nil, errors.New("dataset: cat matrix needs at least two classes")
	}
	if len(workerIDs) == 0 {
		return nil, errors.New("dataset: cat matrix needs at least one worker")
	}
	seen := make(map[string]bool, len(workerIDs))
	for _, id := range workerIDs {
		if seen[id] {
			return nil, fmt.Errorf("dataset: duplicate worker ID %q", id)
		}
		seen[id] = true
	}
	ids := make([]string, len(workerIDs))
	copy(ids, workerIDs)
	return &CatMatrix{
		numClasses: numClasses,
		workerIDs:  ids,
		byItem:     make([][]CatObs, numItems),
		byWorker:   make([][]CatWObs, len(workerIDs)),
		answered:   make(map[int64]bool),
	}, nil
}

// NumItems returns the item count.
func (m *CatMatrix) NumItems() int { return len(m.byItem) }

// NumClasses returns the label arity.
func (m *CatMatrix) NumClasses() int { return m.numClasses }

// NumWorkers returns the worker count.
func (m *CatMatrix) NumWorkers() int { return len(m.workerIDs) }

// NumAnswers returns the number of labels stored.
func (m *CatMatrix) NumAnswers() int { return m.n }

// WorkerIDs returns worker identities in index order (shared slice).
func (m *CatMatrix) WorkerIDs() []string { return m.workerIDs }

// Add records worker w's label for item i.
func (m *CatMatrix) Add(i, w, label int) error {
	if i < 0 || i >= len(m.byItem) {
		return fmt.Errorf("dataset: item %d out of range [0,%d)", i, len(m.byItem))
	}
	if w < 0 || w >= len(m.workerIDs) {
		return fmt.Errorf("dataset: worker %d out of range [0,%d)", w, len(m.workerIDs))
	}
	if label < 0 || label >= m.numClasses {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", label, m.numClasses)
	}
	key := int64(i)<<workerBits | int64(w)
	if m.answered[key] {
		return fmt.Errorf("dataset: duplicate label for item %d by worker %d", i, w)
	}
	m.answered[key] = true
	m.byItem[i] = append(m.byItem[i], CatObs{Worker: w, Label: label})
	m.byWorker[w] = append(m.byWorker[w], CatWObs{Item: i, Label: label})
	m.n++
	return nil
}

// ByItem returns the labels recorded for item i (shared slice).
func (m *CatMatrix) ByItem(i int) []CatObs { return m.byItem[i] }

// ByWorker returns worker w's labels (shared slice).
func (m *CatMatrix) ByWorker(w int) []CatWObs { return m.byWorker[w] }

// CatFromOneHot reconstructs the categorical matrix from a one-hot
// binary dataset (the inverse of §II-A's construction): each worker's
// class pick for an item is the fact they answered Yes for; workers with
// zero or multiple Yes answers on an item are skipped for that item
// (their intent is ambiguous in the binary encoding).
func CatFromOneHot(m *Matrix, tasks [][]int) (*CatMatrix, error) {
	if len(tasks) == 0 {
		return nil, errors.New("dataset: no tasks")
	}
	numClasses := len(tasks[0])
	for t, facts := range tasks {
		if len(facts) != numClasses {
			return nil, fmt.Errorf("dataset: task %d has %d facts, want %d", t, len(facts), numClasses)
		}
	}
	cat, err := NewCatMatrix(len(tasks), numClasses, m.WorkerIDs())
	if err != nil {
		return nil, err
	}
	for i, facts := range tasks {
		// picks[w] = the class w voted Yes for; -1 none, -2 multiple.
		picks := make(map[int]int)
		for c, f := range facts {
			for _, o := range m.ByFact(f) {
				if !o.Value {
					continue
				}
				if _, dup := picks[o.Worker]; dup {
					picks[o.Worker] = -2
				} else {
					picks[o.Worker] = c
				}
			}
		}
		for w, c := range picks {
			if c < 0 {
				continue
			}
			if err := cat.Add(i, w, c); err != nil {
				return nil, err
			}
		}
	}
	return cat, nil
}
