package dataset

import "errors"

// EstimateCoupling estimates the intra-task Markov coupling of the ground
// truth from the preliminary answers alone: it majority-votes each fact,
// measures the agreement rate between adjacent facts of each task, and
// inverts agree = (1+couple)/2. Vote noise only attenuates the estimate
// (noisy labels agree less than the truth does), so the result is a
// conservative input for belief.MarkovPrior. The estimate is clamped into
// [0, 0.95].
func (ds *Dataset) EstimateCoupling() (float64, error) {
	if ds.Prelim == nil {
		return 0, errors.New("dataset: no preliminary answers")
	}
	agree, pairs := 0, 0
	for _, facts := range ds.Tasks {
		for j := 1; j < len(facts); j++ {
			sa, na := ds.Prelim.VoteShare(facts[j-1])
			sb, nb := ds.Prelim.VoteShare(facts[j])
			if na == 0 || nb == 0 {
				continue
			}
			if (sa >= 0.5) == (sb >= 0.5) {
				agree++
			}
			pairs++
		}
	}
	if pairs == 0 {
		return 0, nil // single-fact tasks: nothing to couple
	}
	rate := float64(agree) / float64(pairs)
	couple := 2*rate - 1
	if couple < 0 {
		couple = 0
	}
	if couple > 0.95 {
		couple = 0.95
	}
	return couple, nil
}
