package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteAnswersCSV serializes a matrix as `fact,worker,value` rows with a
// header, the interchange format crowdsourcing platforms export. Worker
// columns are identified by their string IDs.
func (m *Matrix) WriteAnswersCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"fact", "worker", "value"}); err != nil {
		return err
	}
	ids := m.WorkerIDs()
	for f := 0; f < m.NumFacts(); f++ {
		for _, o := range m.ByFact(f) {
			rec := []string{strconv.Itoa(f), ids[o.Worker], strconv.FormatBool(o.Value)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// maxCSVFacts bounds the fact space inferred from a CSV. The matrix
// allocation is O(facts), so a single absurd index in an untrusted file
// must error out instead of sizing terabytes.
const maxCSVFacts = 1 << 24

// ReadAnswersCSV parses `fact,worker,value` rows (header optional) into a
// matrix. Worker IDs are collected from the file in first-appearance
// order; the fact space is sized by the largest index seen (or numFacts
// if larger, pass 0 to infer), capped at maxCSVFacts. Accepted value
// spellings: true/false, yes/no, 1/0 (case-insensitive).
func ReadAnswersCSV(r io.Reader, numFacts int) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	type row struct {
		fact  int
		id    string
		value bool
	}
	var rows []row
	var ids []string
	index := map[string]int{}
	maxFact := -1
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		if first {
			first = false
			if rec[0] == "fact" { // header
				continue
			}
		}
		f, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv fact %q: %w", rec[0], err)
		}
		if f < 0 {
			return nil, fmt.Errorf("dataset: csv fact %d negative", f)
		}
		if f >= maxCSVFacts {
			return nil, fmt.Errorf("dataset: csv fact %d exceeds the %d-fact limit", f, maxCSVFacts)
		}
		v, err := parseAnswer(rec[2])
		if err != nil {
			return nil, err
		}
		if _, ok := index[rec[1]]; !ok {
			index[rec[1]] = len(ids)
			ids = append(ids, rec[1])
		}
		if f > maxFact {
			maxFact = f
		}
		rows = append(rows, row{fact: f, id: rec[1], value: v})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: csv has no answers")
	}
	if maxFact+1 > numFacts {
		numFacts = maxFact + 1
	}
	m, err := NewMatrix(numFacts, ids)
	if err != nil {
		return nil, err
	}
	// Deterministic insertion order regardless of input order.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].fact < rows[j].fact })
	for _, r := range rows {
		if err := m.Add(r.fact, index[r.id], r.value); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func parseAnswer(s string) (bool, error) {
	switch s {
	case "true", "TRUE", "True", "yes", "YES", "Yes", "1":
		return true, nil
	case "false", "FALSE", "False", "no", "NO", "No", "0":
		return false, nil
	default:
		return false, fmt.Errorf("dataset: csv answer %q not recognized", s)
	}
}
