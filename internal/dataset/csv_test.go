package dataset

import (
	"bytes"
	"strings"
	"testing"

	"hcrowd/internal/rngutil"
)

func TestAnswersCSVRoundTrip(t *testing.T) {
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 10
	cfg.AnswerRate = 0.7
	ds, err := SentiLike(rngutil.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Prelim.WriteAnswersCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnswersCSV(&buf, ds.NumFacts())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFacts() != ds.NumFacts() || got.NumAnswers() != ds.Prelim.NumAnswers() {
		t.Fatalf("round trip shape: %d facts %d answers", got.NumFacts(), got.NumAnswers())
	}
	for f := 0; f < ds.NumFacts(); f++ {
		orig := ds.Prelim.ByFact(f)
		back := got.ByFact(f)
		if len(orig) != len(back) {
			t.Fatalf("fact %d: %d vs %d answers", f, len(orig), len(back))
		}
		for _, o := range orig {
			id := ds.Prelim.WorkerIDs()[o.Worker]
			wi, ok := got.WorkerIndex(id)
			if !ok {
				t.Fatalf("worker %s missing", id)
			}
			if v, _ := answerOf(back, wi); v != o.Value {
				t.Fatalf("fact %d worker %s value changed", f, id)
			}
		}
	}
}

func answerOf(obs []Obs, worker int) (bool, bool) {
	for _, o := range obs {
		if o.Worker == worker {
			return o.Value, true
		}
	}
	return false, false
}

func TestReadAnswersCSVFormats(t *testing.T) {
	in := "fact,worker,value\n0,w1,yes\n0,w2,NO\n1,w1,1\n2,w2,False\n"
	m, err := ReadAnswersCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 3 || m.NumWorkers() != 2 || m.NumAnswers() != 4 {
		t.Fatalf("shape: %d/%d/%d", m.NumFacts(), m.NumWorkers(), m.NumAnswers())
	}
	if v, _ := answerOf(m.ByFact(0), 0); !v {
		t.Error("yes not parsed as true")
	}
	if v, _ := answerOf(m.ByFact(2), 1); v {
		t.Error("False not parsed as false")
	}
}

func TestReadAnswersCSVNoHeader(t *testing.T) {
	in := "0,w1,true\n1,w1,false\n"
	m, err := ReadAnswersCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAnswers() != 2 {
		t.Fatalf("answers = %d", m.NumAnswers())
	}
}

func TestReadAnswersCSVErrors(t *testing.T) {
	cases := []string{
		"",                          // empty
		"fact,worker,value\n",       // header only
		"x,w,true\n",                // bad fact
		"-1,w,true\n",               // negative fact
		"0,w,maybe\n",               // bad value
		"0,w,true\n0,w,false\n",     // duplicate answer
		"0,w,true,extra,cols,bad\n", // wrong arity
		"66669999999,w,true\n",      // fact index beyond the allocation cap (fuzz find)
	}
	for _, in := range cases {
		if _, err := ReadAnswersCSV(strings.NewReader(in), 0); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadAnswersCSVPadsFactSpace(t *testing.T) {
	in := "0,w,true\n"
	m, err := ReadAnswersCSV(strings.NewReader(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 5 {
		t.Fatalf("facts = %d, want padded 5", m.NumFacts())
	}
}
