package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// Dataset bundles everything an experiment needs: the ground truth, the
// task grouping (facts within a task are correlated; tasks are mutually
// independent), the worker pool with true accuracies, the split threshold,
// and the preliminary answer matrix collected from CP workers.
type Dataset struct {
	Truth  []bool
	Tasks  [][]int
	Crowd  crowd.Crowd
	Theta  float64
	Prelim *Matrix
}

// Validate checks the dataset invariants: tasks partition the facts, the
// matrix covers the same fact space, and the crowd is valid.
func (ds *Dataset) Validate() error {
	if len(ds.Truth) == 0 {
		return errors.New("dataset: empty ground truth")
	}
	if ds.Prelim == nil {
		return errors.New("dataset: missing preliminary answers")
	}
	if ds.Prelim.NumFacts() != len(ds.Truth) {
		return fmt.Errorf("dataset: matrix has %d facts, truth has %d", ds.Prelim.NumFacts(), len(ds.Truth))
	}
	if err := ds.Crowd.Validate(); err != nil {
		return err
	}
	seen := make([]bool, len(ds.Truth))
	for t, facts := range ds.Tasks {
		if len(facts) == 0 {
			return fmt.Errorf("dataset: task %d is empty", t)
		}
		for j, f := range facts {
			if f < 0 || f >= len(ds.Truth) {
				return fmt.Errorf("dataset: task %d references fact %d out of range", t, f)
			}
			if seen[f] {
				return fmt.Errorf("dataset: fact %d appears in two tasks", f)
			}
			seen[f] = true
			// Local fact order must follow global order: the pipeline
			// relies on the global-to-local index map being monotone.
			if j > 0 && facts[j-1] >= f {
				return fmt.Errorf("dataset: task %d facts not strictly increasing at %d", t, j)
			}
		}
	}
	for f, ok := range seen {
		if !ok {
			return fmt.Errorf("dataset: fact %d belongs to no task", f)
		}
	}
	return nil
}

// Split returns the expert and preliminary sub-crowds at the dataset's
// threshold (Definition 1).
func (ds *Dataset) Split() (ce, cp crowd.Crowd) { return ds.Crowd.Split(ds.Theta) }

// TruthFn adapts the ground truth to the crowd simulator's interface.
func (ds *Dataset) TruthFn() crowd.Truth {
	return func(f int) bool { return ds.Truth[f] }
}

// TaskTruth returns the ground-truth labels of task t's facts in task
// order.
func (ds *Dataset) TaskTruth(t int) []bool {
	out := make([]bool, len(ds.Tasks[t]))
	for i, f := range ds.Tasks[t] {
		out[i] = ds.Truth[f]
	}
	return out
}

// NumFacts returns the number of facts in the dataset.
func (ds *Dataset) NumFacts() int { return len(ds.Truth) }

// TaskOf returns, for every fact, the task containing it and the fact's
// local index within that task.
func (ds *Dataset) TaskOf() (task, local []int) {
	task = make([]int, len(ds.Truth))
	local = make([]int, len(ds.Truth))
	for t, facts := range ds.Tasks {
		for j, f := range facts {
			task[f] = t
			local[f] = j
		}
	}
	return task, local
}

// WithExpertAnswers clones the preliminary matrix and appends `budget`
// expert answers assigned uniformly at random over (fact, expert) pairs
// not yet answered. This is how the Figure 2 baselines spend the same
// budget HC spends on selected checking tasks: as undirected extra
// redundancy. Experts answer with their true accuracy.
func (ds *Dataset) WithExpertAnswers(rng *rand.Rand, budget int) (*Matrix, error) {
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("dataset: no expert workers above theta")
	}
	m := ds.Prelim.Clone()
	ceIdx := make([]int, len(ce))
	ids := make([]string, len(ce))
	for i, w := range ce {
		ids[i] = w.ID
	}
	first, err := m.AddWorkers(ids...)
	if err != nil {
		return nil, err
	}
	for i := range ce {
		ceIdx[i] = first + i
	}
	// Enumerate unanswered (fact, expert) pairs and sample without
	// replacement.
	type pair struct{ f, e int }
	var free []pair
	for f := 0; f < m.NumFacts(); f++ {
		for e := range ce {
			if !m.Has(f, ceIdx[e]) {
				free = append(free, pair{f, e})
			}
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	if budget > len(free) {
		budget = len(free)
	}
	truth := ds.TruthFn()
	for _, p := range free[:budget] {
		correct := rngutil.Bernoulli(rng, ce[p.e].Accuracy)
		v := truth(p.f)
		if !correct {
			v = !v
		}
		if err := m.Add(p.f, ceIdx[p.e], v); err != nil {
			return nil, err
		}
	}
	return m, nil
}
