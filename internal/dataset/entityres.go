package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// EntityResConfig parameterizes the crowdsourced entity-resolution
// workload of the paper's related work [19, 20]: candidate records are
// grouped into blocks (the usual blocking step) and the crowd answers
// pair questions "do records i and j refer to the same entity?". The
// C(n,2) pair facts of a block form one task whose truth is an
// equivalence relation, so belief.PartitionPrior carries the transitivity
// constraint through the checking loop.
type EntityResConfig struct {
	NumBlocks int
	// RecordsPerBlock is the block size n (2..belief.MaxPartitionRecords).
	RecordsPerBlock int
	Crowd           crowd.HeterogeneousConfig
	Theta           float64
	// MergeProb biases the ground-truth partition: each record joins an
	// existing entity with this probability, otherwise starts a new one
	// (a Chinese-restaurant-style draw; higher = larger entities).
	MergeProb float64
}

// DefaultEntityResConfig is the entityres example's shape.
func DefaultEntityResConfig() EntityResConfig {
	return EntityResConfig{
		NumBlocks:       60,
		RecordsPerBlock: 4,
		Crowd:           crowd.DefaultHeterogeneous(),
		Theta:           0.9,
		MergeProb:       0.5,
	}
}

// Validate checks the configuration.
func (c EntityResConfig) Validate() error {
	if c.NumBlocks <= 0 {
		return errors.New("dataset: NumBlocks must be positive")
	}
	if c.RecordsPerBlock < 2 || c.RecordsPerBlock > belief.MaxPartitionRecords {
		return fmt.Errorf("dataset: RecordsPerBlock %d outside [2, %d]", c.RecordsPerBlock, belief.MaxPartitionRecords)
	}
	if c.Theta < 0.5 || c.Theta > 1 {
		return errors.New("dataset: Theta must be in [0.5, 1]")
	}
	if c.MergeProb < 0 || c.MergeProb > 1 {
		return errors.New("dataset: MergeProb must be in [0, 1]")
	}
	return nil
}

// EntityRes generates the entity-resolution dataset: one task per block
// with C(n,2) pair facts whose ground truth is a random partition of the
// block's records. Preliminary workers answer every pair question with
// their accuracy (their errors freely violate transitivity, as real
// crowd answers do).
func EntityRes(rng *rand.Rand, cfg EntityResConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := crowd.NewHeterogeneous(rng, cfg.Crowd)
	if err != nil {
		return nil, err
	}
	_, cp := pool.Split(cfg.Theta)
	if len(cp) == 0 {
		return nil, errors.New("dataset: no preliminary workers")
	}
	n := cfg.RecordsPerBlock
	pairsPerBlock := belief.NumPairFacts(n)
	nFacts := cfg.NumBlocks * pairsPerBlock
	truth := make([]bool, nFacts)
	tasks := make([][]int, cfg.NumBlocks)
	for b := 0; b < cfg.NumBlocks; b++ {
		// Ground-truth partition via sequential merge draws.
		entity := make([]int, n)
		nextEntity := 1
		for r := 1; r < n; r++ {
			if rngutil.Bernoulli(rng, cfg.MergeProb) {
				entity[r] = entity[rng.Intn(r)] // join a random earlier record's entity
			} else {
				entity[r] = nextEntity
				nextEntity++
			}
		}
		facts := make([]int, pairsPerBlock)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				local, err := belief.PairIndex(i, j, n)
				if err != nil {
					return nil, err
				}
				f := b*pairsPerBlock + local
				facts[local] = f
				truth[f] = entity[i] == entity[j]
			}
		}
		tasks[b] = facts
	}
	ids := make([]string, len(cp))
	for wi, w := range cp {
		ids[wi] = w.ID
	}
	matrix, err := NewMatrix(nFacts, ids)
	if err != nil {
		return nil, err
	}
	for wi, w := range cp {
		for f := 0; f < nFacts; f++ {
			v := truth[f]
			if !rngutil.Bernoulli(rng, w.Accuracy) {
				v = !v
			}
			if err := matrix.Add(f, wi, v); err != nil {
				return nil, err
			}
		}
	}
	ds := &Dataset{
		Truth:  truth,
		Tasks:  tasks,
		Crowd:  pool,
		Theta:  cfg.Theta,
		Prelim: matrix,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
