package dataset

import (
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/rngutil"
)

func TestEntityResShape(t *testing.T) {
	cfg := DefaultEntityResConfig()
	cfg.NumBlocks = 20
	ds, err := EntityRes(rngutil.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tasks) != 20 {
		t.Fatalf("blocks = %d", len(ds.Tasks))
	}
	if ds.NumFacts() != 20*6 { // C(4,2) = 6 pairs per block
		t.Fatalf("facts = %d", ds.NumFacts())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEntityResTruthIsTransitive(t *testing.T) {
	cfg := DefaultEntityResConfig()
	cfg.NumBlocks = 100
	ds, err := EntityRes(rngutil.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.RecordsPerBlock
	same := func(facts []int, i, j int) bool {
		if i == j {
			return true
		}
		if i > j {
			i, j = j, i
		}
		idx, err := belief.PairIndex(i, j, n)
		if err != nil {
			t.Fatal(err)
		}
		return ds.Truth[facts[idx]]
	}
	for b, facts := range ds.Tasks {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if same(facts, i, j) && same(facts, j, k) && !same(facts, i, k) {
						t.Fatalf("block %d ground truth violates transitivity", b)
					}
				}
			}
		}
	}
}

func TestEntityResMergeProbExtremes(t *testing.T) {
	// MergeProb 0: all records distinct, every pair fact false.
	cfg := DefaultEntityResConfig()
	cfg.NumBlocks = 10
	cfg.MergeProb = 0
	ds, err := EntityRes(rngutil.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, v := range ds.Truth {
		if v {
			t.Fatalf("fact %d true with MergeProb 0", f)
		}
	}
	// MergeProb 1: one entity, every pair fact true.
	cfg.MergeProb = 1
	ds, err = EntityRes(rngutil.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, v := range ds.Truth {
		if !v {
			t.Fatalf("fact %d false with MergeProb 1", f)
		}
	}
}

func TestEntityResConfigValidate(t *testing.T) {
	bad := []func(*EntityResConfig){
		func(c *EntityResConfig) { c.NumBlocks = 0 },
		func(c *EntityResConfig) { c.RecordsPerBlock = 1 },
		func(c *EntityResConfig) { c.RecordsPerBlock = 9 },
		func(c *EntityResConfig) { c.Theta = 0.3 },
		func(c *EntityResConfig) { c.MergeProb = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultEntityResConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
