package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"hcrowd/internal/rngutil"
)

// FragmentAnswer is one preliminary answer arriving with a fragment. The
// fact index is fragment-local (0-based within the fragment's truth); the
// worker is referenced by ID and must be one of the dataset's preliminary
// (below-theta) workers.
type FragmentAnswer struct {
	Fact   int    `json:"fact"`
	Worker string `json:"worker"`
	Value  bool   `json:"value"`
}

// Fragment is a batch of labeling tasks admitted into a dataset
// mid-flight: new ground truth, a task grouping over the fragment-local
// fact space, and the preliminary answers already collected for those
// facts. It is the unit of streaming admission — self-contained (all fact
// indices are fragment-local) so it can be validated without looking at
// the dataset it will join.
type Fragment struct {
	Truth   []bool           `json:"truth"`
	Tasks   [][]int          `json:"tasks"`
	Answers []FragmentAnswer `json:"answers,omitempty"`
}

// Validate checks the fragment's internal invariants: the tasks partition
// the fragment-local facts in strictly increasing order, and the answers
// stay within that fact space with at most one answer per (fact, worker).
func (fr *Fragment) Validate() error {
	if len(fr.Truth) == 0 {
		return errors.New("dataset: fragment has no facts")
	}
	if len(fr.Tasks) == 0 {
		return errors.New("dataset: fragment has no tasks")
	}
	seen := make([]bool, len(fr.Truth))
	for t, facts := range fr.Tasks {
		if len(facts) == 0 {
			return fmt.Errorf("dataset: fragment task %d is empty", t)
		}
		for j, f := range facts {
			if f < 0 || f >= len(fr.Truth) {
				return fmt.Errorf("dataset: fragment task %d references fact %d out of range", t, f)
			}
			if seen[f] {
				return fmt.Errorf("dataset: fragment fact %d appears in two tasks", f)
			}
			seen[f] = true
			if j > 0 && facts[j-1] >= f {
				return fmt.Errorf("dataset: fragment task %d facts not strictly increasing at %d", t, j)
			}
		}
	}
	for f, ok := range seen {
		if !ok {
			return fmt.Errorf("dataset: fragment fact %d belongs to no task", f)
		}
	}
	type key struct {
		fact   int
		worker string
	}
	answered := make(map[key]bool, len(fr.Answers))
	for _, a := range fr.Answers {
		if a.Fact < 0 || a.Fact >= len(fr.Truth) {
			return fmt.Errorf("dataset: fragment answer for fact %d out of range [0,%d)", a.Fact, len(fr.Truth))
		}
		if a.Worker == "" {
			return errors.New("dataset: fragment answer with empty worker ID")
		}
		k := key{a.Fact, a.Worker}
		if answered[k] {
			return fmt.Errorf("dataset: fragment duplicate answer for fact %d by worker %q", a.Fact, a.Worker)
		}
		answered[k] = true
	}
	return nil
}

// NumFacts returns the number of fragment-local facts.
func (fr *Fragment) NumFacts() int { return len(fr.Truth) }

// Write serializes the fragment as JSON.
func (fr *Fragment) Write(w io.Writer) error {
	if err := fr.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fr)
}

// ReadFragment deserializes a fragment written by (*Fragment).Write and
// validates it.
func ReadFragment(r io.Reader) (*Fragment, error) {
	var fr Fragment
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fr); err != nil {
		return nil, fmt.Errorf("dataset: decode fragment: %w", err)
	}
	if err := fr.Validate(); err != nil {
		return nil, err
	}
	return &fr, nil
}

// Admit grows the dataset with the fragment's tasks in place: the new
// facts are appended at the end of the global fact space (so every
// existing index stays valid), the tasks are re-based onto global
// indices, and the fragment's preliminary answers extend the matrix. Each
// answer's worker must be one of the dataset's preliminary workers.
//
// It returns the index of the first new task and a fragment-local answer
// matrix (fragment facts × the full preliminary worker columns) for
// initializing the new tasks' beliefs. The dataset is not mutated when an
// error is returned.
func (ds *Dataset) Admit(fr *Fragment) (firstTask int, local *Matrix, err error) {
	if err := fr.Validate(); err != nil {
		return 0, nil, err
	}
	// Resolve and stage everything fallible before mutating the dataset.
	widx := make([]int, len(fr.Answers))
	for i, a := range fr.Answers {
		wi, ok := ds.Prelim.WorkerIndex(a.Worker)
		if !ok {
			return 0, nil, fmt.Errorf("dataset: admit: answer from unknown or non-preliminary worker %q", a.Worker)
		}
		widx[i] = wi
	}
	local, err = NewMatrix(len(fr.Truth), ds.Prelim.WorkerIDs())
	if err != nil {
		return 0, nil, err
	}
	for i, a := range fr.Answers {
		if err := local.Add(a.Fact, widx[i], a.Value); err != nil {
			return 0, nil, err
		}
	}
	base := len(ds.Truth)
	firstTask = len(ds.Tasks)
	if _, err := ds.Prelim.AddFacts(len(fr.Truth)); err != nil {
		return 0, nil, err
	}
	ds.Truth = append(ds.Truth, fr.Truth...)
	for _, facts := range fr.Tasks {
		globals := make([]int, len(facts))
		for j, f := range facts {
			globals[j] = base + f
		}
		ds.Tasks = append(ds.Tasks, globals)
	}
	for i, a := range fr.Answers {
		// Cannot fail: bounds and duplicates were proven on the local
		// matrix, and the new global rows start empty.
		if err := ds.Prelim.Add(base+a.Fact, widx[i], a.Value); err != nil {
			return 0, nil, fmt.Errorf("dataset: admit: %w", err)
		}
	}
	return firstTask, local, nil
}

// SentiFragment generates a fragment of numTasks new tasks shaped like
// the dataset's SentiLike workload: Markov-coupled truth per cfg, and
// preliminary answers from the dataset's below-theta workers under their
// private accuracies at cfg.AnswerRate. It is the seeded arrival payload
// of the streaming experiment and the hcload generator.
func SentiFragment(rng *rand.Rand, ds *Dataset, cfg SentiConfig, numTasks int) (*Fragment, error) {
	if numTasks <= 0 {
		return nil, errors.New("dataset: SentiFragment needs a positive task count")
	}
	if cfg.FactsPerTask <= 0 || cfg.CorrelationAlpha <= 0 || cfg.AnswerRate <= 0 || cfg.AnswerRate > 1 {
		return nil, errors.New("dataset: SentiFragment needs valid FactsPerTask, CorrelationAlpha and AnswerRate")
	}
	_, cp := ds.Split()
	if len(cp) == 0 {
		return nil, errors.New("dataset: no preliminary workers to answer the fragment")
	}
	m := cfg.FactsPerTask
	nFacts := numTasks * m
	fr := &Fragment{
		Truth: make([]bool, nFacts),
		Tasks: make([][]int, numTasks),
	}
	couple := 1 / (1 + cfg.CorrelationAlpha)
	for t := 0; t < numTasks; t++ {
		facts := make([]int, m)
		for j := 0; j < m; j++ {
			f := t*m + j
			facts[j] = f
			switch {
			case j == 0:
				fr.Truth[f] = rng.Intn(2) == 0
			case rngutil.Bernoulli(rng, couple):
				fr.Truth[f] = fr.Truth[f-1]
			default:
				fr.Truth[f] = rng.Intn(2) == 0
			}
		}
		fr.Tasks[t] = facts
	}
	for _, w := range cp {
		for f := 0; f < nFacts; f++ {
			if cfg.AnswerRate < 1 && !rngutil.Bernoulli(rng, cfg.AnswerRate) {
				continue
			}
			v := fr.Truth[f]
			if !rngutil.Bernoulli(rng, w.Accuracy) {
				v = !v
			}
			fr.Answers = append(fr.Answers, FragmentAnswer{Fact: f, Worker: w.ID, Value: v})
		}
	}
	return fr, nil
}
