package dataset

import (
	"bytes"
	"strings"
	"testing"

	"hcrowd/internal/rngutil"
)

func admitDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 4
	ds, err := SentiLike(rngutil.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFragmentValidate(t *testing.T) {
	cases := []struct {
		name string
		fr   Fragment
		want string // substring of the error; "" = valid
	}{
		{"valid", Fragment{Truth: []bool{true, false, true}, Tasks: [][]int{{0, 1}, {2}},
			Answers: []FragmentAnswer{{Fact: 0, Worker: "w", Value: true}}}, ""},
		{"no facts", Fragment{Tasks: [][]int{{0}}}, "no facts"},
		{"no tasks", Fragment{Truth: []bool{true}}, "no tasks"},
		{"empty task", Fragment{Truth: []bool{true}, Tasks: [][]int{{}}}, "is empty"},
		{"fact out of range", Fragment{Truth: []bool{true}, Tasks: [][]int{{1}}}, "out of range"},
		{"fact twice", Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0}, {0, 1}}}, "two tasks"},
		{"not increasing", Fragment{Truth: []bool{true, false}, Tasks: [][]int{{1, 0}}}, "strictly increasing"},
		{"orphan fact", Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0}}}, "belongs to no task"},
		{"answer out of range", Fragment{Truth: []bool{true}, Tasks: [][]int{{0}},
			Answers: []FragmentAnswer{{Fact: 3, Worker: "w"}}}, "out of range"},
		{"answer empty worker", Fragment{Truth: []bool{true}, Tasks: [][]int{{0}},
			Answers: []FragmentAnswer{{Fact: 0}}}, "empty worker"},
		{"duplicate answer", Fragment{Truth: []bool{true}, Tasks: [][]int{{0}},
			Answers: []FragmentAnswer{{Fact: 0, Worker: "w"}, {Fact: 0, Worker: "w", Value: true}}}, "duplicate answer"},
	}
	for _, tc := range cases {
		err := tc.fr.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDatasetAdmit(t *testing.T) {
	ds := admitDataset(t)
	baseFacts := ds.NumFacts()
	baseTasks := len(ds.Tasks)
	baseAnswers := ds.Prelim.NumAnswers()

	cp := ds.Prelim.WorkerIDs()
	fr := &Fragment{
		Truth: []bool{true, false, false},
		Tasks: [][]int{{0, 1}, {2}},
		Answers: []FragmentAnswer{
			{Fact: 0, Worker: cp[0], Value: true},
			{Fact: 2, Worker: cp[0], Value: false},
			{Fact: 0, Worker: cp[1], Value: false},
		},
	}
	firstTask, local, err := ds.Admit(fr)
	if err != nil {
		t.Fatal(err)
	}
	if firstTask != baseTasks {
		t.Errorf("firstTask = %d, want %d", firstTask, baseTasks)
	}
	if ds.NumFacts() != baseFacts+3 {
		t.Errorf("NumFacts = %d, want %d", ds.NumFacts(), baseFacts+3)
	}
	if got := ds.Tasks[firstTask]; got[0] != baseFacts || got[1] != baseFacts+1 {
		t.Errorf("admitted task 0 globals = %v, want [%d %d]", got, baseFacts, baseFacts+1)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("grown dataset invalid: %v", err)
	}
	if ds.Prelim.NumAnswers() != baseAnswers+3 {
		t.Errorf("answers = %d, want %d", ds.Prelim.NumAnswers(), baseAnswers+3)
	}
	w0, _ := ds.Prelim.WorkerIndex(cp[0])
	if !ds.Prelim.Has(baseFacts, w0) || !ds.Prelim.Has(baseFacts+2, w0) {
		t.Error("admitted answers not present at the re-based global facts")
	}
	// The fragment-local matrix mirrors the answers at local indices over
	// the full preliminary worker columns.
	if local.NumFacts() != 3 || local.NumWorkers() != len(cp) {
		t.Fatalf("local matrix %dx%d, want 3x%d", local.NumFacts(), local.NumWorkers(), len(cp))
	}
	if !local.Has(0, w0) || !local.Has(2, w0) || local.NumAnswers() != 3 {
		t.Error("local matrix does not mirror the fragment answers")
	}
}

func TestDatasetAdmitRejectsUnknownWorkerWithoutMutating(t *testing.T) {
	ds := admitDataset(t)
	baseFacts := ds.NumFacts()
	baseTasks := len(ds.Tasks)
	fr := &Fragment{
		Truth:   []bool{true},
		Tasks:   [][]int{{0}},
		Answers: []FragmentAnswer{{Fact: 0, Worker: "nobody", Value: true}},
	}
	if _, _, err := ds.Admit(fr); err == nil || !strings.Contains(err.Error(), "non-preliminary") {
		t.Fatalf("err = %v, want non-preliminary worker rejection", err)
	}
	// Experts check answers online; they must not slip into the
	// preliminary matrix through admission either.
	ce, _ := ds.Split()
	fr.Answers[0].Worker = ce[0].ID
	if _, _, err := ds.Admit(fr); err == nil {
		t.Fatal("expert answer admitted into the preliminary matrix")
	}
	if ds.NumFacts() != baseFacts || len(ds.Tasks) != baseTasks {
		t.Errorf("failed admit mutated the dataset: %d facts %d tasks", ds.NumFacts(), len(ds.Tasks))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentJSONRoundTrip(t *testing.T) {
	ds := admitDataset(t)
	fr, err := SentiFragment(rngutil.New(5), ds, DefaultSentiConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFragment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := got.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("fragment JSON round-trip not byte-stable")
	}
}

func TestSentiFragmentAdmitsCleanly(t *testing.T) {
	ds := admitDataset(t)
	cfg := DefaultSentiConfig()
	rng := rngutil.New(7)
	for i := 0; i < 3; i++ {
		fr, err := SentiFragment(rng, ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ds.Admit(fr); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Tasks) != 4+6 {
		t.Errorf("tasks = %d, want 10", len(ds.Tasks))
	}
}

func TestMatrixAddFacts(t *testing.T) {
	m, err := NewMatrix(2, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(1, 0, true); err != nil {
		t.Fatal(err)
	}
	first, err := m.AddFacts(3)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 || m.NumFacts() != 5 {
		t.Fatalf("first = %d NumFacts = %d, want 2 and 5", first, m.NumFacts())
	}
	if share, n := m.VoteShare(3); n != 0 || share != 0.5 {
		t.Errorf("new fact VoteShare = %v/%d, want 0.5/0", share, n)
	}
	if err := m.Add(4, 1, false); err != nil {
		t.Fatal(err)
	}
	if !m.Has(4, 1) || !m.Has(1, 0) {
		t.Error("answers lost across AddFacts")
	}
	if _, err := m.AddFacts(0); err == nil {
		t.Error("AddFacts(0) should error")
	}
}
