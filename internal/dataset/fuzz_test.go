package dataset

import (
	"bytes"
	"strings"
	"testing"

	"hcrowd/internal/rngutil"
)

// FuzzReadAnswersCSV hardens the CSV parser: arbitrary input must either
// parse into a valid matrix or return an error — never panic, never
// produce a matrix that fails its own invariants.
func FuzzReadAnswersCSV(f *testing.F) {
	f.Add("fact,worker,value\n0,w1,true\n1,w2,no\n")
	f.Add("0,w,1\n0,w,0\n") // duplicate
	f.Add(",,\n")
	f.Add("9999999,w,true\n")
	f.Add("fact,worker,value\n-3,w,yes\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadAnswersCSV(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		if m.NumFacts() <= 0 || m.NumWorkers() <= 0 {
			t.Fatalf("parsed matrix with empty dimensions from %q", input)
		}
		// Round trip must succeed and preserve counts.
		var buf bytes.Buffer
		if err := m.WriteAnswersCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadAnswersCSV(&buf, m.NumFacts())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumAnswers() != m.NumAnswers() {
			t.Fatalf("round trip changed answer count")
		}
	})
}

// FuzzReadDataset hardens the JSON loader the CLI tools consume.
func FuzzReadDataset(f *testing.F) {
	// Seed with a valid dataset.
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 2
	ds, err := SentiLike(rngutil.New(1), cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"truth":[true],"tasks":[[0]],"workers":[{"id":"w","accuracy":0.7}],"theta":0.9,"answers":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		got, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything that parses must satisfy the dataset invariants.
		if err := got.Validate(); err != nil {
			t.Fatalf("Read returned invalid dataset: %v", err)
		}
	})
}
