package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// SentiConfig parameterizes the synthetic stand-in for the paper's real
// sentiment dataset (§IV-A): NumTasks correlated tasks of FactsPerTask
// binary facts each, answered by a heterogeneous crowd. Ground truth
// within a task follows a Markov coupling: fact j copies fact j-1 with
// probability 1/(1+CorrelationAlpha), otherwise it is a fresh fair coin.
// Small alpha therefore makes the facts within a task strongly correlated
// (the phenomenon the paper's selection scheme exploits: the five grouped
// sentiment tweets concern the same company); large alpha approaches
// independent uniform facts.
type SentiConfig struct {
	NumTasks     int
	FactsPerTask int
	Crowd        crowd.HeterogeneousConfig
	// CorrelationAlpha controls intra-task truth coupling; must be
	// positive. 0.3 gives sentiment-like agreement; 50+ is
	// near-independent.
	CorrelationAlpha float64
	// AnswerRate is the probability that a preliminary worker answers any
	// given fact; 1 reproduces the paper's fully redundant setup.
	AnswerRate float64
	// Theta is the expert split threshold (paper: 0.9).
	Theta float64
	// Pool, when non-nil, is used verbatim as the worker pool instead of
	// sampling one from Crowd; the θ-sweep of Figure 4 pins the pool so
	// the threshold is the only variable.
	Pool crowd.Crowd
}

// DefaultSentiConfig matches the paper's shape: 1000 facts as 200 tasks of
// 5, eight workers per task split at theta = 0.9, fully redundant
// preliminary answers.
func DefaultSentiConfig() SentiConfig {
	return SentiConfig{
		NumTasks:         200,
		FactsPerTask:     5,
		Crowd:            crowd.DefaultHeterogeneous(),
		CorrelationAlpha: 0.3,
		AnswerRate:       1,
		Theta:            0.9,
	}
}

// Validate checks the configuration.
func (c SentiConfig) Validate() error {
	if c.NumTasks <= 0 {
		return errors.New("dataset: NumTasks must be positive")
	}
	if c.FactsPerTask <= 0 || c.FactsPerTask > 20 {
		return fmt.Errorf("dataset: FactsPerTask %d outside [1, 20]", c.FactsPerTask)
	}
	if c.CorrelationAlpha <= 0 {
		return errors.New("dataset: CorrelationAlpha must be positive")
	}
	if c.AnswerRate <= 0 || c.AnswerRate > 1 {
		return errors.New("dataset: AnswerRate must be in (0, 1]")
	}
	if c.Theta < 0.5 || c.Theta > 1 {
		return errors.New("dataset: Theta must be in [0.5, 1]")
	}
	return nil
}

// SentiLike generates a synthetic dataset per the config. The preliminary
// matrix holds answers only from CP workers (experts check online, they do
// not pre-label); every preliminary worker answers each fact independently
// with probability AnswerRate and labels it correctly with their private
// accuracy.
func SentiLike(rng *rand.Rand, cfg SentiConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		var err error
		pool, err = crowd.NewHeterogeneous(rng, cfg.Crowd)
		if err != nil {
			return nil, err
		}
	} else if err := pool.Validate(); err != nil {
		return nil, err
	}
	_, cp := pool.Split(cfg.Theta)
	if len(cp) == 0 {
		return nil, errors.New("dataset: crowd config yields no preliminary workers")
	}

	nFacts := cfg.NumTasks * cfg.FactsPerTask
	truth := make([]bool, nFacts)
	tasks := make([][]int, cfg.NumTasks)
	m := cfg.FactsPerTask
	couple := 1 / (1 + cfg.CorrelationAlpha)
	for t := 0; t < cfg.NumTasks; t++ {
		facts := make([]int, m)
		for j := 0; j < m; j++ {
			f := t*m + j
			facts[j] = f
			switch {
			case j == 0:
				truth[f] = rng.Intn(2) == 0
			case rngutil.Bernoulli(rng, couple):
				truth[f] = truth[f-1]
			default:
				truth[f] = rng.Intn(2) == 0
			}
		}
		tasks[t] = facts
	}

	ids := make([]string, len(cp))
	for i, w := range cp {
		ids[i] = w.ID
	}
	matrix, err := NewMatrix(nFacts, ids)
	if err != nil {
		return nil, err
	}
	for wi, w := range cp {
		for f := 0; f < nFacts; f++ {
			if cfg.AnswerRate < 1 && !rngutil.Bernoulli(rng, cfg.AnswerRate) {
				continue
			}
			v := truth[f]
			if !rngutil.Bernoulli(rng, w.Accuracy) {
				v = !v
			}
			if err := matrix.Add(f, wi, v); err != nil {
				return nil, err
			}
		}
	}

	ds := &Dataset{
		Truth:  truth,
		Tasks:  tasks,
		Crowd:  pool,
		Theta:  cfg.Theta,
		Prelim: matrix,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WideTask generates a single task with the given number of facts for the
// efficiency study (Table III runs on "tasks that contain more than 20
// facts"). The belief space grows as 2^numFacts so numFacts is capped at
// belief.MaxFacts by the consumer.
func WideTask(rng *rand.Rand, numFacts int, cfg crowd.HeterogeneousConfig, theta, alpha float64) (*Dataset, error) {
	if numFacts <= 0 {
		return nil, errors.New("dataset: numFacts must be positive")
	}
	if alpha <= 0 {
		return nil, errors.New("dataset: alpha must be positive")
	}
	pool, err := crowd.NewHeterogeneous(rng, cfg)
	if err != nil {
		return nil, err
	}
	_, cp := pool.Split(theta)
	if len(cp) == 0 {
		return nil, errors.New("dataset: no preliminary workers")
	}
	truth := make([]bool, numFacts)
	facts := make([]int, numFacts)
	for f := range truth {
		facts[f] = f
		truth[f] = rng.Intn(2) == 0
	}
	// Correlate neighbouring facts: with probability alpha-derived
	// coupling, fact f copies fact f-1. (A full Dirichlet joint over
	// 2^20+ observations is not materializable; a Markov chain preserves
	// the correlation structure the selection exploits.)
	couple := 1 / (1 + alpha)
	for f := 1; f < numFacts; f++ {
		if rngutil.Bernoulli(rng, couple) {
			truth[f] = truth[f-1]
		}
	}
	ids := make([]string, len(cp))
	for i, w := range cp {
		ids[i] = w.ID
	}
	matrix, err := NewMatrix(numFacts, ids)
	if err != nil {
		return nil, err
	}
	for wi, w := range cp {
		for f := 0; f < numFacts; f++ {
			v := truth[f]
			if !rngutil.Bernoulli(rng, w.Accuracy) {
				v = !v
			}
			if err := matrix.Add(f, wi, v); err != nil {
				return nil, err
			}
		}
	}
	ds := &Dataset{
		Truth:  truth,
		Tasks:  [][]int{facts},
		Crowd:  pool,
		Theta:  theta,
		Prelim: matrix,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
