package dataset

import (
	"bytes"
	"math"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

func smallConfig() SentiConfig {
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 20
	return cfg
}

func TestSentiLikeShape(t *testing.T) {
	rng := rngutil.New(1)
	ds, err := SentiLike(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFacts() != 100 {
		t.Errorf("facts = %d, want 100", ds.NumFacts())
	}
	if len(ds.Tasks) != 20 {
		t.Errorf("tasks = %d", len(ds.Tasks))
	}
	for _, task := range ds.Tasks {
		if len(task) != 5 {
			t.Errorf("task size = %d", len(task))
		}
	}
	ce, cp := ds.Split()
	if len(ce) != 2 || len(cp) != 6 {
		t.Errorf("split = %d/%d, want 2/6", len(ce), len(cp))
	}
	// Fully redundant: every CP worker answered every fact.
	if got := ds.Prelim.NumAnswers(); got != 6*100 {
		t.Errorf("answers = %d, want 600", got)
	}
}

func TestSentiLikeDeterministic(t *testing.T) {
	a, err := SentiLike(rngutil.New(7), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SentiLike(rngutil.New(7), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Truth {
		if a.Truth[f] != b.Truth[f] {
			t.Fatal("same seed, different truth")
		}
	}
	if a.Prelim.NumAnswers() != b.Prelim.NumAnswers() {
		t.Fatal("same seed, different answer counts")
	}
}

func TestSentiLikeWorkerAccuracyRealized(t *testing.T) {
	// Empirical accuracy of each preliminary worker must track their
	// configured accuracy.
	cfg := DefaultSentiConfig()
	cfg.NumTasks = 400 // 2000 facts for tight frequencies
	ds, err := SentiLike(rngutil.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, cp := ds.Split()
	for wi, w := range cp {
		correct, total := 0, 0
		for _, o := range ds.Prelim.ByWorker(wi) {
			total++
			if o.Value == ds.Truth[o.Fact] {
				correct++
			}
		}
		got := float64(correct) / float64(total)
		if math.Abs(got-w.Accuracy) > 0.03 {
			t.Errorf("worker %s empirical %v vs configured %v", w.ID, got, w.Accuracy)
		}
	}
}

func TestSentiLikeCorrelation(t *testing.T) {
	// With small alpha, facts within a task must be far from independent:
	// measure the average absolute correlation between adjacent facts and
	// compare against a large-alpha (near independent) dataset.
	corr := func(alpha float64) float64 {
		cfg := DefaultSentiConfig()
		cfg.NumTasks = 500
		cfg.CorrelationAlpha = alpha
		ds, err := SentiLike(rngutil.New(11), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, task := range ds.Tasks {
			for j := 1; j < len(task); j++ {
				a, b := ds.Truth[task[j-1]], ds.Truth[task[j]]
				if a == b {
					sum++
				}
				n++
			}
		}
		return math.Abs(sum/float64(n) - 0.5) // deviation from independence
	}
	dep := corr(0.1)
	indep := corr(100)
	if dep < 0.1 {
		t.Errorf("low-alpha agreement deviation %v, want strong correlation", dep)
	}
	if indep > 0.05 {
		t.Errorf("high-alpha agreement deviation %v, want near independence", indep)
	}
}

func TestSentiLikeAnswerRate(t *testing.T) {
	cfg := smallConfig()
	cfg.AnswerRate = 0.5
	ds, err := SentiLike(rngutil.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(ds.Prelim.NumAnswers()) / float64(6*100)
	if math.Abs(got-0.5) > 0.08 {
		t.Errorf("answer rate realized %v, want ~0.5", got)
	}
}

func TestSentiConfigValidate(t *testing.T) {
	bad := []func(*SentiConfig){
		func(c *SentiConfig) { c.NumTasks = 0 },
		func(c *SentiConfig) { c.FactsPerTask = 0 },
		func(c *SentiConfig) { c.FactsPerTask = 25 },
		func(c *SentiConfig) { c.CorrelationAlpha = 0 },
		func(c *SentiConfig) { c.AnswerRate = 0 },
		func(c *SentiConfig) { c.AnswerRate = 1.5 },
		func(c *SentiConfig) { c.Theta = 0.3 },
	}
	for i, mutate := range bad {
		cfg := DefaultSentiConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWideTask(t *testing.T) {
	ds, err := WideTask(rngutil.New(2), 22, crowd.DefaultHeterogeneous(), 0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tasks) != 1 || len(ds.Tasks[0]) != 22 {
		t.Fatalf("task shape: %d tasks, first %d facts", len(ds.Tasks), len(ds.Tasks[0]))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := WideTask(rngutil.New(2), 0, crowd.DefaultHeterogeneous(), 0.9, 0.5); err == nil {
		t.Error("zero facts accepted")
	}
}

func TestDatasetValidateCatchesCorruption(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	broken := *ds
	broken.Tasks = ds.Tasks[1:] // fact 0..4 now in no task
	if broken.Validate() == nil {
		t.Error("uncovered facts accepted")
	}
	broken2 := *ds
	broken2.Tasks = append([][]int{{0, 1}}, ds.Tasks...) // facts in two tasks
	if broken2.Validate() == nil {
		t.Error("overlapping tasks accepted")
	}
}

func TestTaskOf(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	task, local := ds.TaskOf()
	for tIdx, facts := range ds.Tasks {
		for j, f := range facts {
			if task[f] != tIdx || local[f] != j {
				t.Fatalf("TaskOf wrong for fact %d: task %d local %d", f, task[f], local[f])
			}
		}
	}
}

func TestTaskTruth(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tt := ds.TaskTruth(3)
	for j, f := range ds.Tasks[3] {
		if tt[j] != ds.Truth[f] {
			t.Fatal("TaskTruth mismatch")
		}
	}
}

func TestWithExpertAnswers(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Prelim.NumAnswers()
	m, err := ds.WithExpertAnswers(rngutil.New(2), 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAnswers() != before+50 {
		t.Errorf("answers = %d, want %d", m.NumAnswers(), before+50)
	}
	if ds.Prelim.NumAnswers() != before {
		t.Error("WithExpertAnswers mutated the original matrix")
	}
	// Budget larger than available pairs is truncated, not an error.
	m2, err := ds.WithExpertAnswers(rngutil.New(2), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ce, _ := ds.Split()
	if m2.NumAnswers() != before+len(ce)*ds.NumFacts() {
		t.Errorf("oversized budget: answers = %d", m2.NumAnswers())
	}
}

func TestRoundTripJSON(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFacts() != ds.NumFacts() || len(got.Tasks) != len(ds.Tasks) {
		t.Fatal("round trip changed shape")
	}
	for f := range ds.Truth {
		if got.Truth[f] != ds.Truth[f] {
			t.Fatal("round trip changed truth")
		}
	}
	if got.Prelim.NumAnswers() != ds.Prelim.NumAnswers() {
		t.Fatal("round trip changed answers")
	}
	if got.Theta != ds.Theta {
		t.Fatal("round trip changed theta")
	}
	// Spot-check one worker's answers survive keyed by ID.
	id := ds.Prelim.WorkerIDs()[0]
	gi, ok := got.Prelim.WorkerIndex(id)
	if !ok {
		t.Fatalf("worker %s lost in round trip", id)
	}
	oi, _ := ds.Prelim.WorkerIndex(id)
	a, b := ds.Prelim.ByWorker(oi), got.Prelim.ByWorker(gi)
	if len(a) != len(b) {
		t.Fatal("worker answer count changed")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown fields accepted")
	}
	if _, err := Read(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"truth":[],"tasks":[],"workers":[],"theta":0.9,"answers":[]}`)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDatasetValidateRejectsUnsortedTaskFacts(t *testing.T) {
	ds, err := SentiLike(rngutil.New(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	broken := *ds
	broken.Tasks = make([][]int, len(ds.Tasks))
	copy(broken.Tasks, ds.Tasks)
	rev := append([]int{}, ds.Tasks[0]...)
	rev[0], rev[1] = rev[1], rev[0]
	broken.Tasks[0] = rev
	if broken.Validate() == nil {
		t.Error("unsorted task facts accepted")
	}
}
