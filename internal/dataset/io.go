package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"hcrowd/internal/crowd"
)

// jsonAnswer is one answer in the serialized form.
type jsonAnswer struct {
	Fact   int    `json:"fact"`
	Worker string `json:"worker"`
	Value  bool   `json:"value"`
}

// jsonWorker serializes a crowd worker.
type jsonWorker struct {
	ID       string  `json:"id"`
	Accuracy float64 `json:"accuracy"`
}

// jsonDataset is the on-disk representation consumed by the CLI tools.
type jsonDataset struct {
	Truth   []bool       `json:"truth"`
	Tasks   [][]int      `json:"tasks"`
	Workers []jsonWorker `json:"workers"`
	Theta   float64      `json:"theta"`
	Answers []jsonAnswer `json:"answers"`
}

// Write serializes the dataset as JSON.
func (ds *Dataset) Write(w io.Writer) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	out := jsonDataset{
		Truth: ds.Truth,
		Tasks: ds.Tasks,
		Theta: ds.Theta,
	}
	for _, wk := range ds.Crowd {
		out.Workers = append(out.Workers, jsonWorker{ID: wk.ID, Accuracy: wk.Accuracy})
	}
	ids := ds.Prelim.WorkerIDs()
	for f := 0; f < ds.Prelim.NumFacts(); f++ {
		for _, o := range ds.Prelim.ByFact(f) {
			out.Answers = append(out.Answers, jsonAnswer{Fact: f, Worker: ids[o.Worker], Value: o.Value})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Read deserializes a dataset written by Write and validates it.
func Read(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	pool := make(crowd.Crowd, len(in.Workers))
	for i, w := range in.Workers {
		pool[i] = crowd.Worker{ID: w.ID, Accuracy: w.Accuracy}
	}
	// The preliminary matrix holds the CP workers (those below theta).
	_, cp := pool.Split(in.Theta)
	ids := make([]string, len(cp))
	index := make(map[string]int, len(cp))
	for i, w := range cp {
		ids[i] = w.ID
		index[w.ID] = i
	}
	if len(in.Truth) == 0 {
		return nil, fmt.Errorf("dataset: file has no facts")
	}
	m, err := NewMatrix(len(in.Truth), ids)
	if err != nil {
		return nil, err
	}
	for _, a := range in.Answers {
		wi, ok := index[a.Worker]
		if !ok {
			return nil, fmt.Errorf("dataset: answer from unknown or non-preliminary worker %q", a.Worker)
		}
		if err := m.Add(a.Fact, wi, a.Value); err != nil {
			return nil, err
		}
	}
	ds := &Dataset{
		Truth:  in.Truth,
		Tasks:  in.Tasks,
		Crowd:  pool,
		Theta:  in.Theta,
		Prelim: m,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
