// Package dataset provides the data substrate for the experiments: sparse
// worker/fact answer matrices, task grouping (the paper aggregates 5
// sentiment tasks into one correlated 5-fact task, §IV-A), a synthetic
// generator that mirrors the paper's real sentiment dataset (see
// DESIGN.md, substitution 1), and JSON serialization for the CLI tools.
package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// Obs is one worker's answer to a fact, keyed by worker index.
type Obs struct {
	Worker int
	Value  bool
}

// WObs is one answer keyed by fact, used for worker-centric passes.
type WObs struct {
	Fact  int
	Value bool
}

// Matrix is a sparse binary answer matrix over facts × workers. A given
// (fact, worker) pair holds at most one answer; aggregators consume the
// matrix through the ByFact and ByWorker views.
type Matrix struct {
	workerIDs []string
	byFact    [][]Obs
	byWorker  [][]WObs
	answered  map[int64]bool // fact<<20 | worker, duplicate guard
	n         int
}

const workerBits = 20 // up to ~1M workers; fact index shares an int64 key

// NewMatrix creates an empty matrix with numFacts facts and the given
// worker identities (order defines worker indices).
func NewMatrix(numFacts int, workerIDs []string) (*Matrix, error) {
	if numFacts <= 0 {
		return nil, errors.New("dataset: matrix needs at least one fact")
	}
	if len(workerIDs) == 0 {
		return nil, errors.New("dataset: matrix needs at least one worker")
	}
	if len(workerIDs) >= 1<<workerBits {
		return nil, fmt.Errorf("dataset: too many workers (%d)", len(workerIDs))
	}
	seen := make(map[string]bool, len(workerIDs))
	for _, id := range workerIDs {
		if seen[id] {
			return nil, fmt.Errorf("dataset: duplicate worker ID %q", id)
		}
		seen[id] = true
	}
	ids := make([]string, len(workerIDs))
	copy(ids, workerIDs)
	return &Matrix{
		workerIDs: ids,
		byFact:    make([][]Obs, numFacts),
		byWorker:  make([][]WObs, len(workerIDs)),
		answered:  make(map[int64]bool),
	}, nil
}

// NumFacts returns the number of facts (rows).
func (m *Matrix) NumFacts() int { return len(m.byFact) }

// NumWorkers returns the number of workers (columns).
func (m *Matrix) NumWorkers() int { return len(m.workerIDs) }

// NumAnswers returns the total number of answers stored.
func (m *Matrix) NumAnswers() int { return m.n }

// WorkerIDs returns the worker identities in index order (shared slice;
// callers must not mutate).
func (m *Matrix) WorkerIDs() []string { return m.workerIDs }

// WorkerIndex returns the index of the worker with the given ID.
func (m *Matrix) WorkerIndex(id string) (int, bool) {
	for i, w := range m.workerIDs {
		if w == id {
			return i, true
		}
	}
	return -1, false
}

// Add records worker w's answer to fact f. Duplicate (fact, worker) pairs
// and out-of-range indices are errors.
func (m *Matrix) Add(f, w int, value bool) error {
	if f < 0 || f >= len(m.byFact) {
		return fmt.Errorf("dataset: fact %d out of range [0,%d)", f, len(m.byFact))
	}
	if w < 0 || w >= len(m.workerIDs) {
		return fmt.Errorf("dataset: worker %d out of range [0,%d)", w, len(m.workerIDs))
	}
	key := int64(f)<<workerBits | int64(w)
	if m.answered[key] {
		return fmt.Errorf("dataset: duplicate answer for fact %d by worker %d", f, w)
	}
	m.answered[key] = true
	m.byFact[f] = append(m.byFact[f], Obs{Worker: w, Value: value})
	m.byWorker[w] = append(m.byWorker[w], WObs{Fact: f, Value: value})
	m.n++
	return nil
}

// ByFact returns the answers recorded for fact f (shared slice; callers
// must not mutate).
func (m *Matrix) ByFact(f int) []Obs { return m.byFact[f] }

// ByWorker returns the answers given by worker w (shared slice; callers
// must not mutate).
func (m *Matrix) ByWorker(w int) []WObs { return m.byWorker[w] }

// Clone returns a deep copy; extending a matrix with budgeted expert
// answers (Figure 2 baselines) clones first so the preliminary matrix
// stays pristine.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		workerIDs: append([]string{}, m.workerIDs...),
		byFact:    make([][]Obs, len(m.byFact)),
		byWorker:  make([][]WObs, len(m.byWorker)),
		answered:  make(map[int64]bool, len(m.answered)),
		n:         m.n,
	}
	for i, s := range m.byFact {
		c.byFact[i] = append([]Obs{}, s...)
	}
	for i, s := range m.byWorker {
		c.byWorker[i] = append([]WObs{}, s...)
	}
	for k, v := range m.answered {
		c.answered[k] = v
	}
	return c
}

// AddWorkers appends new worker columns and returns the index of the
// first; IDs must not collide with existing ones.
func (m *Matrix) AddWorkers(ids ...string) (int, error) {
	for _, id := range ids {
		for _, old := range m.workerIDs {
			if id == old {
				return 0, fmt.Errorf("dataset: worker %q already present", id)
			}
		}
	}
	first := len(m.workerIDs)
	m.workerIDs = append(m.workerIDs, ids...)
	for range ids {
		m.byWorker = append(m.byWorker, nil)
	}
	return first, nil
}

// AddFacts appends n empty fact rows and returns the index of the first;
// streaming admission grows the fact space in place so existing indices
// stay valid.
func (m *Matrix) AddFacts(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("dataset: AddFacts needs a positive count")
	}
	first := len(m.byFact)
	m.byFact = append(m.byFact, make([][]Obs, n)...)
	return first, nil
}

// Has reports whether worker w already answered fact f.
func (m *Matrix) Has(f, w int) bool {
	return m.answered[int64(f)<<workerBits|int64(w)]
}

// VoteShare returns the fraction of "Yes" answers for fact f, and the
// total number of answers. Zero answers yields share 0.5 (no information).
func (m *Matrix) VoteShare(f int) (share float64, n int) {
	obs := m.byFact[f]
	if len(obs) == 0 {
		return 0.5, 0
	}
	yes := 0
	for _, o := range obs {
		if o.Value {
			yes++
		}
	}
	return float64(yes) / float64(len(obs)), len(obs)
}

// FactsAnsweredBy returns the sorted fact indices worker w answered.
func (m *Matrix) FactsAnsweredBy(w int) []int {
	out := make([]int, 0, len(m.byWorker[w]))
	for _, o := range m.byWorker[w] {
		out = append(out, o.Fact)
	}
	sort.Ints(out)
	return out
}
