package dataset

import (
	"testing"
)

func newTestMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := NewMatrix(4, []string{"w0", "w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, []string{"w"}); err == nil {
		t.Error("zero facts accepted")
	}
	if _, err := NewMatrix(3, nil); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := NewMatrix(3, []string{"a", "a"}); err == nil {
		t.Error("duplicate worker IDs accepted")
	}
}

func TestMatrixAddAndViews(t *testing.T) {
	m := newTestMatrix(t)
	if err := m.Add(0, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(2, 0, true); err != nil {
		t.Fatal(err)
	}
	if m.NumAnswers() != 3 {
		t.Errorf("NumAnswers = %d", m.NumAnswers())
	}
	obs := m.ByFact(0)
	if len(obs) != 2 || obs[0] != (Obs{0, true}) || obs[1] != (Obs{1, false}) {
		t.Errorf("ByFact(0) = %v", obs)
	}
	if len(m.ByFact(1)) != 0 {
		t.Errorf("ByFact(1) = %v, want empty", m.ByFact(1))
	}
	wobs := m.ByWorker(0)
	if len(wobs) != 2 || wobs[0] != (WObs{0, true}) || wobs[1] != (WObs{2, true}) {
		t.Errorf("ByWorker(0) = %v", wobs)
	}
}

func TestMatrixAddErrors(t *testing.T) {
	m := newTestMatrix(t)
	if err := m.Add(0, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 0, false); err == nil {
		t.Error("duplicate answer accepted")
	}
	if err := m.Add(-1, 0, true); err == nil {
		t.Error("negative fact accepted")
	}
	if err := m.Add(4, 0, true); err == nil {
		t.Error("out-of-range fact accepted")
	}
	if err := m.Add(1, 9, true); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestMatrixHas(t *testing.T) {
	m := newTestMatrix(t)
	_ = m.Add(1, 2, true)
	if !m.Has(1, 2) {
		t.Error("Has(1,2) = false")
	}
	if m.Has(2, 1) {
		t.Error("Has(2,1) = true")
	}
}

func TestVoteShare(t *testing.T) {
	m := newTestMatrix(t)
	_ = m.Add(0, 0, true)
	_ = m.Add(0, 1, true)
	_ = m.Add(0, 2, false)
	share, n := m.VoteShare(0)
	if n != 3 || share < 0.66 || share > 0.67 {
		t.Errorf("VoteShare = %v, %d", share, n)
	}
	share, n = m.VoteShare(3)
	if n != 0 || share != 0.5 {
		t.Errorf("VoteShare(empty) = %v, %d", share, n)
	}
}

func TestWorkerIndex(t *testing.T) {
	m := newTestMatrix(t)
	if i, ok := m.WorkerIndex("w1"); !ok || i != 1 {
		t.Errorf("WorkerIndex(w1) = %d,%v", i, ok)
	}
	if _, ok := m.WorkerIndex("nope"); ok {
		t.Error("found nonexistent worker")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := newTestMatrix(t)
	_ = m.Add(0, 0, true)
	c := m.Clone()
	if err := c.Add(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if m.NumAnswers() != 1 || c.NumAnswers() != 2 {
		t.Errorf("clone aliased: m=%d c=%d", m.NumAnswers(), c.NumAnswers())
	}
	if m.Has(0, 1) {
		t.Error("clone mutation leaked into original")
	}
}

func TestAddWorkers(t *testing.T) {
	m := newTestMatrix(t)
	first, err := m.AddWorkers("e0", "e1")
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || m.NumWorkers() != 5 {
		t.Errorf("first=%d workers=%d", first, m.NumWorkers())
	}
	if err := m.Add(0, first, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddWorkers("w0"); err == nil {
		t.Error("colliding worker ID accepted")
	}
}

func TestFactsAnsweredBy(t *testing.T) {
	m := newTestMatrix(t)
	_ = m.Add(3, 1, true)
	_ = m.Add(0, 1, false)
	got := m.FactsAnsweredBy(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("FactsAnsweredBy = %v", got)
	}
}
