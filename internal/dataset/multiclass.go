package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// MultiClassConfig parameterizes the multi-class workload of §II-A: each
// item carries exactly one of NumClasses labels, and the labeling task is
// split into NumClasses binary facts ("should this item be labeled c?")
// that form one mutually-exclusive task. Workers behave like human
// classifiers: each picks a class — the true one with their accuracy,
// otherwise a uniformly random wrong one — and answers "yes" for the pick
// and "no" for the rest, which makes their per-fact errors structurally
// correlated exactly as real classification answers are.
type MultiClassConfig struct {
	NumItems   int
	NumClasses int
	Crowd      crowd.HeterogeneousConfig
	Theta      float64
	// Skew biases the class distribution: class c has weight
	// Skew^c (1 = balanced).
	Skew float64
}

// DefaultMultiClassConfig is the shape used by the multiclass example:
// 150 items over 4 classes with a mild skew.
func DefaultMultiClassConfig() MultiClassConfig {
	return MultiClassConfig{
		NumItems:   150,
		NumClasses: 4,
		Crowd:      crowd.DefaultHeterogeneous(),
		Theta:      0.9,
		Skew:       0.8,
	}
}

// Validate checks the configuration.
func (c MultiClassConfig) Validate() error {
	if c.NumItems <= 0 {
		return errors.New("dataset: NumItems must be positive")
	}
	if c.NumClasses < 2 || c.NumClasses > 20 {
		return fmt.Errorf("dataset: NumClasses %d outside [2, 20]", c.NumClasses)
	}
	if c.Theta < 0.5 || c.Theta > 1 {
		return errors.New("dataset: Theta must be in [0.5, 1]")
	}
	if c.Skew <= 0 || c.Skew > 1 {
		return errors.New("dataset: Skew must be in (0, 1]")
	}
	return nil
}

// MultiClass generates the one-hot dataset. The returned Dataset has one
// task per item with NumClasses facts; exactly one fact per task is true.
// Use belief.OneHotPrior (pipeline Config.Prior) so the beliefs carry the
// exclusivity constraint.
func MultiClass(rng *rand.Rand, cfg MultiClassConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := crowd.NewHeterogeneous(rng, cfg.Crowd)
	if err != nil {
		return nil, err
	}
	_, cp := pool.Split(cfg.Theta)
	if len(cp) == 0 {
		return nil, errors.New("dataset: no preliminary workers")
	}
	weights := make([]float64, cfg.NumClasses)
	w := 1.0
	for c := range weights {
		weights[c] = w
		w *= cfg.Skew
	}
	nFacts := cfg.NumItems * cfg.NumClasses
	truth := make([]bool, nFacts)
	tasks := make([][]int, cfg.NumItems)
	labels := make([]int, cfg.NumItems)
	for i := 0; i < cfg.NumItems; i++ {
		label := rngutil.Categorical(rng, weights)
		labels[i] = label
		facts := make([]int, cfg.NumClasses)
		for c := 0; c < cfg.NumClasses; c++ {
			f := i*cfg.NumClasses + c
			facts[c] = f
			truth[f] = c == label
		}
		tasks[i] = facts
	}
	ids := make([]string, len(cp))
	for wi, wk := range cp {
		ids[wi] = wk.ID
	}
	matrix, err := NewMatrix(nFacts, ids)
	if err != nil {
		return nil, err
	}
	for wi, wk := range cp {
		for i := 0; i < cfg.NumItems; i++ {
			pick := labels[i]
			if !rngutil.Bernoulli(rng, wk.Accuracy) {
				// A wrong classification: uniform over the other classes.
				off := 1 + rng.Intn(cfg.NumClasses-1)
				pick = (labels[i] + off) % cfg.NumClasses
			}
			for c := 0; c < cfg.NumClasses; c++ {
				if err := matrix.Add(i*cfg.NumClasses+c, wi, c == pick); err != nil {
					return nil, err
				}
			}
		}
	}
	ds := &Dataset{
		Truth:  truth,
		Tasks:  tasks,
		Crowd:  pool,
		Theta:  cfg.Theta,
		Prelim: matrix,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ClassOf recovers the item labels from a one-hot dataset's fact labels:
// the class whose fact is true, or the first max if the labels are not
// exactly one-hot (possible for thresholded aggregator output).
func ClassOf(labels []bool, tasks [][]int) []int {
	out := make([]int, len(tasks))
	for i, facts := range tasks {
		cls := 0
		for c, f := range facts {
			if labels[f] {
				cls = c
				break
			}
		}
		out[i] = cls
	}
	return out
}
