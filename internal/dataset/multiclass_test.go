package dataset

import (
	"math"
	"testing"

	"hcrowd/internal/rngutil"
)

func TestMultiClassShape(t *testing.T) {
	cfg := DefaultMultiClassConfig()
	cfg.NumItems = 50
	ds, err := MultiClass(rngutil.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFacts() != 200 || len(ds.Tasks) != 50 {
		t.Fatalf("shape: %d facts, %d tasks", ds.NumFacts(), len(ds.Tasks))
	}
	// Exactly one true fact per task.
	for i, facts := range ds.Tasks {
		trues := 0
		for _, f := range facts {
			if ds.Truth[f] {
				trues++
			}
		}
		if trues != 1 {
			t.Fatalf("task %d has %d true facts", i, trues)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClassWorkerAnswersAreOneHot(t *testing.T) {
	cfg := DefaultMultiClassConfig()
	cfg.NumItems = 30
	ds, err := MultiClass(rngutil.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each worker answers yes exactly once per item.
	for w := 0; w < ds.Prelim.NumWorkers(); w++ {
		yesPerItem := make(map[int]int)
		for _, o := range ds.Prelim.ByWorker(w) {
			if o.Value {
				yesPerItem[o.Fact/cfg.NumClasses]++
			}
		}
		for i := 0; i < cfg.NumItems; i++ {
			if yesPerItem[i] != 1 {
				t.Fatalf("worker %d item %d has %d yes answers", w, i, yesPerItem[i])
			}
		}
	}
}

func TestMultiClassWorkerAccuracyRealized(t *testing.T) {
	cfg := DefaultMultiClassConfig()
	cfg.NumItems = 2000
	ds, err := MultiClass(rngutil.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, cp := ds.Split()
	for wi, wk := range cp {
		correct := 0
		for _, o := range ds.Prelim.ByWorker(wi) {
			if o.Value && ds.Truth[o.Fact] {
				correct++
			}
		}
		got := float64(correct) / float64(cfg.NumItems)
		if math.Abs(got-wk.Accuracy) > 0.03 {
			t.Errorf("worker %s empirical class accuracy %v vs %v", wk.ID, got, wk.Accuracy)
		}
	}
}

func TestMultiClassSkew(t *testing.T) {
	cfg := DefaultMultiClassConfig()
	cfg.NumItems = 4000
	cfg.Skew = 0.5
	ds, err := MultiClass(rngutil.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.NumClasses)
	for _, facts := range ds.Tasks {
		for c, f := range facts {
			if ds.Truth[f] {
				counts[c]++
			}
		}
	}
	for c := 1; c < cfg.NumClasses; c++ {
		if counts[c] >= counts[c-1] {
			t.Errorf("skew not realized: counts %v", counts)
			break
		}
	}
}

func TestMultiClassConfigValidate(t *testing.T) {
	bad := []func(*MultiClassConfig){
		func(c *MultiClassConfig) { c.NumItems = 0 },
		func(c *MultiClassConfig) { c.NumClasses = 1 },
		func(c *MultiClassConfig) { c.NumClasses = 30 },
		func(c *MultiClassConfig) { c.Theta = 0.2 },
		func(c *MultiClassConfig) { c.Skew = 0 },
		func(c *MultiClassConfig) { c.Skew = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultMultiClassConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestClassOf(t *testing.T) {
	tasks := [][]int{{0, 1, 2}, {3, 4, 5}}
	labels := []bool{false, true, false, false, false, true}
	got := ClassOf(labels, tasks)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("ClassOf = %v", got)
	}
	// All-false task falls back to class 0.
	labels2 := []bool{false, false, false, false, false, true}
	if got := ClassOf(labels2, tasks); got[0] != 0 {
		t.Errorf("fallback class = %d", got[0])
	}
}

func TestCatMatrixAccessors(t *testing.T) {
	m, err := NewCatMatrix(3, 4, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumItems() != 3 || m.NumClasses() != 4 || m.NumWorkers() != 2 {
		t.Fatalf("dims %d/%d/%d", m.NumItems(), m.NumClasses(), m.NumWorkers())
	}
	if err := m.Add(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if m.NumAnswers() != 3 {
		t.Errorf("answers = %d", m.NumAnswers())
	}
	if got := m.ByItem(0); len(got) != 2 || got[0] != (CatObs{0, 2}) {
		t.Errorf("ByItem(0) = %v", got)
	}
	if got := m.ByWorker(0); len(got) != 2 || got[1] != (CatWObs{1, 3}) {
		t.Errorf("ByWorker(0) = %v", got)
	}
	if ids := m.WorkerIDs(); ids[1] != "b" {
		t.Errorf("WorkerIDs = %v", ids)
	}
	if err := m.Add(0, 9, 1); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if _, err := NewCatMatrix(2, 2, []string{"a", "a"}); err == nil {
		t.Error("duplicate worker IDs accepted")
	}
	if _, err := NewCatMatrix(2, 2, nil); err == nil {
		t.Error("no workers accepted")
	}
}

func TestCatFromOneHotSkipsAmbiguous(t *testing.T) {
	// A worker answering Yes for two classes (or none) of an item has no
	// recoverable pick and must be skipped for that item.
	m, err := NewMatrix(3, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Add(0, 0, true)
	_ = m.Add(1, 0, true) // two Yes answers in the same task
	_ = m.Add(2, 0, false)
	cat, err := CatFromOneHot(m, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumAnswers() != 0 {
		t.Errorf("ambiguous pick recorded: %d answers", cat.NumAnswers())
	}
	if _, err := CatFromOneHot(m, nil); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := CatFromOneHot(m, [][]int{{0, 1, 2}, {3}}); err == nil {
		t.Error("ragged tasks accepted")
	}
}
