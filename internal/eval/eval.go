// Package eval provides the measurement and reporting substrate for the
// experiment drivers: budget-indexed series (the figures' curves), plain
// tables (Table III), aligned-text rendering for the terminal, and CSV
// output for external plotting.
package eval

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one labeled curve: Y[i] is the metric at the grid's X[i].
// Missing points are NaN and render as "-".
type Series struct {
	Name string
	Y    []float64
}

// Grid is a budget-indexed family of curves, the shape of every figure in
// the paper's evaluation: an X grid (budgets) and one series per method or
// parameter setting.
type Grid struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
}

// Validate checks every series matches the X grid.
func (g *Grid) Validate() error {
	if len(g.X) == 0 {
		return errors.New("eval: grid has no x points")
	}
	for _, s := range g.Series {
		if len(s.Y) != len(g.X) {
			return fmt.Errorf("eval: series %q has %d points, grid has %d", s.Name, len(s.Y), len(g.X))
		}
	}
	return nil
}

// Render writes the grid as an aligned text table, one row per X value.
func (g *Grid) Render(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	headers := make([]string, 0, len(g.Series)+1)
	headers = append(headers, g.XLabel)
	for _, s := range g.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(g.X))
	for i, x := range g.X {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range g.Series {
			row = append(row, formatCell(s.Y[i]))
		}
		rows[i] = row
	}
	return RenderTable(w, g.Title, headers, rows)
}

// CSV writes the grid as comma-separated values with a header row.
func (g *Grid) CSV(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string{g.XLabel}, names(g.Series)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range g.X {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range g.Series {
			if math.IsNaN(s.Y[i]) {
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesByName returns the series with the given name.
func (g *Grid) SeriesByName(name string) (Series, bool) {
	for _, s := range g.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// FinalValue returns the last non-NaN value of the named series.
func (g *Grid) FinalValue(name string) (float64, bool) {
	s, ok := g.SeriesByName(name)
	if !ok {
		return 0, false
	}
	for i := len(s.Y) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Y[i]) {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table is a free-form result table (Table III's shape).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render writes the table aligned.
func (t *Table) Render(w io.Writer) error {
	return RenderTable(w, t.Title, t.Headers, t.Rows)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderTable writes one aligned text table with a title line.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) error {
	for _, r := range rows {
		if len(r) != len(headers) {
			return fmt.Errorf("eval: row has %d cells, header has %d", len(r), len(headers))
		}
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := len(headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatCell renders a metric value compactly; NaN becomes "-".
func formatCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// trimFloat renders an X value without trailing zeros.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func names(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// NaNs returns a slice of n NaNs, the starting state of a series being
// filled in.
func NaNs(n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = math.NaN()
	}
	return y
}
