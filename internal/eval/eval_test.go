package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleGrid() *Grid {
	return &Grid{
		Title:  "Fig X",
		XLabel: "budget",
		X:      []float64{0, 100, 200},
		Series: []Series{
			{Name: "HC", Y: []float64{0.85, 0.9, 0.92}},
			{Name: "MV", Y: []float64{0.8, math.NaN(), 0.81}},
		},
	}
}

func TestGridValidate(t *testing.T) {
	g := sampleGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Grid{X: []float64{1}, Series: []Series{{Name: "a", Y: []float64{1, 2}}}}
	if bad.Validate() == nil {
		t.Error("mismatched series accepted")
	}
	if (&Grid{}).Validate() == nil {
		t.Error("empty grid accepted")
	}
}

func TestGridRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleGrid().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "budget", "HC", "MV", "0.9200", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGridCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleGrid().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "budget,HC,MV" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "100,0.9,") {
		t.Errorf("NaN cell not empty: %q", lines[2])
	}
}

func TestSeriesByNameAndFinalValue(t *testing.T) {
	g := sampleGrid()
	if _, ok := g.SeriesByName("HC"); !ok {
		t.Error("HC not found")
	}
	if _, ok := g.SeriesByName("zzz"); ok {
		t.Error("phantom series found")
	}
	v, ok := g.FinalValue("MV")
	if !ok || v != 0.81 {
		t.Errorf("FinalValue(MV) = %v,%v", v, ok)
	}
	allNaN := &Grid{X: []float64{1}, Series: []Series{{Name: "n", Y: []float64{math.NaN()}}}}
	if _, ok := allNaN.FinalValue("n"); ok {
		t.Error("FinalValue on all-NaN series succeeded")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		Title:   "Table III",
		Headers: []string{"k", "OPT", "Approx"},
		Rows: [][]string{
			{"1", "15.99", "14.86"},
			{"4", "timeout", "144.58"},
		},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "timeout") {
		t.Error("render lost cell")
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "k,OPT,Approx\n") {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestRenderTableRowMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := RenderTable(&buf, "t", []string{"a", "b"}, [][]string{{"only one"}})
	if err == nil {
		t.Error("row/header mismatch accepted")
	}
}

func TestNaNs(t *testing.T) {
	y := NaNs(3)
	if len(y) != 3 {
		t.Fatalf("len = %d", len(y))
	}
	for _, v := range y {
		if !math.IsNaN(v) {
			t.Error("non-NaN entry")
		}
	}
}
