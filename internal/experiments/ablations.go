package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// AblationPrior compares the correlated Markov prior (estimated from the
// preliminary answers, DESIGN.md "factored vs joint initialization")
// against the paper's plain Equation-15 product initialization, holding
// everything else fixed.
func AblationPrior(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	accGrid := &eval.Grid{
		Title:  "Ablation: accuracy vs budget, correlated prior vs product init",
		XLabel: "budget",
		X:      grid,
	}
	qualGrid := &eval.Grid{
		Title:  "Ablation: quality vs budget, correlated prior vs product init",
		XLabel: "budget",
		X:      grid,
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name   string
		couple float64
	}{
		{fmt.Sprintf("prior (couple=%.2f)", couple), couple},
		{"product (Eq. 15)", 0},
	} {
		cfg := pipeline.Config{
			K:             1,
			Budget:        o.maxBudget(),
			Init:          aggregate.NewEBCC(o.Seed + 1),
			Source:        pipeline.NewSimulated(o.Seed+2, ds),
			PriorCoupling: variant.couple,
			Metrics:       o.Metrics,
		}
		acc, qual, err := runHC(ctx, ds, cfg, grid)
		if err != nil {
			return nil, err
		}
		accGrid.Series = append(accGrid.Series, eval.Series{Name: variant.name, Y: acc})
		qualGrid.Series = append(qualGrid.Series, eval.Series{Name: variant.name, Y: qual})
	}
	return &Figure{
		ID:    "ablation-prior",
		Title: "Correlated prior vs product-form initialization",
		Grids: []*eval.Grid{accGrid, qualGrid},
	}, nil
}

// AblationEstAcc compares HC driven by oracle worker accuracies against
// accuracies estimated from a gold sample of the configured size (§II-A's
// "easily estimated with a set of sample tasks").
func AblationEstAcc(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	g := &eval.Grid{
		Title:  "Ablation: accuracy vs budget, oracle vs estimated worker accuracies",
		XLabel: "budget",
		X:      grid,
	}
	goldSizes := []int{20, 100}
	variants := []struct {
		name string
		ds   *dataset.Dataset
	}{{"oracle rates", ds}}
	for _, n := range goldSizes {
		rng := rngutil.New(o.Seed + int64(n))
		facts := make([]int, n)
		for i := range facts {
			facts[i] = i
		}
		fam := crowd.SimulateAnswerFamily(rng, ds.Crowd, facts, ds.TruthFn())
		est := crowd.EstimateAccuracies(ds.Crowd, []crowd.AnswerFamily{fam}, ds.TruthFn())
		copyDS := *ds
		copyDS.Crowd = est
		variants = append(variants, struct {
			name string
			ds   *dataset.Dataset
		}{fmt.Sprintf("estimated (gold=%d)", n), &copyDS})
	}
	for _, v := range variants {
		cfg, err := hcConfig(o, v.ds, 1)
		if err != nil {
			return nil, err
		}
		// Same answer stream for all variants: the true accuracies drive
		// the simulation, the variant's rates drive the updates.
		cfg.Source = pipeline.NewSimulated(o.Seed+2, ds)
		acc, _, err := runHC(ctx, v.ds, cfg, grid)
		if err != nil {
			return nil, fmt.Errorf("ablation-estacc %s: %w", v.name, err)
		}
		g.Series = append(g.Series, eval.Series{Name: v.name, Y: acc})
	}
	return &Figure{
		ID:    "ablation-estacc",
		Title: "Oracle vs estimated worker accuracies",
		Grids: []*eval.Grid{g},
	}, nil
}

// AblationRobust measures how the HC pipeline degrades when the
// preliminary crowd violates the error model: an always-yes spammer and
// a three-worker collusion clique, against the honest baseline.
func AblationRobust(ctx context.Context, o Options) (*Figure, error) {
	base, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	g := &eval.Grid{
		Title:  "Ablation: accuracy vs budget under crowd misbehavior",
		XLabel: "budget",
		X:      grid,
	}
	variants := []struct {
		name      string
		behaviors map[int]dataset.Behavior
	}{
		{"honest", nil},
		{"1 spammer", map[int]dataset.Behavior{0: dataset.SpammerYes}},
		{"3-clique", map[int]dataset.Behavior{
			0: dataset.CliqueMember, 1: dataset.CliqueMember, 2: dataset.CliqueMember,
		}},
	}
	for _, v := range variants {
		ds := base
		if v.behaviors != nil {
			ds, err = base.InjectBehaviors(rngutil.New(o.Seed+3), v.behaviors, 0.62)
			if err != nil {
				return nil, err
			}
		}
		cfg, err := hcConfig(o, ds, 1)
		if err != nil {
			return nil, err
		}
		acc, _, err := runHC(ctx, ds, cfg, grid)
		if err != nil {
			return nil, fmt.Errorf("ablation-robust %s: %w", v.name, err)
		}
		g.Series = append(g.Series, eval.Series{Name: v.name, Y: acc})
	}
	return &Figure{
		ID:    "ablation-robust",
		Title: "HC under crowd misbehavior",
		Grids: []*eval.Grid{g},
	}, nil
}
