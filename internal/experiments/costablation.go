package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/crowd"
	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
)

// AblationCost compares the uniform design (every selected query answered
// by the whole expert panel, the paper's Algorithm 3) against the
// per-unit cost-aware selection (taskselect.CostGreedy, the §III-D
// future-work extension) under an accuracy-linked price: an answer from a
// worker with accuracy a costs 1 + 8·(a − 0.9). Both spend the same
// monetary budget.
func AblationCost(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	priceOf := func(w crowd.Worker) float64 { return 1 + 8*(w.MeanCorrect()-0.9) }

	g := &eval.Grid{
		Title:  "Ablation: quality vs budget, uniform panel vs per-unit cost greedy",
		XLabel: "budget (cost units)",
		X:      grid,
	}
	base, err := hcConfig(o, ds, 1)
	if err != nil {
		return nil, err
	}
	base.Cost = priceOf

	uniform := base
	uniform.Source = pipeline.NewSimulated(o.Seed+2, ds)
	resU, err := pipeline.Run(ctx, ds, uniform)
	if err != nil {
		return nil, fmt.Errorf("ablation-cost uniform: %w", err)
	}
	_, qualU := curveFromRounds(resU, grid)
	g.Series = append(g.Series, eval.Series{Name: "uniform panel", Y: qualU})

	perUnit := base
	perUnit.Source = pipeline.NewSimulated(o.Seed+2, ds)
	resP, err := pipeline.RunCostAware(ctx, ds, perUnit)
	if err != nil {
		return nil, fmt.Errorf("ablation-cost per-unit: %w", err)
	}
	_, qualP := curveFromRounds(resP, grid)
	g.Series = append(g.Series, eval.Series{Name: "per-unit cost greedy", Y: qualP})

	return &Figure{
		ID:    "ablation-cost",
		Title: "Cost-aware per-unit selection vs the uniform panel",
		Grids: []*eval.Grid{g},
	}, nil
}
