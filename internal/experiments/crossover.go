package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/rngutil"
)

// AblationCrossover locates where hierarchical checking stops paying:
// it sweeps the preliminary crowd's mean accuracy and compares HC
// against the strongest budget-matched aggregation baseline at a fixed
// budget. When the preliminary tier is already near-expert the
// initialization leaves little entropy for the checking loop to remove
// and the curves converge — the "where the crossover falls" analysis the
// θ discussion in §III-D gestures at.
func AblationCrossover(ctx context.Context, o Options) (*Figure, error) {
	bands := [][2]float64{
		{0.55, 0.65}, {0.60, 0.70}, {0.65, 0.75},
		{0.70, 0.80}, {0.75, 0.85}, {0.80, 0.90},
	}
	if o.Quick {
		bands = [][2]float64{bands[0], bands[2], bands[4]}
	}
	budget := o.maxBudget() / 2
	x := make([]float64, len(bands))
	hcY := make([]float64, len(bands))
	baseY := make([]float64, len(bands))
	for i, band := range bands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x[i] = (band[0] + band[1]) / 2
		cfg := dataset.DefaultSentiConfig()
		cfg.NumTasks = o.numTasks()
		cfg.Crowd.PrelimLo, cfg.Crowd.PrelimHi = band[0], band[1]
		ds, err := dataset.SentiLike(rngutil.New(o.Seed), cfg)
		if err != nil {
			return nil, fmt.Errorf("crossover band %v: %w", band, err)
		}
		run, err := hcConfig(o, ds, 1)
		if err != nil {
			return nil, err
		}
		run.Budget = budget
		acc, _, err := runHC(ctx, ds, run, []float64{budget})
		if err != nil {
			return nil, err
		}
		hcY[i] = acc[0]

		// Strongest baseline at the same budget: extra random expert
		// answers plus every aggregator; take the best.
		m, err := ds.WithExpertAnswers(rngutil.New(o.Seed+5), int(budget))
		if err != nil {
			return nil, err
		}
		best := 0.0
		for _, agg := range aggregate.Registry(o.Seed + 6) {
			res, err := agg.Aggregate(m)
			if err != nil {
				return nil, err
			}
			a, err := res.Accuracy(ds.Truth)
			if err != nil {
				return nil, err
			}
			if a > best {
				best = a
			}
		}
		baseY[i] = best
	}
	g := &eval.Grid{
		Title:  fmt.Sprintf("Ablation: HC vs best baseline at budget %.0f, sweeping preliminary accuracy", budget),
		XLabel: "mean preliminary accuracy",
		X:      x,
		Series: []eval.Series{
			{Name: "HC", Y: hcY},
			{Name: "best baseline", Y: baseY},
		},
	}
	return &Figure{
		ID:    "ablation-crossover",
		Title: "Where hierarchical checking stops paying",
		Grids: []*eval.Grid{g},
	}, nil
}
