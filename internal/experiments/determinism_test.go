package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestDriversDeterministicGivenSeed renders each checking-loop driver
// twice with identical options and requires byte-identical output — the
// `hcbench -exp fig2` reproducibility guarantee at reduced size. Fig3
// covers K > 1 (several tasks per round, the shape that exposed the
// map-order bug) and the cost ablation covers RunCostAware.
func TestDriversDeterministicGivenSeed(t *testing.T) {
	for _, d := range []struct {
		name   string
		driver Driver
	}{
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"ablation-cost", AblationCost},
		// Streaming covers the event-driven scheduler: Poisson admission
		// batches folded into both loop flavors mid-run.
		{"streaming", Streaming},
	} {
		t.Run(d.name, func(t *testing.T) {
			render := func() []byte {
				fig, err := d.driver(context.Background(), quickOpts())
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := fig.Render(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first := render()
			second := render()
			if !bytes.Equal(first, second) {
				t.Errorf("%s: identical seeds rendered different output", d.name)
			}
		})
	}
}
