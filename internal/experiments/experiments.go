// Package experiments contains one driver per figure and table of the
// paper's evaluation (§IV). Every driver is deterministic given
// Options.Seed, returns renderable grids/tables, and has a Quick mode
// with reduced sizes for CI and the benchmark harness. EXPERIMENTS.md
// records the paper-vs-measured comparison each driver regenerates.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// Options configures a driver run.
type Options struct {
	// Seed drives every random choice; equal seeds give identical output.
	Seed int64
	// Quick shrinks the workload (fewer tasks, smaller budgets, smaller
	// fact groups) so a full suite runs in seconds. The full-size runs
	// mirror the paper's scale (200 tasks × 5 facts, budget 0..1000).
	Quick bool
	// Metrics, when non-nil, receives one RoundMetrics record per
	// checking round of every pipeline run a driver performs. Metrics are
	// purely observational: attaching a sink never changes the results.
	Metrics pipeline.MetricsSink
}

// budgets returns the budget grid of the figures.
func (o Options) budgets() []float64 {
	if o.Quick {
		return []float64{0, 20, 40, 60, 80, 100}
	}
	return []float64{0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
}

// maxBudget is the last grid point.
func (o Options) maxBudget() float64 {
	b := o.budgets()
	return b[len(b)-1]
}

// numTasks is the dataset size.
func (o Options) numTasks() int {
	if o.Quick {
		return 30
	}
	return 200
}

// sentiDataset builds the standard experiment dataset.
func (o Options) sentiDataset() (*dataset.Dataset, error) {
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = o.numTasks()
	return dataset.SentiLike(rngutil.New(o.Seed), cfg)
}

// Figure bundles a driver's output: the grids (curves) and tables it
// regenerates.
type Figure struct {
	ID     string
	Title  string
	Grids  []*eval.Grid
	Tables []*eval.Table
}

// Render writes every grid and table of the figure.
func (f *Figure) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n\n", f.ID, f.Title)
	for _, g := range f.Grids {
		if err := g.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, t := range f.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Driver is a figure/table generator.
type Driver func(context.Context, Options) (*Figure, error)

// All returns every driver keyed by experiment ID.
func All() map[string]Driver {
	return map[string]Driver{
		"fig2":               Fig2,
		"fig3":               Fig3,
		"fig4":               Fig4,
		"fig5":               Fig5,
		"fig6":               Fig6,
		"fig7":               Fig7,
		"table3":             Table3,
		"ablation-cost":      AblationCost,
		"ablation-crossover": AblationCrossover,
		"ablation-prior":     AblationPrior,
		"ablation-estacc":    AblationEstAcc,
		"ablation-robust":    AblationRobust,
		"streaming":          Streaming,
	}
}

// IDs returns the experiment IDs in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(All()))
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// curveFromRounds samples a pipeline run's per-round trace onto the
// budget grid: the value at budget b is the state after the last round
// whose cumulative spend is <= b (the initialization value below the
// first round).
func curveFromRounds(res *pipeline.Result, grid []float64) (acc, qual []float64) {
	acc = make([]float64, len(grid))
	qual = make([]float64, len(grid))
	for i, b := range grid {
		a, q := res.InitAccuracy, res.InitQuality
		for _, r := range res.Rounds {
			if r.BudgetSpent > b {
				break
			}
			a, q = r.Accuracy, r.Quality
		}
		acc[i] = a
		qual[i] = q
	}
	return acc, qual
}

// hcConfig builds the standard HC run configuration: k queries per
// round, greedy selection, EBCC initialization blended with the Markov
// coupling estimated from the preliminary answers (the joint-distribution
// input of Definition 6), and simulated expert answers.
func hcConfig(o Options, ds *dataset.Dataset, k int) (pipeline.Config, error) {
	couple, err := ds.EstimateCoupling()
	if err != nil {
		return pipeline.Config{}, err
	}
	return pipeline.Config{
		K:             k,
		Budget:        o.maxBudget(),
		Init:          aggregate.NewEBCC(o.Seed + 1),
		Source:        pipeline.NewSimulated(o.Seed+2, ds),
		PriorCoupling: couple,
		Metrics:       o.Metrics,
	}, nil
}

// runHC executes one hierarchical-crowdsourcing run at the grid's
// maximum budget and samples the curves. The answer-source seed is
// derived from the dataset seed and a salt so different configurations
// draw independent answers.
func runHC(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config, grid []float64) (acc, qual []float64, err error) {
	res, err := pipeline.Run(ctx, ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	acc, qual = curveFromRounds(res, grid)
	return acc, qual, nil
}

// round4 trims a metric for stable test comparisons.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }
