package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

// run executes a driver in quick mode and validates the generic shape.
func run(t *testing.T, d Driver) *Figure {
	t.Helper()
	fig, err := d(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range fig.Grids {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", fig.ID, err)
	}
	if !strings.Contains(buf.String(), fig.ID) {
		t.Errorf("%s render missing ID", fig.ID)
	}
	return fig
}

func TestFig2ShapeAndHCDominance(t *testing.T) {
	fig := run(t, Fig2)
	g := fig.Grids[0]
	if len(g.Series) != 9 { // HC + 8 baselines
		t.Fatalf("fig2 has %d series, want 9", len(g.Series))
	}
	hc, _ := g.SeriesByName("HC")
	// At the final budget HC must beat every baseline (the paper's
	// headline claim: "the accuracy of HC is consistently higher").
	last := len(g.X) - 1
	for _, s := range g.Series {
		if s.Name == "HC" {
			continue
		}
		if hc.Y[last] < s.Y[last]-1e-9 {
			t.Errorf("fig2: HC %.4f below %s %.4f at max budget", hc.Y[last], s.Name, s.Y[last])
		}
	}
	// HC accuracy must not degrade from start to finish.
	if hc.Y[last] < hc.Y[0] {
		t.Errorf("fig2: HC accuracy fell from %v to %v", hc.Y[0], hc.Y[last])
	}
}

func TestFig3SmallerKWinsAtEqualBudget(t *testing.T) {
	// The k ordering is a shape claim about expectation; a single quick
	// seed can land within noise now that the final-round budget clamp
	// lets every k spend the budget fully, so judge the seed-averaged
	// curves (see Averaged's doc comment).
	fig, err := Averaged(Fig3, 3)(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grids) != 2 {
		t.Fatalf("fig3 grids = %d", len(fig.Grids))
	}
	qual := fig.Grids[1]
	k1, ok1 := qual.SeriesByName("k=1")
	k3, ok3 := qual.SeriesByName("k=3")
	if !ok1 || !ok3 {
		t.Fatal("missing k series")
	}
	last := len(qual.X) - 1
	if k1.Y[last] < k3.Y[last]-1e-9 {
		t.Errorf("fig3: k=1 quality %v below k=3 %v at max budget", k1.Y[last], k3.Y[last])
	}
}

func TestFig4ThetaSeries(t *testing.T) {
	fig := run(t, Fig4)
	acc := fig.Grids[0]
	if len(acc.Series) != 3 {
		t.Fatalf("fig4 series = %d", len(acc.Series))
	}
	// All settings must improve with budget.
	for _, s := range acc.Series {
		if s.Y[len(acc.X)-1] < s.Y[0]-1e-9 {
			t.Errorf("fig4 %s: accuracy fell from %v to %v", s.Name, s.Y[0], s.Y[len(acc.X)-1])
		}
	}
}

func TestFig5OptAndApproxBeatRandom(t *testing.T) {
	fig := run(t, Fig5)
	if len(fig.Grids) != 2 { // k=2 and k=3
		t.Fatalf("fig5 grids = %d", len(fig.Grids))
	}
	for _, g := range fig.Grids {
		opt, _ := g.SeriesByName("OPT")
		apx, _ := g.SeriesByName("Approx")
		rnd, _ := g.SeriesByName("Random")
		last := len(g.X) - 1
		if opt.Y[last] < rnd.Y[last]-1e-9 {
			t.Errorf("%s: OPT %v below Random %v", g.Title, opt.Y[last], rnd.Y[last])
		}
		if apx.Y[last] < rnd.Y[last]-1e-9 {
			t.Errorf("%s: Approx %v below Random %v", g.Title, apx.Y[last], rnd.Y[last])
		}
		// Approx must track OPT closely (paper: gap < 0.1 quality).
		if math.Abs(apx.Y[last]-opt.Y[last]) > 0.15*math.Abs(opt.Y[last])+0.5 {
			t.Errorf("%s: Approx %v far from OPT %v", g.Title, apx.Y[last], opt.Y[last])
		}
	}
}

func TestFig6AllInitializersImprove(t *testing.T) {
	fig := run(t, Fig6)
	qual := fig.Grids[0]
	if len(qual.Series) != 8 {
		t.Fatalf("fig6 series = %d", len(qual.Series))
	}
	last := len(qual.X) - 1
	for _, s := range qual.Series {
		if s.Y[last] < s.Y[0] {
			t.Errorf("fig6 %s: quality fell from %v to %v", s.Name, s.Y[0], s.Y[last])
		}
	}
}

func TestFig7HCAboveNoHC(t *testing.T) {
	fig := run(t, Fig7)
	g := fig.Grids[0]
	hc, _ := g.SeriesByName("HC")
	flat, _ := g.SeriesByName("NO HC")
	// The hierarchy must dominate the flat design at every budget point
	// (Figure 7's claim: "the hierarchical design improves the data
	// quality much faster").
	for i := range g.X {
		if hc.Y[i] < flat.Y[i]-1e-9 {
			t.Errorf("fig7: HC %v below NO HC %v at budget %v", hc.Y[i], flat.Y[i], g.X[i])
		}
	}
}

func TestTable3ShapeAndMonotonicity(t *testing.T) {
	fig := run(t, Table3)
	tbl := fig.Tables[0]
	ks := quickOpts().table3Ks()
	if len(tbl.Rows) != len(ks) {
		t.Fatalf("table3 rows = %d, want %d", len(tbl.Rows), len(ks))
	}
	// Once OPT times out it must stay timed out.
	sawTimeout := false
	for _, row := range tbl.Rows {
		if row[1] == "timeout" {
			sawTimeout = true
		} else if sawTimeout {
			t.Errorf("OPT recovered after timeout at k=%s", row[0])
		}
		if row[2] == "timeout" {
			t.Errorf("Approx timed out at k=%s", row[0])
		}
	}
}

func TestDriversDeterministic(t *testing.T) {
	a, err := Fig7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.Grids[0], b.Grids[0]
	for si := range ga.Series {
		for i := range ga.X {
			if ga.Series[si].Y[i] != gb.Series[si].Y[i] {
				t.Fatal("same seed, different figure output")
			}
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-cost", "ablation-crossover", "ablation-estacc",
		"ablation-prior", "ablation-robust",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"streaming", "table3",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestDriversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for id, d := range All() {
		if _, err := d(ctx, quickOpts()); err == nil {
			t.Errorf("%s ignored cancellation", id)
		}
	}
}

func TestAblationPriorDominance(t *testing.T) {
	fig := run(t, AblationPrior)
	acc := fig.Grids[0]
	prior := acc.Series[0]
	product := acc.Series[1]
	last := len(acc.X) - 1
	if prior.Y[last] < product.Y[last]-1e-9 {
		t.Errorf("correlated prior %v below product init %v", prior.Y[last], product.Y[last])
	}
}

func TestAblationEstAccCloseToOracle(t *testing.T) {
	fig := run(t, AblationEstAcc)
	g := fig.Grids[0]
	oracle, _ := g.SeriesByName("oracle rates")
	est, ok := g.SeriesByName("estimated (gold=100)")
	if !ok {
		t.Fatal("estimated series missing")
	}
	last := len(g.X) - 1
	if oracle.Y[last]-est.Y[last] > 0.05 {
		t.Errorf("estimated accuracies cost %v accuracy", oracle.Y[last]-est.Y[last])
	}
}

func TestAblationRobustOrdering(t *testing.T) {
	fig := run(t, AblationRobust)
	g := fig.Grids[0]
	honest, _ := g.SeriesByName("honest")
	clique, _ := g.SeriesByName("3-clique")
	last := len(g.X) - 1
	if clique.Y[last] > honest.Y[last] {
		t.Errorf("clique run %v above honest %v", clique.Y[last], honest.Y[last])
	}
}

func TestAveragedSmoothsCurves(t *testing.T) {
	avg := Averaged(Fig7, 3)
	fig, err := avg(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Grids[0].Title, "mean of 3 seeds") {
		t.Errorf("title = %q", fig.Grids[0].Title)
	}
	// Averaged HC must still dominate NO HC everywhere.
	g := fig.Grids[0]
	hc, _ := g.SeriesByName("HC")
	flat, _ := g.SeriesByName("NO HC")
	for i := range g.X {
		if hc.Y[i] < flat.Y[i] {
			t.Errorf("averaged HC below NO HC at %v", g.X[i])
		}
	}
}

func TestAveragedSingleIsIdentity(t *testing.T) {
	a, err := Averaged(Fig7, 1)(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Grids[0].Series {
		for i := range a.Grids[0].X {
			if a.Grids[0].Series[si].Y[i] != b.Grids[0].Series[si].Y[i] {
				t.Fatal("Averaged(d, 1) changed output")
			}
		}
	}
}

func TestAblationCrossoverShape(t *testing.T) {
	fig := run(t, AblationCrossover)
	g := fig.Grids[0]
	hc, _ := g.SeriesByName("HC")
	base, _ := g.SeriesByName("best baseline")
	// HC leads on the weakest crowd, and the lead must shrink (or close)
	// as the preliminary tier approaches expert quality.
	firstGap := hc.Y[0] - base.Y[0]
	lastGap := hc.Y[len(g.X)-1] - base.Y[len(g.X)-1]
	if firstGap < 0 {
		t.Errorf("HC behind baseline on weak crowd: gap %v", firstGap)
	}
	if lastGap > firstGap+0.02 {
		t.Errorf("gap grew from %v to %v as crowd improved", firstGap, lastGap)
	}
}

func TestAblationCostPerUnitCompetitive(t *testing.T) {
	fig := run(t, AblationCost)
	g := fig.Grids[0]
	uni, _ := g.SeriesByName("uniform panel")
	per, _ := g.SeriesByName("per-unit cost greedy")
	last := len(g.X) - 1
	// At the final budget the per-unit design must not trail the uniform
	// panel materially (it usually leads: answers go where they buy the
	// most entropy per cost unit).
	if per.Y[last] < uni.Y[last]-1.0 {
		t.Errorf("per-unit %v trails uniform %v", per.Y[last], uni.Y[last])
	}
}
