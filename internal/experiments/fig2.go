package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/eval"
	"hcrowd/internal/rngutil"
)

// Fig2 reproduces Figure 2: accuracy vs. checking budget for hierarchical
// crowdsourcing against the eight aggregation baselines. HC spends the
// budget on selected checking queries answered by the expert tier
// (initialized by EBCC as in §IV-A); each baseline spends the same budget
// as uniformly assigned extra expert answers appended to the preliminary
// matrix, then aggregates everything.
func Fig2(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()

	g := &eval.Grid{
		Title:  "Figure 2: accuracy vs budget, HC vs baselines",
		XLabel: "budget",
		X:      grid,
	}

	// HC curve.
	cfg, err := hcConfig(o, ds, 1)
	if err != nil {
		return nil, err
	}
	acc, _, err := runHC(ctx, ds, cfg, grid)
	if err != nil {
		return nil, err
	}
	g.Series = append(g.Series, eval.Series{Name: "HC", Y: acc})

	// Baselines: same budget as undirected extra expert redundancy.
	for _, agg := range aggregate.Registry(o.Seed + 3) {
		y := eval.NaNs(len(grid))
		for i, b := range grid {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m := ds.Prelim
			if b > 0 {
				m, err = ds.WithExpertAnswers(rngutil.New(o.Seed+10+int64(i)), int(b))
				if err != nil {
					return nil, err
				}
			}
			res, err := agg.Aggregate(m)
			if err != nil {
				return nil, fmt.Errorf("fig2: %s at budget %v: %w", agg.Name(), b, err)
			}
			a, err := res.Accuracy(ds.Truth)
			if err != nil {
				return nil, err
			}
			y[i] = round4(a)
		}
		g.Series = append(g.Series, eval.Series{Name: agg.Name(), Y: y})
	}
	return &Figure{
		ID:    "fig2",
		Title: "Comparison with baseline algorithms",
		Grids: []*eval.Grid{g},
	}, nil
}
