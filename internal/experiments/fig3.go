package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/eval"
)

// Fig3 reproduces Figure 3: accuracy (a) and quality (b) against budget
// for varying per-round query counts k. Smaller k re-selects after every
// update and should dominate at equal budget.
func Fig3(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	ks := []int{1, 2, 3, 4, 5}
	if o.Quick {
		ks = []int{1, 2, 3}
	}

	accGrid := &eval.Grid{
		Title:  "Figure 3(a): accuracy vs budget, varying k",
		XLabel: "budget",
		X:      grid,
	}
	qualGrid := &eval.Grid{
		Title:  "Figure 3(b): quality vs budget, varying k",
		XLabel: "budget",
		X:      grid,
	}
	for _, k := range ks {
		cfg, err := hcConfig(o, ds, k)
		if err != nil {
			return nil, err
		}
		acc, qual, err := runHC(ctx, ds, cfg, grid)
		if err != nil {
			return nil, fmt.Errorf("fig3 k=%d: %w", k, err)
		}
		name := fmt.Sprintf("k=%d", k)
		accGrid.Series = append(accGrid.Series, eval.Series{Name: name, Y: acc})
		qualGrid.Series = append(qualGrid.Series, eval.Series{Name: name, Y: qual})
	}
	return &Figure{
		ID:    "fig3",
		Title: "Varying k",
		Grids: []*eval.Grid{accGrid, qualGrid},
	}, nil
}
