package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/rngutil"
)

// Fig4 reproduces Figure 4: accuracy and quality against budget for
// varying expert thresholds θ ∈ {0.8, 0.85, 0.9}. The worker pool spans a
// continuous accuracy range so moving θ genuinely re-partitions the crowd:
// a larger θ yields fewer but stronger checkers (faster early gains, an
// earlier plateau); a smaller θ yields more, weaker checkers.
func Fig4(ctx context.Context, o Options) (*Figure, error) {
	thetas := []float64{0.8, 0.85, 0.9}
	grid := o.budgets()

	accGrid := &eval.Grid{
		Title:  "Figure 4(a): accuracy vs budget, varying theta",
		XLabel: "budget",
		X:      grid,
	}
	qualGrid := &eval.Grid{
		Title:  "Figure 4(b): quality vs budget, varying theta",
		XLabel: "budget",
		X:      grid,
	}
	// One fixed pool spanning a continuous accuracy range; the split
	// threshold is the only variable across the three runs.
	pool := crowd.Crowd{
		{ID: "w0", Accuracy: 0.68}, {ID: "w1", Accuracy: 0.72},
		{ID: "w2", Accuracy: 0.76}, {ID: "w3", Accuracy: 0.81},
		{ID: "w4", Accuracy: 0.84}, {ID: "w5", Accuracy: 0.87},
		{ID: "w6", Accuracy: 0.91}, {ID: "w7", Accuracy: 0.95},
	}
	for _, theta := range thetas {
		cfg := dataset.DefaultSentiConfig()
		cfg.NumTasks = o.numTasks()
		cfg.Theta = theta
		cfg.Pool = pool
		ds, err := dataset.SentiLike(rngutil.New(o.Seed), cfg)
		if err != nil {
			return nil, fmt.Errorf("fig4 theta=%v: %w", theta, err)
		}
		run, err := hcConfig(o, ds, 1)
		if err != nil {
			return nil, fmt.Errorf("fig4 theta=%v: %w", theta, err)
		}
		acc, qual, err := runHC(ctx, ds, run, grid)
		if err != nil {
			return nil, fmt.Errorf("fig4 theta=%v: %w", theta, err)
		}
		name := fmt.Sprintf("theta=%.2f", theta)
		accGrid.Series = append(accGrid.Series, eval.Series{Name: name, Y: acc})
		qualGrid.Series = append(qualGrid.Series, eval.Series{Name: name, Y: qual})
	}
	return &Figure{
		ID:    "fig4",
		Title: "Varying theta",
		Grids: []*eval.Grid{accGrid, qualGrid},
	}, nil
}
