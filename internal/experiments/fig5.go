package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

// Fig5 reproduces Figure 5: quality against budget for the three
// checking-task selection methods — OPT (exact brute force), Approx (the
// greedy Algorithm 2) and Random — at k = 2 and k = 3. OPT enumerates
// C(N, k) subsets per round, so this experiment runs on a reduced task
// count even in full mode (the paper itself reports multi-minute OPT
// rounds in Table III).
func Fig5(ctx context.Context, o Options) (*Figure, error) {
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 20
	if o.Quick {
		cfg.NumTasks = 8
	}
	ds, err := dataset.SentiLike(rngutil.New(o.Seed), cfg)
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	// Scale the grid to the reduced dataset so the curves saturate
	// similarly to the full runs.
	maxB := grid[len(grid)-1] / 4
	scaled := make([]float64, len(grid))
	for i, b := range grid {
		scaled[i] = b / 4
	}

	ks := []int{2, 3}
	var grids []*eval.Grid
	for _, k := range ks {
		g := &eval.Grid{
			Title:  fmt.Sprintf("Figure 5 (k=%d): quality vs budget, selection methods", k),
			XLabel: "budget",
			X:      scaled,
		}
		selectors := []taskselect.Selector{
			taskselect.Exact{},
			taskselect.Greedy{},
			taskselect.Random{Rng: rngutil.New(o.Seed + 7)},
		}
		for _, sel := range selectors {
			run, err := hcConfig(o, ds, k)
			if err != nil {
				return nil, err
			}
			run.Budget = maxB
			run.Selector = sel
			_, qual, err := runHC(ctx, ds, run, scaled)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s k=%d: %w", sel.Name(), k, err)
			}
			g.Series = append(g.Series, eval.Series{Name: sel.Name(), Y: qual})
		}
		grids = append(grids, g)
	}
	return &Figure{
		ID:    "fig5",
		Title: "Varying selection methods for checking tasks",
		Grids: grids,
	}, nil
}
