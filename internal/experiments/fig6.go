package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/eval"
)

// Fig6 reproduces Figure 6: quality and accuracy against budget when the
// belief state is initialized by each of the eight aggregation
// algorithms, with the checking loop identical across runs (k = 1,
// greedy selection). The paper's finding: EBCC/DS/BCC initializations
// dominate early, and the gap narrows as the checking budget grows.
func Fig6(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()

	qualGrid := &eval.Grid{
		Title:  "Figure 6(a): quality vs budget, varying initialization",
		XLabel: "budget",
		X:      grid,
	}
	accGrid := &eval.Grid{
		Title:  "Figure 6(b): accuracy vs budget, varying initialization",
		XLabel: "budget",
		X:      grid,
	}
	for _, agg := range aggregate.Registry(o.Seed + 1) {
		run, err := hcConfig(o, ds, 1)
		if err != nil {
			return nil, err
		}
		run.Init = agg
		acc, qual, err := runHC(ctx, ds, run, grid)
		if err != nil {
			return nil, fmt.Errorf("fig6 init=%s: %w", agg.Name(), err)
		}
		qualGrid.Series = append(qualGrid.Series, eval.Series{Name: agg.Name(), Y: qual})
		accGrid.Series = append(accGrid.Series, eval.Series{Name: agg.Name(), Y: acc})
	}
	return &Figure{
		ID:    "fig6",
		Title: "Varying belief initialization",
		Grids: []*eval.Grid{qualGrid, accGrid},
	}, nil
}
