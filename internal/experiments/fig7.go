package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
)

// Fig7 reproduces Figure 7: the hierarchical design (θ-split crowd,
// belief initialized from the preliminary workers, experts check) against
// the NO-HC brute-force alternative where every worker serves as a
// checking worker and the belief starts uniform. At equal budget the
// hierarchy converts cheap preliminary labor into a head start the flat
// design must buy back answer by answer.
func Fig7(ctx context.Context, o Options) (*Figure, error) {
	ds, err := o.sentiDataset()
	if err != nil {
		return nil, err
	}
	grid := o.budgets()
	g := &eval.Grid{
		Title:  "Figure 7: quality vs budget, HC vs NO HC",
		XLabel: "budget",
		X:      grid,
	}

	// HC: standard run.
	hc, err := hcConfig(o, ds, 1)
	if err != nil {
		return nil, err
	}
	_, qual, err := runHC(ctx, ds, hc, grid)
	if err != nil {
		return nil, fmt.Errorf("fig7 HC: %w", err)
	}
	g.Series = append(g.Series, eval.Series{Name: "HC", Y: qual})

	// NO HC: every worker is a checker (theta at the floor) and the
	// belief starts uniform.
	flat := *ds
	flat.Theta = 0.5
	noHC := pipeline.Config{
		K:           1,
		Budget:      o.maxBudget(),
		UniformInit: true,
		Source:      pipeline.NewSimulated(o.Seed+2, &flat),
		Metrics:     o.Metrics,
	}
	_, qualFlat, err := runHC(ctx, &flat, noHC, grid)
	if err != nil {
		return nil, fmt.Errorf("fig7 NO HC: %w", err)
	}
	g.Series = append(g.Series, eval.Series{Name: "NO HC", Y: qualFlat})

	return &Figure{
		ID:    "fig7",
		Title: "HC vs NO HC",
		Grids: []*eval.Grid{g},
	}, nil
}
