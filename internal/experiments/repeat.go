package experiments

import (
	"context"
	"fmt"
	"math"
)

// Averaged wraps a driver so it runs n times with consecutive seeds and
// element-wise averages every grid series. Tables (wall-clock timings)
// come from the first run — averaging formatted cells is meaningless.
// Single-seed runs reproduce the paper's protocol; averaging tightens the
// curves when judging shape claims (who wins, where the crossover falls).
func Averaged(d Driver, n int) Driver {
	if n <= 1 {
		return d
	}
	return func(ctx context.Context, o Options) (*Figure, error) {
		base, err := d(ctx, o)
		if err != nil {
			return nil, err
		}
		// Accumulate onto copies of the first run's grids.
		sums := make([][][]float64, len(base.Grids))
		counts := make([][][]int, len(base.Grids))
		for gi, g := range base.Grids {
			sums[gi] = make([][]float64, len(g.Series))
			counts[gi] = make([][]int, len(g.Series))
			for si, s := range g.Series {
				sums[gi][si] = make([]float64, len(s.Y))
				counts[gi][si] = make([]int, len(s.Y))
				for i, v := range s.Y {
					if !math.IsNaN(v) {
						sums[gi][si][i] += v
						counts[gi][si][i]++
					}
				}
			}
		}
		for rep := 1; rep < n; rep++ {
			opts := o
			opts.Seed = o.Seed + int64(rep)
			fig, err := d(ctx, opts)
			if err != nil {
				return nil, fmt.Errorf("repeat %d: %w", rep, err)
			}
			if len(fig.Grids) != len(base.Grids) {
				return nil, fmt.Errorf("repeat %d: grid count changed", rep)
			}
			for gi, g := range fig.Grids {
				if len(g.Series) != len(base.Grids[gi].Series) {
					return nil, fmt.Errorf("repeat %d: series count changed", rep)
				}
				for si, s := range g.Series {
					if len(s.Y) != len(sums[gi][si]) {
						return nil, fmt.Errorf("repeat %d: series length changed", rep)
					}
					for i, v := range s.Y {
						if !math.IsNaN(v) {
							sums[gi][si][i] += v
							counts[gi][si][i]++
						}
					}
				}
			}
		}
		for gi, g := range base.Grids {
			g.Title += fmt.Sprintf(" (mean of %d seeds)", n)
			for si := range g.Series {
				for i := range g.Series[si].Y {
					if counts[gi][si][i] == 0 {
						g.Series[si].Y[i] = math.NaN()
					} else {
						g.Series[si].Y[i] = sums[gi][si][i] / float64(counts[gi][si][i])
					}
				}
			}
		}
		return base, nil
	}
}
