package experiments

import (
	"context"
	"fmt"

	"hcrowd/internal/admit"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// streamRounds is the round grid of the streaming figure.
func (o Options) streamRounds() int {
	if o.Quick {
		return 12
	}
	return 40
}

// streamBase is the number of tasks available up front; the rest of
// numTasks arrives over the run as two-task fragments.
func (o Options) streamBase() int {
	return (o.numTasks()*2 + 2) / 3
}

// Streaming charts label quality and accuracy against time (checking
// rounds) when the task set is not closed: only streamBase tasks exist
// at round 1 and the remainder arrives as a seeded Poisson process,
// each admission refilling one rolling budget window. It is the
// experiment behind the event-driven round scheduler — the closed-loop
// figures hold the task set fixed, this one holds the seed fixed and
// lets the workload move. Both loop flavors run the identical arrival
// schedule, so their curves are directly comparable.
func Streaming(ctx context.Context, o Options) (*Figure, error) {
	scfg := dataset.DefaultSentiConfig()
	scfg.NumTasks = o.streamBase()
	streamed := o.numTasks() - scfg.NumTasks

	build := func() (*dataset.Dataset, *pipeline.ScheduleSource, error) {
		ds, err := dataset.SentiLike(rngutil.New(o.Seed), scfg)
		if err != nil {
			return nil, nil, err
		}
		// One two-task fragment per arrival, drawn from a stream seeded
		// independently of the base dataset.
		frng := rngutil.New(o.Seed + 41)
		frags := make([]*dataset.Fragment, 0, (streamed+1)/2)
		for left := streamed; left > 0; left -= 2 {
			n := 2
			if left < 2 {
				n = left
			}
			fr, err := dataset.SentiFragment(frng, ds, dataset.DefaultSentiConfig(), n)
			if err != nil {
				return nil, nil, err
			}
			frags = append(frags, fr)
		}
		// Poisson arrivals binned at round boundaries: the engine polls the
		// source once per boundary, so Batches[i] is folded in before round
		// i+1 plans. The rate spreads the expected arrivals over the first
		// two thirds of the grid; leftovers land on the final boundary so
		// the schedule always delivers the whole workload.
		horizon := float64(o.streamRounds()) * 2 / 3
		rate := float64(len(frags)) / horizon
		bounds := make([]float64, o.streamRounds()+1)
		for i := range bounds {
			bounds[i] = float64(i)
		}
		counts, err := admit.Batches(rngutil.New(o.Seed+42), rate, bounds)
		if err != nil {
			return nil, nil, err
		}
		batches := make([][]*dataset.Fragment, len(counts))
		next := 0
		for i, c := range counts {
			for j := 0; j < c && next < len(frags); j++ {
				batches[i] = append(batches[i], frags[next])
				next++
			}
		}
		batches[len(batches)-1] = append(batches[len(batches)-1], frags[next:]...)
		return ds, &pipeline.ScheduleSource{Batches: batches}, nil
	}

	grid := make([]float64, o.streamRounds())
	for i := range grid {
		grid[i] = float64(i + 1)
	}
	g := &eval.Grid{
		Title:  "Streaming: quality vs rounds under Poisson task arrivals",
		XLabel: "round",
		X:      grid,
	}
	admitted := &eval.Grid{
		Title:  "Streaming: cumulative tasks admitted",
		XLabel: "round",
		X:      grid,
	}

	for _, flavor := range []struct {
		name string
		cost bool
	}{{"HC", false}, {"HC-cost", true}} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ds, src, err := build()
		if err != nil {
			return nil, err
		}
		cfg, err := hcConfig(o, ds, 1)
		if err != nil {
			return nil, err
		}
		// A third of the grid's budget is available up front; every
		// admission refills one window sized to fund roughly one pick.
		cfg.Budget = o.maxBudget() / 3
		ce, _ := ds.Split()
		cfg.BudgetWindow = float64(len(ce))
		cfg.Admit = src
		rec := &pipeline.MetricsRecorder{}
		if o.Metrics != nil {
			cfg.Metrics = pipeline.MultiMetrics{rec, o.Metrics}
		} else {
			cfg.Metrics = rec
		}
		var res *pipeline.Result
		if flavor.cost {
			cfg.Cost = func(w crowd.Worker) float64 { return 1 + (1 - w.Accuracy) }
			res, err = pipeline.RunCostAware(ctx, ds, cfg)
		} else {
			res, err = pipeline.Run(ctx, ds, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("streaming %s: %w", flavor.name, err)
		}
		qual := eval.NaNs(len(grid))
		acc := eval.NaNs(len(grid))
		adm := eval.NaNs(len(grid))
		q, a, cum := res.InitQuality, res.InitAccuracy, 0
		metricRounds := rec.Rounds()
		for i := range grid {
			if i < len(res.Rounds) {
				q, a = res.Rounds[i].Quality, res.Rounds[i].Accuracy
			}
			if i < len(metricRounds) {
				cum += metricRounds[i].TasksAdmitted
			}
			qual[i] = round4(q)
			acc[i] = round4(a)
			adm[i] = float64(cum)
		}
		g.Series = append(g.Series,
			eval.Series{Name: flavor.name + " quality", Y: qual},
			eval.Series{Name: flavor.name + " accuracy", Y: acc})
		admitted.Series = append(admitted.Series, eval.Series{Name: flavor.name, Y: adm})
	}
	return &Figure{
		ID:    "streaming",
		Title: "Quality over time with streaming task admission",
		Grids: []*eval.Grid{g, admitted},
	}, nil
}
