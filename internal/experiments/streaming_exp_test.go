package experiments

import (
	"context"
	"testing"
)

// TestStreamingAdmitsFullWorkload pins the streaming figure's schedule
// contract: by the last grid round, both loop flavors have admitted
// every streamed task (the dataset minus the up-front base), and the
// cumulative-admission curve never decreases.
func TestStreamingAdmitsFullWorkload(t *testing.T) {
	o := quickOpts()
	fig, err := Streaming(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grids) != 2 {
		t.Fatalf("streaming figure has %d grids, want quality + admissions", len(fig.Grids))
	}
	adm := fig.Grids[1]
	want := float64(o.numTasks() - o.streamBase())
	if want <= 0 {
		t.Fatalf("quick sizes stream no tasks (base %d of %d)", o.streamBase(), o.numTasks())
	}
	for _, s := range adm.Series {
		last := len(s.Y) - 1
		if s.Y[last] != want {
			t.Errorf("%s admitted %v tasks by the final round, want %v", s.Name, s.Y[last], want)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s admission curve decreases at round %d", s.Name, i+1)
			}
		}
	}
	// The quality grid carries both flavors' quality and accuracy.
	if got := len(fig.Grids[0].Series); got != 4 {
		t.Errorf("quality grid has %d series, want 4", got)
	}
}
