package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/eval"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

// table3Timeout bounds one selection round; the paper aborted OPT after 6
// hours — scaled to this substrate the cap is seconds, which the OPT
// column hits at small k exactly as the paper's does.
func (o Options) table3Timeout() time.Duration {
	if o.Quick {
		return 2 * time.Second
	}
	return 30 * time.Second
}

// table3Facts is the width of the single stress task ("tasks that contain
// more than 20 facts"); quick mode shrinks the 2^m observation space.
func (o Options) table3Facts() int {
	if o.Quick {
		return 12
	}
	return 21
}

// table3Ks is the swept query count.
func (o Options) table3Ks() []int {
	if o.Quick {
		return []int{1, 2, 3, 4}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// Table3 reproduces Table III: average checking-task selection time per
// round for OPT versus Approx across k, on a single task wider than 20
// facts, with a per-round wall-clock timeout. One expert answers so the
// answer-family space stays enumerable up to k = 10 (|T|·|CE| ≤ 10),
// matching the regime where the paper could still run Approx.
func Table3(ctx context.Context, o Options) (*Figure, error) {
	nFacts := o.table3Facts()
	ds, err := dataset.WideTask(rngutil.New(o.Seed), nFacts,
		crowd.HeterogeneousConfig{
			NumPrelim: 6, PrelimLo: 0.65, PrelimHi: 0.85,
			NumExpert: 1, ExpertLo: 0.93, ExpertHi: 0.97,
		}, 0.9, 0.5)
	if err != nil {
		return nil, err
	}
	beliefs, err := pipeline.InitBeliefs(ds, aggregate.MV{}, false)
	if err != nil {
		return nil, err
	}
	ce, _ := ds.Split()
	problem := taskselect.Problem{Beliefs: beliefs, Experts: ce}

	timeSelector := func(sel taskselect.Selector, k int) (string, error) {
		roundCtx, cancel := context.WithTimeout(ctx, o.table3Timeout())
		defer cancel()
		start := time.Now() //hclint:ignore time-hygiene Table 3's column IS wall-clock selector runtime; it is reported verbatim and never influences picks
		_, err := sel.Select(roundCtx, problem, k)
		elapsed := time.Since(start) //hclint:ignore time-hygiene reporting-only: the measured runtime goes straight into the table cell

		switch {
		case err == nil:
			return fmt.Sprintf("%.3fs", elapsed.Seconds()), nil
		case errors.Is(err, context.DeadlineExceeded):
			return "timeout", nil
		case ctx.Err() != nil:
			return "", ctx.Err()
		default:
			return "", err
		}
	}

	tbl := &eval.Table{
		Title:   "Table III: average selection time per round",
		Headers: []string{"k", "OPT", "Approx"},
	}
	optDead := false
	for _, k := range o.table3Ks() {
		optCell := "timeout"
		if !optDead {
			cell, err := timeSelector(taskselect.Exact{}, k)
			if err != nil {
				return nil, err
			}
			optCell = cell
			if cell == "timeout" {
				// Larger k can only be slower; skip them like the paper.
				optDead = true
			}
		}
		apxCell, err := timeSelector(taskselect.Greedy{}, k)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%d", k), optCell, apxCell})
	}
	return &Figure{
		ID:     "table3",
		Title:  "Efficiency evaluation",
		Tables: []*eval.Table{tbl},
	}, nil
}
