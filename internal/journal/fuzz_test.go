package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay drives the crash model end to end: build a journal
// from fuzzer-chosen records, cut the file at a fuzzer-chosen byte
// (kill -9 mid-write), reopen, and require that (a) recovery never
// errors, (b) the recovered records are an exact prefix of what was
// appended — never a corrupted or invented record — and (c) the
// reopened journal accepts a further append whose reread includes it.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte("seed"), uint16(3), uint16(0))
	f.Add([]byte{}, uint16(0), uint16(7))
	f.Add([]byte{0xff, 0x00, 0x41}, uint16(9), uint16(12345))
	f.Fuzz(func(t *testing.T, seed []byte, nRecs uint16, cutAt uint16) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.journal")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		// Derive deterministic records from the seed bytes: type cycles,
		// payload is a rotating slice of the seed.
		n := int(nRecs % 64)
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			var payload []byte
			if len(seed) > 0 {
				k := i % (len(seed) + 1)
				payload = append(append([]byte{}, seed[k:]...), seed[:k]...)
			}
			recs = append(recs, Record{Type: byte(i%5 + 1), Payload: payload})
		}
		appendFuzz(t, w, recs)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := int(cutAt) % (len(full) + 1)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		rw, got, err := Open(path)
		if err != nil {
			t.Fatalf("recovery errored at cut %d/%d: %v", cut, len(full), err)
		}
		if len(got) > len(recs) {
			t.Fatalf("recovered %d records from a %d-record journal", len(got), len(recs))
		}
		for i := range got {
			if got[i].Type != recs[i].Type || !bytes.Equal(got[i].Payload, recs[i].Payload) {
				t.Fatalf("record %d corrupted by crash at byte %d: {%d %x} != {%d %x}",
					i, cut, got[i].Type, got[i].Payload, recs[i].Type, recs[i].Payload)
			}
		}
		extra := Record{Type: 7, Payload: []byte("post-crash")}
		appendFuzz(t, rw, []Record{extra})
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
		_, got2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		want := append(append([]Record{}, got...), extra)
		if len(got2) != len(want) {
			t.Fatalf("post-crash append: %d records, want %d", len(got2), len(want))
		}
		last := got2[len(got2)-1]
		if last.Type != extra.Type || !bytes.Equal(last.Payload, extra.Payload) {
			t.Fatalf("post-crash append not durable: {%d %x}", last.Type, last.Payload)
		}
	})
}

func appendFuzz(t *testing.T, w *Writer, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}
