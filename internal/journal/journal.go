// Package journal is the durability kernel of the labeling service: an
// append-only, fsync-on-commit record log with a length+CRC framed
// binary codec. The server writes one journal per session (session
// created / round opened / answer accepted / round sealed / checkpoint
// emitted — the record *types* are the caller's vocabulary; this
// package only guarantees that whatever was acknowledged by a Sync is
// readable after a crash, and that a torn tail — a write cut mid-frame
// by kill -9 or power loss — is detected by its CRC and cleanly
// discarded rather than surfaced as a corrupt record.
//
// File layout:
//
//	8 bytes   magic "HCJRNL01"
//	frames    uint32 LE length N (type byte + payload, N >= 1)
//	          N bytes: 1 type byte, N-1 payload bytes
//	          uint32 LE CRC32-C over the N bytes
//
// Appends go to the end; there is no in-place mutation. Compaction
// (Writer.Reset) replaces the whole file atomically — temp file, fsync,
// rename, directory fsync — so every crash point leaves either the old
// log or the new one, never a mix.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a journal file (and its format version).
var magic = []byte("HCJRNL01")

// MaxRecordSize bounds one record's framed length (type byte +
// payload). A corrupt length prefix larger than this reads as a torn
// tail instead of a multi-gigabyte allocation.
const MaxRecordSize = 1 << 26

// ErrNotJournal is returned by Open/Decode when the file exists, is at
// least header-sized, and carries the wrong magic — a different file
// handed to the journal layer, which truncating would destroy.
var ErrNotJournal = errors.New("journal: bad magic (not a journal file)")

// Record is one journaled event: a caller-defined type byte and an
// opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// castagnoli is the CRC-32C table (the same polynomial storage systems
// use for frame checksums, with hardware support on common CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSize is the on-disk size of one record's frame.
func frameSize(r Record) int64 { return int64(4 + 1 + len(r.Payload) + 4) }

// appendFrame appends r's frame to buf and returns the result.
func appendFrame(buf []byte, r Record) []byte {
	n := 1 + len(r.Payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	body := make([]byte, 0, n)
	body = append(body, r.Type)
	body = append(body, r.Payload...)
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
}

// Decode parses a whole journal image (header included). It returns the
// intact records and the byte offset where the clean prefix ends; bytes
// past that offset are a torn tail (an interrupted write) and should be
// truncated by the caller. A torn tail is NOT an error — it is the
// crash case the journal exists for. The only error is ErrNotJournal:
// a full-size header with the wrong magic, which no crash of ours can
// produce.
func Decode(data []byte) (recs []Record, good int64, err error) {
	if len(data) < len(magic) {
		if bytes.Equal(data, magic[:len(data)]) {
			return nil, 0, nil // torn header: Create was cut mid-write
		}
		return nil, 0, ErrNotJournal
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, 0, ErrNotJournal
	}
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		if n < 1 || n > MaxRecordSize {
			return recs, off, nil // corrupt length: treat as torn tail
		}
		if int64(len(rest)) < int64(4+n+4) {
			return recs, off, nil
		}
		body := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.Checksum(body, castagnoli) != sum {
			return recs, off, nil // torn or corrupt frame
		}
		recs = append(recs, Record{Type: body[0], Payload: append([]byte(nil), body[1:]...)})
		off += int64(4+n) + 4
	}
}

// Writer appends records to one journal file. It is not safe for
// concurrent use; the owning session serializes access. Append buffers
// nothing — every frame goes straight to the file — but durability is
// only guaranteed after Sync returns.
type Writer struct {
	path string
	f    *os.File
	size int64
}

// Create makes a new journal at path (failing if one exists), writes
// the header, and syncs both the file and its directory so the journal
// itself survives a crash right after creation.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{path: path, f: f, size: int64(len(magic))}
	if _, err := f.Write(magic); err != nil {
		f.Close() //hclint:ignore errcheck-lite create failed; the write error is what gets reported
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close() //hclint:ignore errcheck-lite create failed; the sync error is what gets reported
		os.Remove(path)
		return nil, err
	}
	if err := SyncDir(path); err != nil {
		f.Close() //hclint:ignore errcheck-lite create failed; the dir-sync error is what gets reported
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// Open reads an existing journal, truncates any torn tail, and returns
// a Writer positioned for further appends plus every intact record in
// order. A header cut mid-write (crash during Create) reads as an empty
// journal and is repaired in place.
func Open(path string) (*Writer, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close() //hclint:ignore errcheck-lite open failed; the read error is what gets reported
		return nil, nil, err
	}
	recs, good, err := Decode(data)
	if err != nil {
		f.Close() //hclint:ignore errcheck-lite open failed; ErrNotJournal is what gets reported
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if good < int64(len(magic)) {
		// Torn header: rewrite it so the file is a valid empty journal.
		if err := f.Truncate(0); err != nil {
			f.Close() //hclint:ignore errcheck-lite repair failed; the truncate error is what gets reported
			return nil, nil, err
		}
		if _, err := f.WriteAt(magic, 0); err != nil {
			f.Close() //hclint:ignore errcheck-lite repair failed; the write error is what gets reported
			return nil, nil, err
		}
		good = int64(len(magic))
	} else if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close() //hclint:ignore errcheck-lite repair failed; the truncate error is what gets reported
			return nil, nil, err
		}
	}
	if good != int64(len(data)) {
		if err := f.Sync(); err != nil {
			f.Close() //hclint:ignore errcheck-lite repair failed; the sync error is what gets reported
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close() //hclint:ignore errcheck-lite open failed; the seek error is what gets reported
		return nil, nil, err
	}
	return &Writer{path: path, f: f, size: good}, recs, nil
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Size returns the journal's current byte size (clean prefix + appends).
func (w *Writer) Size() int64 { return w.size }

// Append writes one record's frame. The record is durable only after a
// later Sync; callers sync at their commit points (an acked answer, a
// sealed round, an emitted checkpoint), letting cheaper records ride on
// the next commit's fsync.
func (w *Writer) Append(r Record) error {
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	if 1+len(r.Payload) > MaxRecordSize {
		return fmt.Errorf("journal: record of %d bytes exceeds max %d", 1+len(r.Payload), MaxRecordSize)
	}
	frame := appendFrame(make([]byte, 0, frameSize(r)), r)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	return nil
}

// Sync flushes appended frames to stable storage — the commit point.
func (w *Writer) Sync() error {
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	return w.f.Sync()
}

// Close releases the file. The journal stays on disk for recovery.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Reset atomically replaces the journal's contents with recs — the
// compaction primitive: the caller folds the log's prefix into a
// checkpoint record and Reset installs the shortened log. The swap is
// temp file + fsync + rename + directory fsync, so a crash at any point
// leaves either the full old log or the complete new one. On success
// the Writer appends to the new file.
func (w *Writer) Reset(recs []Record) error {
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(w.path)+".compact*")
	if err != nil {
		return err
	}
	buf := append([]byte(nil), magic...)
	for _, r := range recs {
		if 1+len(r.Payload) > MaxRecordSize {
			tmp.Close() //hclint:ignore errcheck-lite compaction failed; the size error is what gets reported
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: record of %d bytes exceeds max %d", 1+len(r.Payload), MaxRecordSize)
		}
		buf = appendFrame(buf, r)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite compaction failed; the write error is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite compaction failed; the sync error is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := SyncDir(w.path); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old := w.f
	w.f = f
	w.size = int64(len(buf))
	// The old descriptor points at the unlinked pre-compaction file; its
	// close outcome cannot affect the new log's durability.
	old.Close() //hclint:ignore errcheck-lite closes the unlinked pre-compaction file; the new log is already synced and renamed
	return nil
}

// SyncDir fsyncs the directory containing path, making a just-created
// or just-renamed entry durable. Every atomic temp+rename persistence
// path in the tree (journal creation and compaction here, checkpoint
// files in internal/server, handed-off journals) must end with it: the
// rename itself is atomic, but without the directory fsync a crash can
// still forget that the new name exists. The call is on the errcheck
// must-check list — dropping its error silently re-opens that window.
func SyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close() //hclint:ignore errcheck-lite dir-sync failed; the sync error is what gets reported
		return err
	}
	return d.Close()
}
