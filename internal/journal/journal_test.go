package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "s.journal")
}

func mustCreate(t *testing.T, path string) *Writer {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendAll(t *testing.T, w *Writer, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func sampleRecords() []Record {
	return []Record{
		{Type: 1, Payload: []byte(`{"name":"default"}`)},
		{Type: 2, Payload: []byte(`{"round":1,"facts":[0,3]}`)},
		{Type: 3, Payload: []byte(`{"round":1,"worker":"e0","values":[true,false]}`)},
		{Type: 3, Payload: nil}, // empty payload round-trips too
		{Type: 4, Payload: []byte(`{"round":1,"answers":2}`)},
	}
}

func assertRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d = {%d %q}, want {%d %q}",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	recs := sampleRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	assertRecords(t, got, recs)

	// The reopened writer appends where the log left off.
	extra := Record{Type: 5, Payload: []byte("ck")}
	appendAll(t, r, []Record{extra})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	_, got2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	assertRecords(t, got2, append(recs, extra))
}

func TestJournalCreateRefusesExisting(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing journal succeeded; want error")
	}
}

// TestJournalTornTail cuts the file at every byte offset and asserts
// Open always recovers a clean prefix of the original records, never a
// corrupt one, and truncates the file so a further append round-trips.
func TestJournalTornTail(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	recs := sampleRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rw, got, err := Open(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut %d: %d records from a %d-record journal", cut, len(got), len(recs))
		}
		assertRecords(t, got, recs[:len(got)])
		// The torn tail is gone: an append after reopen must be readable.
		extra := Record{Type: 9, Payload: []byte{byte(cut)}}
		if err := rw.Append(extra); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := rw.Sync(); err != nil {
			t.Fatalf("cut %d: sync: %v", cut, err)
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
		_, got2, err := Open(p)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		assertRecords(t, got2, append(append([]Record{}, recs[:len(got)]...), extra))
	}
}

// TestJournalCorruptMiddle flips one byte inside an early frame: the
// records after the corruption are discarded with it (the log has no
// resync points by design — everything after a bad frame is suspect).
func TestJournalCorruptMiddle(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	recs := sampleRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[8+4+2] ^= 0xff // a payload byte of the first frame
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	rw, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if len(got) != 0 {
		t.Fatalf("got %d records after first-frame corruption, want 0", len(got))
	}
}

func TestJournalNotAJournal(t *testing.T) {
	path := testPath(t)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Open = %v, want ErrNotJournal", err)
	}
}

func TestJournalReset(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	appendAll(t, w, sampleRecords())
	compacted := []Record{
		{Type: 1, Payload: []byte(`{"name":"default"}`)},
		{Type: 5, Payload: []byte(`{"checkpoint":true}`)},
	}
	if err := w.Reset(compacted); err != nil {
		t.Fatal(err)
	}
	// Appends continue on the compacted log.
	extra := Record{Type: 2, Payload: []byte("next round")}
	appendAll(t, w, []Record{extra})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	assertRecords(t, got, append(append([]Record{}, compacted...), extra))
}

func TestJournalOversizeRecordRejected(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	defer w.Close()
	if err := w.Append(Record{Type: 1, Payload: make([]byte, MaxRecordSize)}); err == nil {
		t.Fatal("oversize append succeeded; want error")
	}
}

func TestJournalClosedWriter(t *testing.T) {
	path := testPath(t)
	w := mustCreate(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: 1}); err == nil {
		t.Fatal("append on closed writer succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync on closed writer succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
