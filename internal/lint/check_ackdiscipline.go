package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AckDiscipline enforces the journal's fsync-before-ack rule in
// internal/server: any path that appends a synced-class record
// (created/answer/roundSeal/taskAdmit — the classes whose loss after an
// acknowledged request would fork recovery from the client's view) and
// then reaches a success HTTP response (a 2xx writeJSON or WriteHeader)
// must have a journal.Writer.Sync between the append and the ack.
//
// The analysis is a linear, source-order event trace per function with
// one-level call propagation: same-package callees are summarized
// (memoized) for the appends they perform, whether they sync, and —
// for helpers like appendLocked(typ, v, commit) — which parameter
// carries the record type and which bool parameter gates the sync.
// A call site resolves those parameters: a constant record class, a
// literal true/false commit, or a dynamic commit (treated as syncing —
// the batch `last` idiom). Two rules fire:
//
//  1. a synced-class append with no Sync reachable before return is
//     reported at the append site;
//  2. a success ack with a synced-class append still undurable is
//     reported at the ack site.
//
// Record classes are matched by constant name (recCreated, recAnswer,
// recRoundSeal, recTaskAdmit) so fixtures and the real journal share
// one rule table; the Writer type is recognized in internal/journal or
// in the package under analysis.
var AckDiscipline = Check{
	Name: "ack-discipline",
	Doc:  "synced-class journal appends must reach a Sync before any success HTTP ack",
	AppliesTo: func(path string) bool {
		return pathIs(path, "internal/server")
	},
	Run: runAckDiscipline,
}

// ackSyncedClasses are the record classes the durability contract
// covers, by declared constant name. recRoundOpen is deliberately
// absent: round-open records are rebuilt from replay and are flushed
// lazily by the next synced append.
var ackSyncedClasses = map[string]bool{
	"recCreated":   true,
	"recAnswer":    true,
	"recRoundSeal": true,
	"recTaskAdmit": true,
}

func runAckDiscipline(pass *Pass) {
	ac := &ackChecker{
		pass:  pass,
		memo:  make(map[*types.Func]*ackSummary),
		busy:  make(map[*types.Func]bool),
		index: indexFuncs(pass.Pkg),
	}
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ac.summarizeDecl(fd)
		}
	}
	// Function literals (HTTP handler closures and friends) are
	// independent trace units: their bodies run on their own request
	// path, not inline in the enclosing function.
	for len(ac.lits) > 0 {
		lit := ac.lits[0]
		ac.lits = ac.lits[1:]
		ac.trace(nil, lit.Body)
	}
}

// ackSummary is what one-level call propagation carries to call sites.
type ackSummary struct {
	// appendsParam is the index of the parameter supplying the record
	// type byte of a Writer.Append (appendLocked's typ), or -1.
	appendsParam int
	// gate is the index of a bool parameter gating the post-append
	// Sync (appendLocked's commit), or -1.
	gate int
	// gated are fixed synced classes appended and then synced iff the
	// gate parameter is true (taskAdmitted forwarding its commit).
	gated []string
	// syncs reports an ungated Sync on the linear trace: callers'
	// earlier appends become durable at this call.
	syncs bool
	// pending are synced classes the function can leave undurable at
	// return (already reported at their own append sites; callers only
	// use them for the ack rule).
	pending []string
}

type ackChecker struct {
	pass  *Pass
	memo  map[*types.Func]*ackSummary
	busy  map[*types.Func]bool
	index *funcIndex
	lits  []*ast.FuncLit
}

func (ac *ackChecker) summarizeDecl(fd *ast.FuncDecl) *ackSummary {
	fn, _ := ac.pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return ac.trace(fd, fd.Body)
	}
	if s, ok := ac.memo[fn]; ok {
		return s
	}
	if ac.busy[fn] {
		// Recursion: an empty summary is the safe fixed point.
		return &ackSummary{appendsParam: -1, gate: -1}
	}
	ac.busy[fn] = true
	s := ac.trace(fd, fd.Body)
	delete(ac.busy, fn)
	ac.memo[fn] = s
	return s
}

// pendEntry is one undurable synced-class append on the current trace.
type pendEntry struct {
	class  string
	pos    token.Pos
	direct bool // appended in this function (report rule 1 here)
}

// trace walks one function body in source order, building its summary
// and reporting violations. fd is nil for function literals.
func (ac *ackChecker) trace(fd *ast.FuncDecl, body *ast.BlockStmt) *ackSummary {
	sum := &ackSummary{appendsParam: -1, gate: -1}
	var pend []pendEntry
	info := ac.pass.Pkg.Info

	sync := func() {
		pend = pend[:0]
		sum.syncs = true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ac.lits = append(ac.lits, n)
			return false
		case *ast.IfStmt:
			// `if commit { ... Sync() ... }` — a param-gated sync.
			// Record the gate and skip the subtree so the Sync inside
			// is not taken as unconditional.
			if fd != nil {
				if id, ok := ast.Unparen(n.Cond).(*ast.Ident); ok && ac.isBoolParam(fd, id) && ac.containsSync(n.Body) {
					if idx := paramIndexOf(info, fd, id); idx >= 0 && sum.gate < 0 {
						sum.gate = idx
					}
					return false
				}
			}
			return true
		case *ast.CallExpr:
			ac.call(fd, n, sum, &pend, sync)
			return true
		}
		return true
	})

	for _, p := range pend {
		sum.pending = append(sum.pending, p.class)
		if p.direct {
			ac.pass.Reportf(p.pos, "synced-class journal record %s is appended with no Sync before return; fsync before any path can acknowledge it", p.class)
		}
	}
	return sum
}

// call classifies one call expression and applies its events to the
// trace: journal Append/Sync, a same-package callee's summary, or a
// success ack.
func (ac *ackChecker) call(fd *ast.FuncDecl, call *ast.CallExpr, sum *ackSummary, pend *[]pendEntry, sync func()) {
	info := ac.pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}

	if ac.isWriterMethod(fn) {
		switch fn.Name() {
		case "Sync":
			sync()
		case "Append":
			if len(call.Args) == 0 {
				return
			}
			typeExpr := recordTypeExpr(call.Args[0])
			if typeExpr == nil {
				return
			}
			if class := constNameOf(info, typeExpr); class != "" {
				if ackSyncedClasses[class] {
					*pend = append(*pend, pendEntry{class: class, pos: call.Pos(), direct: true})
				}
				return
			}
			if fd != nil {
				if id, ok := ast.Unparen(typeExpr).(*ast.Ident); ok {
					if idx := paramIndexOf(info, fd, id); idx >= 0 && sum.appendsParam < 0 {
						sum.appendsParam = idx
					}
				}
			}
		}
		return
	}

	// Success acks.
	if code, ok := ackStatusArg(ac.pass, fn, call); ok {
		if code >= 200 && code < 300 && len(*pend) > 0 {
			classes := make([]string, 0, len(*pend))
			for _, p := range *pend {
				classes = append(classes, p.class)
			}
			ac.pass.Reportf(call.Pos(), "success response (%d) acknowledges journal record(s) %s that have not been synced; Sync before the ack",
				code, strings.Join(classes, ", "))
			*pend = (*pend)[:0] // reported once; don't cascade to rule 1
		}
		return
	}

	// One-level propagation through same-package callees.
	if fn.Pkg() == nil || ac.pass.Pkg.Types == nil || fn.Pkg() != ac.pass.Pkg.Types {
		return
	}
	decl, ok := ac.index.decls[fn]
	if !ok || decl.Body == nil {
		return
	}
	cs := ac.summarizeDecl(decl)

	var classesHere []string
	classesHere = append(classesHere, cs.gated...)
	if cs.appendsParam >= 0 && cs.appendsParam < len(call.Args) {
		if class := constNameOf(info, call.Args[cs.appendsParam]); ackSyncedClasses[class] {
			classesHere = append(classesHere, class)
		}
	}

	switch {
	case cs.syncs:
		// The callee fsyncs after its appends: everything earlier on
		// this trace (and the callee's own appends) is durable.
		sync()
	case cs.gate >= 0 && cs.gate < len(call.Args):
		arg := call.Args[cs.gate]
		if val, isConst := constBoolArg(info, arg); isConst {
			if val {
				sync()
			} else {
				for _, class := range classesHere {
					*pend = append(*pend, pendEntry{class: class, pos: call.Pos(), direct: true})
				}
			}
		} else if fd != nil {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && ac.isBoolParam(fd, id) {
				// Forwarding the gate one level up (taskAdmitted
				// passing its own commit into appendLocked): the
				// enclosing function inherits the gating.
				if idx := paramIndexOf(info, fd, id); idx >= 0 {
					if sum.gate < 0 {
						sum.gate = idx
					}
					sum.gated = append(sum.gated, classesHere...)
					break
				}
				ac.dynamicCommit(pend, sync)
			} else {
				ac.dynamicCommit(pend, sync)
			}
		} else {
			ac.dynamicCommit(pend, sync)
		}
	default:
		for _, class := range classesHere {
			*pend = append(*pend, pendEntry{class: class, pos: call.Pos(), direct: true})
		}
	}

	for _, class := range cs.pending {
		*pend = append(*pend, pendEntry{class: class, pos: call.Pos(), direct: false})
	}
}

// dynamicCommit treats a non-constant commit argument optimistically:
// the streaming batch idiom commits on the final fragment, so a
// dynamic gate counts as a sync on the linear trace.
func (ac *ackChecker) dynamicCommit(pend *[]pendEntry, sync func()) {
	sync()
}

// isWriterMethod reports whether fn is a method on the journal Writer
// type — either the real internal/journal.Writer or a Writer declared
// in the package under analysis (fixture packages cannot import the
// module).
func (ac *ackChecker) isWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Name() != "Writer" || n.Obj().Pkg() == nil {
		return false
	}
	if pathIs(n.Obj().Pkg().Path(), "internal/journal") {
		return true
	}
	return ac.pass.Pkg.Types != nil && n.Obj().Pkg() == ac.pass.Pkg.Types
}

// containsSync reports whether a subtree contains a Writer.Sync call.
func (ac *ackChecker) containsSync(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(ac.pass.Pkg.Info, call); fn != nil && fn.Name() == "Sync" && ac.isWriterMethod(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBoolParam reports whether id resolves to a bool parameter of fd.
func (ac *ackChecker) isBoolParam(fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := ac.pass.Pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Bool {
		return false
	}
	return paramIndexOf(ac.pass.Pkg.Info, fd, id) >= 0
}

// recordTypeExpr extracts the record-type expression from a
// Record{...} composite literal argument (keyed or positional).
func recordTypeExpr(arg ast.Expr) ast.Expr {
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Type" {
				return kv.Value
			}
			continue
		}
		if i == 0 {
			return elt
		}
	}
	return nil
}

// ackStatusArg recognizes success-ack calls: a same-package writeJSON
// helper (status is the second argument) or net/http's
// ResponseWriter.WriteHeader (first argument). It returns the constant
// status code.
func ackStatusArg(pass *Pass, fn *types.Func, call *ast.CallExpr) (int64, bool) {
	switch {
	case fn.Name() == "writeJSON" && fn.Pkg() != nil && pass.Pkg.Types != nil && fn.Pkg() == pass.Pkg.Types:
		if len(call.Args) >= 2 {
			if code, ok := constIntArg(pass.Pkg.Info, call.Args[1]); ok {
				return code, true
			}
		}
	case fn.Name() == "WriteHeader" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http":
		if len(call.Args) >= 1 {
			if code, ok := constIntArg(pass.Pkg.Info, call.Args[0]); ok {
				return code, true
			}
		}
	}
	return 0, false
}
