package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix flags variables that are updated through sync/atomic in
// one place and loaded or stored plainly in another. Mixing the two is
// a data race even when every *write* is atomic — a plain read can
// observe a torn or stale value, and the race detector only notices
// when the schedule cooperates. The check runs in two passes over the
// package: first it collects every field or package-level variable
// whose address is passed to a sync/atomic function (atomic.AddInt64,
// LoadUint64, StorePointer, CompareAndSwap...), then it reports every
// plain access to those variables outside the atomic call sites.
// Typed atomics (atomic.Int64 and friends) make this check moot — the
// type system already forbids plain access — which is why the real
// tree uses them; the check guards the boundary.
var AtomicMix = Check{
	Name: "atomic-mix",
	Doc:  "variables accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: variables used atomically, and the exact &x expressions
	// inside atomic calls (exempt in pass 2).
	atomicVars := make(map[*types.Var]token.Pos)
	inAtomicCall := make(map[ast.Expr]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				v := sharedVarOf(info, target)
				if v == nil {
					continue
				}
				inAtomicCall[target] = true
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: plain accesses to the same variables.
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if inAtomicCall[e] {
				return false
			}
			v := sharedVarOf(info, e)
			if v == nil {
				return true
			}
			atomicPos, ok := atomicVars[v]
			if !ok {
				return true
			}
			p := pass.Pkg.Fset.Position(atomicPos)
			pass.Reportf(e.Pos(), "%s is accessed with sync/atomic (%s:%d) but plainly here; mixed atomic and plain access races",
				v.Name(), filepath.Base(p.Filename), p.Line)
			return false
		})
	}
}

// sharedVarOf resolves an expression to a shareable variable — a
// struct field (via selector) or a package-level variable. Locals are
// excluded: taking a local's address for an atomic op before it
// escapes is initialization, not sharing.
func sharedVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return nil
		}
		v, _ := sel.Obj().(*types.Var)
		return v
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return nil
		}
		// Package-level variables only.
		if v.Parent() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}
