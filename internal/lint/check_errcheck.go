package lint

import (
	"go/ast"
	"go/types"
)

// mustCheckCall configures one call whose error result may not be
// discarded. pkg matches the defining package by import-path suffix;
// recv is the named receiver type ("" for package-level functions).
// writePathOnly restricts the rule to receivers that the enclosing
// function provably opened for writing (os.Create/os.CreateTemp/
// os.OpenFile) — closing a read-only file without checking is
// idiomatic, closing a written file without checking loses the final
// flush error and can silently truncate a checkpoint.
type mustCheckCall struct {
	pkg           string
	recv          string
	name          string
	writePathOnly bool
}

// mustCheckCalls is errcheck-lite's configured set: JSON encoding
// (snapshot and checkpoint emitters), file closes and syncs on write
// paths, buffered-writer flushes, checkpoint persistence itself, and
// the service's graceful-shutdown calls — a dropped http.Server
// Shutdown/Close error hides a drain that never completed, and a
// dropped WriteCheckpointFile error loses the one copy of a drained
// session's progress.
var mustCheckCalls = []mustCheckCall{
	{pkg: "encoding/json", recv: "Encoder", name: "Encode"},
	{pkg: "os", recv: "File", name: "Close", writePathOnly: true},
	{pkg: "os", recv: "File", name: "Sync"},
	{pkg: "bufio", recv: "Writer", name: "Flush"},
	{pkg: "internal/pipeline", recv: "Checkpoint", name: "Write"},
	{pkg: "net/http", recv: "Server", name: "Shutdown"},
	{pkg: "net/http", recv: "Server", name: "Close"},
	{pkg: "internal/server", recv: "", name: "WriteCheckpointFile"},
	// The session write-ahead log: a dropped Append or Sync error breaks
	// the journal's core promise (acknowledged work is durable), and a
	// dropped Close can hide the final flush failure on retirement.
	{pkg: "internal/journal", recv: "Writer", name: "Append"},
	{pkg: "internal/journal", recv: "Writer", name: "Sync"},
	{pkg: "internal/journal", recv: "Writer", name: "Close"},
	// Directory fsync closes the rename-durability window on every
	// atomic temp+rename path (journal create/compact, checkpoint files,
	// handed-off journals); dropping its error re-opens that window.
	{pkg: "internal/journal", recv: "", name: "SyncDir"},
}

// writeOpeners are the os functions whose *os.File result is (or may
// be) open for writing.
var writeOpeners = map[string]bool{"Create": true, "CreateTemp": true, "OpenFile": true}

// ErrCheckLite flags a configured set of must-check calls whose error
// result is discarded — as a bare statement, behind defer/go, or
// assigned to the blank identifier. Unlike a general errcheck, the set
// is curated to this repo's persistence paths: a dropped
// json.Encoder.Encode or write-path Close turns a crash-safe
// checkpoint into a silently truncated one. Test files are exempt.
var ErrCheckLite = Check{
	Name: "errcheck-lite",
	Doc: "must-check calls (json Encode, write-path Close/Sync, Flush, " +
		"Checkpoint.Write, http.Server Shutdown/Close, WriteCheckpointFile, " +
		"journal.Writer Append/Sync/Close, journal.SyncDir) may not discard " +
		"their error",
	Run: runErrCheckLite,
}

func runErrCheckLite(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// funcStack tracks enclosing function bodies for the write-path
		// provenance scan.
		var funcStack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscarded(pass, call, funcStack)
				}
			case *ast.DeferStmt:
				checkDiscarded(pass, n.Call, funcStack)
			case *ast.GoStmt:
				checkDiscarded(pass, n.Call, funcStack)
			case *ast.AssignStmt:
				// `_ = f.Close()`: a deliberate-looking discard is still a
				// discard; must-check sites need handling or a suppression.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isBlank(n.Lhs[0]) {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						checkDiscarded(pass, call, funcStack)
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

func checkDiscarded(pass *Pass, call *ast.CallExpr, funcStack []*ast.BlockStmt) {
	// The callee is either a selector (method or imported function) or a
	// bare identifier (a package-level function called from its own
	// package — how internal/server calls WriteCheckpointFile).
	var callee *ast.Ident
	var sel *ast.SelectorExpr
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		sel = f
		callee = f.Sel
	case *ast.Ident:
		callee = f
	default:
		return
	}
	fn, ok := pass.Pkg.Info.Uses[callee].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	recvName := ""
	if r := sig.Recv(); r != nil {
		recvName = namedTypeName(r.Type())
	}
	for _, mc := range mustCheckCalls {
		if fn.Name() != mc.name || mc.recv != recvName || !pathIs(fn.Pkg().Path(), mc.pkg) {
			continue
		}
		if mc.writePathOnly && (sel == nil || !receiverWriteOpened(pass, sel.X, funcStack)) {
			return
		}
		label := mc.name
		if recvName != "" {
			label = recvName + "." + mc.name
		}
		pass.Reportf(call.Pos(),
			"%s error discarded; this is a must-check call on a persistence path", label)
		return
	}
}

// namedTypeName unwraps pointers and returns the receiver's named type.
func namedTypeName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// receiverWriteOpened reports whether recv is an identifier that some
// enclosing function assigns from os.Create/os.CreateTemp/os.OpenFile.
// Unknown provenance (parameters, fields, chained calls) counts as not
// write-opened: the check prefers silence to noise on files it cannot
// trace.
func receiverWriteOpened(pass *Pass, recv ast.Expr, funcStack []*ast.BlockStmt) bool {
	id, ok := recv.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	for _, body := range funcStack {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || found {
				return !found
			}
			assignsObj := false
			for _, lhs := range as.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok {
					if pass.Pkg.Info.Defs[lid] == obj || pass.Pkg.Info.Uses[lid] == obj {
						assignsObj = true
					}
				}
			}
			if !assignsObj {
				return true
			}
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(r ast.Node) bool {
					c, ok := r.(*ast.CallExpr)
					if !ok {
						return true
					}
					s, ok := c.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					f, ok := pass.Pkg.Info.Uses[s.Sel].(*types.Func)
					if ok && f.Pkg() != nil && f.Pkg().Path() == "os" && writeOpeners[f.Name()] {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
