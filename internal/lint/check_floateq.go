package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point operands. Accumulated
// probabilities and entropies carry rounding error; exact comparison
// is only meaningful against sentinel zero (the "no mass / skip this
// branch" guard, which is exact in IEEE 754 and idiomatic throughout
// the belief math), so comparisons where either side is a constant
// zero are exempt. Everything else belongs in mathx's tolerance
// helpers — or carries a suppression explaining why exactness is
// intended (e.g. the oracle-worker pr == 1 fast path). mathx itself
// and _test.go files are out of scope.
var FloatEq = Check{
	Name: "float-eq",
	Doc: "no ==/!= on floats outside mathx tolerance helpers; " +
		"comparison against constant zero is exempt",
	AppliesTo: func(path string) bool { return !pathIs(path, "internal/mathx") },
	Run:       runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Pkg.Info.Types[be.X], pass.Pkg.Info.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if isZeroConst(xt) || isZeroConst(yt) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use a mathx tolerance helper, or compare against exact zero",
				be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
