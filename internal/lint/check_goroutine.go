package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene requires every `go` statement in non-test server and
// pipeline code to be tied to a shutdown mechanism, so drain paths can
// actually drain: the spawned body (a function literal, or a
// same-package function resolved one level through the summary index)
// must reference a context.Context, operate on a channel (send,
// receive, close, range, or select), or call sync.WaitGroup.Done —
// or the go statement must pass a context or channel to it. Anything
// else is an unbounded goroutine and needs a reasoned
// //hclint:ignore goroutine-hygiene suppression.
var GoroutineHygiene = Check{
	Name: "goroutine-hygiene",
	Doc:  "go statements in server/pipeline must be tied to a context, channel, or WaitGroup",
	AppliesTo: func(path string) bool {
		return pathIs(path, "internal/server") || pathIs(path, "internal/pipeline")
	},
	Run: runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) {
	index := indexFuncs(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtIsBounded(pass, index, g) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine has no shutdown mechanism (no context, channel operation, or WaitGroup.Done in its body or arguments)")
			return true
		})
	}
}

// goStmtIsBounded reports whether the go statement's target or its
// arguments show a lifecycle tie.
func goStmtIsBounded(pass *Pass, index *funcIndex, g *ast.GoStmt) bool {
	// A context- or channel-typed argument at the spawn site counts:
	// the body receives the shutdown signal explicitly.
	for _, arg := range g.Call.Args {
		if isLifecycleTyped(pass, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasLifecycle(pass, fun.Body)
	default:
		if fn := calleeFunc(pass.Pkg.Info, g.Call); fn != nil {
			if decl, ok := index.decls[fn]; ok && decl.Body != nil {
				return bodyHasLifecycle(pass, decl.Body)
			}
		}
	}
	return false
}

// isLifecycleTyped reports whether an expression is a context.Context
// or a channel.
func isLifecycleTyped(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if isNamedType(tv.Type, "context", "Context") {
		return true
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// bodyHasLifecycle scans a body (including nested literals) for any
// shutdown tie: a context-typed expression, a channel operation, or a
// WaitGroup.Done call.
func bodyHasLifecycle(pass *Pass, body *ast.BlockStmt) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && info.Uses[fun] == types.Universe.Lookup("close") {
					found = true
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Name() == "Done" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isNamedType(sig.Recv().Type(), "sync", "WaitGroup") {
						found = true
					}
				}
			}
		case ast.Expr:
			if isLifecycleTyped(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}
