package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces //hclint:guardedby annotations: every read or
// write of an annotated struct field must happen with the named sibling
// mutex held, as determined by the flow-sensitive lock simulation in
// summary.go (Lock/RLock/Unlock and defer Unlock, early returns, branch
// merging). Two conventions participate:
//
//   - Methods whose name ends in "Locked" are assumed to be called with
//     their receiver's guard(s) held — and, symmetrically, calling such
//     a method on a guarded type without holding its guard is itself a
//     violation.
//   - A local freshly built from a composite literal is exempt until it
//     can have escaped to another goroutine; function literals are
//     analyzed as separate scopes with an empty held-set, so closures
//     that capture shared state still need the lock.
//
// The check runs on every package but only fires where annotations
// exist. Test files are exempt (white-box tests routinely poke at
// internals single-threadedly).
var LockDiscipline = Check{
	Name: "lock-discipline",
	Doc:  "guardedby-annotated fields accessed without the guarding mutex held",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	gs := collectGuards(pass)
	if len(gs.fields) == 0 {
		return
	}
	lc := &lockChecker{pass: pass, gs: gs, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc.checkFunc(fd)
		}
	}
}

type lockChecker struct {
	pass     *Pass
	gs       *guardSet
	reported map[token.Pos]bool
}

// checkFunc simulates one function declaration, then every function
// literal discovered inside it (each with a fresh, empty held-set —
// a closure runs on its own goroutine's schedule).
func (lc *lockChecker) checkFunc(fd *ast.FuncDecl) {
	st := lockState{}
	if recv := receiverIdent(fd); recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		// The *Locked suffix is the package convention for "caller
		// holds the lock": seed the held-set with the receiver's
		// guards.
		if obj := lc.pass.Pkg.Info.Defs[recv]; obj != nil {
			for mu := range lc.gs.guardsOf(obj.Type()) {
				st[recv.Name+"."+mu] = lockWrite
			}
		}
	}
	queue := lc.simulate(fd.Body.List, st)
	for len(queue) > 0 {
		lit := queue[0]
		queue = queue[1:]
		queue = append(queue, lc.simulate(lit.Body.List, lockState{})...)
	}
}

func (lc *lockChecker) simulate(body []ast.Stmt, st lockState) []*ast.FuncLit {
	sim := &lockSim{
		info:  lc.pass.Pkg.Info,
		fresh: make(map[types.Object]bool),
	}
	sim.onAccess = func(sel *ast.SelectorExpr, write bool, st lockState) {
		lc.access(sim, sel, write, st)
	}
	sim.onCall = func(call *ast.CallExpr, st lockState) {
		lc.lockedHelperCall(sim, call, st)
	}
	sim.run(body, st)
	return sim.lits
}

// access checks one guarded-field selector against the current state.
func (lc *lockChecker) access(sim *lockSim, sel *ast.SelectorExpr, write bool, st lockState) {
	info := lc.pass.Pkg.Info
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, guarded := lc.gs.fields[fv]
	if !guarded {
		return
	}
	base := types.ExprString(sel.X)
	key := base + "." + mu
	held := st[key]
	if held == lockWrite || (held == lockRead && !write) {
		return
	}
	if lc.isFreshBase(sim, sel.X) {
		return
	}
	if lc.reported[sel.Pos()] {
		return
	}
	lc.reported[sel.Pos()] = true
	verb := "read of"
	if write {
		verb = "write to"
	}
	if held == lockRead {
		lc.pass.Reportf(sel.Pos(), "%s %s.%s while holding only %s.RLock (guarded by %q)",
			verb, base, fv.Name(), key, mu)
		return
	}
	lc.pass.Reportf(sel.Pos(), "%s %s.%s without holding %s (field is //hclint:guardedby %s)",
		verb, base, fv.Name(), key, mu)
}

// lockedHelperCall enforces the converse of the *Locked seeding: a call
// to a same-package *Locked method on a type with guarded fields
// requires the caller to hold the guard(s).
func (lc *lockChecker) lockedHelperCall(sim *lockSim, call *ast.CallExpr, st lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := lc.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	if fn.Pkg() == nil || lc.pass.Pkg.Types == nil || fn.Pkg() != lc.pass.Pkg.Types {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	guards := lc.gs.guardsOf(sig.Recv().Type())
	if len(guards) == 0 {
		return
	}
	if lc.isFreshBase(sim, sel.X) {
		return
	}
	base := types.ExprString(sel.X)
	for _, mu := range sortedKeys(guards) {
		key := base + "." + mu
		if st[key] != lockNone {
			continue
		}
		if lc.reported[call.Pos()] {
			return
		}
		lc.reported[call.Pos()] = true
		lc.pass.Reportf(call.Pos(), "call to %s.%s without holding %s (*Locked methods require the caller to hold the lock)",
			base, fn.Name(), key)
		return
	}
}

// isFreshBase reports whether the root of a selector chain is a local
// built from a composite literal in this scope.
func (lc *lockChecker) isFreshBase(sim *lockSim, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := lc.pass.Pkg.Info.Uses[id]
	return obj != nil && sim.fresh[obj]
}

// receiverIdent returns the receiver's name identifier, or nil for
// functions and anonymous receivers.
func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}
