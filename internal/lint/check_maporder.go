package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for ... range` over map values in the
// determinism-critical packages. Go randomizes map iteration order,
// and everything downstream of Algorithm 2's selection — especially
// any loop that eventually draws from the shared seeded answer RNG —
// must be order-stable, or identical seeds produce different runs.
//
// The one blessed pattern is recognized and exempted: a key-only range
// whose body does nothing but collect keys into a slice that a
// trailing statement of the same block sorts (sort.Ints/sort.Slice/
// slices.Sort...), as in internal/pipeline/engine.go's purchase
// planning. Keyless ranges (`for range m`) are order-free and exempt.
// Anything else needs a //hclint:ignore with a reason arguing
// order-independence. Test files are exempt — the -count=2 suite
// proves their determinism directly.
var MapOrder = Check{
	Name: "map-order",
	Doc: "no raw map iteration in determinism-critical packages; " +
		"collect keys and sort, or suppress with an order-independence argument",
	AppliesTo: IsDeterministicPackage,
	Run:       runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		walkStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := unlabel(stmt).(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		})
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	tv, ok := pass.Pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isBlank(rs.Key) && isBlank(rs.Value) {
		return // `for range m`: iterations are indistinguishable
	}
	if keysSortedAfter(pass, rs, tail) {
		return
	}
	pass.Reportf(rs.For,
		"range over map in determinism-critical package %s; map order is randomized — collect keys and sort them first",
		pass.Pkg.Path)
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// keysSortedAfter recognizes the sorted-keys idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys) // or sort.Slice, slices.Sort, ...
//
// The body must be exactly the append of the key, and a later
// statement of the same block must pass the slice to a sort/slices
// function — the only point at which iteration order stops mattering.
func keysSortedAfter(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" || !isBlank(rs.Value) {
		return false
	}
	keyObj := pass.Pkg.Info.Defs[keyID]
	if keyObj == nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	sliceObj := pass.Pkg.Info.Uses[dst]
	if sliceObj == nil {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	} else if _, builtin := pass.Pkg.Info.Uses[fn].(*types.Builtin); !builtin {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.Pkg.Info.Uses[arg0] != sliceObj {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.Pkg.Info.Uses[arg1] != keyObj {
		return false
	}
	// The collected slice must reach a sort before the block ends.
	for _, stmt := range tail {
		if stmtSortsSlice(pass, stmt, sliceObj) {
			return true
		}
	}
	return false
}

// stmtSortsSlice reports whether the statement (or anything nested in
// it) calls a sort/slices package function with the slice among its
// argument subtrees.
func stmtSortsSlice(pass *Pass, stmt ast.Stmt, slice types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == slice {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
