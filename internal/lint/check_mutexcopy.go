package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexCopy flags copies of values that transitively contain a
// sync.Mutex, sync.RWMutex, sync.WaitGroup, or sync.Once: value
// receivers, by-value parameters and results, assignments and
// declarations copying an existing value, range values over containers
// of such types, and by-value call arguments. A copied lock guards
// nothing — the copy and the original serialize independently, which
// is exactly the kind of silent invariant break the -race suite only
// catches when the interleaving cooperates.
//
// Constructive expressions (composite literals, function calls) are
// not copies of shared state and are exempt; test files are exempt.
var MutexCopy = Check{
	Name: "mutex-copy",
	Doc:  "by-value copies of types containing sync.Mutex/WaitGroup/Once",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *Pass) {
	mc := &mutexCopyChecker{pass: pass, memo: make(map[types.Type]string)}
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) > 0 {
					mc.checkFieldList(n.Recv, "value receiver of method "+n.Name.Name)
				}
				mc.checkSignature(n.Type)
			case *ast.FuncLit:
				mc.checkSignature(n.Type)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						// Assigning to blank discards; nothing is
						// copied into shared state.
						if !isBlank(n.Lhs[i]) {
							mc.checkCopySource(rhs, "assignment copies")
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, v := range vs.Values {
						if vs.Names[i].Name != "_" {
							mc.checkCopySource(v, "declaration copies")
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && !isBlank(n.Value) {
					// With := the range variable is a definition, so
					// its type comes from Defs, not Types.
					t := mc.typeOf(n.Value)
					if t == nil {
						if id, ok := n.Value.(*ast.Ident); ok {
							if obj := mc.pass.Pkg.Info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
					}
					if name := mc.lockIn(t); name != "" {
						mc.report(n.Value.Pos(), "range value copies %s, which contains %s",
							mc.typeString(t), name)
					}
				}
			case *ast.CallExpr:
				if calleeIsBuiltin(pass.Pkg.Info, n) {
					return true
				}
				for _, arg := range n.Args {
					mc.checkCopySource(arg, "call passes")
				}
			}
			return true
		})
	}
}

type mutexCopyChecker struct {
	pass *Pass
	memo map[types.Type]string
}

func (mc *mutexCopyChecker) report(pos token.Pos, format string, args ...any) {
	mc.pass.Reportf(pos, format, args...)
}

// checkSignature flags by-value lock-containing parameters and results.
func (mc *mutexCopyChecker) checkSignature(ft *ast.FuncType) {
	if ft.Params != nil {
		mc.checkFieldList(ft.Params, "parameter copies")
	}
	if ft.Results != nil {
		mc.checkFieldList(ft.Results, "result copies")
	}
}

func (mc *mutexCopyChecker) checkFieldList(fl *ast.FieldList, label string) {
	for _, field := range fl.List {
		tv, ok := mc.pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if name := mc.lockIn(tv.Type); name != "" {
			mc.report(field.Type.Pos(), "%s %s, which contains %s", label, mc.typeString(tv.Type), name)
		}
	}
}

// checkCopySource flags an expression that reads an existing value of
// a lock-containing type: identifiers, selectors, derefs, and index
// expressions copy shared state; composite literals and calls build
// fresh values.
func (mc *mutexCopyChecker) checkCopySource(e ast.Expr, label string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := mc.typeOf(e)
	if name := mc.lockIn(t); name != "" {
		mc.report(e.Pos(), "%s %s by value, which contains %s", label, mc.typeString(t), name)
	}
}

func (mc *mutexCopyChecker) typeOf(e ast.Expr) types.Type {
	tv, ok := mc.pass.Pkg.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func (mc *mutexCopyChecker) typeString(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, types.RelativeTo(mc.pass.Pkg.Types))
}

// lockIn returns the name of the sync primitive a by-value copy of t
// would duplicate ("sync.Mutex", ...), or "" if t is copy-safe.
// Pointers, slices, maps, channels, and interfaces share rather than
// copy their referent, so recursion stops there.
func (mc *mutexCopyChecker) lockIn(t types.Type) string {
	if t == nil {
		return ""
	}
	if name, ok := mc.memo[t]; ok {
		return name
	}
	mc.memo[t] = "" // cycle guard: assume safe while computing
	name := mc.lockInUncached(t)
	mc.memo[t] = name
	return name
}

func (mc *mutexCopyChecker) lockInUncached(t types.Type) string {
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch n.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once":
				return "sync." + n.Obj().Name()
			}
		}
		return mc.lockIn(n.Underlying())
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := mc.lockIn(t.Field(i).Type()); name != "" {
				return name
			}
		}
	case *types.Array:
		return mc.lockIn(t.Elem())
	}
	return ""
}

// calleeIsBuiltin reports whether the call invokes a builtin (len,
// append, ...) or is a type conversion — neither is a function-call
// copy in the sense this check cares about.
func calleeIsBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	}
	return false
}
