package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than consuming the global one; everything
// else at package level (Intn, Float64, Perm, Shuffle, Seed, ...)
// draws from the process-global source and is banned.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes the *Rand it samples from
	"NewPCG":     true, // math/rand/v2 source constructors
	"NewChaCha8": true,
}

// RandHygiene bans the process-global math/rand generator everywhere
// outside internal/rngutil. Reproducibility here is seed-determinism:
// every experiment, simulated answer, and Gibbs sweep draws from a
// *rand.Rand threaded down from one rngutil.New(seed) — a single
// global Intn anywhere (including tests) makes identical-seed runs
// diverge and breaks the -count=2 determinism suite. Methods on an
// explicit *rand.Rand and the New/NewSource constructors are fine.
var RandHygiene = Check{
	Name: "rand-hygiene",
	Doc: "no package-level math/rand functions outside internal/rngutil; " +
		"thread a seeded *rand.Rand (rngutil.New) instead",
	AppliesTo: func(path string) bool { return !pathIs(path, "internal/rngutil") },
	Run:       runRandHygiene,
}

func runRandHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on an explicit generator are fine
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"package-level %s.%s consumes the process-global RNG; thread a seeded *rand.Rand (rngutil.New) instead",
				path, fn.Name())
			return true
		})
	}
}
