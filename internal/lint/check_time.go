package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time package functions that read or wait on
// the wall clock. Pure types and arithmetic (time.Duration, d.Seconds)
// are fine — only clock reads make identical-seed runs diverge.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// TimeHygiene bans wall-clock reads in the determinism-critical
// packages. Algorithm 1/2's loop must be a pure function of (dataset,
// seed, budget): a time.Now that feeds branching or ordering makes
// runs irreproducible. Metrics and the HTTP server live outside the
// gated package list and may use the clock freely; the one metrics
// timestamp inside the engine carries a written suppression. Test
// files are exempt — the -count=2 suite proves their determinism
// directly.
var TimeHygiene = Check{
	Name: "time-hygiene",
	Doc: "no time.Now/time.Since (or timers) in determinism-critical packages; " +
		"wall-clock belongs in metrics and server paths",
	AppliesTo: IsDeterministicPackage,
	Run:       runTimeHygiene,
}

func runTimeHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in determinism-critical package %s; deterministic paths must not read the clock",
				fn.Name(), pass.Pkg.Path)
			return true
		})
	}
}
