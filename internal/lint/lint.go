// Package lint is a from-scratch static-analysis framework for this
// module, built on the standard library only (go/ast, go/parser,
// go/types with the source importer — no golang.org/x/tools). It
// encodes the reproducibility invariants the determinism regression
// suite checks after the fact: no global math/rand, no wall-clock in
// deterministic packages, no unsorted map iteration feeding the shared
// seeded RNG, no raw float equality, and a configured set of must-check
// error returns. cmd/hclint is the CLI; internal/lint/linttest drives
// the golden tests under testdata/src.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one analyzer: a name (used in -checks filters and
// //hclint:ignore directives), documentation, an optional package gate,
// and the Run function that reports through the pass.
type Check struct {
	Name string
	Doc  string
	// AppliesTo reports whether the check runs on the package with the
	// given import path; nil means every package. The golden-test
	// harness bypasses the gate so testdata packages exercise every
	// check regardless of their synthetic import paths.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Pass hands one package to one check and collects its reports.
type Pass struct {
	Pkg   *Package
	check string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Pkg.Fset.Position(pos).Filename
}

// IsTestFile reports whether pos is inside a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Filename(pos), "_test.go")
}

// DirectivePrefix introduces a suppression comment:
//
//	//hclint:ignore <check>[,<check>...] <reason>
//
// placed either at the end of the flagged line or on the line
// immediately above it. The reason is mandatory — a directive without
// one is itself a diagnostic, so every suppression in the tree carries
// a written justification.
const DirectivePrefix = "//hclint:ignore"

// directive is one parsed, well-formed suppression.
type directive struct {
	file   string
	line   int
	checks []string
}

// covers reports whether the directive silences check diagnostics at
// (file, line): its own line (trailing comment) or the next (comment
// above the statement).
func (d directive) covers(file string, line int, check string) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// parseDirectives scans a package's comments for suppression
// directives. Malformed directives (missing check list or reason) and
// unknown check names come back as diagnostics under the pseudo-check
// "directive"; those can never be suppressed.
func parseDirectives(pkg *Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Check:   "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "malformed %s: missing check name and reason", DirectivePrefix)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "suppression of %q has no reason; write %s %s <why this site is safe>",
						fields[0], DirectivePrefix, fields[0])
					continue
				}
				checks := strings.Split(fields[0], ",")
				bad := false
				for _, name := range checks {
					if !known[name] {
						report(c.Pos(), "unknown check %q in suppression (have %s)", name, strings.Join(sortedKeys(known), ", "))
						bad = true
					}
				}
				if bad {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, checks: checks})
			}
		}
	}
	return dirs, diags
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run lints every package with every applicable check, applying
// suppression directives, and returns the surviving diagnostics sorted
// by position. Directive syntax errors are always included.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	known := make(map[string]bool, len(checks))
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, checks, known, true)...)
	}
	sortDiagnostics(all)
	return all
}

// RunCheck runs a single check on a single package with the package
// gate bypassed — the golden-test harness's entry point. Suppression
// directives still apply, and directive syntax errors are included, so
// testdata can cover the suppression machinery itself.
func RunCheck(pkg *Package, check Check) []Diagnostic {
	known := make(map[string]bool)
	for _, c := range Checks() {
		known[c.Name] = true
	}
	diags := runPackage(pkg, []Check{check}, known, false)
	sortDiagnostics(diags)
	return diags
}

func runPackage(pkg *Package, checks []Check, known map[string]bool, gate bool) []Diagnostic {
	dirs, diags := parseDirectives(pkg, known)
	var found []Diagnostic
	for _, c := range checks {
		if gate && c.AppliesTo != nil && !c.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{Pkg: pkg, check: c.Name, diags: &found}
		c.Run(pass)
	}
	for _, d := range found {
		suppressed := false
		for _, dir := range dirs {
			if dir.covers(d.File, d.Line, d.Check) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			diags = append(diags, d)
		}
	}
	return diags
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// deterministicPackages are the packages whose code runs upstream of
// the shared seeded RNG or inside Algorithm 1/2's selection loop:
// iteration order and wall-clock there change which answers identical
// seeds produce. The map-order and time-hygiene checks gate on this
// list; metrics (obsv) and the HTTP server are deliberately absent.
var deterministicPackages = []string{
	"internal/pipeline",
	"internal/taskselect",
	"internal/crowd",
	"internal/belief",
	"internal/experiments",
	"internal/admit",
	// The consistent-hash ring: every replica must compute identical
	// routing from identical membership, so map iteration and wall-clock
	// are as banned here as in the selection loop.
	"internal/cluster",
}

// IsDeterministicPackage reports whether the import path is one of the
// determinism-critical packages.
func IsDeterministicPackage(path string) bool {
	for _, p := range deterministicPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// pathIs reports whether the import path equals suffix or ends in
// "/"+suffix — matching module-qualified paths without hardcoding the
// module name.
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// walkStmtLists visits every statement list in the file — block bodies,
// switch/select clause bodies — calling fn with each list. Checks that
// need trailing-statement context (map-order's sorted-keys idiom) hang
// off this instead of bare ast.Inspect.
func walkStmtLists(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// unlabel strips label wrappers: `loop: for ... {}` lints as the for.
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}
