package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcrowd/internal/lint"
	"hcrowd/internal/lint/linttest"
)

// TestCheckFixtures runs every registered check against its golden
// fixture under testdata/src/<name>. Each fixture seeds deliberate
// violations (matched by // want comments), false-positive guards
// (sorted-keys idiom, zero sentinels, read-path closes), and
// suppression directives — so a check that over- or under-reports, or
// reports at the wrong position, fails here.
func TestCheckFixtures(t *testing.T) {
	for _, check := range lint.Checks() {
		check := check
		t.Run(check.Name, func(t *testing.T) {
			linttest.Run(t, check)
		})
	}
}

// TestDirectiveSyntax pins the suppression machinery itself: a
// directive without a reason or with an unknown check name is reported
// and does not suppress, while a well-formed one silences its line.
func TestDirectiveSyntax(t *testing.T) {
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir("testdata/src/directive", "lintfixture/directive", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := lint.RunCheck(pkgs[0], lint.RandHygiene)

	var directive, randhygiene []lint.Diagnostic
	for _, d := range diags {
		switch d.Check {
		case "directive":
			directive = append(directive, d)
		case "rand-hygiene":
			randhygiene = append(randhygiene, d)
		default:
			t.Errorf("unexpected check %q in %s", d.Check, d)
		}
	}

	wantDirective := []string{
		`suppression of "rand-hygiene" has no reason`,
		"missing check name and reason",
		`unknown check "rand-typo"`,
	}
	if len(directive) != len(wantDirective) {
		t.Fatalf("directive diagnostics = %v, want %d of them", directive, len(wantDirective))
	}
	for i, want := range wantDirective {
		if !strings.Contains(directive[i].Message, want) {
			t.Errorf("directive diagnostic %d = %q, want substring %q", i, directive[i].Message, want)
		}
	}

	// The three malformed directives do not suppress, the valid one
	// does: 3 of the 4 rand.Int() calls survive.
	if len(randhygiene) != 3 {
		t.Errorf("rand-hygiene diagnostics = %d, want 3 (valid directive must suppress exactly one): %v",
			len(randhygiene), randhygiene)
	}
}

// TestDiagnosticPositions asserts findings land on the exact violating
// line, not the enclosing function or file.
func TestDiagnosticPositions(t *testing.T) {
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir("testdata/src/directive", "lintfixture/directive", true)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunCheck(pkgs[0], lint.RandHygiene)
	for _, d := range diags {
		if d.Check != "rand-hygiene" {
			continue
		}
		if !strings.HasSuffix(d.File, "directive.go") {
			t.Errorf("diagnostic file = %q, want directive.go", d.File)
		}
		if d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic %s has zero position", d)
		}
	}
}

func TestCheckByName(t *testing.T) {
	for _, c := range lint.Checks() {
		got, err := lint.CheckByName(c.Name)
		if err != nil || got.Name != c.Name {
			t.Errorf("CheckByName(%q) = %v, %v", c.Name, got.Name, err)
		}
	}
	if _, err := lint.CheckByName("nope"); err == nil {
		t.Error("CheckByName(nope) succeeded, want error")
	}
}

func TestIsDeterministicPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"hcrowd/internal/pipeline", true},
		{"hcrowd/internal/taskselect", true},
		{"hcrowd/internal/crowd", true},
		{"hcrowd/internal/belief", true},
		{"hcrowd/internal/experiments", true},
		{"hcrowd/internal/admit", true},
		{"hcrowd/internal/server", false},
		{"hcrowd/internal/obsv", false},
		{"hcrowd/internal/mathx", false},
		{"hcrowd", false},
	}
	for _, c := range cases {
		if got := lint.IsDeterministicPackage(c.path); got != c.want {
			t.Errorf("IsDeterministicPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestErrCheckLiteWriteCheckpointFile pins the internal/server entry of
// the must-check set, which the golden fixture cannot exercise (fixture
// import paths live under lintfixture/, so the package-suffix match
// never fires there). The call is a bare identifier — the function
// calling its own package's WriteCheckpointFile — which also covers the
// ident-callee branch of the discard scan.
func TestErrCheckLiteWriteCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	src := `package server

import "errors"

type Checkpoint struct{}

func WriteCheckpointFile(path string, ck *Checkpoint) error { return errors.New("x") }

func drain(ck *Checkpoint) {
	WriteCheckpointFile("a", ck)
	_ = WriteCheckpointFile("b", ck)
	defer WriteCheckpointFile("c", ck)
}

func drainChecked(ck *Checkpoint) error {
	return WriteCheckpointFile("d", ck)
}
`
	if err := os.WriteFile(filepath.Join(dir, "server.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir(dir, "x/internal/server", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := lint.RunCheck(pkgs[0], lint.ErrCheckLite)
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want 3", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "WriteCheckpointFile error discarded") {
			t.Errorf("diagnostic %q missing WriteCheckpointFile label", d.Message)
		}
	}
}

// TestErrCheckLiteJournalWriter pins the internal/journal entries of the
// must-check set: a discarded Writer.Append, Sync or Close breaks the
// write-ahead log's durability promise silently, and a discarded
// SyncDir re-opens the rename-durability window on every atomic
// temp+rename persistence path. Like the
// WriteCheckpointFile test, the package is synthesized under a path
// whose suffix matches the configured rule.
func TestErrCheckLiteJournalWriter(t *testing.T) {
	dir := t.TempDir()
	src := `package journal

import "errors"

type Record struct {
	Type    byte
	Payload []byte
}

type Writer struct{}

func (w *Writer) Append(r Record) error { return errors.New("x") }
func (w *Writer) Sync() error           { return errors.New("x") }
func (w *Writer) Close() error          { return errors.New("x") }

func SyncDir(path string) error { return errors.New("x") }

func sloppy(w *Writer) {
	w.Append(Record{})
	_ = w.Sync()
	defer w.Close()
	SyncDir("d")
}

func careful(w *Writer) error {
	if err := w.Append(Record{}); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return SyncDir("d")
}
`
	if err := os.WriteFile(filepath.Join(dir, "journal.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir(dir, "x/internal/journal", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := lint.RunCheck(pkgs[0], lint.ErrCheckLite)
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %v, want 4", diags)
	}
	for i, want := range []string{"Writer.Append", "Writer.Sync", "Writer.Close", "SyncDir"} {
		if !strings.Contains(diags[i].Message, want+" error discarded") {
			t.Errorf("diagnostic %d = %q, want %s label", i, diags[i].Message, want)
		}
	}
}
