// Package linttest is the golden-test harness for internal/lint's
// checks. A check's fixture is a mini-package under
// internal/lint/testdata/src/<check-name>/ whose violating lines carry
//
//	// want "regexp" ["regexp" ...]
//
// comments. The harness type-checks the fixture, runs the single check
// with the package gate bypassed (fixture import paths are synthetic)
// but suppression directives honored, and then requires an exact match:
// every diagnostic must satisfy a want on its line, and every want must
// be satisfied — so both false negatives and false positives fail.
//
// The core, Verify, has no testing.T dependency so `hclint -fixtures`
// can run the same comparison as a self-test from the command line.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hcrowd/internal/lint"
)

// wantRe matches one quoted regexp inside a want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Verify runs the check against the fixture tree rooted at dir and
// returns one human-readable line per mismatch: an unexpected
// diagnostic (no want on its line matches) or a missing one (a want
// nothing satisfied). An empty slice means the fixture is golden. The
// error covers harness failures — an unloadable fixture or a malformed
// want comment — not check findings.
func Verify(check lint.Check, dir string) ([]string, error) {
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir(dir, "lintfixture/"+check.Name, true)
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %w", dir, err)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("fixture %s has no packages", dir)
	}
	var mismatches []string
	for _, pkg := range pkgs {
		diags := lint.RunCheck(pkg, check)
		wants, err := collectWants(pkg)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			key := fmt.Sprintf("%s:%d", d.File, d.Line)
			exps := wants[key]
			ok := false
			for _, e := range exps {
				if !e.matched && e.re.MatchString(d.Message) {
					e.matched = true
					ok = true
					break
				}
			}
			if !ok {
				mismatches = append(mismatches,
					fmt.Sprintf("unexpected diagnostic at %s: [%s] %s", key, d.Check, d.Message))
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					mismatches = append(mismatches,
						fmt.Sprintf("missing diagnostic at %s: want match for %q", key, e.re))
				}
			}
		}
	}
	return mismatches, nil
}

// Run executes the check against testdata/src/<check.Name> (relative
// to the calling test's directory) and compares diagnostics against
// the fixture's want comments. Directive syntax errors surface as
// diagnostics of the pseudo-check "directive", so fixtures can pin the
// suppression machinery too.
func Run(t *testing.T, check lint.Check) {
	t.Helper()
	dir := filepath.Join("testdata", "src", check.Name)
	mismatches, err := Verify(check, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

// collectWants scans the fixture's comments for want expectations,
// keyed by file:line.
func collectWants(pkg *lint.Package) (map[string][]*expectation, error) {
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var body string
				if rest, ok := strings.CutPrefix(c.Text, "// want "); ok {
					body = rest
				} else if rest, ok := strings.CutPrefix(c.Text, "//want "); ok {
					body = rest
				} else {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(body, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants, nil
}
