// Package linttest is the golden-test harness for internal/lint's
// checks. A check's fixture is a mini-package under
// internal/lint/testdata/src/<check-name>/ whose violating lines carry
//
//	// want "regexp" ["regexp" ...]
//
// comments. The harness type-checks the fixture, runs the single check
// with the package gate bypassed (fixture import paths are synthetic)
// but suppression directives honored, and then requires an exact match:
// every diagnostic must satisfy a want on its line, and every want must
// be satisfied — so both false negatives and false positives fail.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hcrowd/internal/lint"
)

// wantRe matches one quoted regexp inside a want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run executes the check against testdata/src/<check.Name> (relative
// to the calling test's directory) and compares diagnostics against
// the fixture's want comments. Directive syntax errors surface as
// diagnostics of the pseudo-check "directive", so fixtures can pin the
// suppression machinery too.
func Run(t *testing.T, check lint.Check) {
	t.Helper()
	dir := filepath.Join("testdata", "src", check.Name)
	loader := lint.NewLoader()
	pkgs, err := loader.LoadDir(dir, "lintfixture/"+check.Name, true)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s has no packages", dir)
	}
	for _, pkg := range pkgs {
		diags := lint.RunCheck(pkg, check)
		wants := collectWants(t, pkg)
		for _, d := range diags {
			key := fmt.Sprintf("%s:%d", d.File, d.Line)
			exps := wants[key]
			ok := false
			for _, e := range exps {
				if !e.matched && e.re.MatchString(d.Message) {
					e.matched = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Check, d.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("missing diagnostic at %s: want match for %q", key, e.re)
				}
			}
		}
	}
}

// collectWants scans the fixture's comments for want expectations,
// keyed by file:line.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var body string
				if rest, ok := strings.CutPrefix(c.Text, "// want "); ok {
					body = rest
				} else if rest, ok := strings.CutPrefix(c.Text, "//want "); ok {
					body = rest
				} else {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(body, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}
