package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit: a package's buildable files plus
// its in-package tests, or the external _test package of a directory.
type Package struct {
	// Path is the import path of the package under test — the external
	// test variant keeps the base path and sets XTest, so package gates
	// apply to both.
	Path  string
	Dir   string
	XTest bool
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. One loader
// shares a FileSet and a source importer across every package it
// loads, so the stdlib closure is type-checked once per process.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
	ctxt build.Context
}

// NewLoader builds a loader. Cgo is disabled in its build context so
// packages like net type-check from their pure-Go fallback files — the
// source importer cannot run cgo, and no determinism invariant lives
// in cgo-generated code.
func NewLoader() *Loader {
	// The source importer consults the global build context, so the
	// cgo gate must be set process-wide, not just on l.ctxt.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		ctxt: ctxt,
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModuleRoot walks up from dir to the enclosing go.mod and returns
// its directory and the module path it declares.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// LoadDir type-checks the package in a single directory under the
// given import path. It returns one Package for the buildable files
// plus in-package tests and, when present, a second for the external
// _test package. strict propagates type errors for the first group;
// the external test group is always lenient — it may reference helpers
// declared in the base package's test files, which the source importer
// does not see.
func (l *Loader) LoadDir(dir, importPath string, strict bool) ([]*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var pkgs []*Package
	base, err := l.check(dir, importPath, append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...), strict, false)
	if err != nil {
		return nil, err
	}
	if base != nil {
		pkgs = append(pkgs, base)
	}
	if len(bp.XTestGoFiles) > 0 {
		xt, err := l.check(dir, importPath, bp.XTestGoFiles, false, true)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// check parses and type-checks one file group.
func (l *Loader) check(dir, importPath string, names []string, strict, xtest bool) (*Package, error) {
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	checkPath := importPath
	if xtest {
		checkPath = importPath + "_test"
	}
	tpkg, _ := conf.Check(checkPath, l.fset, files, info)
	if strict && firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, firstErr)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		XTest: xtest,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadModule walks the module rooted at root (a directory at or below
// the go.mod) and loads every package, skipping testdata, vendor, and
// hidden directories. Type errors in non-test files are fatal — the
// linter refuses to reason about a tree that does not compile.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modRoot, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(modRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := l.LoadDir(dir, importPath, true)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}
