package lint

import "fmt"

// Checks returns every registered check, in stable order.
func Checks() []Check {
	return []Check{
		AckDiscipline,
		AtomicMix,
		ErrCheckLite,
		FloatEq,
		GoroutineHygiene,
		LockDiscipline,
		MapOrder,
		MutexCopy,
		RandHygiene,
		TimeHygiene,
	}
}

// CheckByName resolves a -checks filter entry.
func CheckByName(name string) (Check, error) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, nil
		}
	}
	return Check{}, fmt.Errorf("lint: unknown check %q", name)
}
