// Function-summary layer: the shared infrastructure under the
// concurrency checks (lock-discipline, ack-discipline,
// goroutine-hygiene). It stays deliberately lightweight — go/ast +
// go/types only, no SSA: per-package indexes from *types.Func to
// declaration, //hclint:guardedby annotation collection, a
// flow-sensitive lock simulator with branch merging, and linear
// append/sync summaries with one-level call propagation.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------
// //hclint:guardedby annotations
// ---------------------------------------------------------------------

// GuardedByPrefix introduces a lock annotation on a struct field:
//
//	mu      sync.Mutex
//	count   int //hclint:guardedby mu
//
// The single argument names a sibling field of type sync.Mutex or
// sync.RWMutex. lock-discipline then requires that lock held (by a
// flow-sensitive simulation of Lock/RLock/Unlock/defer Unlock) at
// every read or write of the annotated field.
const GuardedByPrefix = "//hclint:guardedby"

// guardSet is the package's annotation index.
type guardSet struct {
	// fields maps each annotated field object to the name of its
	// guarding sibling mutex field.
	fields map[*types.Var]string
	// byType maps a named struct type to the set of mutex field names
	// that guard at least one of its fields. Used for the *Locked
	// helper-call rule and for seeding the held-set of *Locked methods.
	byType map[*types.Named]map[string]bool
}

func (gs *guardSet) guardsOf(t types.Type) map[string]bool {
	n := namedOf(t)
	if n == nil {
		return nil
	}
	return gs.byType[n]
}

// collectGuards scans the package's struct declarations for guardedby
// annotations, validating each against its siblings. Malformed
// annotations are reported through the pass (they can never silently
// disable a check).
func collectGuards(pass *Pass) *guardSet {
	gs := &guardSet{
		fields: make(map[*types.Var]string),
		byType: make(map[*types.Named]map[string]bool),
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Index the sibling fields by name so the mutex argument
			// can be validated.
			siblings := make(map[string]types.Type)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						siblings[name.Name] = obj.Type()
					}
				}
			}
			var named *types.Named
			if def := info.Defs[ts.Name]; def != nil {
				named = namedOf(def.Type())
			}
			for _, field := range st.Fields.List {
				mu, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				// Malformed annotations are reported at the field so
				// the diagnostic lands on the declaration whether the
				// annotation is a doc or a trailing comment.
				if mu == "" {
					pass.Reportf(field.Pos(), "%s needs exactly one argument: the sibling mutex field name", GuardedByPrefix)
					continue
				}
				mt, declared := siblings[mu]
				if !declared {
					pass.Reportf(field.Pos(), "%s names %q, which is not a field of this struct", GuardedByPrefix, mu)
					continue
				}
				if !isSyncLockType(mt) {
					pass.Reportf(field.Pos(), "%s names %q, which is not a sync.Mutex or sync.RWMutex", GuardedByPrefix, mu)
					continue
				}
				for _, name := range field.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					gs.fields[v] = mu
					if named != nil {
						set := gs.byType[named]
						if set == nil {
							set = make(map[string]bool)
							gs.byType[named] = set
						}
						set[mu] = true
					}
				}
			}
			return true
		})
	}
	return gs
}

// guardAnnotation extracts the guardedby argument from a field's doc or
// trailing comment. ok reports whether an annotation is present at all;
// mu is empty when the annotation is malformed (no or too many args).
func guardAnnotation(field *ast.Field) (mu string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, GuardedByPrefix)
			if !found {
				continue
			}
			args := strings.Fields(rest)
			if len(args) != 1 {
				return "", true
			}
			return args[0], true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------
// type helpers
// ---------------------------------------------------------------------

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (after deref) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isSyncLockType reports whether t is sync.Mutex or sync.RWMutex
// (value or pointer).
func isSyncLockType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// ---------------------------------------------------------------------
// function index & call resolution
// ---------------------------------------------------------------------

// funcIndex maps a package's function and method objects to their
// declarations, enabling one-level call propagation: a call site
// resolves to its callee's summary without any global call graph.
type funcIndex struct {
	decls map[*types.Func]*ast.FuncDecl
}

func indexFuncs(pkg *Package) *funcIndex {
	idx := &funcIndex{decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				idx.decls[fn] = fd
			}
		}
	}
	return idx
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and indirect calls through
// function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// constIntArg returns the constant integer value of a call argument,
// if it has one.
func constIntArg(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// constBoolArg classifies a bool argument as literal true, literal
// false, or dynamic.
func constBoolArg(info *types.Info, e ast.Expr) (val, isConst bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// constNameOf returns the name of the declared constant an expression
// refers to ("recAnswer"), or "" for anything else. Record classes are
// matched by constant name, not value, so fixtures and the real journal
// package share one rule table.
func constNameOf(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := info.Uses[e].(*types.Const); ok {
			return c.Name()
		}
	case *ast.SelectorExpr:
		if c, ok := info.Uses[e.Sel].(*types.Const); ok {
			return c.Name()
		}
	}
	return ""
}

// paramIndexOf returns the position of ident within the function's
// (non-receiver) parameters, or -1.
func paramIndexOf(info *types.Info, fd *ast.FuncDecl, id *ast.Ident) int {
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// ---------------------------------------------------------------------
// lock-flow simulation
// ---------------------------------------------------------------------

// lockKind is how a lock is held at a program point.
type lockKind uint8

const (
	lockNone  lockKind = iota
	lockRead           // via RLock
	lockWrite          // via Lock
)

// lockState maps a rendered lock expression ("s.mu", "ms.s.mu") to how
// it is held. States are merged at control-flow joins by intersection:
// a lock is held after an if/else only if every normally-completing
// branch holds it.
type lockState map[string]lockKind

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeInto replaces st's contents with the intersection of the given
// states (weakest hold wins: write ∩ read = read).
func (st lockState) mergeInto(states []lockState) {
	for k := range st {
		delete(st, k)
	}
	if len(states) == 0 {
		return
	}
	for k, v := range states[0] {
		min := v
		ok := true
		for _, other := range states[1:] {
			ov, held := other[k]
			if !held {
				ok = false
				break
			}
			if ov < min {
				min = ov
			}
		}
		if ok {
			st[k] = min
		}
	}
}

// lockOpKind classifies a mutex method call.
type lockOpKind uint8

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOp recognizes calls to sync.Mutex/sync.RWMutex lock methods and
// returns the operation plus the rendered receiver expression
// ("s.mu"). Anything else is opNone.
func lockOp(info *types.Info, call *ast.CallExpr) (lockOpKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncLockType(sig.Recv().Type()) {
		return opNone, ""
	}
	var op lockOpKind
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, ""
	}
	return op, types.ExprString(sel.X)
}

// lockSim walks one function body tracking which rendered lock
// expressions are held at each statement, with branch-sensitive
// merging, early-return awareness, and `defer mu.Unlock()` treated as
// held-through-exit. It calls onAccess for every guarded-field read or
// write and onCall for every call expression (with the state at the
// call), and collects nested function literals for the caller to
// simulate as independent scopes.
type lockSim struct {
	info *types.Info
	// fresh holds locals assigned from composite literals in this
	// scope: a value not yet shared with any other goroutine needs no
	// lock.
	fresh map[types.Object]bool
	// lits are nested function literals encountered during the walk,
	// to be analyzed as separate scopes with an empty held-set.
	lits []*ast.FuncLit

	onAccess func(sel *ast.SelectorExpr, write bool, st lockState)
	onCall   func(call *ast.CallExpr, st lockState)
}

// run simulates the statement list from the given entry state.
func (sim *lockSim) run(list []ast.Stmt, st lockState) {
	sim.stmts(list, st)
}

// stmts simulates a statement list in order, mutating st. It reports
// whether control definitely does not flow past the end of the list
// (return / panic-free approximation: return and branch statements
// terminate).
func (sim *lockSim) stmts(list []ast.Stmt, st lockState) bool {
	for _, s := range list {
		if sim.stmt(s, st) {
			return true
		}
	}
	return false
}

func (sim *lockSim) stmt(s ast.Stmt, st lockState) bool {
	switch s := unlabel(s).(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		sim.scan(s.X, st)
	case *ast.SendStmt:
		sim.scan(s.Chan, st)
		sim.scan(s.Value, st)
	case *ast.IncDecStmt:
		sim.assignTarget(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			sim.scan(rhs, st)
		}
		if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isFreshValue(s.Rhs[i]) {
					if obj := sim.info.Defs[id]; obj != nil {
						sim.fresh[obj] = true
					}
				}
			}
		}
		for _, lhs := range s.Lhs {
			sim.assignTarget(lhs, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					sim.scan(v, st)
					if i < len(vs.Names) && isFreshValue(v) {
						if obj := sim.info.Defs[vs.Names[i]]; obj != nil {
							sim.fresh[obj] = true
						}
					}
				}
			}
		}
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held through every exit
		// of the enclosing scope, so it does not change the forward
		// state. Other deferred calls are scanned for accesses in
		// their arguments (evaluated now); the deferred body's own
		// effects are out of the linear model.
		if op, _ := lockOp(sim.info, s.Call); op == opNone {
			sim.scan(s.Call, st)
		}
	case *ast.GoStmt:
		sim.scan(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sim.scan(r, st)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing list; for merge
		// purposes the branch does not fall through.
		return true
	case *ast.BlockStmt:
		return sim.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			sim.stmt(s.Init, st)
		}
		sim.scan(s.Cond, st)
		var normals []lockState
		thenSt := st.clone()
		if !sim.stmts(s.Body.List, thenSt) {
			normals = append(normals, thenSt)
		}
		switch e := s.Else.(type) {
		case nil:
			normals = append(normals, st.clone())
		default:
			elseSt := st.clone()
			if !sim.stmt(e, elseSt) {
				normals = append(normals, elseSt)
			}
		}
		if len(normals) == 0 {
			return true
		}
		st.mergeInto(normals)
	case *ast.ForStmt:
		if s.Init != nil {
			sim.stmt(s.Init, st)
		}
		sim.scan(s.Cond, st)
		// The body is simulated once from the loop-entry state; the
		// state after the loop is the entry state (zero iterations are
		// possible, and a `for {}` that re-establishes its entry
		// invariant at the bottom matches this too).
		body := st.clone()
		sim.stmts(s.Body.List, body)
		if s.Post != nil {
			sim.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		sim.scan(s.X, st)
		if s.Key != nil {
			sim.assignTarget(s.Key, st)
		}
		if s.Value != nil {
			sim.assignTarget(s.Value, st)
		}
		body := st.clone()
		sim.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sim.stmt(s.Init, st)
		}
		sim.scan(s.Tag, st)
		return sim.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sim.stmt(s.Init, st)
		}
		sim.stmt(s.Assign, st)
		return sim.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return sim.clauses(s.Body, st, false)
	}
	return false
}

// clauses simulates switch/select clause bodies as parallel branches.
// needDefault is true for switches, where a missing default means the
// entry state can flow through untouched.
func (sim *lockSim) clauses(body *ast.BlockStmt, st lockState, needDefault bool) bool {
	if len(body.List) == 0 {
		return false
	}
	var normals []lockState
	hasDefault := false
	for _, clause := range body.List {
		cl := st.clone()
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				sim.scan(e, cl)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				sim.stmt(c.Comm, cl)
			}
			stmts = c.Body
		}
		if !sim.stmts(stmts, cl) {
			normals = append(normals, cl)
		}
	}
	if needDefault && !hasDefault {
		normals = append(normals, st.clone())
	}
	if len(normals) == 0 {
		return true
	}
	st.mergeInto(normals)
	return false
}

// assignTarget handles the left side of an assignment: a selector
// target is a write access; everything inside it is reads.
func (sim *lockSim) assignTarget(e ast.Expr, st lockState) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sim.onAccess != nil {
			sim.onAccess(e, true, st)
		}
		sim.scan(e.X, st)
	case *ast.IndexExpr:
		// m[k] = v mutates the container, not the field header; the
		// container read below is what needs the lock.
		sim.scan(e.X, st)
		sim.scan(e.Index, st)
	case *ast.StarExpr:
		sim.scan(e.X, st)
	default:
		sim.scan(e, st)
	}
}

// scan walks an expression in read context, applying lock operations,
// invoking the callbacks, and collecting nested function literals.
func (sim *lockSim) scan(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sim.lits = append(sim.lits, n)
			return false
		case *ast.CallExpr:
			if op, target := lockOp(sim.info, n); op != opNone {
				switch op {
				case opLock:
					st[target] = lockWrite
				case opRLock:
					st[target] = lockRead
				case opUnlock, opRUnlock:
					delete(st, target)
				}
				return false
			}
			if sim.onCall != nil {
				sim.onCall(n, st)
			}
			return true
		case *ast.SelectorExpr:
			if sim.onAccess != nil {
				sim.onAccess(n, false, st)
			}
			return true
		}
		return true
	})
}

// isFreshValue reports whether an initializer produces a value that
// cannot yet be shared: a composite literal, its address, or a new().
func isFreshValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
