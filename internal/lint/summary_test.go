package lint

// White-box tests for the function-summary layer behind lock-discipline
// and ack-discipline: the guardedby annotation index, the lock-flow
// simulation (defer, early return, branch merge), and one-level
// summary propagation through helpers. The golden fixtures cover the
// same machinery end to end; these pin the layer's contracts directly
// on small synthesized packages so a regression points at the layer,
// not at a fixture diff.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc type-checks a single synthesized file as its own package.
func loadSrc(t *testing.T, importPath, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().LoadDir(dir, importPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// messages flattens diagnostics for contains-style assertions.
func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func assertDiags(t *testing.T, diags []Diagnostic, wants ...string) {
	t.Helper()
	if len(diags) != len(wants) {
		t.Fatalf("diagnostics = %v, want %d of them", messages(diags), len(wants))
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

// TestCollectGuards pins the annotation index: annotated fields map to
// their guard by name, unannotated siblings stay out, and byType
// aggregates the guard names per struct.
func TestCollectGuards(t *testing.T) {
	pkg := loadSrc(t, "x/guards", `package guards

import "sync"

type S struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	a    int //hclint:guardedby mu
	b    int //hclint:guardedby rw
	free int
}
`)
	var diags []Diagnostic
	pass := &Pass{Pkg: pkg, check: "lock-discipline", diags: &diags}
	gs := collectGuards(pass)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", messages(diags))
	}
	byGuard := make(map[string]int)
	for _, mu := range gs.fields {
		byGuard[mu]++
	}
	if byGuard["mu"] != 1 || byGuard["rw"] != 1 || len(gs.fields) != 2 {
		t.Errorf("fields index = %v, want one field per guard and no entry for free", byGuard)
	}
	found := false
	for named, guards := range gs.byType {
		if named.Obj().Name() != "S" {
			continue
		}
		found = true
		if !guards["mu"] || !guards["rw"] || len(guards) != 2 {
			t.Errorf("guardsOf(S) = %v, want {mu, rw}", guards)
		}
	}
	if !found {
		t.Error("byType has no entry for S")
	}
}

// TestCollectGuardsMalformed pins validation: a guard that is not a
// sibling, not a mutex, or an annotation with the wrong arity is
// reported rather than silently dropped.
func TestCollectGuardsMalformed(t *testing.T) {
	pkg := loadSrc(t, "x/guardsbad", `package guardsbad

import "sync"

type S struct {
	mu sync.Mutex
	n  int
	//hclint:guardedby nosuch
	a int
	//hclint:guardedby n
	b int
	//hclint:guardedby mu extra
	c int
}
`)
	var diags []Diagnostic
	pass := &Pass{Pkg: pkg, check: "lock-discipline", diags: &diags}
	collectGuards(pass)
	assertDiags(t, diags,
		"not a field of this struct",
		"not a sync.Mutex or sync.RWMutex",
		"needs exactly one argument",
	)
}

const lockFlowPrelude = `package flow

import "sync"

type S struct {
	mu sync.Mutex
	n  int //hclint:guardedby mu
}
`

// TestLockFlowDefer: a deferred Unlock keeps the lock held through
// every exit, including an early return.
func TestLockFlowDefer(t *testing.T) {
	pkg := loadSrc(t, "x/flow", lockFlowPrelude+`
func (s *S) deferred(early bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if early {
		return s.n
	}
	s.n++
	return s.n
}
`)
	assertDiags(t, RunCheck(pkg, LockDiscipline))
}

// TestLockFlowEarlyRelease: after an explicit Unlock the guard is gone,
// so the access on the way out is flagged.
func TestLockFlowEarlyRelease(t *testing.T) {
	pkg := loadSrc(t, "x/flow", lockFlowPrelude+`
func (s *S) released() int {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.n
}
`)
	assertDiags(t, RunCheck(pkg, LockDiscipline), "read of s.n without holding s.mu")
}

// TestLockFlowBranchMerge: states merge by intersection, so a lock
// taken on only one branch does not survive the join — but a branch
// that returns while holding is excluded from the merge.
func TestLockFlowBranchMerge(t *testing.T) {
	pkg := loadSrc(t, "x/flow", lockFlowPrelude+`
func (s *S) oneArm(b bool) int {
	if b {
		s.mu.Lock()
	}
	n := s.n
	if b {
		s.mu.Unlock()
	}
	return n
}

func (s *S) terminatingArm(b bool) int {
	s.mu.Lock()
	if b {
		n := s.n
		s.mu.Unlock()
		return n
	}
	defer s.mu.Unlock()
	return s.n
}
`)
	assertDiags(t, RunCheck(pkg, LockDiscipline), "read of s.n without holding s.mu")
}

// TestLockFlowHelperPropagation: a *Locked method's body is checked
// with the receiver's guards seeded as held, and calling it without
// the lock is itself a violation — the one-level summary propagation.
func TestLockFlowHelperPropagation(t *testing.T) {
	pkg := loadSrc(t, "x/flow", lockFlowPrelude+`
func (s *S) bumpLocked() { s.n++ }

func (s *S) good() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

func (s *S) bad() {
	s.bumpLocked()
}
`)
	assertDiags(t, RunCheck(pkg, LockDiscipline),
		"call to s.bumpLocked without holding s.mu")
}

// TestAckGatePropagation pins the ack-summary layer's per-call-site
// resolution: a bool parameter gating Writer.Sync is inherited one
// level through a forwarding helper, so a literal false at the outer
// call surfaces at that call while a literal true stays clean.
func TestAckGatePropagation(t *testing.T) {
	pkg := loadSrc(t, "x/internal/server", `package server

type Record struct{ Type byte }

type Writer struct{}

func (w *Writer) Append(r Record) error { return nil }
func (w *Writer) Sync() error           { return nil }

const recAnswer byte = 3

type journal struct{ w *Writer }

func (j *journal) appendLocked(typ byte, commit bool) error {
	if err := j.w.Append(Record{Type: typ}); err != nil {
		return err
	}
	if commit {
		return j.w.Sync()
	}
	return nil
}

func (j *journal) forward(commit bool) error {
	return j.appendLocked(recAnswer, commit)
}

func (j *journal) durable() error { return j.forward(true) }

func (j *journal) dropped() error { return j.forward(false) }
`)
	assertDiags(t, RunCheck(pkg, AckDiscipline),
		"recAnswer is appended with no Sync before return")
}
