// Fixture for ack-discipline: synced-class journal records
// (recCreated/recAnswer/recRoundSeal/recTaskAdmit, matched by constant
// name) must reach a Writer.Sync before the function returns or a
// success HTTP response is written. The mini journal mirrors the real
// one's shape: a param-gated appendLocked(typ, payload, commit) helper
// under typed wrappers, resolved per call site through the
// function-summary layer.
package ackdiscipline

import "net/http"

type Record struct {
	Type    byte
	Payload []byte
}

type Writer struct{}

func (w *Writer) Append(r Record) error { return nil }
func (w *Writer) Sync() error           { return nil }

const (
	recCreated   byte = 1
	recRoundOpen byte = 2
	recAnswer    byte = 3
	recRoundSeal byte = 4
	recTaskAdmit byte = 6
)

type journal struct {
	w *Writer
}

// appendLocked is the param-gated helper: the summary layer learns
// that parameter 0 carries the record type and parameter 2 gates the
// Sync.
func (j *journal) appendLocked(typ byte, payload []byte, commit bool) error {
	if err := j.w.Append(Record{Type: typ, Payload: payload}); err != nil {
		return err
	}
	if commit {
		return j.w.Sync()
	}
	return nil
}

// literal true commits are durable.
func (j *journal) answerAccepted(p []byte) error {
	return j.appendLocked(recAnswer, p, true)
}

// a literal false commit of a synced class is the bug the check
// exists for.
func (j *journal) answerDropped(p []byte) error {
	return j.appendLocked(recAnswer, p, false) // want "recAnswer is appended with no Sync before return"
}

// recRoundOpen is not a synced class: lazy flushing is by design.
func (j *journal) roundOpened(p []byte) error {
	return j.appendLocked(recRoundOpen, p, false)
}

// forwarding the commit gate one level (the real taskAdmitted) keeps
// the gating: callers decide per fragment.
func (j *journal) taskAdmitted(p []byte, commit bool) error {
	return j.appendLocked(recTaskAdmit, p, commit)
}

func (j *journal) admitFinal(p []byte) error {
	return j.taskAdmitted(p, true)
}

func (j *journal) admitDropped(p []byte) error {
	return j.taskAdmitted(p, false) // want "recTaskAdmit is appended with no Sync before return"
}

// a dynamic commit is the batch idiom — the final fragment commits —
// and is trusted on the linear trace.
func (j *journal) admitBatch(ps [][]byte) error {
	for i, p := range ps {
		last := i == len(ps)-1
		if err := j.taskAdmitted(p, last); err != nil {
			return err
		}
	}
	return nil
}

// a raw Append of a synced class with no Sync anywhere.
func (j *journal) rawSealDropped(p []byte) error {
	return j.w.Append(Record{Type: recRoundSeal, Payload: p}) // want "recRoundSeal is appended with no Sync before return"
}

// ...and the fixed version: append, then sync.
func (j *journal) rawSealSynced(p []byte) error {
	if err := j.w.Append(Record{Type: recRoundSeal, Payload: p}); err != nil {
		return err
	}
	return j.w.Sync()
}

type session struct {
	j *journal
}

func (s *session) accept(p []byte) error { return s.j.answerAccepted(p) }

// leaves recAnswer undurable; reported once, at the append site inside
// answerDropped, not again here.
func (s *session) acceptStale(p []byte) error { return s.j.answerDropped(p) }

type router struct{}

func (rt *router) writeJSON(w http.ResponseWriter, code int, v any) {}

// synced append, then ack: clean.
func handleAnswer(rt *router, s *session, w http.ResponseWriter, p []byte) {
	if err := s.accept(p); err != nil {
		return
	}
	rt.writeJSON(w, http.StatusAccepted, nil)
}

// the ack rule: a 2xx response while a synced-class append from a
// spliced callee is still undurable.
func handleStale(rt *router, s *session, w http.ResponseWriter, p []byte) {
	if err := s.acceptStale(p); err != nil {
		return
	}
	rt.writeJSON(w, http.StatusOK, nil) // want "success response \\(200\\) acknowledges journal record\\(s\\) recAnswer"
}

// WriteHeader acks count too.
func handleStaleHeader(rt *router, s *session, w http.ResponseWriter, p []byte) {
	if err := s.acceptStale(p); err != nil {
		return
	}
	w.WriteHeader(http.StatusAccepted) // want "success response \\(202\\) acknowledges journal record\\(s\\) recAnswer"
}

// non-2xx responses are not acks.
func handleError(rt *router, s *session, w http.ResponseWriter, p []byte) {
	_ = s.acceptStale(p)
	rt.writeJSON(w, http.StatusInternalServerError, nil)
}

// a Sync between the stale append and the ack repairs the trace.
func handleRepaired(rt *router, s *session, w http.ResponseWriter, p []byte) {
	if err := s.acceptStale(p); err != nil {
		return
	}
	if err := s.j.w.Sync(); err != nil {
		return
	}
	rt.writeJSON(w, http.StatusOK, nil)
}

// handler closures are independent trace units.
func register(rt *router, s *session, mux *http.ServeMux) {
	mux.HandleFunc("/stale", func(w http.ResponseWriter, r *http.Request) {
		if err := s.acceptStale(nil); err != nil {
			return
		}
		rt.writeJSON(w, http.StatusOK, nil) // want "success response \\(200\\) acknowledges journal record\\(s\\) recAnswer"
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		if err := s.accept(nil); err != nil {
			return
		}
		rt.writeJSON(w, http.StatusOK, nil)
	})
}

// a reasoned suppression is the escape hatch for intentional patterns.
func handleSuppressed(rt *router, s *session, w http.ResponseWriter, p []byte) {
	_ = s.acceptStale(p)
	//hclint:ignore ack-discipline fixture: response is advisory, replay rebuilds the record
	rt.writeJSON(w, http.StatusOK, nil)
}
