// Fixture for atomic-mix: a field or package-level variable whose
// address reaches a sync/atomic function must never be loaded or
// stored plainly — even atomic-writes-plus-plain-reads race.
package atomicmix

import "sync/atomic"

type stats struct {
	evals int64
	calls int64
	plain int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.evals, 1)
	atomic.AddInt64(&s.calls, 1)
}

// atomic access everywhere is fine.
func (s *stats) snapshot() int64 {
	return atomic.LoadInt64(&s.evals)
}

// a plain read of an atomically-updated field races.
func (s *stats) mixedRead() int64 {
	return s.evals // want "evals is accessed with sync/atomic"
}

// ...and so does a plain store.
func (s *stats) mixedWrite() {
	s.calls = 0 // want "calls is accessed with sync/atomic"
}

// fields never touched by sync/atomic are unrestricted.
func (s *stats) untouched() int64 {
	s.plain++
	return s.plain
}

// package-level variables participate too.
var hits int64

func record() {
	atomic.AddInt64(&hits, 1)
}

func report() int64 {
	return hits // want "hits is accessed with sync/atomic"
}

// typed atomics are immune by construction: no plain access compiles.
type typedStats struct {
	evals atomic.Int64
}

func (t *typedStats) bump() int64 {
	t.evals.Add(1)
	return t.evals.Load()
}

// suppression with a reason.
func (s *stats) suppressedInit() {
	//hclint:ignore atomic-mix fixture: constructor runs before any goroutine exists
	s.evals = 0
}
