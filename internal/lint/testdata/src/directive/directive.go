// Package directive is the fixture for suppression-directive syntax
// errors; lint_test.go asserts on its diagnostics programmatically
// (the malformed directives are themselves comments, so they cannot
// carry same-line want comments).
package directive

import "math/rand"

func missingReason() int {
	//hclint:ignore rand-hygiene
	return rand.Int()
}

func missingEverything() int {
	//hclint:ignore
	return rand.Int()
}

func unknownCheck() int {
	//hclint:ignore rand-typo this check name does not exist
	return rand.Int()
}

func valid() int {
	//hclint:ignore rand-hygiene valid directive: check name plus a reason
	return rand.Int()
}
