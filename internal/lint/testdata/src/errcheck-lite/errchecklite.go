// Package errchecklite is the errcheck-lite fixture: the configured
// must-check calls may not discard their error.
package errchecklite

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
)

// encode discards json.Encoder.Encode's error three ways.
func encode(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v)                      // want "Encoder.Encode error discarded"
	_ = enc.Encode(v)                  // want "Encoder.Encode error discarded"
	json.NewEncoder(w).Encode(v)       // want "Encoder.Encode error discarded"
	defer json.NewEncoder(w).Encode(v) // want "Encoder.Encode error discarded"
}

// encodeChecked handles the error: no diagnostic.
func encodeChecked(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// writePathClose: files opened for writing must have Close checked.
func writePathClose() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	f.Close() // want "File.Close error discarded"

	g, err := os.OpenFile("y", os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer g.Close() // want "File.Close error discarded"

	tmp, err := os.CreateTemp("", "z")
	if err != nil {
		return
	}
	_ = tmp.Close() // want "File.Close error discarded"
}

// readPathClose: discarding Close on a read-only file is idiomatic and
// exempt — the write-path restriction is the point of the config.
func readPathClose() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	defer f.Close()
}

// unknownProvenance: a file the function did not open is not traced;
// the check prefers silence to noise.
func unknownProvenance(f *os.File) {
	defer f.Close()
}

// closureProvenance: the write-open is found through enclosing
// function bodies, so a deferred closure is still flagged.
func closureProvenance() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	defer func() {
		f.Close() // want "File.Close error discarded"
	}()
}

// syncAlways: Sync is a flush to disk; always must-check.
func syncAlways(f *os.File) {
	f.Sync() // want "File.Sync error discarded"
}

// flushAlways: a dropped bufio flush silently truncates output.
func flushAlways(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.Flush() // want "Writer.Flush error discarded"
}

// serverShutdown: a dropped Shutdown or Close error hides a drain that
// never completed — both are must-check regardless of receiver
// provenance.
func serverShutdown(ctx context.Context, srv *http.Server) {
	srv.Shutdown(ctx)     // want "Server.Shutdown error discarded"
	_ = srv.Shutdown(ctx) // want "Server.Shutdown error discarded"
	defer srv.Close()     // want "Server.Close error discarded"
	go srv.Shutdown(ctx)  // want "Server.Shutdown error discarded"
}

// serverShutdownChecked handles (or deliberately suppresses) the error:
// no diagnostic.
func serverShutdownChecked(ctx context.Context, srv *http.Server) error {
	return srv.Shutdown(ctx)
}

// checkedClose is the blessed write-path shape: no diagnostic.
func checkedClose() error {
	f, err := os.Create("x")
	if err != nil {
		return err
	}
	if _, err := f.WriteString("data"); err != nil {
		f.Close() //hclint:ignore errcheck-lite fixture: the write failure wins; mirrors the CLI error paths
		return err
	}
	return f.Close()
}
