// Package floateq is the float-eq fixture: raw ==/!= on floats is
// flagged unless one side is a constant zero.
package floateq

// raw comparisons between computed floats.
func raw(a, b float64) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	return a != b // want "floating-point != comparison"
}

// nonZeroConst compares against a non-zero constant — still flagged:
// only exact zero is an IEEE-exact sentinel.
func nonZeroConst(p float64) bool {
	return p == 1 // want "floating-point == comparison"
}

// zeroGuards are the idiomatic exact-zero sentinels threaded through
// the belief math: exempt.
func zeroGuards(p float64) bool {
	if p == 0 {
		return true
	}
	if 0.0 != p {
		return false
	}
	return p != 0
}

// float32 operands are floats too.
func narrow(x, y float32) bool {
	return x == y // want "floating-point == comparison"
}

// mixed compares a float against an int-typed expression converted to
// float — the float side makes it a float comparison.
func mixed(x float64, n int) bool {
	return x == float64(n) // want "floating-point == comparison"
}

// ints are never flagged.
func ints(a, b int) bool {
	return a == b
}

// suppressed is the justified exception (the oracle fast path).
func suppressed(pr float64) bool {
	return pr == 1 //hclint:ignore float-eq fixture: oracle probability is exactly 1 by construction
}
