// Fixture for goroutine-hygiene: every go statement must show a
// lifecycle tie — a context, a channel operation, or a WaitGroup.Done
// — in its body, its one-level-resolved callee, or its arguments.
package goroutinehygiene

import (
	"context"
	"sync"
)

type worker struct {
	done chan struct{}
	wg   sync.WaitGroup
}

// a context parameter in the body bounds the goroutine.
func (w *worker) withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// closing a channel on exit is a completion signal.
func (w *worker) withClose() {
	go func() {
		defer close(w.done)
	}()
}

// receiving from a channel ties the goroutine to its producer.
func (w *worker) withReceive() {
	go func() {
		<-w.done
	}()
}

// select over channels counts.
func (w *worker) withSelect(in chan int) {
	go func() {
		select {
		case <-in:
		case <-w.done:
		}
	}()
}

// WaitGroup.Done ties the goroutine to a Wait.
func (w *worker) withWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
}

// ranging over a channel drains until close.
func (w *worker) withChanRange(in chan int) {
	go func() {
		for range in {
		}
	}()
}

func (w *worker) spin() {
	for {
	}
}

// a named callee is resolved one level: spin has no lifecycle tie.
func (w *worker) unboundedCallee() {
	go w.spin() // want "goroutine has no shutdown mechanism"
}

// watch receives from a channel, so spawning it is fine.
func (w *worker) watch() {
	<-w.done
}

func (w *worker) boundedCallee() {
	go w.watch()
}

// a context or channel argument at the spawn site counts even when
// the callee cannot be resolved.
func spawnWith(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// a bare literal that just computes forever is unbounded.
func leak(xs []int) {
	go func() { // want "goroutine has no shutdown mechanism"
		total := 0
		for _, x := range xs {
			total += x
		}
		_ = total
	}()
}

// suppression with a reason is the escape hatch for process-lifetime
// goroutines.
func daemon() {
	//hclint:ignore goroutine-hygiene fixture: process-lifetime metrics pump
	go func() {
		for {
		}
	}()
}
