// Fixture for lock-discipline: //hclint:guardedby fields must be
// accessed with the named sibling mutex held, across Lock/Unlock,
// defer Unlock, early returns, branch merges, *Locked helpers, RWMutex
// read/write modes, fresh locals, and closures.
package lockdiscipline

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int //hclint:guardedby mu
	name string
}

// plain lock/unlock bracketing is clean.
func (c *counter) locked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// defer Unlock keeps the lock held through every exit, including the
// early return.
func (c *counter) deferred(flag bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if flag {
		return c.n
	}
	c.n = 0
	return c.n
}

// unguarded sibling fields never need the lock.
func (c *counter) unguarded() string {
	return c.name
}

func (c *counter) bare() {
	c.n++ // want "write to c.n without holding c.mu"
}

func (c *counter) bareRead() int {
	return c.n // want "read of c.n without holding c.mu"
}

// the early-return path releases before returning; the fallthrough
// path is still covered.
func (c *counter) earlyReturn(flag bool) {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
		return
	}
	c.n = 2
	c.mu.Unlock()
}

// after the unlock the lock is gone.
func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want "write to c.n without holding c.mu"
}

// one branch releases, so the merge point no longer holds the lock.
func (c *counter) branchLeak(flag bool) {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
		return
	}
	if flag {
		c.mu.Unlock()
	}
	c.n++ // want "write to c.n without holding c.mu"
}

// *Locked helpers assume the caller holds the receiver's guard...
func (c *counter) bumpLocked() { c.n++ }

func (c *counter) viaHelper() {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

// ...so calling one without the lock is itself a violation.
func (c *counter) helperBare() {
	c.bumpLocked() // want "call to c.bumpLocked without holding c.mu"
}

// a fresh composite-literal local cannot be shared yet.
func fresh() *counter {
	c := &counter{}
	c.n = 1
	c.bumpLocked()
	return c
}

// closures are separate scopes: the enclosing Lock does not cover a
// body that runs on its own goroutine.
func (c *counter) closure() {
	c.mu.Lock()
	go func() {
		c.n++ // want "write to c.n without holding c.mu"
	}()
	c.n++
	c.mu.Unlock()
}

// multi-level bases render structurally: ms.c.mu guards ms.c.n.
type wrapper struct {
	c *counter
}

func (w *wrapper) deep() {
	w.c.mu.Lock()
	w.c.n++
	w.c.mu.Unlock()
	w.c.n++ // want "write to w.c.n without holding w.c.mu"
}

// RWMutex: RLock admits reads but not writes.
type gauge struct {
	mu sync.RWMutex
	v  int //hclint:guardedby mu
}

func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) badWrite() {
	g.mu.RLock()
	g.v = 1 // want "write to g.v while holding only g.mu.RLock"
	g.mu.RUnlock()
}

func (g *gauge) write() {
	g.mu.Lock()
	g.v = 1
	g.mu.Unlock()
}

// loops: the body is simulated from the loop-entry state, so a
// re-established invariant at the bottom carries over.
func (c *counter) loop(xs []int) {
	c.mu.Lock()
	for range xs {
		c.n++
		c.mu.Unlock()
		c.mu.Lock()
	}
	c.mu.Unlock()
}

// select: every arm must hold the lock for the access after the merge.
func (c *counter) selectMerge(ch chan int) {
	select {
	case <-ch:
		c.mu.Lock()
	default:
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// suppression with a reason silences a site.
func (c *counter) suppressed() int {
	//hclint:ignore lock-discipline fixture: single-threaded setup phase
	return c.n
}

// malformed annotations are diagnostics, not silent no-ops.
type badAnnotations struct {
	mu sync.Mutex
	//hclint:guardedby nosuch
	a int // want "not a field of this struct"
	//hclint:guardedby name
	b int // want "not a sync.Mutex or sync.RWMutex"
	//hclint:guardedby
	c int // want "needs exactly one argument"

	name string
}
