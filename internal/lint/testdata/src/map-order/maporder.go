// Package maporder is the map-order fixture: raw map iteration is
// flagged; the collect-keys-then-sort idiom and keyless ranges pass.
package maporder

import (
	"sort"
)

// rawRange iterates a map directly — the canonical violation.
func rawRange(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want "range over map in determinism-critical package"
		total += v
	}
	return total
}

// rawKeyUse consumes keys in map order without sorting.
func rawKeyUse(m map[string]int, visit func(string)) {
	for k := range m { // want "range over map in determinism-critical package"
		visit(k)
	}
}

// sortedKeys is the blessed idiom from internal/pipeline/engine.go's
// purchase planning: key-only collection, then a sort in the same
// block. No diagnostic.
func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedStructKeys is the sort.Slice variant of the idiom (engine.go's
// cost-aware grouping). No diagnostic.
func sortedStructKeys(m map[struct{ a, b int }]bool) []struct{ a, b int } {
	keys := make([]struct{ a, b int }, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}

// collectedButNeverSorted collects keys and returns them unsorted —
// the idiom's false-negative trap: collection alone is not enough.
func collectedButNeverSorted(m map[int]bool) []int {
	var keys []int
	for k := range m { // want "range over map in determinism-critical package"
		keys = append(keys, k)
	}
	return keys
}

// keyless ranges are order-free: the body cannot observe iteration
// order. No diagnostic.
func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// suppressed argues order-independence in writing.
func suppressed(m map[int]float64) float64 {
	var total float64
	//hclint:ignore map-order fixture: float addition treated as commutative for this accumulation
	for _, v := range m {
		total += v
	}
	return total
}

// labeled ranges are unwrapped before matching.
func labeled(m map[int]int) {
outer:
	for k := range m { // want "range over map in determinism-critical package"
		if k == 0 {
			break outer
		}
	}
}

// sliceRange is not a map range; never flagged.
func sliceRange(xs []int) int {
	var total int
	for _, v := range xs {
		total += v
	}
	return total
}
