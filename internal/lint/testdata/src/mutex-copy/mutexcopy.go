// Fixture for mutex-copy: by-value copies of types that transitively
// contain sync.Mutex/RWMutex/WaitGroup/Once — value receivers, params,
// results, assignments, range values, call arguments — are flagged;
// pointers and constructive expressions are not.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// nesting is transitive: box contains guarded contains sync.Mutex.
type box struct {
	g guarded
}

type onceBox struct {
	once sync.Once
}

type arrayBox struct {
	gs [2]guarded
}

// pointer fields share, not copy.
type viaPointer struct {
	g *guarded
}

func (g *guarded) ptrRecv() {}

func (g guarded) valRecv() {} // want "value receiver of method valRecv guarded, which contains sync.Mutex"

func (b box) nested() {} // want "value receiver of method nested box, which contains sync.Mutex"

func takesValue(g guarded) {} // want "parameter copies guarded, which contains sync.Mutex"

func takesPointer(g *guarded) {}

func takesOnce(o onceBox) {} // want "parameter copies onceBox, which contains sync.Once"

func takesArray(a arrayBox) {} // want "parameter copies arrayBox, which contains sync.Mutex"

func takesShared(v viaPointer) {}

func returnsValue() guarded { // want "result copies guarded, which contains sync.Mutex"
	return guarded{}
}

func assigns(src *guarded) {
	cp := *src // want "assignment copies guarded by value, which contains sync.Mutex"
	_ = cp

	var g guarded
	g2 := g // want "assignment copies guarded by value, which contains sync.Mutex"
	_ = g2

	// composite literals build fresh values; no shared state copied.
	fresh := guarded{}
	_ = fresh

	// pointers share.
	p := src
	_ = p
}

func declares(src *guarded) {
	var cp = *src // want "declaration copies guarded by value, which contains sync.Mutex"
	_ = cp
}

func ranges(gs []guarded, m map[string]guarded) {
	for _, g := range gs { // want "range value copies guarded, which contains sync.Mutex"
		_ = g
	}
	for i := range gs {
		_ = gs[i].n
	}
	for _, g := range m { // want "range value copies guarded, which contains sync.Mutex"
		_ = g
	}
}

func calls(g guarded) { // want "parameter copies guarded, which contains sync.Mutex"
	takesValue(g) // want "call passes guarded by value, which contains sync.Mutex"
	takesPointer(&g)
}

type wg struct {
	wg sync.WaitGroup
}

func waitgroups(w *wg) {
	cp := w.wg // want "assignment copies sync.WaitGroup by value, which contains sync.WaitGroup"
	_ = cp
}

// suppression with a reason.
func suppressed(src *guarded) {
	//hclint:ignore mutex-copy fixture: snapshot taken before the value is ever shared
	cp := *src
	_ = cp
}
