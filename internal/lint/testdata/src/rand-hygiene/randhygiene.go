// Package randhygiene is the rand-hygiene fixture: package-level
// math/rand calls are banned; explicit seeded generators are fine.
package randhygiene

import "math/rand"

func globals() {
	rand.Intn(3)         // want "package-level math/rand.Intn consumes the process-global RNG"
	_ = rand.Float64()   // want "package-level math/rand.Float64 consumes the process-global RNG"
	rand.Shuffle(2, nil) // want "package-level math/rand.Shuffle consumes the process-global RNG"
	rand.Seed(1)         // want "package-level math/rand.Seed consumes the process-global RNG"
}

// threaded shows the blessed pattern: construct an explicit generator
// and call methods on it — constructors and methods are never flagged.
func threaded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(2, func(i, j int) {})
	return rng.Float64()
}

// zipf uses the third constructor; it samples from the *Rand it holds.
func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.1, 1, 100)
}

// suppressed shows a justified exception: the directive names the
// check and carries a reason, so no diagnostic survives.
func suppressed() int {
	return rand.Int() //hclint:ignore rand-hygiene fixture: demonstrates a justified suppression
}

// suppressedAbove is the comment-above form of the same directive.
func suppressedAbove() int {
	//hclint:ignore rand-hygiene fixture: directive on the line above also covers the call
	return rand.Int()
}

// wrongCheckSuppression suppresses a different check, so the
// rand-hygiene diagnostic still fires: directives are per-check.
func wrongCheckSuppression() int {
	//hclint:ignore map-order fixture: suppressing an unrelated check must not silence rand-hygiene
	return rand.Int() // want "package-level math/rand.Int consumes the process-global RNG"
}

// tooFarAway shows a directive two lines up, out of range.
func tooFarAway() int {
	//hclint:ignore rand-hygiene fixture: a directive two lines above the call is out of range

	return rand.Int() // want "package-level math/rand.Int consumes the process-global RNG"
}
