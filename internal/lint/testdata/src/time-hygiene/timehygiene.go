// Package timehygiene is the time-hygiene fixture: wall-clock reads
// are flagged; pure time arithmetic and types pass.
package timehygiene

import "time"

// clockReads hits the banned function set.
func clockReads() time.Duration {
	start := time.Now()      // want "wall-clock time.Now in determinism-critical package"
	time.Sleep(0)            // want "wall-clock time.Sleep in determinism-critical package"
	return time.Since(start) // want "wall-clock time.Since in determinism-critical package"
}

// timers are waits on the wall clock too.
func timers() {
	<-time.After(time.Millisecond)  // want "wall-clock time.After in determinism-critical package"
	t := time.NewTimer(time.Second) // want "wall-clock time.NewTimer in determinism-critical package"
	t.Stop()
}

// arithmetic uses only time's types and pure functions — no clock
// reads, no diagnostics.
func arithmetic(d time.Duration) (time.Duration, time.Time) {
	var epoch time.Time
	d2 := d * 2
	u := time.Unix(0, 0) // a pure constructor from given data, not a clock read
	return d2 + time.Duration(u.Nanosecond()), epoch
}

// suppressed is the justified exception: metrics-style timing that
// never feeds back into control flow.
func suppressed() time.Time {
	return time.Now() //hclint:ignore time-hygiene fixture: metrics-only timestamp, mirrors engine.go's suppression
}
