package mathx

// Batched kernels for the entropy hot path. Each one is a plain loop over
// a slice, written so its accumulation order is exactly the order the
// scalar call sites used — callers that replace an element-at-a-time loop
// with one of these get bitwise-identical results, which is what lets the
// incremental selection engines switch between scalar and batched
// evaluation paths without perturbing pick-identity. Keeping them as
// whole-vector loops (no branches beyond the XLogX zero guard, no
// index arithmetic) also gives the compiler straight-line code it can
// keep in registers.

// XLogXSum returns Σ_i x_i·ln(x_i), accumulated in index order with the
// XLogX zero convention. It is the batched form of the scalar loop
// `s += XLogX(v)` and matches it bitwise.
func XLogXSum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += XLogX(v)
	}
	return s
}

// EntropySum returns -Σ_i x_i·ln(x_i), accumulated in index order as the
// scalar loop `h -= XLogX(v)` would — bitwise identical to it, including
// the rounding of each partial sum. Unlike Entropy it does not clamp
// small negative rounding residue to zero; callers that fold the result
// into a larger expression (the conditional-entropy cores) clamp at the
// end themselves.
func EntropySum(x []float64) float64 {
	var h float64
	for _, v := range x {
		h -= XLogX(v)
	}
	return h
}

// OuterMul writes the outer product dst[i·len(b)+j] = a[i]·b[j]. It is
// the expansion step of the tensor-product family enumeration: b holds
// the partial likelihoods over the already-processed answer variables and
// a the per-pattern factors of the next one, so dst holds the partials
// over their concatenation with a's index in the high bits. dst must have
// length len(a)·len(b) and must not alias a or b.
func OuterMul(dst, a, b []float64) {
	if len(dst) != len(a)*len(b) {
		panic("mathx: OuterMul dst length mismatch")
	}
	for i, ai := range a {
		row := dst[i*len(b) : (i+1)*len(b)]
		for j, bj := range b {
			row[j] = ai * bj
		}
	}
}

// AddTo accumulates dst[i] += x[i] element-wise. Both slices must have
// the same length. Calling it once per term, in term order, matches the
// scalar accumulation `dst[i] += term` bitwise for every element.
func AddTo(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mathx: AddTo length mismatch")
	}
	for i, v := range x {
		dst[i] += v
	}
}
