package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// randVec returns a deterministic pseudo-random non-negative vector with
// some exact zeros, the shape of the probability vectors the entropy
// cores feed the batch kernels.
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Intn(5) == 0 {
			continue // exact zero: exercises the XLogX guard
		}
		v[i] = rng.Float64()
	}
	return v
}

// TestXLogXSumBitwiseScalar pins the contract the conditional-entropy
// cores rely on: the batched sum is the scalar accumulation, bit for bit.
func TestXLogXSumBitwiseScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := randVec(rng, 1+rng.Intn(64))
		var want float64
		for _, v := range x {
			want += XLogX(v)
		}
		if got := XLogXSum(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("XLogXSum = %v (bits %x), scalar loop = %v (bits %x)",
				got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestEntropySumBitwiseScalar pins the negated accumulation order: h -=
// XLogX(v) in index order, no clamping.
func TestEntropySumBitwiseScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := randVec(rng, 1+rng.Intn(64))
		var want float64
		for _, v := range x {
			want -= XLogX(v)
		}
		if got := EntropySum(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EntropySum = %v, scalar loop = %v", got, want)
		}
	}
}

// TestEntropyMatchesEntropySum checks the public Entropy/NegEntropy
// wrappers are the clamped batch kernels.
func TestEntropyMatchesEntropySum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := randVec(rng, 1+rng.Intn(32))
		h := EntropySum(x)
		if h < 0 {
			h = 0
		}
		if got := Entropy(x); math.Float64bits(got) != math.Float64bits(h) {
			t.Fatalf("Entropy = %v, clamped EntropySum = %v", got, h)
		}
		q := XLogXSum(x)
		if q > 0 {
			q = 0
		}
		if got := NegEntropy(x); math.Float64bits(got) != math.Float64bits(q) {
			t.Fatalf("NegEntropy = %v, clamped XLogXSum = %v", got, q)
		}
	}
}

// TestOuterMul checks the index layout (a's index in the high bits) and
// the bitwise products.
func TestOuterMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		na, nb := 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := randVec(rng, na), randVec(rng, nb)
		dst := make([]float64, na*nb)
		OuterMul(dst, a, b)
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				want := a[i] * b[j]
				if got := dst[i*nb+j]; math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("dst[%d*%d+%d] = %v, want a[i]*b[j] = %v", i, nb, j, got, want)
				}
			}
		}
	}
}

// TestOuterMulPanicsOnLengthMismatch pins the guard: a silent short write
// would corrupt a family-likelihood table.
func TestOuterMulPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OuterMul with mismatched dst did not panic")
		}
	}()
	OuterMul(make([]float64, 3), []float64{1, 2}, []float64{3, 4})
}

// TestAddTo checks element-wise accumulation and the length guard.
func TestAddTo(t *testing.T) {
	dst := []float64{1, 2, 3}
	AddTo(dst, []float64{0.5, 0.25, 0.125})
	want := []float64{1.5, 2.25, 3.125}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AddTo result %v, want %v", dst, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddTo with mismatched lengths did not panic")
		}
	}()
	AddTo(dst, []float64{1})
}
