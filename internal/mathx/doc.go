// Package mathx provides the numeric substrate shared by the belief,
// selection and aggregation packages: numerically stable entropy and
// log-domain kernels, special functions (digamma, trigamma) needed by the
// variational EM baselines, and small vector helpers.
//
// The module is offline and stdlib-only, so everything a SciPy-style
// dependency would normally provide is implemented and tested here.
// All functions operate on float64 and are deterministic.
package mathx
