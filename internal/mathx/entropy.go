package mathx

import "math"

// XLogX returns x*ln(x) with the continuous extension 0 at x == 0.
// It is the kernel of every entropy computation in this module; callers
// must pass x >= 0 (probabilities), negative inputs return NaN just as
// math.Log would.
func XLogX(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x * math.Log(x)
}

// Entropy returns the Shannon entropy H(p) = -sum p_i ln p_i in nats of a
// probability vector. It does not verify that p sums to one; zero entries
// contribute nothing. The result is never negative for a valid
// distribution (tiny negative values from rounding are clamped to 0).
func Entropy(p []float64) float64 {
	h := EntropySum(p)
	if h < 0 {
		return 0
	}
	return h
}

// NegEntropy returns sum p_i ln p_i, the quality function Q(F) = -H(O) of
// Definition 2 in the paper. It equals -Entropy(p).
func NegEntropy(p []float64) float64 {
	q := XLogXSum(p)
	if q > 0 {
		return 0
	}
	return q
}

// BernoulliEntropy returns the entropy in nats of a Bernoulli(p) variable,
// h(p) = -p ln p - (1-p) ln(1-p). It is 0 at p == 0 and p == 1.
func BernoulliEntropy(p float64) float64 {
	return -XLogX(p) - XLogX(1-p)
}

// KL returns the Kullback-Leibler divergence KL(p || q) in nats.
// Entries where p_i == 0 contribute nothing; if p_i > 0 while q_i == 0 the
// divergence is +Inf. Both inputs must be the same length.
func KL(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("mathx: KL on vectors of different length")
	}
	var d float64
	for i, pi := range p {
		if pi == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += pi * math.Log(pi/q[i])
	}
	if d < 0 {
		return 0
	}
	return d
}
