package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestXLogX(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0},
		{1, 0},
		{math.E, math.E},
		{0.5, 0.5 * math.Log(0.5)},
		{2, 2 * math.Log(2)},
	}
	for _, c := range cases {
		if got := XLogX(c.x); !almostEqual(got, c.want, tol) {
			t.Errorf("XLogX(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestXLogXNegativeIsNaN(t *testing.T) {
	if !math.IsNaN(XLogX(-1)) {
		t.Errorf("XLogX(-1) = %v, want NaN", XLogX(-1))
	}
}

func TestEntropyUniform(t *testing.T) {
	for _, n := range []int{1, 2, 4, 32, 1024} {
		p := make([]float64, n)
		Fill(p, 1/float64(n))
		want := math.Log(float64(n))
		if got := Entropy(p); !almostEqual(got, want, 1e-10) {
			t.Errorf("Entropy(uniform %d) = %v, want %v", n, got, want)
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	p := []float64{0, 0, 1, 0}
	if got := Entropy(p); got != 0 {
		t.Errorf("Entropy(point mass) = %v, want 0", got)
	}
}

func TestEntropyTableI(t *testing.T) {
	// The joint distribution of Table I in the paper.
	p := []float64{0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18}
	h := Entropy(p)
	var want float64
	for _, x := range p {
		want -= x * math.Log(x)
	}
	if !almostEqual(h, want, tol) {
		t.Errorf("Entropy(Table I) = %v, want %v", h, want)
	}
	if q := NegEntropy(p); !almostEqual(q, -h, tol) {
		t.Errorf("NegEntropy = %v, want %v", q, -h)
	}
}

func TestNegEntropyIsMinusEntropy(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v)
			if math.IsInf(p[i], 0) || math.IsNaN(p[i]) {
				p[i] = 1
			}
		}
		Normalize(p)
		return almostEqual(Entropy(p), -NegEntropy(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyBoundedByLogN(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v)
			if math.IsInf(p[i], 0) || math.IsNaN(p[i]) {
				p[i] = 1
			}
		}
		Normalize(p)
		h := Entropy(p)
		return h >= 0 && h <= math.Log(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliEntropy(t *testing.T) {
	if got := BernoulliEntropy(0.5); !almostEqual(got, math.Log(2), tol) {
		t.Errorf("h(0.5) = %v, want ln 2", got)
	}
	if got := BernoulliEntropy(0); got != 0 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := BernoulliEntropy(1); got != 0 {
		t.Errorf("h(1) = %v, want 0", got)
	}
	// Symmetry h(p) == h(1-p).
	for _, p := range []float64{0.1, 0.25, 0.42, 0.9} {
		if !almostEqual(BernoulliEntropy(p), BernoulliEntropy(1-p), tol) {
			t.Errorf("h(%v) != h(%v)", p, 1-p)
		}
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if got := KL(p, q); !almostEqual(got, want, tol) {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if got := KL(p, p); got != 0 {
		t.Errorf("KL(p,p) = %v, want 0", got)
	}
	if got := KL([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with zero support = %v, want +Inf", got)
	}
}

func TestKLNonNegative(t *testing.T) {
	f := func(ra, rb []float64) bool {
		n := len(ra)
		if len(rb) < n {
			n = len(rb)
		}
		if n == 0 {
			return true
		}
		p := make([]float64, n)
		q := make([]float64, n)
		for i := 0; i < n; i++ {
			p[i] = math.Abs(ra[i])
			q[i] = math.Abs(rb[i]) + 1e-6
			if math.IsInf(p[i], 0) || math.IsNaN(p[i]) {
				p[i] = 1
			}
			if math.IsInf(q[i], 0) || math.IsNaN(q[i]) {
				q[i] = 1
			}
		}
		Normalize(p)
		Normalize(q)
		return KL(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KL with mismatched lengths did not panic")
		}
	}()
	KL([]float64{1}, []float64{0.5, 0.5})
}
