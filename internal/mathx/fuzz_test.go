package mathx

import (
	"math"
	"testing"
)

// finite filters fuzz inputs down to the domain the kernels promise to
// handle: NaN propagates by design, and ±Inf inputs are exercised by
// the table-driven unit tests instead.
func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// FuzzLogSumExp checks the log-domain kernel under arbitrary finite
// inputs: the result is finite, bounded by max(x) from below and
// max(x)+ln(n) from above (the defining envelope of logsumexp), grows
// monotonically when an element is added, and agrees with the pairwise
// LogAdd fold. These are the Lemma 1-3 stability properties the belief
// updates lean on.
func FuzzLogSumExp(f *testing.F) {
	f.Add(0.0, 0.0, 0.0)
	f.Add(-745.0, 710.0, 0.0) // exp under/overflow territory
	f.Add(1e-300, -1e-300, 1e300)
	f.Add(-1e308, -1e308, -1e308)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if !finite(a, b, c) {
			return
		}
		x := []float64{a, b, c}
		lse := LogSumExp(x)
		m := math.Max(a, math.Max(b, c))
		if math.IsNaN(lse) || math.IsInf(lse, -1) {
			t.Fatalf("LogSumExp(%v) = %v for finite inputs", x, lse)
		}
		// Envelope: max <= lse <= max + ln(3), with slack for rounding.
		const tol = 1e-9
		if lse < m-tol {
			t.Fatalf("LogSumExp(%v) = %v below max input %v", x, lse, m)
		}
		if lse > m+math.Log(3)+tol {
			t.Fatalf("LogSumExp(%v) = %v above max+ln(3) = %v", x, lse, m+math.Log(3))
		}
		// Monotonicity: adding an element only adds mass.
		lse2 := LogSumExp(x[:2])
		if lse < lse2-tol {
			t.Fatalf("LogSumExp shrank when adding an element: %v -> %v", lse2, lse)
		}
		// Agreement with the pairwise fold, in relative tolerance: both
		// compute ln(e^a+e^b+e^c), just associated differently.
		fold := LogAdd(LogAdd(a, b), c)
		if diff := math.Abs(lse - fold); diff > tol*math.Max(1, math.Abs(lse)) {
			t.Fatalf("LogSumExp(%v) = %v but LogAdd fold = %v (diff %v)", x, lse, fold, diff)
		}
	})
}

// FuzzBatchKernels checks the batched entropy kernels against the scalar
// accumulation order they promise to reproduce: on arbitrary finite
// non-negative 4-vectors, XLogXSum and EntropySum must equal the
// element-at-a-time loops bit for bit (same partial-sum rounding), and
// OuterMul must equal the nested scalar products. This is the contract
// that lets the selection engines switch between scalar and batched
// family enumeration without perturbing pick-identity.
func FuzzBatchKernels(f *testing.F) {
	f.Add(0.25, 0.25, 0.25, 0.25)
	f.Add(0.0, 1.0, 0.0, 1.0)
	f.Add(1e-320, 1e300, 1e-320, 1.0) // subnormal and huge coordinates
	f.Add(0.1, 0.9, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		x := []float64{math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)}
		if !finite(x...) {
			return
		}
		var sum float64
		for _, v := range x {
			sum += XLogX(v)
		}
		if got := XLogXSum(x); math.Float64bits(got) != math.Float64bits(sum) {
			t.Fatalf("XLogXSum(%v) = %v, scalar accumulation = %v", x, got, sum)
		}
		var h float64
		for _, v := range x {
			h -= XLogX(v)
		}
		if got := EntropySum(x); math.Float64bits(got) != math.Float64bits(h) {
			t.Fatalf("EntropySum(%v) = %v, scalar accumulation = %v", x, got, h)
		}
		dst := make([]float64, 4)
		OuterMul(dst, x[:2], x[2:])
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if want := x[i] * x[2+j]; math.Float64bits(dst[i*2+j]) != math.Float64bits(want) {
					t.Fatalf("OuterMul(%v) = %v, want [i][j] = %v", x, dst, want)
				}
			}
		}
	})
}

// FuzzEntropy checks H(p) on arbitrary normalized 3-vectors: finite,
// never negative (H >= 0 is the floor Definition 2's quality function
// assumes), at most ln(n), and consistent with NegEntropy. Weights are
// taken through math.Abs and normalized so the fuzzer explores the
// whole simplex, including zero and subnormal coordinates.
func FuzzEntropy(f *testing.F) {
	f.Add(1.0, 1.0, 1.0)
	f.Add(1.0, 0.0, 0.0)
	f.Add(1e-320, 1.0, 1e-320) // subnormal coordinates
	f.Add(1e300, 1.0, 1e-300)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		w := []float64{math.Abs(a), math.Abs(b), math.Abs(c)}
		sum := w[0] + w[1] + w[2]
		if !finite(w...) || !finite(sum) || sum == 0 {
			return
		}
		p := []float64{w[0] / sum, w[1] / sum, w[2] / sum}
		if !finite(p...) {
			return // e.g. subnormal/huge ratios rounding to non-finite
		}
		h := Entropy(p)
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("Entropy(%v) = %v", p, h)
		}
		if h < 0 {
			t.Fatalf("Entropy(%v) = %v < 0", p, h)
		}
		const tol = 1e-9
		if h > math.Log(3)+tol {
			t.Fatalf("Entropy(%v) = %v above ln(3)", p, h)
		}
		if q := NegEntropy(p); q > 0 || math.Abs(q+h) > tol {
			t.Fatalf("NegEntropy(%v) = %v inconsistent with Entropy %v", p, q, h)
		}
		// The Bernoulli specialization must agree with the vector form
		// on two-point distributions.
		pb := p[0] / (p[0] + p[1])
		if p2 := p[0] + p[1]; p2 > 0 && finite(pb) {
			hb := BernoulliEntropy(pb)
			hv := Entropy([]float64{pb, 1 - pb})
			if math.Abs(hb-hv) > tol {
				t.Fatalf("BernoulliEntropy(%v) = %v but Entropy = %v", pb, hb, hv)
			}
		}
	})
}
