package mathx

import "math"

// LogSumExp returns ln(sum exp(x_i)) computed stably by factoring out the
// maximum. An empty input yields -Inf (the log of an empty sum).
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// LogAdd returns ln(exp(a) + exp(b)) stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// SoftmaxInPlace exponentiates and normalizes a vector of log-weights in
// place so that it becomes a probability distribution. It is stable for
// arbitrarily large or small inputs. A vector whose entries are all -Inf
// becomes uniform.
func SoftmaxInPlace(logw []float64) {
	if len(logw) == 0 {
		return
	}
	m := math.Inf(-1)
	for _, v := range logw {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		u := 1 / float64(len(logw))
		for i := range logw {
			logw[i] = u
		}
		return
	}
	var s float64
	for i, v := range logw {
		e := math.Exp(v - m)
		logw[i] = e
		s += e
	}
	for i := range logw {
		logw[i] /= s
	}
}

// Log returns ln(x), with ln(0) = -Inf rather than NaN for negative zero
// robustness in probability code. Negative inputs still produce NaN.
func Log(x float64) float64 {
	if x == 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}
