package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExp(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{nil, math.Inf(-1)},
		{[]float64{0}, 0},
		{[]float64{0, 0}, math.Log(2)},
		{[]float64{math.Log(1), math.Log(2), math.Log(3)}, math.Log(6)},
		{[]float64{math.Inf(-1), math.Inf(-1)}, math.Inf(-1)},
		{[]float64{-1000, -1000}, -1000 + math.Log(2)},
		{[]float64{1000, 1000}, 1000 + math.Log(2)},
	}
	for _, c := range cases {
		if got := LogSumExp(c.x); !almostEqual(got, c.want, tol) {
			t.Errorf("LogSumExp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogSumExpDominates(t *testing.T) {
	// LogSumExp >= max element always.
	f := func(x []float64) bool {
		if len(x) == 0 {
			return true
		}
		for i, v := range x {
			if math.IsNaN(v) {
				x[i] = 0
			}
			if math.IsInf(v, 1) {
				x[i] = 700
			}
		}
		m := math.Inf(-1)
		for _, v := range x {
			if v > m {
				m = v
			}
		}
		return LogSumExp(x) >= m-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogAdd(t *testing.T) {
	if got := LogAdd(math.Log(2), math.Log(3)); !almostEqual(got, math.Log(5), tol) {
		t.Errorf("LogAdd(ln2, ln3) = %v, want ln5", got)
	}
	if got := LogAdd(math.Inf(-1), 1.5); got != 1.5 {
		t.Errorf("LogAdd(-Inf, 1.5) = %v, want 1.5", got)
	}
	if got := LogAdd(1.5, math.Inf(-1)); got != 1.5 {
		t.Errorf("LogAdd(1.5, -Inf) = %v, want 1.5", got)
	}
}

func TestLogAddCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a = Clamp(a, -700, 700)
		b = Clamp(b, -700, 700)
		return almostEqual(LogAdd(a, b), LogAdd(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	w := []float64{math.Log(1), math.Log(2), math.Log(7)}
	SoftmaxInPlace(w)
	want := []float64{0.1, 0.2, 0.7}
	for i := range w {
		if !almostEqual(w[i], want[i], 1e-12) {
			t.Errorf("softmax[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestSoftmaxExtremes(t *testing.T) {
	w := []float64{-1e308, 0, -1e308}
	SoftmaxInPlace(w)
	if !almostEqual(w[1], 1, 1e-12) {
		t.Errorf("softmax peak = %v, want 1", w[1])
	}
	allNegInf := []float64{math.Inf(-1), math.Inf(-1)}
	SoftmaxInPlace(allNegInf)
	for _, v := range allNegInf {
		if !almostEqual(v, 0.5, tol) {
			t.Errorf("softmax of all -Inf = %v, want uniform", allNegInf)
		}
	}
	SoftmaxInPlace(nil) // must not panic
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(x []float64) bool {
		if len(x) == 0 {
			return true
		}
		for i, v := range x {
			if math.IsNaN(v) {
				x[i] = 0
			} else {
				x[i] = Clamp(v, -1e6, 700)
			}
		}
		SoftmaxInPlace(x)
		return almostEqual(Sum(x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogOfZero(t *testing.T) {
	if got := Log(0); !math.IsInf(got, -1) {
		t.Errorf("Log(0) = %v, want -Inf", got)
	}
	if got := Log(math.E); !almostEqual(got, 1, tol) {
		t.Errorf("Log(e) = %v, want 1", got)
	}
}
