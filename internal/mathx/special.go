package mathx

import "math"

// Digamma returns the digamma function psi(x), the logarithmic derivative
// of the gamma function. It is required by the variational baselines (BWA,
// EBCC) for expectations of log-Dirichlet variables.
//
// The implementation uses the standard recurrence psi(x) = psi(x+1) - 1/x
// to shift the argument above 6 and then the asymptotic expansion
// psi(x) ~ ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6).
// For x <= 0 the reflection formula psi(1-x) = psi(x) + pi/tan(pi x) is
// applied; poles at non-positive integers return NaN.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // pole
		}
		// psi(x) = psi(1-x) - pi/tan(pi*x)
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var result float64
	for x < 10 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12.0-inv2*(1.0/120.0-inv2*(1.0/252.0-inv2/240.0)))
	return result
}

// Trigamma returns psi'(x), the derivative of the digamma function, for
// x > 0. It uses the recurrence psi'(x) = psi'(x+1) + 1/x^2 followed by an
// asymptotic expansion.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) {
		return x
	}
	if x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 10 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + 0.5*inv +
		inv2*(1.0/6.0-inv2*(1.0/30.0-inv2*(1.0/42.0-inv2/30.0))))
	return result
}

// LogBeta returns ln B(a, b) = lgamma(a) + lgamma(b) - lgamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) = B(x; a, b) / B(a, b) for a, b > 0 and x in [0, 1], via the
// standard continued-fraction expansion (Lentz's method) with the
// symmetry transformation for fast convergence. The MV-Beta label
// integration strategy uses it to score P(true rate > 1/2) under a Beta
// posterior.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// I_x(a,b) = 1 - I_{1-x}(b,a); use the branch where the continued
	// fraction converges quickly.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	lbeta := LogBeta(a, b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Modified Lentz continued fraction.
	const (
		tiny    = 1e-30
		epsStop = 1e-14
		maxIter = 500
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			fm := float64(m)
			numerator = fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		default:
			fm := float64(m)
			numerator = -((a + fm) * (a + b + fm) * x) /
				((a + 2*fm) * (a + 2*fm + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < epsStop {
			break
		}
	}
	return Clamp(front*(f-1), 0, 1)
}
