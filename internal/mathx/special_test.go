package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference values computed with mpmath at 50 digits.
func TestDigammaKnownValues(t *testing.T) {
	const eulerMascheroni = 0.5772156649015328606
	cases := []struct {
		x, want float64
	}{
		{1, -eulerMascheroni},
		{0.5, -eulerMascheroni - 2*math.Log(2)},
		{2, 1 - eulerMascheroni},
		{3, 1.5 - eulerMascheroni},
		{10, 2.2517525890667211076},
		{100, 4.6001618527380874002},
		{0.1, -10.423754940411076232},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// psi(x+1) = psi(x) + 1/x must hold everywhere in the positive domain.
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := math.Abs(raw)
		x = Clamp(x, 1e-3, 1e6)
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigammaReflection(t *testing.T) {
	// Negative non-integer arguments via the reflection formula.
	got := Digamma(-0.5)
	want := 0.036489973978576520559 // psi(-1/2)
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("Digamma(-0.5) = %v, want %v", got, want)
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2, -10} {
		if got := Digamma(x); !math.IsNaN(got) {
			t.Errorf("Digamma(%v) = %v, want NaN (pole)", x, got)
		}
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
		{10, 0.10516633568168574612},
	}
	for _, c := range cases {
		if got := Trigamma(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Trigamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTrigammaRecurrence(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := Clamp(math.Abs(raw), 1e-2, 1e6)
		lhs := Trigamma(x + 1)
		rhs := Trigamma(x) - 1/(x*x)
		return almostEqual(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigammaPositive(t *testing.T) {
	for _, x := range []float64{0.01, 0.5, 1, 5, 100, 1e5} {
		if got := Trigamma(x); got <= 0 {
			t.Errorf("Trigamma(%v) = %v, want > 0", x, got)
		}
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},
		{2, 3, math.Log(1.0 / 12.0)},
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, c := range cases {
		if got := LogBeta(c.a, c.b); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("LogBeta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLogBetaSymmetric(t *testing.T) {
	f := func(ra, rb float64) bool {
		a := Clamp(math.Abs(ra), 1e-3, 1e5)
		b := Clamp(math.Abs(rb), 1e-3, 1e5)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return almostEqual(LogBeta(a, b), LogBeta(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reference values from scipy.special.betainc.
func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},                  // uniform CDF
		{2, 2, 0.5, 0.5},                  // symmetric at midpoint
		{2, 5, 0.2, 0.34464},              // scipy betainc(2,5,0.2)
		{5, 2, 0.8, 0.65536},              // symmetry counterpart
		{0.5, 0.5, 0.5, 0.5},              // arcsine distribution midpoint
		{10, 3, 0.9, 0.8891300222545867},  // numerical integration
		{3, 10, 0.1, 0.11086997774541331}, // 1 - above by symmetry
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBoundsAndEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) {
		t.Error("negative a accepted")
	}
	if !math.IsNaN(RegIncBeta(2, 2, math.NaN())) {
		t.Error("NaN x accepted")
	}
}

func TestRegIncBetaMonotoneAndSymmetric(t *testing.T) {
	f := func(ra, rb, rx float64) bool {
		a := Clamp(math.Abs(ra), 0.2, 50)
		b := Clamp(math.Abs(rb), 0.2, 50)
		x := Clamp(math.Abs(rx)-math.Trunc(math.Abs(rx)), 0.01, 0.99)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) {
			return true
		}
		v := RegIncBeta(a, b, x)
		if v < 0 || v > 1 {
			return false
		}
		// CDF is nondecreasing in x.
		if x < 0.95 {
			if RegIncBeta(a, b, x+0.04) < v-1e-9 {
				return false
			}
		}
		// Symmetry identity I_x(a,b) = 1 - I_{1-x}(b,a).
		return almostEqual(v, 1-RegIncBeta(b, a, 1-x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
