package mathx

import "math"

// Normalize scales p in place so it sums to one and returns the original
// sum. If the sum is zero or not finite the vector is set to uniform and
// the returned sum is 0; callers treat that as "no information".
func Normalize(p []float64) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return 0
	}
	inv := 1 / s
	for i := range p {
		p[i] *= inv
	}
	return s
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Dot returns the dot product of a and b, which must be the same length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot on vectors of different length")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// ArgMax returns the index of the largest element, breaking ties toward
// the lowest index. It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// MaxAbsDiff returns max_i |a_i - b_i| for equal-length vectors; it is the
// convergence criterion used by the iterative aggregators.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: MaxAbsDiff on vectors of different length")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
