package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	p := []float64{1, 2, 7}
	sum := Normalize(p)
	if !almostEqual(sum, 10, tol) {
		t.Errorf("Normalize returned sum %v, want 10", sum)
	}
	want := []float64{0.1, 0.2, 0.7}
	for i := range p {
		if !almostEqual(p[i], want[i], tol) {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestNormalizeZeroVectorBecomesUniform(t *testing.T) {
	p := []float64{0, 0, 0, 0}
	if sum := Normalize(p); sum != 0 {
		t.Errorf("Normalize(zeros) sum = %v, want 0", sum)
	}
	for _, v := range p {
		if !almostEqual(v, 0.25, tol) {
			t.Errorf("Normalize(zeros) = %v, want uniform", p)
		}
	}
}

func TestNormalizeNaNBecomesUniform(t *testing.T) {
	p := []float64{math.NaN(), 1}
	Normalize(p)
	for _, v := range p {
		if !almostEqual(v, 0.5, tol) {
			t.Errorf("Normalize with NaN = %v, want uniform", p)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v)
			if math.IsInf(p[i], 0) || math.IsNaN(p[i]) {
				p[i] = 1
			}
		}
		Normalize(p)
		q := Clone(p)
		Normalize(q)
		return MaxAbsDiff(p, q) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{5, 5, 5}, 0}, // ties break low
		{[]float64{-1, -3}, 0},
	}
	for _, c := range cases {
		if got := ArgMax(c.x); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ArgMax(nil) did not panic")
		}
	}()
	ArgMax(nil)
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1}); got != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", got)
	}
	if got := MaxAbsDiff(nil, nil); got != 0 {
		t.Errorf("MaxAbsDiff(nil,nil) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone aliases its input")
	}
}

func TestFill(t *testing.T) {
	x := make([]float64, 3)
	Fill(x, 2.5)
	for _, v := range x {
		if v != 2.5 {
			t.Errorf("Fill: %v", x)
		}
	}
}
