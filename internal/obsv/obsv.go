// Package obsv is the service's observability substrate: counters,
// gauges and fixed-bucket histograms, optionally fanned out into labeled
// families, collected in a Registry that snapshots to expvar-style JSON.
//
// It is stdlib-only and deliberately small. Instruments are lock-cheap —
// every Observe/Add/Inc is one or two atomic operations, no mutex on the
// hot path — so they can sit inside the pipeline's checking loop and the
// HTTP handlers without perturbing either. Families (CounterVec,
// HistogramVec) pay one short mutexed map lookup to resolve a label set
// to its instrument; callers on hot paths should resolve once and keep
// the handle.
//
// Instruments are purely observational: nothing in this package feeds
// back into the algorithms, so a run with metrics attached is
// byte-identical to one without (the pipeline's determinism suite pins
// this down).
package obsv

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 (float so budget spend,
// not just event counts, can accumulate). Safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates a (possibly negative) delta.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat accumulates a float64 into an atomic bit store via CAS.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into a fixed ascending bucket layout
// (upper bounds, an implicit +Inf overflow bucket) and tracks their sum.
// The layout is fixed at construction so Observe is a binary search plus
// two atomic adds. Safe for concurrent use.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil bounds use DefSecondsBuckets (a latency-in-seconds layout).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64{}, bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// DefSecondsBuckets is the default layout for durations in seconds, from
// half a millisecond to ten seconds.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket is one cumulative histogram bucket in a snapshot: the count of
// observations <= Le. The +Inf overflow is not listed; it is the
// snapshot's total count.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a histogram's point-in-time state.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]Bucket, len(h.bounds))}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		s.Buckets[i] = Bucket{Le: b, Count: cum}
	}
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// labelKey joins label values into a family map key; the same joined form
// appears as the key in JSON snapshots.
func labelKey(values []string) string { return strings.Join(values, ",") }

// checkLabels panics on a label-arity mismatch (a programming error).
func checkLabels(declared, values []string) {
	if len(values) != len(declared) {
		panic(fmt.Sprintf("obsv: %d label values for labels %v", len(values), declared))
	}
}

// CounterVec is a family of counters keyed by a fixed label set (e.g.
// route and status code). With resolves a label-value tuple to its
// counter, creating it on first use.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	m      map[string]*Counter
}

// With returns the counter for the given label values (one per declared
// label), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[k]
	if !ok {
		c = &Counter{}
		v.m[k] = c
	}
	return c
}

// Remove drops the family member for the given label values, so bounded
// registries (e.g. per-session families after eviction) do not grow
// forever. Removing an absent member is a no-op; a later With recreates
// the member from zero.
func (v *CounterVec) Remove(values ...string) {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.m, k)
}

func (v *CounterVec) snapshot() map[string]float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]float64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a family of gauges keyed by a fixed label set (e.g. one
// gauge per labeling session).
type GaugeVec struct {
	labels []string
	mu     sync.Mutex
	m      map[string]*Gauge
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.m[k]
	if !ok {
		g = &Gauge{}
		v.m[k] = g
	}
	return g
}

// Remove drops the family member for the given label values; see
// CounterVec.Remove.
func (v *GaugeVec) Remove(values ...string) {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.m, k)
}

func (v *GaugeVec) snapshot() map[string]float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]float64, len(v.m))
	for k, g := range v.m {
		out[k] = g.Value()
	}
	return out
}

// HistogramVec is a family of histograms sharing one bucket layout.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.Mutex
	m      map[string]*Histogram
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[k]
	if !ok {
		h = NewHistogram(v.bounds)
		v.m[k] = h
	}
	return h
}

// Remove drops the family member for the given label values; see
// CounterVec.Remove.
func (v *HistogramVec) Remove(values ...string) {
	checkLabels(v.labels, values)
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.m, k)
}

func (v *HistogramVec) snapshot() map[string]HistogramSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.snapshot()
	}
	return out
}

// MetricSnapshot is one instrument's state in a registry snapshot. Value
// is set for plain counters/gauges, Values for labeled families,
// Histogram/Histograms for the histogram forms.
type MetricSnapshot struct {
	Type       string                       `json:"type"`
	Help       string                       `json:"help,omitempty"`
	Labels     []string                     `json:"labels,omitempty"`
	Value      *float64                     `json:"value,omitempty"`
	Values     map[string]float64           `json:"values,omitempty"`
	Histogram  *HistogramSnapshot           `json:"histogram,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// registered pairs an instrument with its metadata.
type registered struct {
	help   string
	labels []string
	inst   any
}

// Registry names instruments and snapshots them as one JSON document.
// Registration is not hot-path; do it once at service construction.
type Registry struct {
	mu    sync.Mutex
	names []string
	m     map[string]registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]registered)}
}

// register adds an instrument; duplicate names are a programming error.
func (r *Registry) register(name, help string, labels []string, inst any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic("obsv: duplicate metric name " + name)
	}
	r.names = append(r.names, name)
	r.m[name] = registered{help: help, labels: labels, inst: inst}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, nil, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, nil, g)
	return g
}

// Histogram registers and returns a new histogram; nil bounds use
// DefSecondsBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, nil, h)
	return h
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, m: make(map[string]*Counter)}
	r.register(name, help, labels, v)
	return v
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, m: make(map[string]*Gauge)}
	r.register(name, help, labels, v)
	return v
}

// HistogramVec registers and returns a labeled histogram family; nil
// bounds use DefSecondsBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{labels: labels, bounds: bounds, m: make(map[string]*Histogram)}
	r.register(name, help, labels, v)
	return v
}

// Snapshot captures every registered instrument's current state.
func (r *Registry) Snapshot() map[string]MetricSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]MetricSnapshot, len(r.names))
	for _, name := range r.names {
		reg := r.m[name]
		ms := MetricSnapshot{Help: reg.help, Labels: reg.labels}
		switch inst := reg.inst.(type) {
		case *Counter:
			ms.Type = "counter"
			v := inst.Value()
			ms.Value = &v
		case *Gauge:
			ms.Type = "gauge"
			v := inst.Value()
			ms.Value = &v
		case *Histogram:
			ms.Type = "histogram"
			h := inst.snapshot()
			ms.Histogram = &h
		case *CounterVec:
			ms.Type = "counter"
			ms.Values = inst.snapshot()
		case *GaugeVec:
			ms.Type = "gauge"
			ms.Values = inst.snapshot()
		case *HistogramVec:
			ms.Type = "histogram"
			ms.Histograms = inst.snapshot()
		}
		out[name] = ms
	}
	return out
}

// WriteJSON writes the snapshot as one indented JSON object, keys sorted
// (encoding/json sorts map keys), expvar-style.
func (r *Registry) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry snapshot as application/json — mount it as
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
