package obsv

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				c.Add(0.5)
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), 8*1000*1.5; got != want {
		t.Fatalf("counter = %v, want %v", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	c.Add(-5)
	if got := c.Value(); got != 8*1000*1.5 {
		t.Fatalf("counter moved on negative add: %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 18 {
		t.Fatalf("sum = %v, want 18", s.Sum)
	}
	// Cumulative: <=1 → {0.5, 1}, <=2 → +{1.5, 2}, <=5 → +{3}; 10 overflows.
	want := []Bucket{{1, 2}, {2, 4}, {5, 5}}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "route", "code")
	v.With("GET /status", "200").Add(3)
	v.With("GET /status", "200").Inc()
	v.With("POST /answers", "409").Inc()
	snap := v.snapshot()
	if snap["GET /status,200"] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["POST /answers,409"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	v.With("only-one")
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rounds_total", "completed rounds")
	g := r.Gauge("inflight", "in-flight requests")
	h := r.Histogram("latency_seconds", "round wall time", []float64{0.1, 1})
	hv := r.HistogramVec("route_latency_seconds", "per route", []float64{0.5}, "route")
	c.Add(2)
	g.Set(7)
	h.Observe(0.05)
	h.Observe(3)
	hv.With("GET /labels").Observe(0.2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if got := decoded["rounds_total"]; got.Type != "counter" || got.Value == nil || *got.Value != 2 {
		t.Fatalf("rounds_total = %+v", got)
	}
	if got := decoded["inflight"]; *got.Value != 7 {
		t.Fatalf("inflight = %+v", got)
	}
	hs := decoded["latency_seconds"].Histogram
	if hs == nil || hs.Count != 2 || hs.Sum != 3.05 {
		t.Fatalf("latency_seconds = %+v", hs)
	}
	if got := decoded["route_latency_seconds"].Histograms["GET /labels"]; got.Count != 1 {
		t.Fatalf("route_latency_seconds = %+v", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Gauge("x", "")
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var decoded map[string]MetricSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if *decoded["hits"].Value != 1 {
		t.Fatalf("hits = %+v", decoded["hits"])
	}
}

func TestGaugeVecAndRemove(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("session_quality", "per-session quality", "session")
	gv.With("s1").Set(3.5)
	gv.With("s2").Set(-1)
	snap := r.Snapshot()["session_quality"]
	if snap.Type != "gauge" || snap.Values["s1"] != 3.5 || snap.Values["s2"] != -1 {
		t.Fatalf("gauge vec snapshot = %+v", snap)
	}
	// Removing a member drops it from the snapshot; a later With starts
	// from zero.
	gv.Remove("s1")
	snap = r.Snapshot()["session_quality"]
	if _, ok := snap.Values["s1"]; ok {
		t.Fatalf("removed member still present: %+v", snap)
	}
	if got := gv.With("s1").Value(); got != 0 {
		t.Fatalf("recreated member = %v, want 0", got)
	}
	gv.Remove("ghost") // absent member: no-op, no panic
}

func TestVecRemove(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs", "", "route")
	cv.With("/a").Inc()
	cv.Remove("/a")
	if vals := r.Snapshot()["reqs"].Values; len(vals) != 0 {
		t.Fatalf("counter member survived Remove: %+v", vals)
	}
	hv := r.HistogramVec("lat", "", nil, "route")
	hv.With("/a").Observe(0.1)
	hv.Remove("/a")
	if hs := r.Snapshot()["lat"].Histograms; len(hs) != 0 {
		t.Fatalf("histogram member survived Remove: %+v", hs)
	}
}

func TestVecRemoveBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label arity mismatch")
		}
	}()
	v := &CounterVec{labels: []string{"a", "b"}, m: map[string]*Counter{}}
	v.Remove("only-one")
}
