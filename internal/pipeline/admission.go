package pipeline

import (
	"context"

	"hcrowd/internal/belief"
	"hcrowd/internal/dataset"
)

// AdmissionSource feeds task fragments into a running engine, turning the
// closed checking loop into an event-driven round scheduler: the engine
// polls it at every round boundary and folds the returned fragments into
// the dataset, beliefs, stop-rule state and selection caches before
// planning the next round.
//
// Poll with wait == false returns immediately with whatever has arrived
// since the last call (possibly nothing). Poll with wait == true is the
// engine's idle path — the budget is exhausted or nothing is left worth
// checking — and must block until at least one fragment is available or
// the stream is finished; an empty result under wait == true means no
// more tasks will ever arrive and ends the run. Implementations must be
// deterministic relative to the round schedule for seed-reproducible
// runs: the engine issues exactly one non-blocking poll per round
// boundary, in round order.
type AdmissionSource interface {
	Poll(ctx context.Context, wait bool) ([]*dataset.Fragment, error)
}

// ScheduleSource is the deterministic AdmissionSource used by the
// streaming experiments and tests: Batches[i] is handed out on the i-th
// poll (the engine polls once per round boundary, so batch i arrives
// before round i+1 plans). A blocking poll skips empty batches — they
// model boundaries where nothing arrived — and the stream finishes when
// the batches run out. Not safe for concurrent use; drive one engine per
// source.
type ScheduleSource struct {
	Batches [][]*dataset.Fragment
	next    int
}

// Poll implements AdmissionSource.
func (s *ScheduleSource) Poll(_ context.Context, wait bool) ([]*dataset.Fragment, error) {
	for s.next < len(s.Batches) {
		b := s.Batches[s.next]
		s.next++
		if len(b) > 0 || !wait {
			return b, nil
		}
	}
	return nil, nil
}

// fragmentBeliefs initializes the beliefs of one admitted fragment's
// tasks from its batch-local answer matrix, under the run's configured
// initialization strategy (aggregator, structural prior, coupling). A
// fragment arriving without preliminary answers starts uniform — running
// an aggregator over an empty matrix adds nothing, every fact would sit
// at 0.5 regardless.
func fragmentBeliefs(fr *dataset.Fragment, local *dataset.Matrix, cfg Config) ([]*belief.Dist, error) {
	// InitBeliefsWithPrior reads only Tasks and Prelim, both of which are
	// fragment-local here, so the marginals land on the right local facts.
	tmp := &dataset.Dataset{Truth: fr.Truth, Tasks: fr.Tasks, Prelim: local}
	uniform := cfg.UniformInit || local.NumAnswers() == 0
	if cfg.Prior != nil {
		return InitBeliefsWithPrior(tmp, cfg.Init, uniform, cfg.Prior)
	}
	return InitBeliefsCoupled(tmp, cfg.Init, uniform, cfg.PriorCoupling)
}

// admitAll folds admission batches into the running engine's state, in
// arrival order: grow the dataset, initialize the new tasks' beliefs,
// extend the stop-rule vectors, grow the plan's selection cache, and
// refill the rolling budget window once per fragment. It returns the
// number of tasks admitted.
func admitAll(ds *dataset.Dataset, cfg Config, plan roundPlan, st *stopState, frags []*dataset.Fragment, beliefs *[]*belief.Dist, budget *float64) (int, error) {
	tasks := 0
	for _, fr := range frags {
		if fr == nil {
			continue
		}
		_, local, err := ds.Admit(fr)
		if err != nil {
			return tasks, err
		}
		nb, err := fragmentBeliefs(fr, local, cfg)
		if err != nil {
			return tasks, err
		}
		*beliefs = append(*beliefs, nb...)
		st.admit(ds)
		plan.admit(len(ds.Tasks))
		*budget += cfg.BudgetWindow
		tasks += len(nb)
	}
	return tasks, nil
}

// admit grows the stop-rule vectors to the dataset's current size; new
// facts start with zero votes (never frozen — the rule needs at least one
// answer to fire) and new tasks with an all-false frozen row.
func (s *stopState) admit(ds *dataset.Dataset) {
	if s.rule == nil {
		return
	}
	n := ds.NumFacts()
	for len(s.yes) < n {
		s.yes = append(s.yes, 0)
		s.no = append(s.no, 0)
	}
	for t := len(s.frozen); t < len(ds.Tasks); t++ {
		s.frozen = append(s.frozen, make([]bool, len(ds.Tasks[t])))
	}
}

// admit implements roundPlan for uniformPlan: grow the incremental
// selection cache (a stateless selector needs nothing — it re-reads the
// problem every round).
func (u *uniformPlan) admit(total int) {
	if u.state != nil {
		u.state.Admit(total)
	}
}

// admit implements roundPlan for costPlan.
func (c *costPlan) admit(total int) { c.state.Admit(total) }

// compile-time checks that both plans stay event-driven.
var (
	_ roundPlan       = (*uniformPlan)(nil)
	_ roundPlan       = (*costPlan)(nil)
	_ AdmissionSource = (*ScheduleSource)(nil)
)
