package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/taskselect"
)

// CheckpointVersion is the current checkpoint format version. Version 0
// (the original beliefs+spend format, which predates the field) still
// loads; the warm-resume sections below are optional.
const CheckpointVersion = 1

// StopVotes is the stopping rule's per-fact vote counts in global fact
// order, checkpointed so a resumed run freezes exactly the facts the
// interrupted run would have.
type StopVotes struct {
	Yes []int `json:"yes"`
	No  []int `json:"no"`
}

// Checkpoint captures a run's resumable state: the per-task beliefs and
// the budget already spent, plus — since version 1 — the optional warm
// sections: the incremental selector's gain cache and the stopping
// rule's vote counts. Long labeling jobs can persist it between rounds
// (see Config.OnCheckpoint) and continue after a restart; the answer
// stream itself is not replayed — the beliefs already incorporate it. A
// warm resume re-scans no unchanged task: the selection cache holds the
// round-start gains the interrupted run had already computed.
type Checkpoint struct {
	Version     int                        `json:"version,omitempty"`
	Beliefs     []*belief.Dist             `json:"beliefs"`
	BudgetSpent float64                    `json:"budget_spent"`
	Selection   *taskselect.SelectionCache `json:"selection_cache,omitempty"`
	StopVotes   *StopVotes                 `json:"stop_votes,omitempty"`
}

// NewCheckpoint snapshots a result's state, including the warm-resume
// sections when the run produced them.
func NewCheckpoint(res *Result) *Checkpoint {
	beliefs := make([]*belief.Dist, len(res.Beliefs))
	for i, b := range res.Beliefs {
		beliefs[i] = b.Clone()
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		Beliefs:     beliefs,
		BudgetSpent: res.BudgetSpent,
		Selection:   res.selCache,
		StopVotes:   res.stopVotes,
	}
}

// Write serializes the checkpoint as JSON.
func (c *Checkpoint) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadCheckpoint deserializes a checkpoint written by Write. Checkpoints
// from before the versioned format (no version field, no warm sections)
// load as version 0 and resume cold.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint: %w", err)
	}
	if c.Version < 0 || c.Version > CheckpointVersion {
		return nil, fmt.Errorf("pipeline: checkpoint version %d, support <= %d", c.Version, CheckpointVersion)
	}
	if len(c.Beliefs) == 0 {
		return nil, errors.New("pipeline: checkpoint has no beliefs")
	}
	// NOT `< 0` alone: every comparison with NaN is false, so a NaN spend
	// would pass a plain sign check and poison all later budget math
	// (resumeSetup's remaining-budget clamp, accumulate's sums).
	if math.IsNaN(c.BudgetSpent) || math.IsInf(c.BudgetSpent, 0) {
		return nil, fmt.Errorf("pipeline: checkpoint has non-finite spend %v", c.BudgetSpent)
	}
	if c.BudgetSpent < 0 {
		return nil, errors.New("pipeline: checkpoint has negative spend")
	}
	if c.Selection != nil {
		if err := c.Selection.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint: %w", err)
		}
	}
	if v := c.StopVotes; v != nil {
		if len(v.Yes) != len(v.No) {
			return nil, fmt.Errorf("pipeline: checkpoint stop votes: %d yes vs %d no counts", len(v.Yes), len(v.No))
		}
		for i := range v.Yes {
			if v.Yes[i] < 0 || v.No[i] < 0 {
				return nil, fmt.Errorf("pipeline: checkpoint stop votes: negative count for fact %d", i)
			}
		}
	}
	return &c, nil
}

// matches verifies the checkpoint fits the dataset's task structure.
func (c *Checkpoint) matches(ds *dataset.Dataset) error {
	if len(c.Beliefs) != len(ds.Tasks) {
		return fmt.Errorf("pipeline: checkpoint has %d tasks, dataset has %d", len(c.Beliefs), len(ds.Tasks))
	}
	for t, b := range c.Beliefs {
		if b == nil {
			return fmt.Errorf("pipeline: checkpoint task %d belief missing", t)
		}
		if b.NumFacts() != len(ds.Tasks[t]) {
			return fmt.Errorf("pipeline: checkpoint task %d has %d facts, dataset has %d",
				t, b.NumFacts(), len(ds.Tasks[t]))
		}
	}
	return nil
}

// resumeSetup shares the validation and state reconstruction between the
// two resume flavors: it clamps cfg.Budget to what remains and clones
// the checkpointed beliefs.
func resumeSetup(ds *dataset.Dataset, cfg *Config, c *Checkpoint) (crowd.Crowd, []*belief.Dist, error) {
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	if err := c.matches(ds); err != nil {
		return nil, nil, err
	}
	if cfg.K < 1 {
		return nil, nil, fmt.Errorf("pipeline: K = %d, need >= 1", cfg.K)
	}
	if cfg.Source == nil {
		return nil, nil, errors.New("pipeline: Config.Source is required")
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, nil, errors.New("pipeline: no expert workers above theta")
	}
	remaining := cfg.Budget - c.BudgetSpent
	if remaining < 0 {
		remaining = 0
	}
	cfg.Budget = remaining
	beliefs := make([]*belief.Dist, len(c.Beliefs))
	for i, b := range c.Beliefs {
		beliefs[i] = b.Clone()
	}
	return ce, beliefs, nil
}

// accumulate folds the pre-checkpoint spend back into a resumed result,
// so the report reads cumulatively from the job's start.
func accumulate(res *Result, spentBefore float64) *Result {
	res.BudgetSpent += spentBefore
	for i := range res.Rounds {
		res.Rounds[i].BudgetSpent += spentBefore
	}
	return res
}

// Resume continues a run from a checkpoint: cfg.Budget is the job's total
// budget, of which the checkpoint's spend is already consumed.
// Initialization settings in cfg (Init, UniformInit, priors) are ignored —
// the checkpointed beliefs are the state. A version-1 checkpoint resumes
// warm: the selection cache skips the initial full gain scan, and the
// stop votes restore the frozen facts.
func Resume(ctx context.Context, ds *dataset.Dataset, cfg Config, c *Checkpoint) (*Result, error) {
	if cfg.Selector == nil {
		cfg.Selector = defaultSelector()
	}
	ce, beliefs, err := resumeSetup(ds, &cfg, c)
	if err != nil {
		return nil, err
	}
	res, err := runUniform(ctx, ds, cfg, ce, beliefs, c.Selection, c.StopVotes, c.BudgetSpent)
	if err != nil {
		return nil, err
	}
	return accumulate(res, c.BudgetSpent), nil
}

// ResumeCostAware is Resume for the cost-aware loop: it continues a run
// started by RunCostAware from its checkpoint, warm when the checkpoint
// carries the assignment engine's unit-gain cache.
func ResumeCostAware(ctx context.Context, ds *dataset.Dataset, cfg Config, c *Checkpoint) (*Result, error) {
	ce, beliefs, err := resumeSetup(ds, &cfg, c)
	if err != nil {
		return nil, err
	}
	res, err := runCost(ctx, ds, cfg, ce, beliefs, c.Selection, c.StopVotes, c.BudgetSpent)
	if err != nil {
		return nil, err
	}
	return accumulate(res, c.BudgetSpent), nil
}
