package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hcrowd/internal/belief"
	"hcrowd/internal/dataset"
)

// Checkpoint captures a run's resumable state: the per-task beliefs and
// the budget already spent. Long labeling jobs can persist it between
// rounds and continue after a restart; the answer stream itself is not
// replayed — the beliefs already incorporate it.
type Checkpoint struct {
	Beliefs     []*belief.Dist `json:"beliefs"`
	BudgetSpent float64        `json:"budget_spent"`
}

// NewCheckpoint snapshots a result's state.
func NewCheckpoint(res *Result) *Checkpoint {
	beliefs := make([]*belief.Dist, len(res.Beliefs))
	for i, b := range res.Beliefs {
		beliefs[i] = b.Clone()
	}
	return &Checkpoint{Beliefs: beliefs, BudgetSpent: res.BudgetSpent}
}

// Write serializes the checkpoint as JSON.
func (c *Checkpoint) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadCheckpoint deserializes a checkpoint written by Write.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint: %w", err)
	}
	if len(c.Beliefs) == 0 {
		return nil, errors.New("pipeline: checkpoint has no beliefs")
	}
	if c.BudgetSpent < 0 {
		return nil, errors.New("pipeline: checkpoint has negative spend")
	}
	return &c, nil
}

// matches verifies the checkpoint fits the dataset's task structure.
func (c *Checkpoint) matches(ds *dataset.Dataset) error {
	if len(c.Beliefs) != len(ds.Tasks) {
		return fmt.Errorf("pipeline: checkpoint has %d tasks, dataset has %d", len(c.Beliefs), len(ds.Tasks))
	}
	for t, b := range c.Beliefs {
		if b == nil {
			return fmt.Errorf("pipeline: checkpoint task %d belief missing", t)
		}
		if b.NumFacts() != len(ds.Tasks[t]) {
			return fmt.Errorf("pipeline: checkpoint task %d has %d facts, dataset has %d",
				t, b.NumFacts(), len(ds.Tasks[t]))
		}
	}
	return nil
}

// Resume continues a run from a checkpoint: cfg.Budget is the job's total
// budget, of which the checkpoint's spend is already consumed.
// Initialization settings in cfg (Init, UniformInit, priors) are ignored —
// the checkpointed beliefs are the state.
func Resume(ctx context.Context, ds *dataset.Dataset, cfg Config, c *Checkpoint) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := c.matches(ds); err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K = %d, need >= 1", cfg.K)
	}
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Config.Source is required")
	}
	if cfg.Selector == nil {
		cfg.Selector = defaultSelector()
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("pipeline: no expert workers above theta")
	}
	remaining := cfg.Budget - c.BudgetSpent
	if remaining < 0 {
		remaining = 0
	}
	cfg.Budget = remaining
	beliefs := make([]*belief.Dist, len(c.Beliefs))
	for i, b := range c.Beliefs {
		beliefs[i] = b.Clone()
	}
	res, err := runLoop(ctx, ds, cfg, ce, beliefs)
	if err != nil {
		return nil, err
	}
	// Report cumulative spend and renumber rounds after the checkpoint.
	res.BudgetSpent += c.BudgetSpent
	for i := range res.Rounds {
		res.Rounds[i].BudgetSpent += c.BudgetSpent
	}
	return res, nil
}
