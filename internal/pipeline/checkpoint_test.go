package pipeline

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"hcrowd/internal/belief"
)

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Running 40 budget straight must equal running 20, checkpointing,
	// and resuming for the rest — with the same answer stream seeds the
	// selections differ only through answer-draw order, so compare the
	// budget accounting and that both improve comparably.
	ds := smallDataset(t, 80)
	full := baseConfig(ds)
	full.Budget = 40
	resFull, err := Run(context.Background(), ds, full)
	if err != nil {
		t.Fatal(err)
	}

	half := baseConfig(ds)
	half.Budget = 20
	resHalf, err := Run(context.Background(), ds, half)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpoint(resHalf)

	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resume := baseConfig(ds)
	resume.Budget = 40 // total job budget
	resResumed, err := Resume(context.Background(), ds, resume, restored)
	if err != nil {
		t.Fatal(err)
	}
	if resResumed.BudgetSpent != 40 {
		t.Errorf("resumed cumulative spend = %v, want 40", resResumed.BudgetSpent)
	}
	if len(resResumed.Rounds) == 0 {
		t.Fatal("resume ran no rounds")
	}
	if first := resResumed.Rounds[0].BudgetSpent; first <= 20 {
		t.Errorf("first resumed round cumulative spend = %v, want > 20", first)
	}
	// Both full and resumed runs end with materially improved quality.
	if resResumed.Quality <= resHalf.Quality {
		t.Errorf("resume did not improve on checkpoint: %v -> %v", resHalf.Quality, resResumed.Quality)
	}
	if math.Abs(resResumed.Quality-resFull.Quality) > 0.35*math.Abs(resFull.Quality) {
		t.Errorf("resumed %v far from straight-through %v", resResumed.Quality, resFull.Quality)
	}
}

func TestCheckpointRoundTripExact(t *testing.T) {
	ds := smallDataset(t, 81)
	cfg := baseConfig(ds)
	cfg.Budget = 10
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpoint(res)
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.BudgetSpent != ck.BudgetSpent {
		t.Errorf("spend changed: %v vs %v", back.BudgetSpent, ck.BudgetSpent)
	}
	for i := range ck.Beliefs {
		a, b := ck.Beliefs[i].Probs(), back.Beliefs[i].Probs()
		for o := range a {
			if math.Abs(a[o]-b[o]) > 1e-12 {
				t.Fatalf("task %d belief changed at %d", i, o)
			}
		}
	}
}

func TestCheckpointIsolatedFromResult(t *testing.T) {
	ds := smallDataset(t, 82)
	cfg := baseConfig(ds)
	cfg.Budget = 6
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpoint(res)
	before := ck.Beliefs[0].Probs()
	// Mutate the result's belief; the checkpoint must not move.
	ce, _ := ds.Split()
	src := NewSimulated(5, ds)
	fam, err := src.Answers(ce, []int{ds.Tasks[0][0]})
	if err != nil {
		t.Fatal(err)
	}
	local, err := relabelFamily(fam, []int{ds.Tasks[0][0]}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Beliefs[0].Update(local); err != nil {
		t.Fatal(err)
	}
	after := ck.Beliefs[0].Probs()
	for o := range before {
		if before[o] != after[o] {
			t.Fatal("checkpoint aliases result beliefs")
		}
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	cases := []string{
		``,
		`not json`,
		`{"beliefs": [], "budget_spent": 3}`,
		`{"beliefs": [{"joint": [0.5, 0.5]}], "budget_spent": -1}`,
		`{"beliefs": [{"joint": [0.5, 0.4, 0.1]}], "budget_spent": 0}`, // not 2^m
		`{"unknown": true}`,
	}
	for _, in := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// TestReadCheckpointNonFinite pins the NaN regression: `spend < 0` is
// false for NaN, so a plain sign check let a NaN (or ±Inf) spend
// through, and every later budget subtraction — resumeSetup's clamp,
// accumulate's cumulative sums — stayed NaN for the rest of the job.
// Non-finite belief probabilities are rejected too (by the belief
// decoder itself; the case here keeps that covered from this layer).
func TestReadCheckpointNonFinite(t *testing.T) {
	cases := []string{
		`{"beliefs": [{"joint": [0.5, 0.5]}], "budget_spent": "NaN"}`,
		`{"beliefs": [{"joint": [NaN, 0.5]}], "budget_spent": 1}`,
		`{"beliefs": [{"joint": [0.5, 0.5]}], "budget_spent": NaN}`,
		`{"beliefs": [{"joint": [0.5, 0.5]}], "budget_spent": Infinity}`,
	}
	for _, in := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	// Bare JSON cannot spell NaN, but a hand-built (or corrupted)
	// Checkpoint value can carry one; the decoder must reject it on the
	// write->read round trip a journal replay performs.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := &Checkpoint{
			Version:     CheckpointVersion,
			Beliefs:     []*belief.Dist{mustDist(t, []float64{0.5, 0.5})},
			BudgetSpent: bad,
		}
		var buf bytes.Buffer
		// json.Marshal refuses non-finite floats outright, which is fine:
		// either the write fails loudly or the read must.
		if err := c.Write(&buf); err != nil {
			continue
		}
		if _, err := ReadCheckpoint(&buf); err == nil {
			t.Errorf("accepted checkpoint with spend %v", bad)
		}
	}
}

// mustDist builds a belief distribution from an explicit joint.
func mustDist(t *testing.T, joint []float64) *belief.Dist {
	t.Helper()
	d, err := belief.FromJoint(joint)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestResumeValidation(t *testing.T) {
	ds := smallDataset(t, 83)
	cfg := baseConfig(ds)
	cfg.Budget = 6
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpoint(res)
	ctx := context.Background()
	// Mismatched dataset.
	other := smallDataset(t, 84)
	otherCfg := baseConfig(other)
	ck2 := &Checkpoint{Beliefs: ck.Beliefs[:len(ck.Beliefs)-1], BudgetSpent: ck.BudgetSpent}
	if _, err := Resume(ctx, other, otherCfg, ck2); err == nil {
		t.Error("task-count mismatch accepted")
	}
	// Exhausted budget resumes to a no-op.
	done := baseConfig(ds)
	done.Budget = ck.BudgetSpent // nothing left
	resDone, err := Resume(ctx, ds, done, ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(resDone.Rounds) != 0 {
		t.Errorf("exhausted resume ran %d rounds", len(resDone.Rounds))
	}
	if resDone.BudgetSpent != ck.BudgetSpent {
		t.Errorf("exhausted resume spend %v", resDone.BudgetSpent)
	}
	// Missing source.
	noSrc := Config{K: 1, Budget: 20}
	if _, err := Resume(ctx, ds, noSrc, ck); err == nil {
		t.Error("missing source accepted")
	}
}
