package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/taskselect"
)

// RunCostAware executes the §III-D cost extension end to end: instead of
// sending every selected query to every expert, each round greedily buys
// individual (query, expert) answer units by gain-per-cost
// (taskselect.CostGreedy) until the round's chunk of the budget is spent.
// cfg.Cost prices one answer (unit cost when nil); cfg.K scales the
// per-round chunk to K times the mean expert answer price, mirroring the
// K·|CE| cadence of the uniform design.
func RunCostAware(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K = %d, need >= 1", cfg.K)
	}
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Config.Source is required")
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("pipeline: no expert workers above theta")
	}
	cost := cfg.Cost
	if cost == nil {
		cost = func(crowd.Worker) float64 { return 1 }
	}
	var minCost, meanCost float64
	for i, w := range ce {
		c := cost(w)
		if c <= 0 {
			return nil, errors.New("pipeline: non-positive worker cost")
		}
		if i == 0 || c < minCost {
			minCost = c
		}
		meanCost += c
	}
	meanCost /= float64(len(ce))

	beliefs, err := initFor(ds, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Beliefs: beliefs}
	res.InitQuality = totalQuality(beliefs)
	initAcc, err := totalAccuracy(ds, beliefs)
	if err != nil {
		return nil, err
	}
	res.InitAccuracy = initAcc

	selector := taskselect.CostGreedy{Cost: cost}
	remaining := cfg.Budget
	round := 0
	// The guard mirrors runLoop's Algorithm 1 line 8 fix: the loop stops
	// only when even the cheapest single answer is unaffordable, and the
	// per-round chunk below is clamped to the remaining budget so the
	// final round spends what is left instead of stranding it.
	for remaining >= minCost {
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := float64(cfg.K) * meanCost
		if chunk > remaining {
			chunk = remaining
		}
		problem := taskselect.Problem{Beliefs: beliefs, Experts: ce}
		units, err := selector.SelectAssign(ctx, problem, chunk)
		if err != nil {
			return nil, err
		}
		if len(units) == 0 {
			break
		}
		// Group the units per (task, worker): each group is one answer
		// set, applied as its own single-member family (workers answer
		// independently given the observation, so sequential updates are
		// exact).
		type key struct {
			task   int
			worker string
		}
		groups := make(map[key][]int) // local facts
		workers := make(map[key]crowd.Worker)
		var spent float64
		var picks []taskselect.Candidate
		for _, u := range units {
			k := key{u.Task, u.Worker.ID}
			groups[k] = append(groups[k], u.Fact)
			workers[k] = u.Worker
			spent += cost(u.Worker)
			picks = append(picks, taskselect.Candidate{Task: u.Task, Fact: u.Fact})
		}
		// Sorted iteration keeps the shared answer-source RNG on a
		// deterministic schedule (map order is randomized per process);
		// same fix as runLoop's byTask loop.
		keys := make([]key, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].task != keys[j].task {
				return keys[i].task < keys[j].task
			}
			return keys[i].worker < keys[j].worker
		})
		for _, k := range keys {
			locals := groups[k]
			globals := make([]int, len(locals))
			for i, lf := range locals {
				globals[i] = ds.Tasks[k.task][lf]
			}
			fam, err := cfg.Source.Answers(crowd.Crowd{workers[k]}, globals)
			if err != nil {
				return nil, err
			}
			local, err := relabelFamily(fam, globals, locals)
			if err != nil {
				return nil, err
			}
			if err := beliefs[k.task].Update(local); err != nil {
				return nil, err
			}
		}
		remaining -= spent
		res.BudgetSpent += spent
		round++
		q := totalQuality(beliefs)
		acc, err := totalAccuracy(ds, beliefs)
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, RoundStats{
			Round:       round,
			Picks:       picks,
			BudgetSpent: res.BudgetSpent,
			Quality:     q,
			Accuracy:    acc,
		})
	}
	res.Quality = totalQuality(beliefs)
	finalAcc, err := totalAccuracy(ds, beliefs)
	if err != nil {
		return nil, err
	}
	res.Accuracy = finalAcc
	res.Labels = finalLabels(ds, beliefs)
	return res, nil
}
