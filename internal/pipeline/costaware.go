package pipeline

import (
	"context"
	"errors"
	"fmt"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/taskselect"
)

// RunCostAware executes the §III-D cost extension end to end: instead of
// sending every selected query to every expert, each round greedily buys
// individual (query, expert) answer units by gain-per-cost until the
// round's chunk of the budget is spent. cfg.Cost prices one answer (unit
// cost when nil); cfg.K scales the per-round chunk to K times the mean
// expert answer price, mirroring the K·|CE| cadence of the uniform
// design. It runs on the same round engine as Run — the budget is
// charged for answers actually received, cfg.Stop freezes settled facts
// out of the assignment selection, and unit gains are cached between
// rounds (see taskselect.AssignState).
func RunCostAware(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K = %d, need >= 1", cfg.K)
	}
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Config.Source is required")
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("pipeline: no expert workers above theta")
	}
	beliefs, err := initFor(ds, cfg)
	if err != nil {
		return nil, err
	}
	return runCost(ctx, ds, cfg, ce, beliefs, nil, nil, 0)
}

// runCost assembles the cost-aware flavor of the engine; the parameters
// mirror runUniform. RunCostAware and ResumeCostAware share it.
func runCost(ctx context.Context, ds *dataset.Dataset, cfg Config, ce crowd.Crowd, beliefs []*belief.Dist, warm *taskselect.SelectionCache, votes *StopVotes, spentBefore float64) (*Result, error) {
	plan, err := newCostPlan(cfg, ce, warm)
	if err != nil {
		return nil, err
	}
	st, err := newStopState(ds, cfg.Stop, votes)
	if err != nil {
		return nil, err
	}
	return runEngine(ctx, ds, cfg, ce, beliefs, plan, st, spentBefore)
}
