package pipeline

import (
	"context"
	"errors"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/taskselect"
)

func TestRunCostAwareImproves(t *testing.T) {
	ds := smallDataset(t, 90)
	cfg := baseConfig(ds)
	cfg.Budget = 40
	res, err := RunCostAware(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= res.InitQuality {
		t.Errorf("no quality gain: %v -> %v", res.InitQuality, res.Quality)
	}
	if res.BudgetSpent > cfg.Budget {
		t.Errorf("overspent: %v > %v", res.BudgetSpent, cfg.Budget)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
}

func TestRunCostAwareSkewedPricesFavorCheapExpert(t *testing.T) {
	// One expert is 10x the price of the other at similar accuracy: the
	// cost-aware selector must route most answers to the cheap one.
	ds := smallDataset(t, 91)
	ce, _ := ds.Split()
	if len(ce) < 2 {
		t.Skip("need two experts")
	}
	pricey := ce[0].ID
	cfg := baseConfig(ds)
	cfg.Budget = 30
	cfg.Cost = func(w crowd.Worker) float64 {
		if w.ID == pricey {
			return 10
		}
		return 1
	}
	res, err := RunCostAware(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent > cfg.Budget {
		t.Errorf("overspent %v", res.BudgetSpent)
	}
	// Reconstruct per-expert usage from spend: with 30 budget and cheap
	// answers costing 1, heavy pricey usage would blow past the round
	// count. Check quality still improved.
	if res.Quality <= res.InitQuality {
		t.Error("skewed prices prevented improvement")
	}
}

func TestRunCostAwareAgainstUniformAtEqualSpend(t *testing.T) {
	// With strongly skewed prices, buying answers unit-by-unit must beat
	// (or match) the uniform design that always pays for every expert.
	var costSum, uniformSum float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		ds := smallDataset(t, 600+s)
		ce, _ := ds.Split()
		pricey := ce[0].ID
		costFn := func(w crowd.Worker) float64 {
			if w.ID == pricey {
				return 5
			}
			return 1
		}
		cfg := baseConfig(ds)
		cfg.Budget = 36
		cfg.Cost = costFn
		cfg.Source = NewSimulated(700+s, ds)
		ca, err := RunCostAware(context.Background(), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfgU := baseConfig(ds)
		cfgU.Budget = 36
		cfgU.Cost = costFn
		cfgU.Source = NewSimulated(700+s, ds)
		uni, err := Run(context.Background(), ds, cfgU)
		if err != nil {
			t.Fatal(err)
		}
		costSum += ca.Quality
		uniformSum += uni.Quality
	}
	if costSum < uniformSum-0.5 {
		t.Errorf("cost-aware total quality %v below uniform %v at equal spend",
			costSum/trials, uniformSum/trials)
	}
}

func TestRunCostAwareValidation(t *testing.T) {
	ds := smallDataset(t, 92)
	ctx := context.Background()
	if _, err := RunCostAware(ctx, ds, Config{K: 0, Budget: 5, Source: NewSimulated(1, ds)}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := RunCostAware(ctx, ds, Config{K: 1, Budget: 5}); err == nil {
		t.Error("nil source accepted")
	}
	bad := baseConfig(ds)
	bad.Cost = func(crowd.Worker) float64 { return -1 }
	if _, err := RunCostAware(ctx, ds, bad); err == nil {
		t.Error("negative cost accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := RunCostAware(cancelled, ds, baseConfig(ds)); err == nil {
		t.Error("cancellation ignored")
	}
}

func TestRunCostAwareZeroBudget(t *testing.T) {
	ds := smallDataset(t, 93)
	cfg := baseConfig(ds)
	cfg.Budget = 0
	res, err := RunCostAware(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 || res.BudgetSpent != 0 {
		t.Error("zero budget ran rounds")
	}
}

// TestNewCostPlanEmptyCrowd pins the constructor-level guard: an empty
// expert crowd must fail with taskselect.ErrNoExperts instead of
// computing a NaN mean cost (meanCost /= 0) that would poison the
// per-round budget chunking. The public entry points pre-check the
// crowd too, but the plan must be safe on its own.
func TestNewCostPlanEmptyCrowd(t *testing.T) {
	plan, err := newCostPlan(Config{K: 1, Budget: 5}, nil, nil)
	if !errors.Is(err, taskselect.ErrNoExperts) {
		t.Fatalf("err = %v, want taskselect.ErrNoExperts", err)
	}
	if plan != nil {
		t.Fatalf("plan = %+v, want nil", plan)
	}
	if _, err := newCostPlan(Config{K: 1, Budget: 5}, crowd.Crowd{}, nil); !errors.Is(err, taskselect.ErrNoExperts) {
		t.Fatalf("empty (non-nil) crowd: err = %v, want taskselect.ErrNoExperts", err)
	}
}
