package pipeline

import (
	"context"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

func TestInitBeliefsCoupledInjectsCorrelation(t *testing.T) {
	ds := smallDataset(t, 31)
	coupled, err := InitBeliefsCoupled(ds, defaultInit(), false, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := InitBeliefsCoupled(ds, defaultInit(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged over tasks, adjacent-fact agreement must exceed the
	// product-form baseline.
	var cAgree, fAgree float64
	for i := range coupled {
		cAgree += coupled[i].Correlation(0, 1)
		fAgree += flat[i].Correlation(0, 1)
	}
	if cAgree <= fAgree {
		t.Errorf("coupling did not raise agreement: %v vs %v", cAgree, fAgree)
	}
}

func TestEstimateCouplingRecoversGenerator(t *testing.T) {
	// Strongly coupled generator -> high estimate; independent -> near 0.
	gen := func(alpha float64) float64 {
		cfg := dataset.DefaultSentiConfig()
		cfg.NumTasks = 300
		cfg.CorrelationAlpha = alpha
		ds, err := dataset.SentiLike(rngutil.New(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ds.EstimateCoupling()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	strong := gen(0.1) // couple = 1/1.1 ≈ 0.91
	weak := gen(100)   // couple ≈ 0.01
	if strong < 0.4 {
		t.Errorf("strong coupling estimated at %v", strong)
	}
	if weak > 0.15 {
		t.Errorf("independent data estimated at coupling %v", weak)
	}
	if strong <= weak {
		t.Errorf("estimates not ordered: %v <= %v", strong, weak)
	}
}

func TestRunWithPriorCouplingImprovesOrMatches(t *testing.T) {
	// With a correlated prior, expert evidence propagates within a task;
	// accuracy at equal budget should not be worse (averaged over seeds).
	var with, without float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		ds := smallDataset(t, 400+s)
		couple, err := ds.EstimateCoupling()
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(ds)
		cfg.Budget = 60
		cfg.Source = NewSimulated(500+s, ds)
		cfg.PriorCoupling = couple
		r1, err := Run(context.Background(), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := baseConfig(ds)
		cfg2.Budget = 60
		cfg2.Source = NewSimulated(500+s, ds)
		r2, err := Run(context.Background(), ds, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		with += r1.Accuracy
		without += r2.Accuracy
	}
	if with < without-0.02*trials {
		t.Errorf("coupled prior hurt accuracy: %v vs %v", with/trials, without/trials)
	}
}

func TestRunTiersWithCoupling(t *testing.T) {
	ds := smallDataset(t, 41)
	ce, _ := ds.Split()
	base := Config{K: 1, Source: NewSimulated(42, ds), PriorCoupling: 0.6}
	tiers := []TierConfig{{Experts: ce, Budget: 20}}
	res, err := RunTiers(context.Background(), ds, base, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < res.InitQuality {
		t.Error("coupled tier run did not improve quality")
	}
}

func TestRunWithOneHotPrior(t *testing.T) {
	cfg := dataset.DefaultMultiClassConfig()
	cfg.NumItems = 40
	ds, err := dataset.MultiClass(rngutil.New(61), cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := Config{
		K:      1,
		Budget: 40,
		Source: NewSimulated(62, ds),
		Prior:  belief.OneHotPrior,
	}
	res, err := Run(context.Background(), ds, run)
	if err != nil {
		t.Fatal(err)
	}
	// The exclusivity constraint must hold in every final belief: only
	// one-hot observations carry mass.
	for tIdx, b := range res.Beliefs {
		for o := 0; o < b.NumObservations(); o++ {
			ones := 0
			for f := 0; f < b.NumFacts(); f++ {
				if belief.Models(o, f) {
					ones++
				}
			}
			if ones != 1 && b.P(o) != 0 {
				t.Fatalf("task %d: non-one-hot observation %b has mass %v", tIdx, o, b.P(o))
			}
		}
	}
	if res.Quality < res.InitQuality {
		t.Error("one-hot run did not improve quality")
	}
	// Prior takes precedence over PriorCoupling.
	run.PriorCoupling = 0.5
	if _, err := Run(context.Background(), ds, run); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConfusionModelExperts(t *testing.T) {
	// End to end with asymmetric (TPR/TNR) checkers: one expert great at
	// confirming positives, one great at refuting.
	ds := smallDataset(t, 71)
	for i := range ds.Crowd {
		if ds.Crowd[i].Accuracy >= ds.Theta {
			if i%2 == 0 {
				ds.Crowd[i] = crowd.Worker{ID: ds.Crowd[i].ID, TPR: 0.99, TNR: 0.88}
			} else {
				ds.Crowd[i] = crowd.Worker{ID: ds.Crowd[i].ID, TPR: 0.88, TNR: 0.99}
			}
		}
	}
	cfg := baseConfig(ds)
	cfg.Budget = 60
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= res.InitQuality {
		t.Errorf("asym experts did not improve quality: %v -> %v", res.InitQuality, res.Quality)
	}
	if res.Accuracy < res.InitAccuracy-0.02 {
		t.Errorf("asym experts hurt accuracy: %v -> %v", res.InitAccuracy, res.Accuracy)
	}
}
