package pipeline

import (
	"context"
	"fmt"
	"testing"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
)

// fig2StyleConfig mirrors the experiment drivers' standard HC setup (EBCC
// initialization, estimated Markov coupling, simulated answers) at a
// reduced size, with K > 1 so a round touches several tasks — the exact
// shape that exposed the map-order nondeterminism this file pins down.
func fig2StyleConfig(t *testing.T, ds *dataset.Dataset, seed int64) Config {
	t.Helper()
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		K:             3,
		Budget:        60,
		Init:          aggregate.NewEBCC(seed + 1),
		Source:        NewSimulated(seed+2, ds),
		PriorCoupling: couple,
	}
}

// trace renders a run's per-round record. %v prints floats in the
// shortest round-tripping form, so equal strings mean bit-identical
// rounds: same picks, same spend, same quality and accuracy curves.
func trace(res *Result) string {
	return fmt.Sprintf("%+v | labels=%v | spent=%v", res.Rounds, res.Labels, res.BudgetSpent)
}

// TestRunDeterministicGivenSeed is the reproducibility regression test:
// two runs built from identical seeds must produce byte-identical round
// traces. Before the sorted-iteration fix, runLoop fed the shared seeded
// answer RNG in Go map order, so identical-seed runs drew different
// answers and the experiment curves silently varied between processes.
func TestRunDeterministicGivenSeed(t *testing.T) {
	variants := []struct {
		name string
		run  func(t *testing.T) string
	}{
		{"plain", func(t *testing.T) string {
			ds := smallDataset(t, 4)
			res, err := Run(context.Background(), ds, fig2StyleConfig(t, ds, 40))
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
		{"with-stop-rule", func(t *testing.T) string {
			ds := smallDataset(t, 4)
			cfg := fig2StyleConfig(t, ds, 40)
			cfg.Stop = &StopRule{C: 2, Eps: 0.1}
			res, err := Run(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
		{"cost-aware", func(t *testing.T) string {
			ds := smallDataset(t, 4)
			cfg := fig2StyleConfig(t, ds, 40)
			cfg.Budget = 30
			pricey := ""
			if ce, _ := ds.Split(); len(ce) > 0 {
				pricey = ce[0].ID
			}
			cfg.Cost = func(w crowd.Worker) float64 {
				if w.ID == pricey {
					return 2
				}
				return 1
			}
			res, err := RunCostAware(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
		{"tiers", func(t *testing.T) string {
			ds := smallDataset(t, 4)
			cfg := fig2StyleConfig(t, ds, 40)
			tiers, _, err := SplitTiers(ds.Crowd, ds.Theta, 2, 40)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunTiers(context.Background(), ds, cfg, tiers)
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			first := v.run(t)
			second := v.run(t)
			if first != second {
				t.Errorf("identical seeds diverged:\n run 1: %.200s…\n run 2: %.200s…", first, second)
			}
		})
	}
}

// TestSimulatedSourceOrderSensitivity documents why sorted iteration is
// load-bearing: the simulated source's RNG is shared across the round's
// tasks, so consuming families in a different task order yields different
// answers. If this ever fails (e.g. per-task derived streams via
// rngutil.Split), the sorted-iteration requirement can be revisited.
func TestSimulatedSourceOrderSensitivity(t *testing.T) {
	ds := smallDataset(t, 4)
	ce, _ := ds.Split()
	draw := func(order []int) string {
		src := NewSimulated(9, ds)
		out := ""
		for _, f := range order {
			fam, err := src.Answers(ce, []int{f})
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("%v", fam)
		}
		return out
	}
	if draw([]int{0, 1}) == draw([]int{1, 0}) {
		t.Skip("answer source became order-insensitive; sorted iteration no longer load-bearing")
	}
}
