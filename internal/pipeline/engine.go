package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"context"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/taskselect"
)

// purchase is one answer-collection order within a round: ask panel to
// answer the task's locals. The uniform flavor issues one purchase per
// touched task with the full expert crowd as the panel; the cost-aware
// flavor issues one purchase per bought (task, worker) group. The engine
// executes purchases in slice order, which plans must keep sorted by task
// (then panel) — the shared seeded answer source is order-sensitive.
type purchase struct {
	task   int
	locals []int
	panel  crowd.Crowd
}

// roundPlan is the strategy half of the checking loop: how one round's
// budget turns into answer purchases. The engine owns everything else —
// answer collection, spend accounting for answers actually received,
// belief updates, stop-rule bookkeeping, round stats, checkpoints.
type roundPlan interface {
	// plan proposes the round's purchases given the remaining budget.
	// Empty purchases end the run (budget exhausted or nothing left worth
	// buying). picks is the round's RoundStats record.
	plan(ctx context.Context, p taskselect.Problem, remaining float64) (buys []purchase, picks []taskselect.Candidate, err error)
	// invalidate reports the tasks whose beliefs the round updated, in
	// ascending order, so an incremental selector can drop only those.
	invalidate(tasks []int)
	// cache exports the plan's warm-resume selection state (nil when the
	// selector is not incremental).
	cache() *taskselect.SelectionCache
	// flavor names the plan for metrics ("uniform" or "costaware").
	flavor() string
	// stats snapshots the plan's cumulative selector work counters (zero
	// when the selector is not incremental).
	stats() taskselect.SelectStats
	// admit grows the plan's selection cache to total tasks after a
	// streaming admission, so existing tasks' cached gains survive
	// instead of cold-resyncing; a no-op for stateless selectors.
	admit(total int)
}

// stopState tracks the per-fact vote counts and frozen masks of the
// Abraham et al. stopping rule across rounds. A nil rule makes every
// method a no-op and the frozen mask nil.
type stopState struct {
	rule    *StopRule
	yes, no []int
	frozen  [][]bool
}

// newStopState builds the tracker, rebuilding the frozen masks from
// checkpointed vote counts when votes is non-nil. The rebuild equals the
// incremental marking of an uninterrupted run: votes only ever change for
// requested facts, and a frozen fact is never requested again, so its
// counts — and the rule's verdict on them — are final.
func newStopState(ds *dataset.Dataset, rule *StopRule, votes *StopVotes) (*stopState, error) {
	s := &stopState{rule: rule}
	if rule == nil {
		if votes != nil {
			return nil, errors.New("pipeline: checkpoint has stop votes but Config.Stop is unset")
		}
		return s, nil
	}
	n := ds.NumFacts()
	s.yes = make([]int, n)
	s.no = make([]int, n)
	if votes != nil {
		if len(votes.Yes) != n || len(votes.No) != n {
			return nil, fmt.Errorf("pipeline: checkpoint stop votes cover %d/%d facts, dataset has %d",
				len(votes.Yes), len(votes.No), n)
		}
		copy(s.yes, votes.Yes)
		copy(s.no, votes.No)
	}
	s.frozen = make([][]bool, len(ds.Tasks))
	for t, facts := range ds.Tasks {
		s.frozen[t] = make([]bool, len(facts))
		for j, g := range facts {
			if rule.Stopped(s.yes[g], s.no[g]) {
				s.frozen[t][j] = true
			}
		}
	}
	return s, nil
}

// observe folds one purchase's answers into the vote counts and freezes
// the requested facts the rule has settled. fam is task-local.
func (s *stopState) observe(ds *dataset.Dataset, task int, locals []int, fam crowd.AnswerFamily) {
	if s.rule == nil {
		return
	}
	for _, as := range fam {
		for i, lf := range as.Facts {
			g := ds.Tasks[task][lf]
			if as.Values[i] {
				s.yes[g]++
			} else {
				s.no[g]++
			}
		}
	}
	for _, lf := range locals {
		g := ds.Tasks[task][lf]
		if s.rule.Stopped(s.yes[g], s.no[g]) {
			s.frozen[task][lf] = true
		}
	}
}

// frozenCount counts the (task, fact) pairs the rule has settled.
func (s *stopState) frozenCount() int {
	n := 0
	for _, row := range s.frozen {
		for _, f := range row {
			if f {
				n++
			}
		}
	}
	return n
}

// snapshot exports the vote counts for checkpointing; nil without a rule.
func (s *stopState) snapshot() *StopVotes {
	if s.rule == nil {
		return nil
	}
	return &StopVotes{
		Yes: append([]int{}, s.yes...),
		No:  append([]int{}, s.no...),
	}
}

// runEngine is the single checking loop behind Run, RunCostAware,
// RunTiers and both resume flavors: repeatedly ask the plan what to buy,
// collect the answers in deterministic order, charge for the answers
// actually received, update the touched beliefs, track the stopping rule,
// and record the round. spentBefore is the budget consumed before this
// engine started (resume), folded into the checkpoints it emits.
func runEngine(ctx context.Context, ds *dataset.Dataset, cfg Config, ce crowd.Crowd, beliefs []*belief.Dist, plan roundPlan, st *stopState, spentBefore float64) (*Result, error) {
	if cfg.BudgetWindow < 0 {
		return nil, errors.New("pipeline: Config.BudgetWindow must not be negative")
	}
	res := &Result{Beliefs: beliefs}
	res.InitQuality = totalQuality(beliefs)
	acc, err := totalAccuracy(ds, beliefs)
	if err != nil {
		return nil, err
	}
	res.InitAccuracy = acc

	answerCost := func(w crowd.Worker) float64 {
		if cfg.Cost != nil {
			return cfg.Cost(w)
		}
		return 1
	}

	budget := cfg.Budget
	round := 0
	prevQ := res.InitQuality
	// admitted counts the tasks folded in since the last completed round,
	// so the next round's metrics record can attribute them; justAdmitted
	// suppresses the boundary poll right after the idle path already
	// admitted a batch, so one planning attempt sees one batch at most.
	admitted := 0
	justAdmitted := false
	for {
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Streaming admission, non-blocking: fold whatever arrived since
		// the last round boundary into the dataset, beliefs, stop state and
		// selection caches, and refill the rolling budget window per batch.
		if cfg.Admit != nil && !justAdmitted {
			frags, err := cfg.Admit.Poll(ctx, false)
			if err != nil {
				return nil, err
			}
			n, err := admitAll(ds, cfg, plan, st, frags, &beliefs, &budget)
			if err != nil {
				return nil, err
			}
			admitted += n
			res.TasksAdmitted += n
			res.Beliefs = beliefs
		}
		justAdmitted = false
		// Metrics bookkeeping is gated on the sink so an uninstrumented run
		// pays nothing; none of it feeds back into the loop.
		var roundStart time.Time
		var statsBefore taskselect.SelectStats
		if cfg.Metrics != nil {
			roundStart = time.Now() //hclint:ignore time-hygiene metrics-only timestamp: gated on cfg.Metrics, feeds RoundMetrics.Duration and never selection, ordering, or the RNG (TestMetricsDeterministicGivenSeed pins this)
			statsBefore = plan.stats()
		}
		problem := taskselect.Problem{Beliefs: beliefs, Experts: ce, Frozen: st.frozen}
		buys, picks, err := plan.plan(ctx, problem, budget)
		if err != nil {
			return nil, err
		}
		if len(buys) == 0 {
			if cfg.Admit == nil {
				break // budget exhausted or nothing left worth checking
			}
			// Event-driven idle path: nothing affordable or worth checking
			// right now, but the admission stream is still open — park on
			// the source until the next batch (which also refills the
			// window) or until the stream finishes.
			frags, err := cfg.Admit.Poll(ctx, true)
			if err != nil {
				return nil, err
			}
			if len(frags) == 0 {
				break // admission stream finished; the run is complete
			}
			n, err := admitAll(ds, cfg, plan, st, frags, &beliefs, &budget)
			if err != nil {
				return nil, err
			}
			admitted += n
			res.TasksAdmitted += n
			res.Beliefs = beliefs
			justAdmitted = true
			continue
		}
		// Execute the purchases in plan order (sorted by task — Go map
		// order is randomized, and every family draw advances the shared
		// seeded RNG of the answer source, so any other order would make
		// identical-seed runs diverge; the determinism regression tests
		// pin this down). The budget is charged for the answers actually
		// received: fewer than requested when a source returns a partial
		// round, e.g. an expert timed out.
		var spent float64
		var touched []int
		var requested, received int
		for _, bu := range buys {
			requested += len(bu.locals) * len(bu.panel)
			globals := make([]int, len(bu.locals))
			for i, lf := range bu.locals {
				globals[i] = ds.Tasks[bu.task][lf]
			}
			fam, err := cfg.Source.Answers(bu.panel, globals)
			if err != nil {
				return nil, err
			}
			if len(fam) == 0 {
				return nil, fmt.Errorf("pipeline: source returned no answers for round %d", round+1)
			}
			for _, as := range fam {
				received += len(as.Facts)
				spent += float64(len(as.Facts)) * answerCost(as.Worker)
			}
			// Re-index the family from global to local facts; the source
			// returns facts sorted, and locals sort identically because a
			// task's global facts are in ascending local order.
			local, err := relabelFamily(fam, globals, bu.locals)
			if err != nil {
				return nil, err
			}
			if err := beliefs[bu.task].Update(local); err != nil {
				return nil, err
			}
			st.observe(ds, bu.task, bu.locals, local)
			if len(touched) == 0 || touched[len(touched)-1] != bu.task {
				touched = append(touched, bu.task)
			}
		}
		// Only the tasks that received answers changed; an incremental
		// selector keeps every other task's cached gains.
		plan.invalidate(touched)
		budget -= spent
		// Floor the remaining budget at zero and record the excess: the
		// plans clamp purchases to what remains, but a source delivering
		// more answers than requested (each still charged) or the
		// affordability clamp's epsilon can push the charge past the
		// remainder, and a negative balance must not silently shrink the
		// next rolling-window refill.
		var over float64
		if budget < 0 {
			over = -budget
			budget = 0
		}
		res.BudgetSpent += spent
		res.Overspent += over
		round++
		q := totalQuality(beliefs)
		acc, err := totalAccuracy(ds, beliefs)
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, RoundStats{
			Round:       round,
			Picks:       picks,
			BudgetSpent: res.BudgetSpent,
			Quality:     q,
			Accuracy:    acc,
		})
		if cfg.Metrics != nil {
			cfg.Metrics.RecordRound(RoundMetrics{
				Round:            round,
				Flavor:           plan.flavor(),
				Duration:         time.Since(roundStart), //hclint:ignore time-hygiene metrics-only duration: reported, never read back by the loop
				QueriesBought:    len(picks),
				AnswersRequested: requested,
				AnswersReceived:  received,
				Spent:            spent,
				BudgetSpent:      spentBefore + res.BudgetSpent,
				Overspent:        over,
				TasksAdmitted:    admitted,
				Quality:          q,
				QualityDelta:     q - prevQ,
				FrozenFacts:      st.frozenCount(),
				Selector:         plan.stats().Sub(statsBefore),
			})
		}
		admitted = 0
		prevQ = q
		if cfg.Journal != nil || cfg.OnCheckpoint != nil {
			ck := engineCheckpoint(res, plan, st, spentBefore)
			if cfg.Journal != nil {
				// The durability commit point: the round's answers were
				// already journaled as they arrived; this folds them into a
				// checkpoint record. A journal that cannot commit stops the
				// run — advancing past an un-durable round would make the
				// in-memory state unrecoverable.
				if err := cfg.Journal.CommitRound(round, ck); err != nil {
					return nil, fmt.Errorf("pipeline: journal commit round %d: %w", round, err)
				}
			}
			if cfg.OnCheckpoint != nil {
				cfg.OnCheckpoint(ck)
			}
		}
	}
	res.Quality = totalQuality(beliefs)
	finalAcc, err := totalAccuracy(ds, beliefs)
	if err != nil {
		return nil, err
	}
	res.Accuracy = finalAcc
	res.Labels = finalLabels(ds, beliefs)
	res.selCache = plan.cache()
	res.stopVotes = st.snapshot()
	return res, nil
}

// engineCheckpoint snapshots the running state into a warm checkpoint.
func engineCheckpoint(res *Result, plan roundPlan, st *stopState, spentBefore float64) *Checkpoint {
	beliefs := make([]*belief.Dist, len(res.Beliefs))
	for i, b := range res.Beliefs {
		beliefs[i] = b.Clone()
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		Beliefs:     beliefs,
		BudgetSpent: spentBefore + res.BudgetSpent,
		Selection:   plan.cache(),
		StopVotes:   st.snapshot(),
	}
}

// uniformPlan is today's Algorithm 1/3 purchasing: pick up to K checking
// queries, send each to every expert. The greedy selector is
// transparently upgraded to the incremental engine: picks are provably
// identical (see taskselect's equivalence tests), but cached per-task
// gains survive between rounds and only the tasks whose beliefs a round
// updates are re-scanned.
type uniformPlan struct {
	k       int
	ce      crowd.Crowd
	sel     taskselect.Selector
	state   *taskselect.SelectionState
	perPick float64
}

// newUniformPlan builds the plan; warm, when non-nil, primes the
// incremental selector's gain cache (a mismatched cache degrades to a
// cold first scan, never to wrong picks).
func newUniformPlan(cfg Config, ce crowd.Crowd, warm *taskselect.SelectionCache) *uniformPlan {
	sel := cfg.Selector
	var state *taskselect.SelectionState
	switch v := sel.(type) {
	case taskselect.Greedy:
		state = taskselect.NewSelectionState(v.Workers)
		sel = state
	case *taskselect.SelectionState:
		state = v
	}
	if state != nil && warm != nil {
		// A cache of the wrong kind is for the other flavor; run cold.
		_ = state.RestoreCache(warm)
	}
	perPick := float64(len(ce))
	if cfg.Cost != nil {
		var per float64
		for _, w := range ce {
			per += cfg.Cost(w)
		}
		perPick = per
	}
	return &uniformPlan{k: cfg.K, ce: ce, sel: sel, state: state, perPick: perPick}
}

func (u *uniformPlan) plan(ctx context.Context, p taskselect.Problem, remaining float64) ([]purchase, []taskselect.Candidate, error) {
	// Algorithm 1 line 8 stops only when even one more pick is
	// unaffordable: a pick costs one answer from every expert, so the
	// final round is clamped to the picks the remaining budget funds
	// rather than stranding a full round's worth of budget.
	k := u.k
	if afford := int((remaining + 1e-9) / u.perPick); afford < k {
		k = afford
	}
	if k < 1 {
		return nil, nil, nil // B < |CE|: not even a single pick is fundable
	}
	picks, err := u.sel.Select(ctx, p, k)
	if err != nil {
		return nil, nil, err
	}
	byTask := make(map[int][]int)
	for _, c := range picks {
		byTask[c.Task] = append(byTask[c.Task], c.Fact)
	}
	tasks := make([]int, 0, len(byTask))
	for t := range byTask {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	buys := make([]purchase, 0, len(tasks))
	for _, t := range tasks {
		buys = append(buys, purchase{task: t, locals: byTask[t], panel: u.ce})
	}
	return buys, picks, nil
}

func (u *uniformPlan) invalidate(tasks []int) {
	if u.state != nil {
		u.state.Invalidate(tasks...)
	}
}

func (u *uniformPlan) cache() *taskselect.SelectionCache {
	if u.state != nil {
		return u.state.ExportCache()
	}
	return nil
}

func (u *uniformPlan) flavor() string { return "uniform" }

func (u *uniformPlan) stats() taskselect.SelectStats {
	if u.state != nil {
		return u.state.Stats()
	}
	return taskselect.SelectStats{}
}

// costPlan is the §III-D cost extension's purchasing: each round greedily
// buys individual (query, expert) answer units by gain-per-cost until the
// round's chunk of the budget is spent. The chunk is K times the mean
// expert answer price, mirroring the K·|CE| cadence of the uniform
// design. Selection runs on the incremental AssignState, pick-identical
// to a cold CostGreedy scan.
type costPlan struct {
	k        int
	cost     func(w crowd.Worker) float64
	minCost  float64
	meanCost float64
	state    *taskselect.AssignState
}

// newCostPlan builds the plan, validating the cost model against the
// expert crowd; warm primes the unit-gain cache as in newUniformPlan.
func newCostPlan(cfg Config, ce crowd.Crowd, warm *taskselect.SelectionCache) (*costPlan, error) {
	if len(ce) == 0 {
		// Guard here, not only in the callers: meanCost below divides by
		// len(ce), and a NaN mean would silently poison the per-round
		// budget chunking instead of failing the run.
		return nil, taskselect.ErrNoExperts
	}
	cost := cfg.Cost
	if cost == nil {
		cost = func(crowd.Worker) float64 { return 1 }
	}
	var minCost, meanCost float64
	for i, w := range ce {
		c := cost(w)
		if c <= 0 {
			return nil, errors.New("pipeline: non-positive worker cost")
		}
		if i == 0 || c < minCost {
			minCost = c
		}
		meanCost += c
	}
	meanCost /= float64(len(ce))
	state := taskselect.NewAssignState(cost, 0, 0)
	if warm != nil {
		_ = state.RestoreCache(warm)
	}
	return &costPlan{k: cfg.K, cost: cost, minCost: minCost, meanCost: meanCost, state: state}, nil
}

func (c *costPlan) plan(ctx context.Context, p taskselect.Problem, remaining float64) ([]purchase, []taskselect.Candidate, error) {
	// Stop only when even the cheapest single answer is unaffordable, and
	// clamp the chunk to the remaining budget so the final round spends
	// what is left instead of stranding it — the cost-weighted mirror of
	// uniformPlan's affordability clamp.
	if remaining < c.minCost {
		return nil, nil, nil
	}
	chunk := float64(c.k) * c.meanCost
	if chunk > remaining {
		chunk = remaining
	}
	units, err := c.state.SelectAssign(ctx, p, chunk)
	if err != nil {
		return nil, nil, err
	}
	if len(units) == 0 {
		return nil, nil, nil
	}
	// Group the units per (task, worker): each group is one answer set,
	// applied as its own single-member family (workers answer
	// independently given the observation, so sequential updates are
	// exact). Units arrive sorted by (task, fact, worker), so each
	// group's facts are ascending, as relabelFamily expects.
	type key struct {
		task   int
		worker string
	}
	groups := make(map[key][]int) // local facts
	workers := make(map[key]crowd.Worker)
	picks := make([]taskselect.Candidate, 0, len(units))
	for _, u := range units {
		k := key{u.Task, u.Worker.ID}
		groups[k] = append(groups[k], u.Fact)
		workers[k] = u.Worker
		picks = append(picks, taskselect.Candidate{Task: u.Task, Fact: u.Fact})
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		return keys[i].worker < keys[j].worker
	})
	buys := make([]purchase, 0, len(keys))
	for _, k := range keys {
		buys = append(buys, purchase{task: k.task, locals: groups[k], panel: crowd.Crowd{workers[k]}})
	}
	return buys, picks, nil
}

func (c *costPlan) invalidate(tasks []int) { c.state.Invalidate(tasks...) }

func (c *costPlan) cache() *taskselect.SelectionCache { return c.state.ExportCache() }

func (c *costPlan) flavor() string { return "costaware" }

func (c *costPlan) stats() taskselect.SelectStats { return c.state.Stats() }
