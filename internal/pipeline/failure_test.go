package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

// failingSource errors after a configurable number of successful calls.
type failingSource struct {
	inner     AnswerSource
	failAfter int
	calls     int
}

var errSourceDown = errors.New("crowd platform unavailable")

func (f *failingSource) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, errSourceDown
	}
	return f.inner.Answers(experts, facts)
}

func TestRunPropagatesSourceFailure(t *testing.T) {
	ds := smallDataset(t, 50)
	cfg := baseConfig(ds)
	cfg.Source = &failingSource{inner: NewSimulated(1, ds), failAfter: 3}
	_, err := Run(context.Background(), ds, cfg)
	if !errors.Is(err, errSourceDown) {
		t.Fatalf("err = %v, want wrapped errSourceDown", err)
	}
}

func TestRunFailsOnImmediateSourceError(t *testing.T) {
	ds := smallDataset(t, 51)
	cfg := baseConfig(ds)
	cfg.Source = &failingSource{inner: NewSimulated(1, ds), failAfter: 0}
	if _, err := Run(context.Background(), ds, cfg); err == nil {
		t.Fatal("first-round source failure not propagated")
	}
}

// truncatingSource returns answers for only a subset of requested facts,
// a malformed reply the pipeline must reject rather than misapply.
type truncatingSource struct{ inner AnswerSource }

func (s truncatingSource) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	fam, err := s.inner.Answers(experts, facts)
	if err != nil {
		return nil, err
	}
	for i := range fam {
		extra := fam[i].Facts[len(fam[i].Facts)-1] + 1000
		fam[i].Facts = append(fam[i].Facts, extra)
		fam[i].Values = append(fam[i].Values, true)
	}
	return fam, nil
}

func TestRunRejectsAnswersForUnrequestedFacts(t *testing.T) {
	ds := smallDataset(t, 52)
	cfg := baseConfig(ds)
	cfg.Source = truncatingSource{inner: NewSimulated(1, ds)}
	if _, err := Run(context.Background(), ds, cfg); err == nil {
		t.Fatal("answers for unrequested facts accepted")
	}
}

// failingSelector errors on the nth call.
type failingSelector struct{ calls int }

func (s *failingSelector) Name() string { return "failing" }
func (s *failingSelector) Select(ctx context.Context, p taskselect.Problem, k int) ([]taskselect.Candidate, error) {
	s.calls++
	if s.calls > 1 {
		return nil, fmt.Errorf("selector exploded on call %d", s.calls)
	}
	return taskselect.Greedy{}.Select(ctx, p, k)
}

func TestRunPropagatesSelectorFailure(t *testing.T) {
	ds := smallDataset(t, 53)
	cfg := baseConfig(ds)
	cfg.Selector = &failingSelector{}
	if _, err := Run(context.Background(), ds, cfg); err == nil {
		t.Fatal("selector failure not propagated")
	}
}

// contradictingOracleSource simulates an impossible world: an oracle
// answer inconsistent with an already-certain belief (zero-probability
// evidence must surface as an error, not NaNs).
func TestRunZeroProbabilityEvidence(t *testing.T) {
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 4
	cfg.Crowd.NumExpert = 1
	cfg.Crowd.ExpertLo, cfg.Crowd.ExpertHi = 1.0, 1.0 // hard oracle
	ds, err := dataset.SentiLike(rngutil.New(54), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the truth: the simulated source answers from inverted
	// ground truth, while beliefs were initialized from answers drawn
	// from the real one. The first oracle answer contradicting a belief
	// that is not yet a point mass is fine; only a true impossibility
	// errors. Drive the belief to certainty first with one source, then
	// contradict it.
	run := Config{
		K:      1,
		Budget: 8,
		Source: Simulated{Rng: rngutil.New(1), Truth: ds.TruthFn()},
	}
	res, err := Run(context.Background(), ds, run)
	if err != nil {
		t.Fatal(err)
	}
	// Find a certain fact and hit it with the opposite oracle answer.
	var target taskselect.Candidate
	found := false
	for tIdx, b := range res.Beliefs {
		for f := 0; f < b.NumFacts() && !found; f++ {
			if p := b.Marginal(f); p == 0 || p == 1 {
				target = taskselect.Candidate{Task: tIdx, Fact: f}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no fully certain fact produced")
	}
	b := res.Beliefs[target.Task]
	lie := crowd.AnswerFamily{{
		Worker: crowd.Worker{ID: "oracle", Accuracy: 1},
		Facts:  []int{target.Fact},
		Values: []bool{b.Marginal(target.Fact) == 0},
	}}
	if err := b.Update(lie); err == nil {
		t.Fatal("zero-probability oracle contradiction accepted")
	}
}
