package pipeline

import (
	"bytes"
	"testing"
)

// FuzzCheckpointRoundTrip hardens the checkpoint decoder the resume
// path and the HTTP service both consume: arbitrary bytes must either
// decode into a validated checkpoint or return an error — never panic
// — and anything that decodes must re-encode byte-identically through
// a second decode/encode cycle. Byte-stability is what the warm-resume
// determinism suite relies on: a checkpoint that drifts when rewritten
// would make staged and uninterrupted runs diverge.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte(`{"version":1,"beliefs":[{"joint":[0.25,0.25,0.25,0.25]}],"budget_spent":2}`))
	f.Add([]byte(`{"beliefs":[{"joint":[0.5,0.5]}],"budget_spent":0}`)) // version-0 legacy form
	f.Add([]byte(`{"version":1,"beliefs":[{"joint":[1]}],"budget_spent":1,` +
		`"stop_votes":{"yes":[3],"no":[1]}}`))
	f.Add([]byte(`{"version":1,"beliefs":[{"joint":[0.7,0.3]}],"budget_spent":-1}`)) // must error
	f.Add([]byte(`{"version":99,"beliefs":[{"joint":[1]}]}`))                        // future version
	f.Add([]byte(`{"version":1,"beliefs":[{"joint":[0.4,0.4]}],"budget_spent":1}`))  // denormalized joint
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		var first bytes.Buffer
		if err := c.Write(&first); err != nil {
			t.Fatalf("re-encoding an accepted checkpoint failed: %v", err)
		}
		c2, err := ReadCheckpoint(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v\nencoded: %s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := c2.Write(&second); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("checkpoint encoding is not byte-stable:\nfirst:  %s\nsecond: %s",
				first.Bytes(), second.Bytes())
		}
		if c2.Version != c.Version || c2.BudgetSpent != c.BudgetSpent || len(c2.Beliefs) != len(c.Beliefs) {
			t.Fatalf("round trip changed checkpoint shape: %+v vs %+v", c, c2)
		}
	})
}
