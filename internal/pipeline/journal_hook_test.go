package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestJournalHookCommitsEveryRound pins the Config.Journal contract:
// CommitRound fires once per completed round, with 1-based round
// numbers, at the same serialization point as OnCheckpoint (the commit
// strictly before the advisory hook), and receives the identical
// checkpoint value.
func TestJournalHookCommitsEveryRound(t *testing.T) {
	ds := smallDataset(t, 90)
	cfg := baseConfig(ds)
	cfg.Budget = 30

	var committed []int
	var hookCks, journalCks []*Checkpoint
	cfg.Journal = RoundRecorderFunc(func(round int, ck *Checkpoint) error {
		committed = append(committed, round)
		journalCks = append(journalCks, ck)
		if len(journalCks) != len(hookCks)+1 {
			t.Error("OnCheckpoint ran before the journal commit")
		}
		return nil
	})
	cfg.OnCheckpoint = func(ck *Checkpoint) { hookCks = append(hookCks, ck) }

	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) != len(res.Rounds) {
		t.Fatalf("CommitRound fired %d times for %d rounds", len(committed), len(res.Rounds))
	}
	for i, r := range committed {
		if r != i+1 {
			t.Fatalf("commit %d carried round %d, want %d", i, r, i+1)
		}
	}
	if len(journalCks) != len(hookCks) {
		t.Fatalf("journal saw %d checkpoints, OnCheckpoint %d", len(journalCks), len(hookCks))
	}
	for i := range journalCks {
		if journalCks[i] != hookCks[i] {
			t.Errorf("round %d: journal and OnCheckpoint got different checkpoint values", i+1)
		}
	}
}

// TestJournalHookErrorAbortsRun pins the hard half of the contract: a
// journal that cannot commit stops the engine with its error — the run
// must never advance past a round durable storage did not accept.
func TestJournalHookErrorAbortsRun(t *testing.T) {
	ds := smallDataset(t, 91)
	cfg := baseConfig(ds)
	cfg.Budget = 40

	sentinel := errors.New("disk on fire")
	calls := 0
	cfg.Journal = RoundRecorderFunc(func(round int, ck *Checkpoint) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	var checkpoints int
	cfg.OnCheckpoint = func(*Checkpoint) { checkpoints++ }

	_, err := Run(context.Background(), ds, cfg)
	if !errors.Is(err, sentinel) {
		t.Fatalf("run error = %v, want the journal's", err)
	}
	if !strings.Contains(err.Error(), "journal commit round 2") {
		t.Errorf("error %q does not name the failed round", err)
	}
	if calls != 2 {
		t.Errorf("CommitRound fired %d times after a round-2 failure, want 2", calls)
	}
	if checkpoints != 1 {
		t.Errorf("OnCheckpoint fired %d times, want 1 (the failed round's advisory hook must not run)", checkpoints)
	}
}
