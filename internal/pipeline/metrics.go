package pipeline

import (
	"sync"
	"time"

	"hcrowd/internal/taskselect"
)

// RoundMetrics describes one completed checking round for observability.
// It is strictly a view of work the engine did anyway — recording it
// never feeds back into selection, answer collection, or the RNG, so a
// run with a sink attached is byte-identical to one without (the
// determinism suite pins this down).
type RoundMetrics struct {
	// Round is 1-based, counting from this engine's start (a resumed run
	// restarts at 1; BudgetSpent still carries the prior spend).
	Round int `json:"round"`
	// Flavor is the plan that produced the round: "uniform" or "costaware".
	Flavor string `json:"flavor"`
	// Duration is the round's wall time: selection, answer collection and
	// belief updates included.
	Duration time.Duration `json:"duration_ns"`
	// QueriesBought is the number of checking queries the selector picked.
	QueriesBought int `json:"queries_bought"`
	// AnswersRequested / AnswersReceived compare the answers the plan
	// asked for against what the source delivered; they differ when a
	// source returns a partial round (e.g. an expert timed out).
	AnswersRequested int `json:"answers_requested"`
	AnswersReceived  int `json:"answers_received"`
	// Spent is the round's budget charge; BudgetSpent the cumulative
	// total including any spend resumed from a checkpoint.
	Spent       float64 `json:"spent"`
	BudgetSpent float64 `json:"budget_spent"`
	// Overspent is the slice of Spent beyond the authorized budget (the
	// engine floors the remaining budget at zero instead of going
	// negative); almost always 0 — non-zero only when a round's last
	// purchase straddles the budget boundary.
	Overspent float64 `json:"overspent"`
	// TasksAdmitted counts tasks folded in through Config.Admit since the
	// previous round record; 0 for closed-loop runs.
	TasksAdmitted int `json:"tasks_admitted"`
	// Quality is Σ_t Q(F_t) after the round's update, QualityDelta its
	// change over the round.
	Quality      float64 `json:"quality"`
	QualityDelta float64 `json:"quality_delta"`
	// FrozenFacts counts (task, fact) pairs the stopping rule has settled;
	// 0 without a rule.
	FrozenFacts int `json:"frozen_facts"`
	// Selector is the incremental selection engine's work during this
	// round — CondEntropy-core evaluations (the unit BENCH_core.json
	// measures) and task-cache hit/miss counts. Zero when the configured
	// selector is not incremental.
	Selector taskselect.SelectStats `json:"selector"`
}

// MetricsSink receives one RoundMetrics per completed round. RecordRound
// runs synchronously on the checking loop, so implementations must be
// fast and must not block; it may be called from whatever goroutine runs
// the engine.
type MetricsSink interface {
	RecordRound(m RoundMetrics)
}

// MetricsRecorder is the simplest sink: it appends every round in order.
// Safe for concurrent use.
type MetricsRecorder struct {
	mu     sync.Mutex
	rounds []RoundMetrics //hclint:guardedby mu
}

// RecordRound implements MetricsSink.
func (r *MetricsRecorder) RecordRound(m RoundMetrics) {
	r.mu.Lock()
	r.rounds = append(r.rounds, m)
	r.mu.Unlock()
}

// Rounds returns a copy of everything recorded so far.
func (r *MetricsRecorder) Rounds() []RoundMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RoundMetrics{}, r.rounds...)
}

// MultiMetrics fans one round record out to several sinks, in order.
type MultiMetrics []MetricsSink

// RecordRound implements MetricsSink.
func (mm MultiMetrics) RecordRound(m RoundMetrics) {
	for _, s := range mm {
		if s != nil {
			s.RecordRound(m)
		}
	}
}
