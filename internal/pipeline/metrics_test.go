package pipeline

import (
	"context"
	"testing"

	"hcrowd/internal/crowd"
)

// TestMetricsDeterministicGivenSeed proves the acceptance criterion that
// instrumentation does not perturb determinism: a run with a metrics sink
// attached is byte-identical (same trace string) to the same-seed run
// without one, for both the uniform and the cost-aware flavor. The name
// keeps it inside the Makefile's determinism suite (-run
// 'DeterministicGivenSeed' -count=2).
func TestMetricsDeterministicGivenSeed(t *testing.T) {
	costModel := func(ds interface {
		Split() (crowd.Crowd, crowd.Crowd)
	}) func(w crowd.Worker) float64 {
		pricey := ""
		if ce, _ := ds.Split(); len(ce) > 0 {
			pricey = ce[0].ID
		}
		return func(w crowd.Worker) float64 {
			if w.ID == pricey {
				return 2
			}
			return 1
		}
	}
	variants := []struct {
		name string
		run  func(t *testing.T, rec *MetricsRecorder) string
	}{
		{"uniform", func(t *testing.T, rec *MetricsRecorder) string {
			ds := smallDataset(t, 4)
			cfg := fig2StyleConfig(t, ds, 40)
			if rec != nil {
				cfg.Metrics = rec
			}
			res, err := Run(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
		{"cost-aware", func(t *testing.T, rec *MetricsRecorder) string {
			ds := smallDataset(t, 4)
			cfg := fig2StyleConfig(t, ds, 40)
			cfg.Budget = 30
			cfg.Cost = costModel(ds)
			if rec != nil {
				cfg.Metrics = rec
			}
			res, err := RunCostAware(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return trace(res)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			bare := v.run(t, nil)
			rec := &MetricsRecorder{}
			instrumented := v.run(t, rec)
			if bare != instrumented {
				t.Errorf("metrics sink perturbed the run:\n bare:    %.200s…\n metrics: %.200s…", bare, instrumented)
			}
			rounds := rec.Rounds()
			if len(rounds) == 0 {
				t.Fatal("sink recorded no rounds")
			}
			flavor := "uniform"
			if v.name == "cost-aware" {
				flavor = "costaware"
			}
			var prevSpent float64
			for i, m := range rounds {
				if m.Round != i+1 {
					t.Errorf("round %d recorded as %d", i+1, m.Round)
				}
				if m.Flavor != flavor {
					t.Errorf("round %d flavor = %q, want %q", m.Round, m.Flavor, flavor)
				}
				if m.QueriesBought <= 0 {
					t.Errorf("round %d bought %d queries", m.Round, m.QueriesBought)
				}
				// The simulated source always delivers the full family.
				if m.AnswersReceived != m.AnswersRequested || m.AnswersReceived <= 0 {
					t.Errorf("round %d answers %d/%d", m.Round, m.AnswersReceived, m.AnswersRequested)
				}
				if m.Spent <= 0 || m.BudgetSpent <= prevSpent {
					t.Errorf("round %d spend %v (cumulative %v after %v)", m.Round, m.Spent, m.BudgetSpent, prevSpent)
				}
				prevSpent = m.BudgetSpent
				if m.Duration < 0 {
					t.Errorf("round %d duration %v", m.Round, m.Duration)
				}
				// Both flavors run on an incremental selector here, so every
				// round evaluates CondEntropy at least once.
				if m.Selector.Selects != 1 || m.Selector.Evals <= 0 {
					t.Errorf("round %d selector stats %+v", m.Round, m.Selector)
				}
				// Steady state reuses caches: after round 1 only the touched
				// tasks rescan, so some task must be reused (4 tasks, K=3).
				if i > 0 && m.Selector.Reused == 0 {
					t.Errorf("round %d reused no task caches: %+v", m.Round, m.Selector)
				}
			}
		})
	}
}

// TestMultiMetricsFanOut checks the fan-out sink delivers to every child
// and tolerates nil entries.
func TestMultiMetricsFanOut(t *testing.T) {
	a, b := &MetricsRecorder{}, &MetricsRecorder{}
	mm := MultiMetrics{a, nil, b}
	mm.RecordRound(RoundMetrics{Round: 1})
	mm.RecordRound(RoundMetrics{Round: 2})
	if len(a.Rounds()) != 2 || len(b.Rounds()) != 2 {
		t.Fatalf("fan-out delivered %d/%d", len(a.Rounds()), len(b.Rounds()))
	}
	if a.Rounds()[1].Round != 2 {
		t.Fatalf("order lost: %+v", a.Rounds())
	}
}
