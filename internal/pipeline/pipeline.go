// Package pipeline implements the hierarchical crowdsourcing loop of the
// paper's Algorithms 1 and 3: split the crowd, initialize the belief state
// from the preliminary workers' labels, then repeatedly select a checking
// query set, collect the expert answer family, and apply the Bayesian
// belief update until the checking budget runs out. It also carries the
// §III-D extensions: a per-worker cost model, a multi-tier hierarchy, and
// the Abraham et al. [38] per-fact stopping rule.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

// AnswerSource supplies expert answers for selected checking queries. The
// experiments use Simulated; a live deployment would implement this
// against a crowdsourcing platform.
type AnswerSource interface {
	// Answers collects one answer per expert for each global fact index.
	Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error)
}

// Simulated draws answers from the ground truth under the accuracy-rate
// error model, which is exactly the paper's offline-evaluation protocol
// ("the repeated task selection and answer collection can be regarded as
// a simulated online crowdsourcing framework").
type Simulated struct {
	Rng   *rand.Rand
	Truth crowd.Truth
}

// Answers implements AnswerSource.
func (s Simulated) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	if s.Rng == nil || s.Truth == nil {
		return nil, errors.New("pipeline: Simulated needs Rng and Truth")
	}
	return crowd.SimulateAnswerFamily(s.Rng, experts, facts, s.Truth), nil
}

// StopRule is the sequential stopping rule of Abraham et al. [38]: a fact
// stops being re-checked once |V_yes - V_no| > C·sqrt(t) − Eps·t, where t
// is the number of expert answers collected for the fact so far.
type StopRule struct {
	C   float64
	Eps float64
}

// Stopped evaluates the rule for a fact with the given vote counts.
func (r StopRule) Stopped(yes, no int) bool {
	t := float64(yes + no)
	if t == 0 {
		return false
	}
	return math.Abs(float64(yes-no)) > r.C*math.Sqrt(t)-r.Eps*t
}

// Config drives one hierarchical crowdsourcing run.
type Config struct {
	// K is the number of checking queries selected per round (Algorithm 2
	// input). Required, >= 1.
	K int
	// Budget B is the total number of expert answers available; each round
	// consumes |T|·|CE| (Algorithm 1 line 7), or the cost-weighted
	// equivalent when Cost is set.
	Budget float64
	// Selector picks the checking query set; defaults to the paper's
	// greedy approximation.
	Selector taskselect.Selector
	// Init aggregates the preliminary answers into per-fact posteriors for
	// belief initialization; defaults to MV (the paper's Equation 15/16
	// vote-share product). The experiments of Figure 6 swap this.
	Init aggregate.Aggregator
	// Source provides the expert answers. Required.
	Source AnswerSource
	// Cost optionally prices one answer from a worker (the §III-D
	// cost-aware extension); nil means unit cost.
	Cost func(w crowd.Worker) float64
	// Stop optionally freezes facts per the stopping rule.
	Stop *StopRule
	// UniformInit forces a uniform belief (ignoring Init and the
	// preliminary answers); used by the NO-HC baseline of Figure 7.
	UniformInit bool
	// PriorCoupling injects the intra-task correlation structure into the
	// initial beliefs as a Markov-chain prior (Definition 6 takes the
	// observations' joint distribution as a given input; Equation 15's
	// plain product form discards it). Zero means no prior;
	// (*dataset.Dataset).EstimateCoupling recovers the value from the
	// preliminary answers.
	PriorCoupling float64
	// Prior, when set, overrides PriorCoupling with an arbitrary
	// structural joint prior per task width — e.g. belief.OneHotPrior for
	// tasks derived from single-label multi-class classification (§II-A).
	Prior func(numFacts int) (*belief.Dist, error)
	// MaxRounds caps the number of rounds as a safety net; 0 means
	// unlimited (the budget is the binding constraint).
	MaxRounds int
	// OnCheckpoint, when set, receives a freshly built warm checkpoint
	// after every completed round: cloned beliefs, cumulative spend, the
	// incremental selector's gain cache and the stopping rule's vote
	// counts. The callback owns the value (persist it, hand it to
	// Resume/ResumeCostAware); it runs synchronously on the loop.
	OnCheckpoint func(c *Checkpoint)
	// Journal, when set, is the durability hook: after every completed
	// round — at the same serialization point OnCheckpoint fires, and
	// just before it — the engine hands the round number and the round's
	// warm checkpoint to CommitRound and ABORTS THE RUN if it errors.
	// OnCheckpoint is advisory (a failed persist loses nothing but a
	// resume point); Journal is the write-ahead commit a crash-recoverable
	// service depends on, so an un-durable round must stop the loop
	// rather than let the in-memory state advance past the log.
	Journal RoundRecorder
	// Metrics, when set, receives one RoundMetrics per completed round.
	// Purely observational: attaching a sink never changes the run's
	// picks, answers, spend or labels.
	Metrics MetricsSink
	// Admit, when set, turns the closed loop into an event-driven round
	// scheduler: the engine polls the source at every round boundary and
	// admits the returned fragments — growing the dataset, beliefs,
	// stop-rule state and selection caches in place — before planning the
	// next round. When the budget runs dry the engine blocks on the
	// source instead of finishing, and only ends once the source reports
	// the stream finished (empty blocking poll).
	Admit AdmissionSource
	// BudgetWindow is the rolling-budget refill of the streaming design:
	// every admitted fragment adds this much to the remaining budget, on
	// top of the fixed Budget. Meaningful only with Admit set; must not
	// be negative.
	BudgetWindow float64
}

// RoundRecorder commits one completed round to durable storage (see
// Config.Journal). round counts engine rounds from 1 within this run;
// ck is the round's warm checkpoint (the same immutable value
// OnCheckpoint receives). A non-nil error aborts the run: the engine
// never advances past a round the journal did not accept.
type RoundRecorder interface {
	CommitRound(round int, ck *Checkpoint) error
}

// RoundRecorderFunc adapts a function to RoundRecorder.
type RoundRecorderFunc func(round int, ck *Checkpoint) error

// CommitRound implements RoundRecorder.
func (f RoundRecorderFunc) CommitRound(round int, ck *Checkpoint) error { return f(round, ck) }

// RoundStats records one checking round for the experiment curves.
type RoundStats struct {
	Round       int
	Picks       []taskselect.Candidate
	BudgetSpent float64 // cumulative
	Quality     float64 // Σ_t Q(F_t) after the round's update
	Accuracy    float64 // fraction of facts whose MAP label is correct
}

// Result is the outcome of a run.
type Result struct {
	Beliefs  []*belief.Dist
	Labels   []bool // final labels, global fact order (Equation 20)
	Rounds   []RoundStats
	Quality  float64
	Accuracy float64
	// InitQuality/InitAccuracy describe the belief right after
	// initialization, before any checking.
	InitQuality  float64
	InitAccuracy float64
	BudgetSpent  float64
	// Overspent is the total spend beyond the authorized budget across
	// this engine run. The plans clamp purchases to the remaining budget,
	// but a source delivering more answers than requested — or a
	// floating-point epsilon in the affordability clamp — can still push a
	// round's charge past what remained; the engine floors the remaining
	// budget at zero and records the excess here instead of letting it
	// silently fund extra rounds.
	Overspent float64
	// TasksAdmitted counts the tasks the run admitted through
	// Config.Admit; 0 for a closed-loop run.
	TasksAdmitted int

	// selCache and stopVotes carry the finished run's warm-resume state
	// into NewCheckpoint; nil when the run used no incremental selector
	// or no stopping rule.
	selCache  *taskselect.SelectionCache
	stopVotes *StopVotes
}

// Run executes Algorithm 3 (or Algorithm 1 when cfg.Selector is
// taskselect.Exact) on the dataset.
func Run(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K = %d, need >= 1", cfg.K)
	}
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Config.Source is required")
	}
	if cfg.Selector == nil {
		cfg.Selector = defaultSelector()
	}
	if cfg.Init == nil {
		cfg.Init = aggregate.MV{}
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("pipeline: no expert workers above theta")
	}
	beliefs, err := initFor(ds, cfg)
	if err != nil {
		return nil, err
	}
	return runUniform(ctx, ds, cfg, ce, beliefs, nil, nil, 0)
}

// runUniform assembles the uniform-pick flavor of the engine; warm and
// votes prime a resumed run's selection cache and stop-rule counts,
// spentBefore its cumulative spend. Run, Resume and RunTiers share it.
func runUniform(ctx context.Context, ds *dataset.Dataset, cfg Config, ce crowd.Crowd, beliefs []*belief.Dist, warm *taskselect.SelectionCache, votes *StopVotes, spentBefore float64) (*Result, error) {
	st, err := newStopState(ds, cfg.Stop, votes)
	if err != nil {
		return nil, err
	}
	// The plan is created here — never stored in cfg — so each run (and
	// each tier, whose crowd differs) starts from its own state.
	return runEngine(ctx, ds, cfg, ce, beliefs, newUniformPlan(cfg, ce, warm), st, spentBefore)
}

// initFor resolves the configured initialization strategy.
func initFor(ds *dataset.Dataset, cfg Config) ([]*belief.Dist, error) {
	if cfg.Prior != nil {
		return InitBeliefsWithPrior(ds, cfg.Init, cfg.UniformInit, cfg.Prior)
	}
	return InitBeliefsCoupled(ds, cfg.Init, cfg.UniformInit, cfg.PriorCoupling)
}

// InitBeliefs builds one belief per task. With uniform == true every task
// starts at the uniform distribution (the NO-HC baseline); otherwise the
// aggregator runs on the preliminary matrix and each task belief is the
// independent product of its facts' posteriors (Equation 15).
func InitBeliefs(ds *dataset.Dataset, init aggregate.Aggregator, uniform bool) ([]*belief.Dist, error) {
	return InitBeliefsCoupled(ds, init, uniform, 0)
}

// InitBeliefsCoupled is InitBeliefs with a Markov-chain structural prior
// of the given coupling blended into every task belief, so the checking
// loop can propagate expert evidence across correlated facts.
func InitBeliefsCoupled(ds *dataset.Dataset, init aggregate.Aggregator, uniform bool, coupling float64) ([]*belief.Dist, error) {
	if coupling == 0 {
		return InitBeliefsWithPrior(ds, init, uniform, nil)
	}
	return InitBeliefsWithPrior(ds, init, uniform, func(m int) (*belief.Dist, error) {
		return belief.MarkovPrior(m, coupling)
	})
}

// InitBeliefsWithPrior is the general initializer: prior(m), when
// non-nil, supplies the structural joint prior for every m-fact task and
// is blended with the aggregated marginals (or used alone when uniform).
func InitBeliefsWithPrior(ds *dataset.Dataset, init aggregate.Aggregator, uniform bool, prior func(int) (*belief.Dist, error)) ([]*belief.Dist, error) {
	if init == nil {
		init = defaultInit()
	}
	beliefs := make([]*belief.Dist, len(ds.Tasks))
	priors := make(map[int]*belief.Dist) // by fact count
	priorFor := func(m int) (*belief.Dist, error) {
		if prior == nil {
			return nil, nil
		}
		if d, ok := priors[m]; ok {
			return d, nil
		}
		d, err := prior(m)
		if err != nil {
			return nil, err
		}
		priors[m] = d
		return d, nil
	}
	if uniform {
		for t, facts := range ds.Tasks {
			prior, err := priorFor(len(facts))
			if err != nil {
				return nil, err
			}
			if prior != nil {
				beliefs[t] = prior.Clone()
				continue
			}
			d, err := belief.New(len(facts))
			if err != nil {
				return nil, err
			}
			beliefs[t] = d
		}
		return beliefs, nil
	}
	res, err := init.Aggregate(ds.Prelim)
	if err != nil {
		return nil, fmt.Errorf("pipeline: init aggregation: %w", err)
	}
	for t, facts := range ds.Tasks {
		marg := make([]float64, len(facts))
		for j, f := range facts {
			marg[j] = res.PTrue[f]
		}
		prior, err := priorFor(len(facts))
		if err != nil {
			return nil, err
		}
		d, err := belief.FromMarginalsWithPrior(marg, prior)
		if err != nil {
			return nil, err
		}
		beliefs[t] = d
	}
	return beliefs, nil
}

// relabelFamily maps a family's global fact indices back to task-local
// ones so the belief update can consume it.
func relabelFamily(fam crowd.AnswerFamily, globals, locals []int) (crowd.AnswerFamily, error) {
	g2l := make(map[int]int, len(globals))
	for i, g := range globals {
		g2l[g] = locals[i]
	}
	out := make(crowd.AnswerFamily, len(fam))
	for i, as := range fam {
		facts := make([]int, len(as.Facts))
		vals := make([]bool, len(as.Facts))
		for j, g := range as.Facts {
			l, ok := g2l[g]
			if !ok {
				return nil, fmt.Errorf("pipeline: answer for unrequested fact %d", g)
			}
			facts[j] = l
			vals[j] = as.Values[j]
		}
		// Local facts of one task preserve ascending order under the
		// global-to-local map, so no re-sort is needed.
		out[i] = crowd.AnswerSet{Worker: as.Worker, Facts: facts, Values: vals}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// totalQuality sums Q(F_t) over all tasks (the evaluation's "quality").
func totalQuality(beliefs []*belief.Dist) float64 {
	var q float64
	for _, d := range beliefs {
		q += d.Quality()
	}
	return q
}

// totalAccuracy is the fraction of all facts whose MAP label matches the
// ground truth.
func totalAccuracy(ds *dataset.Dataset, beliefs []*belief.Dist) (float64, error) {
	correct, total := 0, 0
	for t, d := range beliefs {
		labels := d.Labels()
		truth := ds.TaskTruth(t)
		if len(labels) != len(truth) {
			return 0, fmt.Errorf("pipeline: task %d labels/truth mismatch", t)
		}
		for j := range labels {
			total++
			if labels[j] == truth[j] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0, errors.New("pipeline: no facts")
	}
	return float64(correct) / float64(total), nil
}

// finalLabels flattens the per-task MAP labels into global fact order
// (Equation 20).
func finalLabels(ds *dataset.Dataset, beliefs []*belief.Dist) []bool {
	out := make([]bool, ds.NumFacts())
	for t, d := range beliefs {
		labels := d.Labels()
		for j, f := range ds.Tasks[t] {
			out[f] = labels[j]
		}
	}
	return out
}

// NewSimulated builds the standard simulated answer source for a dataset.
func NewSimulated(seed int64, ds *dataset.Dataset) Simulated {
	return Simulated{Rng: rngutil.New(seed), Truth: ds.TruthFn()}
}

// defaultSelector and defaultInit centralize the Run/RunTiers defaults.
func defaultSelector() taskselect.Selector { return taskselect.Greedy{} }

func defaultInit() aggregate.Aggregator { return aggregate.MV{} }
