package pipeline

import (
	"context"
	"math"
	"testing"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
	"hcrowd/internal/taskselect"
)

func smallDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 30
	ds, err := dataset.SentiLike(rngutil.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(ds *dataset.Dataset) Config {
	return Config{
		K:      1,
		Budget: 60,
		Source: NewSimulated(777, ds),
	}
}

func TestRunImprovesQualityAndAccuracy(t *testing.T) {
	ds := smallDataset(t, 1)
	res, err := Run(context.Background(), ds, baseConfig(ds))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < res.InitQuality {
		t.Errorf("quality dropped: init %v final %v", res.InitQuality, res.Quality)
	}
	if res.Accuracy < res.InitAccuracy-0.02 {
		t.Errorf("accuracy dropped: init %v final %v", res.InitAccuracy, res.Accuracy)
	}
	if res.Accuracy <= 0.5 {
		t.Errorf("final accuracy %v at chance", res.Accuracy)
	}
	if len(res.Labels) != ds.NumFacts() {
		t.Errorf("labels len %d", len(res.Labels))
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestRunBudgetAccounting(t *testing.T) {
	ds := smallDataset(t, 2)
	cfg := baseConfig(ds)
	cfg.K = 2
	cfg.Budget = 50
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ce, _ := ds.Split()
	perPick := float64(len(ce))
	if res.BudgetSpent > cfg.Budget {
		t.Errorf("overspent: %v > %v", res.BudgetSpent, cfg.Budget)
	}
	// Algorithm 1 line 8: the loop stops only when even one more pick is
	// unaffordable, so at most one pick's worth of budget may be stranded.
	if cfg.Budget-res.BudgetSpent >= perPick {
		t.Errorf("stranded budget: spent %v of %v with picks costing %v",
			res.BudgetSpent, cfg.Budget, perPick)
	}
	var cum float64
	for i, r := range res.Rounds {
		cum += float64(len(r.Picks)) * perPick
		if math.Abs(r.BudgetSpent-cum) > 1e-9 {
			t.Errorf("round %d cumulative budget %v, want %v", i, r.BudgetSpent, cum)
		}
		// Every round is a full K-pick round except a possibly clamped
		// final one that spends the leftover budget.
		if i < len(res.Rounds)-1 {
			if len(r.Picks) != cfg.K {
				t.Errorf("round %d picked %d, want %d", i, len(r.Picks), cfg.K)
			}
		} else if len(r.Picks) < 1 || len(r.Picks) > cfg.K {
			t.Errorf("final round picked %d, want 1..%d", len(r.Picks), cfg.K)
		}
	}
}

func TestRunQualityMonotonePerRound(t *testing.T) {
	// Quality is an expectation improvement, so single rounds can dip, but
	// the trend across the run must be strongly upward; count dips.
	ds := smallDataset(t, 3)
	cfg := baseConfig(ds)
	cfg.Budget = 120
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dips := 0
	prev := res.InitQuality
	for _, r := range res.Rounds {
		if r.Quality < prev-1e-9 {
			dips++
		}
		prev = r.Quality
	}
	if dips > len(res.Rounds)/3 {
		t.Errorf("%d/%d rounds decreased quality", dips, len(res.Rounds))
	}
	if res.Quality <= res.InitQuality {
		t.Errorf("no overall quality gain: %v -> %v", res.InitQuality, res.Quality)
	}
}

func TestRunConfigValidation(t *testing.T) {
	ds := smallDataset(t, 4)
	ctx := context.Background()
	if _, err := Run(ctx, ds, Config{K: 0, Budget: 10, Source: NewSimulated(1, ds)}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ctx, ds, Config{K: 1, Budget: 10}); err == nil {
		t.Error("nil source accepted")
	}
	// Theta above every worker: no experts.
	broken := *ds
	broken.Theta = 0.999
	if _, err := Run(ctx, &broken, Config{K: 1, Budget: 10, Source: NewSimulated(1, ds)}); err == nil {
		t.Error("no-expert dataset accepted")
	}
}

func TestRunZeroBudgetIsInitOnly(t *testing.T) {
	ds := smallDataset(t, 5)
	cfg := baseConfig(ds)
	cfg.Budget = 0
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 || res.BudgetSpent != 0 {
		t.Errorf("zero budget ran %d rounds", len(res.Rounds))
	}
	if res.Quality != res.InitQuality {
		t.Errorf("quality moved without checking")
	}
}

func TestRunCancellation(t *testing.T) {
	ds := smallDataset(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ds, baseConfig(ds)); err == nil {
		t.Error("cancelled run succeeded")
	}
}

func TestRunWithEveryInitializer(t *testing.T) {
	ds := smallDataset(t, 7)
	for _, agg := range aggregate.Registry(5) {
		cfg := baseConfig(ds)
		cfg.Init = agg
		cfg.Budget = 20
		res, err := Run(context.Background(), ds, cfg)
		if err != nil {
			t.Fatalf("init %s: %v", agg.Name(), err)
		}
		if res.Accuracy < 0.5 {
			t.Errorf("init %s: accuracy %v", agg.Name(), res.Accuracy)
		}
	}
}

func TestRunWithEverySelector(t *testing.T) {
	ds := smallDataset(t, 8)
	sels := []taskselect.Selector{
		taskselect.Greedy{},
		taskselect.Random{Rng: rngutil.New(3)},
		taskselect.MaxEntropy{},
	}
	for _, sel := range sels {
		cfg := baseConfig(ds)
		cfg.Selector = sel
		cfg.Budget = 20
		if _, err := Run(context.Background(), ds, cfg); err != nil {
			t.Fatalf("selector %s: %v", sel.Name(), err)
		}
	}
}

func TestGreedyBeatsRandomAtEqualBudget(t *testing.T) {
	// The core claim of Figure 5, end to end: informed selection beats
	// random selection at the same budget (averaged over seeds).
	var greedySum, randomSum float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		ds := smallDataset(t, 100+s)
		cfgG := baseConfig(ds)
		cfgG.Budget = 80
		cfgG.Source = NewSimulated(200+s, ds)
		resG, err := Run(context.Background(), ds, cfgG)
		if err != nil {
			t.Fatal(err)
		}
		cfgR := cfgG
		cfgR.Selector = taskselect.Random{Rng: rngutil.New(300 + s)}
		cfgR.Source = NewSimulated(200+s, ds)
		resR, err := Run(context.Background(), ds, cfgR)
		if err != nil {
			t.Fatal(err)
		}
		greedySum += resG.Quality
		randomSum += resR.Quality
	}
	if greedySum <= randomSum {
		t.Errorf("greedy quality %v not above random %v", greedySum/trials, randomSum/trials)
	}
}

func TestUniformInitNoHC(t *testing.T) {
	ds := smallDataset(t, 9)
	cfg := baseConfig(ds)
	cfg.UniformInit = true
	cfg.Budget = 30
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform init: entropy per 5-fact task is 5·ln2, quality = −H.
	wantQ := -float64(len(ds.Tasks)) * 5 * math.Ln2
	if math.Abs(res.InitQuality-wantQ) > 1e-6 {
		t.Errorf("uniform init quality %v, want %v", res.InitQuality, wantQ)
	}
	// HC init must start strictly better than the uniform baseline.
	resHC, err := Run(context.Background(), ds, baseConfig(ds))
	if err != nil {
		t.Fatal(err)
	}
	if resHC.InitQuality <= res.InitQuality {
		t.Errorf("HC init %v not above uniform %v", resHC.InitQuality, res.InitQuality)
	}
}

func TestCostModelReducesRounds(t *testing.T) {
	ds := smallDataset(t, 10)
	cfg := baseConfig(ds)
	cfg.Budget = 40
	res1, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Source = NewSimulated(777, ds)
	cfg2.Cost = func(w crowd.Worker) float64 { return 2 } // everything twice as expensive
	res2, err := Run(context.Background(), ds, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rounds) >= len(res1.Rounds) {
		t.Errorf("doubled cost ran %d rounds vs %d at unit cost", len(res2.Rounds), len(res1.Rounds))
	}
}

func TestAccuracyLinkedCost(t *testing.T) {
	// The §III-D extension: cost grows with accuracy. The run must respect
	// the budget under a non-uniform cost.
	ds := smallDataset(t, 11)
	cfg := baseConfig(ds)
	cfg.Budget = 30
	cfg.Cost = func(w crowd.Worker) float64 { return 1 + 4*(w.Accuracy-0.9) }
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent > cfg.Budget {
		t.Errorf("overspent %v of %v", res.BudgetSpent, cfg.Budget)
	}
}

func TestStopRuleFreezesFacts(t *testing.T) {
	// One expert, so every checked fact gets exactly one answer per round
	// and |V_yes − V_no| = 1 > 0 always fires the C=0 rule: with the rule
	// active no fact may ever be rechecked.
	dcfg := dataset.DefaultSentiConfig()
	dcfg.NumTasks = 30
	dcfg.Crowd.NumExpert = 1
	ds, err := dataset.SentiLike(rngutil.New(12), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ds)
	cfg.Budget = 100
	cfg.Stop = &StopRule{C: 0, Eps: 0}
	res, err2 := Run(context.Background(), ds, cfg)
	if err2 != nil {
		t.Fatal(err2)
	}
	// With freezing, picks must never repeat a (task, fact).
	seen := map[taskselect.Candidate]int{}
	for _, r := range res.Rounds {
		for _, c := range r.Picks {
			seen[c]++
		}
	}
	for c, n := range seen {
		if n > 1 {
			t.Errorf("fact %v rechecked %d times despite stop rule", c, n)
		}
	}
}

func TestStopRuleStoppedMath(t *testing.T) {
	r := StopRule{C: 2, Eps: 0.1}
	if r.Stopped(0, 0) {
		t.Error("stopped with no votes")
	}
	// |5-0| = 5 > 2*sqrt(5) - 0.5 = 3.97 → stopped.
	if !r.Stopped(5, 0) {
		t.Error("decisive votes not stopped")
	}
	// |2-2| = 0 > 2*2-0.4 → not stopped.
	if r.Stopped(2, 2) {
		t.Error("tied votes stopped")
	}
}

func TestRunDeterministicGivenSeeds(t *testing.T) {
	ds := smallDataset(t, 13)
	cfg := baseConfig(ds)
	r1, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := baseConfig(ds) // fresh source, same seed
	r2, err := Run(context.Background(), ds, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Quality != r2.Quality || r1.Accuracy != r2.Accuracy {
		t.Error("same seeds, different outcomes")
	}
}

func TestMaxRounds(t *testing.T) {
	ds := smallDataset(t, 14)
	cfg := baseConfig(ds)
	cfg.Budget = 1e6
	cfg.MaxRounds = 3
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Errorf("ran %d rounds, want 3", len(res.Rounds))
	}
}

func TestRunTiersEquivalentSpecialCase(t *testing.T) {
	// §III-D: with one expert per tier, the concatenation design is
	// equivalent to merging all tiers into one CE group (same total
	// information). Verify both improve quality and land close.
	ds := smallDataset(t, 15)
	ce, _ := ds.Split()
	if len(ce) < 2 {
		t.Skip("need two experts")
	}
	base := Config{K: 1, Source: NewSimulated(555, ds)}
	tiers := []TierConfig{
		{Experts: crowd.Crowd{ce[0]}, Budget: 30},
		{Experts: crowd.Crowd{ce[1]}, Budget: 30},
	}
	resT, err := RunTiers(context.Background(), ds, base, tiers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ds)
	cfg.Budget = 60
	cfg.Source = NewSimulated(555, ds)
	resM, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resT.Quality <= resT.InitQuality {
		t.Errorf("tiers did not improve quality: %v -> %v", resT.InitQuality, resT.Quality)
	}
	// The equivalence is in expected information, not realized runs:
	// answer draws and selection paths differ, so allow sampling noise.
	if math.Abs(resT.Accuracy-resM.Accuracy) > 0.15 {
		t.Errorf("tiered %v vs merged %v accuracy diverge", resT.Accuracy, resM.Accuracy)
	}
	// Rounds renumber continuously.
	for i, r := range resT.Rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i, r.Round)
		}
	}
}

func TestRunTiersValidation(t *testing.T) {
	ds := smallDataset(t, 16)
	base := Config{K: 1, Source: NewSimulated(1, ds)}
	ctx := context.Background()
	if _, err := RunTiers(ctx, ds, base, nil); err == nil {
		t.Error("no tiers accepted")
	}
	if _, err := RunTiers(ctx, ds, base, []TierConfig{{}}); err == nil {
		t.Error("empty tier accepted")
	}
	if _, err := RunTiers(ctx, ds, Config{K: 0, Source: base.Source}, []TierConfig{{Experts: crowd.Crowd{{ID: "e", Accuracy: 0.95}}, Budget: 5}}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestSplitTiers(t *testing.T) {
	c := crowd.Crowd{
		{ID: "a", Accuracy: 0.98}, {ID: "b", Accuracy: 0.93},
		{ID: "c", Accuracy: 0.91}, {ID: "d", Accuracy: 0.7},
	}
	tiers, cp, err := SplitTiers(c, 0.9, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 2 || len(cp) != 1 {
		t.Fatalf("tiers=%d cp=%d", len(tiers), len(cp))
	}
	if tiers[0].Budget != 50 || tiers[1].Budget != 50 {
		t.Errorf("budgets %v/%v", tiers[0].Budget, tiers[1].Budget)
	}
	total := len(tiers[0].Experts) + len(tiers[1].Experts)
	if total != 3 {
		t.Errorf("experts distributed: %d", total)
	}
	if _, _, err := SplitTiers(c, 0.999, 2, 10); err == nil {
		t.Error("no experts above theta accepted")
	}
	if _, _, err := SplitTiers(c, 0.9, 0, 10); err == nil {
		t.Error("zero tiers accepted")
	}
}

func TestOracleExpertDrivesAccuracyToOne(t *testing.T) {
	// With an oracle-only expert tier and enough budget, every checked
	// fact becomes certain; overall accuracy must climb toward 1.
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 10
	ds, err := dataset.SentiLike(rngutil.New(17), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replace experts with one oracle.
	for i, w := range ds.Crowd {
		if w.Accuracy >= ds.Theta {
			ds.Crowd[i].Accuracy = 1.0
		}
	}
	run := Config{K: 1, Budget: 200, Source: NewSimulated(18, ds)}
	res, err := Run(context.Background(), ds, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.97 {
		t.Errorf("oracle checking reached only %v accuracy", res.Accuracy)
	}
}
