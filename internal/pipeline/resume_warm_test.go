package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/taskselect"
)

// warmFlavor abstracts the two loop flavors for the staged-resume tests.
type warmFlavor struct {
	name   string
	config func(t *testing.T, ds *dataset.Dataset) Config
	run    func(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Result, error)
	resume func(ctx context.Context, ds *dataset.Dataset, cfg Config, c *Checkpoint) (*Result, error)
}

func warmFlavors() []warmFlavor {
	uniform := func(stop *StopRule) func(t *testing.T, ds *dataset.Dataset) Config {
		return func(t *testing.T, ds *dataset.Dataset) Config {
			cfg := fig2StyleConfig(t, ds, 40)
			cfg.Stop = stop
			return cfg
		}
	}
	withCost := func(stop *StopRule) func(t *testing.T, ds *dataset.Dataset) Config {
		return func(t *testing.T, ds *dataset.Dataset) Config {
			cfg := fig2StyleConfig(t, ds, 40)
			cfg.Budget = 30
			cfg.Stop = stop
			pricey := ""
			if ce, _ := ds.Split(); len(ce) > 0 {
				pricey = ce[0].ID
			}
			cfg.Cost = func(w crowd.Worker) float64 {
				if w.ID == pricey {
					return 2
				}
				return 1
			}
			return cfg
		}
	}
	return []warmFlavor{
		{"uniform", uniform(nil), Run, Resume},
		{"uniform-stop", uniform(&StopRule{C: 2, Eps: 0.1}), Run, Resume},
		{"cost-aware", withCost(nil), RunCostAware, ResumeCostAware},
		{"cost-aware-stop", withCost(&StopRule{C: 2, Eps: 0.1}), RunCostAware, ResumeCostAware},
	}
}

// roundTrace renders one round's record; %v prints floats in shortest
// round-tripping form, so equal strings mean bit-identical rounds.
func roundTrace(rs RoundStats) string {
	return fmt.Sprintf("picks=%v spent=%v q=%v acc=%v", rs.Picks, rs.BudgetSpent, rs.Quality, rs.Accuracy)
}

// beliefBytes renders the final beliefs for byte comparison.
func beliefBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res.Beliefs)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// stagedResume runs a flavor to budget b1, round-trips a checkpoint
// through its JSON serialization, and resumes to the total budget with
// the SAME answer-source instance (its seeded RNG continues mid-stream,
// exactly as a restarted job re-attaching to a live source would see).
// warm == false strips the selection cache to force a cold first scan.
// Returns the two stage results and the conditional-entropy evaluations
// the resume consumed.
func stagedResume(t *testing.T, fl warmFlavor, b1, total float64, warm bool) (*Result, *Result, int64) {
	t.Helper()
	ctx := context.Background()
	ds := smallDataset(t, 4)
	cfg := fl.config(t, ds) // cfg.Source's RNG is shared by both stages
	cfg1 := cfg
	cfg1.Budget = b1
	part1, err := fl.run(ctx, ds, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewCheckpoint(part1).Write(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if warm && ck.Selection == nil {
		t.Fatal("checkpoint carries no selection cache")
	}
	if !warm {
		ck.Selection = nil
	}
	cfg2 := cfg
	cfg2.Budget = total
	taskselect.ResetEvalCount()
	resumed, err := fl.resume(ctx, ds, cfg2, ck)
	if err != nil {
		t.Fatal(err)
	}
	return part1, resumed, taskselect.EvalCount()
}

// TestWarmResumeDeterministicGivenSeed is the warm-vs-cold equivalence
// property of the ISSUE: a run checkpointed mid-stream and resumed with
// the serialized selection cache must produce picks and final beliefs
// byte-identical to the uninterrupted run — for both loop flavors, with
// and without the stopping rule, warm or cold. The name keeps it inside
// the -count=2 determinism suite.
func TestWarmResumeDeterministicGivenSeed(t *testing.T) {
	ctx := context.Background()
	for _, fl := range warmFlavors() {
		t.Run(fl.name, func(t *testing.T) {
			ds := smallDataset(t, 4)
			cfg := fl.config(t, ds)
			full, err := fl.run(ctx, ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			const r = 2 // checkpoint after this many rounds
			if len(full.Rounds) < r+2 {
				t.Fatalf("full run finished in %d rounds, need >= %d for a meaningful split", len(full.Rounds), r+2)
			}
			b1 := full.Rounds[r-1].BudgetSpent
			for _, mode := range []struct {
				name string
				warm bool
			}{{"warm", true}, {"cold", false}} {
				t.Run(mode.name, func(t *testing.T) {
					part1, resumed, _ := stagedResume(t, fl, b1, cfg.Budget, mode.warm)
					if len(part1.Rounds) != r {
						t.Fatalf("stage 1 ran %d rounds on budget %v, want %d", len(part1.Rounds), b1, r)
					}
					for i, rs := range part1.Rounds {
						if got, want := roundTrace(rs), roundTrace(full.Rounds[i]); got != want {
							t.Fatalf("stage-1 round %d diverged:\n got  %.200s\n want %.200s", i+1, got, want)
						}
					}
					if len(resumed.Rounds) != len(full.Rounds)-r {
						t.Fatalf("resume ran %d rounds, want %d", len(resumed.Rounds), len(full.Rounds)-r)
					}
					for i, rs := range resumed.Rounds {
						if got, want := roundTrace(rs), roundTrace(full.Rounds[r+i]); got != want {
							t.Fatalf("resumed round %d diverged:\n got  %.200s\n want %.200s", r+i+1, got, want)
						}
					}
					if got, want := beliefBytes(t, resumed), beliefBytes(t, full); !bytes.Equal(got, want) {
						t.Error("final beliefs differ from the uninterrupted run")
					}
					if got, want := fmt.Sprintf("%v", resumed.Labels), fmt.Sprintf("%v", full.Labels); got != want {
						t.Errorf("final labels differ:\n got  %s\n want %s", got, want)
					}
					if resumed.BudgetSpent != full.BudgetSpent {
						t.Errorf("cumulative spend %v, want %v", resumed.BudgetSpent, full.BudgetSpent)
					}
				})
			}
		})
	}
}

// TestWarmResumeSkipsFullRescan verifies the warm sections pay off: a
// resume primed with the serialized selection cache must spend strictly
// fewer conditional-entropy evaluations than a cold resume of the same
// checkpoint, because only the tasks touched by the last pre-checkpoint
// round re-scan — unchanged tasks reuse their cached gains verbatim.
func TestWarmResumeSkipsFullRescan(t *testing.T) {
	ctx := context.Background()
	for _, fl := range warmFlavors() {
		t.Run(fl.name, func(t *testing.T) {
			ds := smallDataset(t, 4)
			cfg := fl.config(t, ds)
			full, err := fl.run(ctx, ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			const r = 2
			if len(full.Rounds) < r+2 {
				t.Fatalf("full run finished in %d rounds", len(full.Rounds))
			}
			b1 := full.Rounds[r-1].BudgetSpent
			_, warmRes, warmEvals := stagedResume(t, fl, b1, cfg.Budget, true)
			_, coldRes, coldEvals := stagedResume(t, fl, b1, cfg.Budget, false)
			if got, want := beliefBytes(t, warmRes), beliefBytes(t, coldRes); !bytes.Equal(got, want) {
				t.Error("warm and cold resumes disagree on final beliefs")
			}
			if warmEvals >= coldEvals {
				t.Errorf("warm resume cost %d evals, cold %d — the cache saved nothing", warmEvals, coldEvals)
			}
		})
	}
}

// TestCheckpointOldFormatLoads: a checkpoint from before the versioned
// format — beliefs and spend only — still reads and resumes (cold).
func TestCheckpointOldFormatLoads(t *testing.T) {
	ctx := context.Background()
	ds := smallDataset(t, 4)
	cfg := baseConfig(ds)
	cfg.Budget = 20
	res, err := Run(ctx, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	beliefs, err := json.Marshal(res.Beliefs)
	if err != nil {
		t.Fatal(err)
	}
	old := fmt.Sprintf(`{"beliefs":%s,"budget_spent":%v}`, beliefs, res.BudgetSpent)
	ck, err := ReadCheckpoint(strings.NewReader(old))
	if err != nil {
		t.Fatalf("old-format checkpoint rejected: %v", err)
	}
	if ck.Version != 0 || ck.Selection != nil || ck.StopVotes != nil {
		t.Fatalf("old-format checkpoint grew warm sections: %+v", ck)
	}
	cfg2 := baseConfig(ds)
	cfg2.Budget = 40
	resumed, err := Resume(ctx, ds, cfg2, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.BudgetSpent <= res.BudgetSpent {
		t.Errorf("resume from old checkpoint spent nothing: %v -> %v", res.BudgetSpent, resumed.BudgetSpent)
	}
}
