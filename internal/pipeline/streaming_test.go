package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/rngutil"
)

// streamFragments generates a deterministic admission schedule against
// the base dataset: count fragments of two tasks each, drawn from one
// seeded stream so the whole schedule is a pure function of the seed.
func streamFragments(t *testing.T, ds *dataset.Dataset, seed int64, count int) []*dataset.Fragment {
	t.Helper()
	rng := rngutil.New(seed)
	cfg := dataset.DefaultSentiConfig()
	frags := make([]*dataset.Fragment, count)
	for i := range frags {
		fr, err := dataset.SentiFragment(rng, ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		frags[i] = fr
	}
	return frags
}

// streamTrace extends the closed-loop trace with the streaming-only
// result fields, so byte-equal traces also pin admission accounting.
func streamTrace(res *Result) string {
	return fmt.Sprintf("%s | admitted=%d overspent=%v", trace(res), res.TasksAdmitted, res.Overspent)
}

// TestStreamingDeterministicGivenSeed is the streaming half of the
// reproducibility suite: the event-driven scheduler folds admission
// batches into a live run at round boundaries, and two runs built from
// identical seeds and the identical admission schedule must still
// produce byte-identical traces — same picks, labels, spend, and
// admission accounting — for both loop flavors.
func TestStreamingDeterministicGivenSeed(t *testing.T) {
	variants := []struct {
		name string
		run  func(t *testing.T) string
	}{
		{"uniform", func(t *testing.T) string {
			ds := smallDataset(t, 11)
			cfg := fig2StyleConfig(t, ds, 50)
			cfg.Budget = 25
			cfg.BudgetWindow = 12
			frags := streamFragments(t, ds, 123, 3)
			cfg.Admit = &ScheduleSource{Batches: [][]*dataset.Fragment{
				nil, {frags[0]}, nil, {frags[1], frags[2]},
			}}
			res, err := Run(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return streamTrace(res)
		}},
		{"cost-aware", func(t *testing.T) string {
			ds := smallDataset(t, 11)
			cfg := fig2StyleConfig(t, ds, 50)
			cfg.Budget = 20
			cfg.BudgetWindow = 10
			pricey := ""
			if ce, _ := ds.Split(); len(ce) > 0 {
				pricey = ce[0].ID
			}
			cfg.Cost = func(w crowd.Worker) float64 {
				if w.ID == pricey {
					return 2
				}
				return 1
			}
			frags := streamFragments(t, ds, 123, 3)
			cfg.Admit = &ScheduleSource{Batches: [][]*dataset.Fragment{
				nil, {frags[0]}, nil, {frags[1], frags[2]},
			}}
			res, err := RunCostAware(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return streamTrace(res)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			first := v.run(t)
			second := v.run(t)
			if first != second {
				t.Errorf("identical seeds diverged:\n run 1: %.200s…\n run 2: %.200s…", first, second)
			}
		})
	}
}

// TestStreamingAdmissionExtendsRun pins the scheduler's growth contract:
// every scheduled fragment is admitted, the final labels cover the grown
// fact space, the rolling window funds checking past the fixed budget,
// and the per-round metrics attribute the admissions.
func TestStreamingAdmissionExtendsRun(t *testing.T) {
	ds := smallDataset(t, 12)
	baseTasks := len(ds.Tasks)
	baseFacts := ds.NumFacts()
	cfg := baseConfig(ds)
	cfg.Budget = 20
	cfg.BudgetWindow = 15
	frags := streamFragments(t, ds, 77, 3)
	wantTasks, wantFacts := 0, 0
	for _, fr := range frags {
		wantTasks += len(fr.Tasks)
		wantFacts += fr.NumFacts()
	}
	cfg.Admit = &ScheduleSource{Batches: [][]*dataset.Fragment{
		{frags[0]}, nil, nil, {frags[1]}, nil, {frags[2]},
	}}
	rec := &MetricsRecorder{}
	cfg.Metrics = rec
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksAdmitted != wantTasks {
		t.Errorf("TasksAdmitted = %d, want %d", res.TasksAdmitted, wantTasks)
	}
	if len(ds.Tasks) != baseTasks+wantTasks {
		t.Errorf("dataset grew to %d tasks, want %d", len(ds.Tasks), baseTasks+wantTasks)
	}
	if len(res.Labels) != baseFacts+wantFacts {
		t.Errorf("labels cover %d facts, want %d", len(res.Labels), baseFacts+wantFacts)
	}
	if len(res.Beliefs) != baseTasks+wantTasks {
		t.Errorf("beliefs cover %d tasks, want %d", len(res.Beliefs), baseTasks+wantTasks)
	}
	// Three fragments refill three windows on top of the fixed budget;
	// the run must spend past the fixed budget alone.
	if res.BudgetSpent <= cfg.Budget {
		t.Errorf("spent %v never consumed a rolling window beyond the fixed budget %v",
			res.BudgetSpent, cfg.Budget)
	}
	var recAdmitted int
	for _, m := range rec.Rounds() {
		recAdmitted += m.TasksAdmitted
	}
	// Metrics attribute admissions to the round that followed them; a
	// trailing admission with no further round is counted in the result
	// only, so the records can cover at most the result total.
	if recAdmitted > res.TasksAdmitted {
		t.Errorf("metrics attribute %d admitted tasks, result has %d", recAdmitted, res.TasksAdmitted)
	}
}

// overSource wraps a Source and appends one extra answer set from a
// phantom worker to every family, so each round is charged for more
// answers than the plan requested — the deliberate overspend trigger.
type overSource struct {
	inner AnswerSource
}

func (o overSource) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	fam, err := o.inner.Answers(experts, facts)
	if err != nil || len(fam) == 0 {
		return fam, err
	}
	first := fam[0]
	extra := crowd.AnswerSet{
		Worker: crowd.Worker{ID: "over-delivery", Accuracy: 0.9},
		Facts:  append([]int{}, first.Facts...),
		Values: append([]bool{}, first.Values...),
	}
	return append(fam, extra), nil
}

// TestOverspendClampFixedBudget is the satellite-2 regression for the
// fixed-budget path: a source delivering more answers than requested
// pushes the round's charge past the remaining budget. The engine must
// floor the balance at zero, record the excess in Result.Overspent and
// the round metrics, and keep the checkpoints consistent with the spend
// — before the clamp, `budget -= spent` went negative silently.
func TestOverspendClampFixedBudget(t *testing.T) {
	ds := smallDataset(t, 13)
	ce, _ := ds.Split()
	perPick := float64(len(ce))
	cfg := baseConfig(ds)
	cfg.Source = overSource{inner: cfg.Source}
	cfg.K = 1
	cfg.Budget = perPick // exactly one pick fundable
	rec := &MetricsRecorder{}
	cfg.Metrics = rec
	var cks []*Checkpoint
	cfg.OnCheckpoint = func(ck *Checkpoint) { cks = append(cks, ck) }
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("ran %d rounds, want exactly 1 (budget funds one pick)", len(res.Rounds))
	}
	if math.Abs(res.Overspent-1) > 1e-9 {
		t.Errorf("Overspent = %v, want 1 (one phantom answer at unit cost)", res.Overspent)
	}
	if math.Abs(res.BudgetSpent-(perPick+1)) > 1e-9 {
		t.Errorf("BudgetSpent = %v, want %v", res.BudgetSpent, perPick+1)
	}
	rounds := rec.Rounds()
	if len(rounds) != 1 || math.Abs(rounds[0].Overspent-1) > 1e-9 {
		t.Errorf("round metrics overspend = %+v, want one round with Overspent 1", rounds)
	}
	if rounds[0].AnswersReceived != rounds[0].AnswersRequested+1 {
		t.Errorf("received %d answers for %d requested, want exactly one extra",
			rounds[0].AnswersReceived, rounds[0].AnswersRequested)
	}
	// The checkpoint carries the true (over)spend, and round-trips.
	if len(cks) != 1 {
		t.Fatalf("got %d checkpoints, want 1", len(cks))
	}
	if math.Abs(cks[0].BudgetSpent-res.BudgetSpent) > 1e-9 {
		t.Errorf("checkpoint BudgetSpent = %v, result %v", cks[0].BudgetSpent, res.BudgetSpent)
	}
	var buf bytes.Buffer
	if err := cks[0].Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("overspent checkpoint does not round-trip: %v", err)
	}
	if math.Abs(back.BudgetSpent-cks[0].BudgetSpent) > 1e-9 {
		t.Errorf("round-tripped BudgetSpent = %v, want %v", back.BudgetSpent, cks[0].BudgetSpent)
	}
}

// TestOverspendClampRollingWindow is the satellite-2 regression for the
// streaming path: after an overspent round, the next admission's window
// refill must fund a full window. Without the floor, the negative
// balance silently ate part of the refill and the run stalled.
func TestOverspendClampRollingWindow(t *testing.T) {
	ds := smallDataset(t, 13)
	ce, _ := ds.Split()
	perPick := float64(len(ce))
	cfg := baseConfig(ds)
	cfg.Source = overSource{inner: cfg.Source}
	cfg.K = 1
	cfg.Budget = perPick
	cfg.BudgetWindow = perPick
	frags := streamFragments(t, ds, 88, 1)
	cfg.Admit = &ScheduleSource{Batches: [][]*dataset.Fragment{
		nil, {frags[0]},
	}}
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 overspends the fixed budget by the phantom answer; the
	// admitted fragment refills exactly one more pick's worth, which must
	// fund round 2 in full. A leaked negative balance leaves the refill
	// short of perPick and the run ends after one round.
	if len(res.Rounds) != 2 {
		t.Fatalf("ran %d rounds, want 2 (window refill must fund a full pick)", len(res.Rounds))
	}
	if math.Abs(res.Overspent-2) > 1e-9 {
		t.Errorf("Overspent = %v, want 2 (one phantom answer per round)", res.Overspent)
	}
	if res.TasksAdmitted != len(frags[0].Tasks) {
		t.Errorf("TasksAdmitted = %d, want %d", res.TasksAdmitted, len(frags[0].Tasks))
	}
}

// partialSource wraps a Source and drops the last worker's answer set
// from every family, simulating an expert who timed out mid-round.
type partialSource struct {
	inner AnswerSource
}

func (p partialSource) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	fam, err := p.inner.Answers(experts, facts)
	if err != nil || len(fam) < 2 {
		return fam, err
	}
	return fam[:len(fam)-1], nil
}

// TestPartialRoundAccounting is the satellite-4 regression: a source
// returning fewer answers than requested must show up as
// AnswersReceived < AnswersRequested in the round metrics, with the
// budget charged only for the answers actually received, and the
// checkpoints must stay consistent with the reduced spend.
func TestPartialRoundAccounting(t *testing.T) {
	ds := smallDataset(t, 14)
	cfg := baseConfig(ds)
	cfg.Source = partialSource{inner: cfg.Source}
	cfg.K = 2
	cfg.Budget = 30
	rec := &MetricsRecorder{}
	cfg.Metrics = rec
	var cks []*Checkpoint
	cfg.OnCheckpoint = func(ck *Checkpoint) { cks = append(cks, ck) }
	res, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := rec.Rounds()
	if len(rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	var cum float64
	for _, m := range rounds {
		if m.AnswersReceived >= m.AnswersRequested {
			t.Errorf("round %d: received %d of %d requested, want strictly fewer",
				m.Round, m.AnswersReceived, m.AnswersRequested)
		}
		// One dropped worker per purchase; K=2 may split across two tasks.
		dropped := m.AnswersRequested - m.AnswersReceived
		if dropped < 1 || dropped > cfg.K {
			t.Errorf("round %d: %d answers dropped, want 1..%d", m.Round, dropped, cfg.K)
		}
		if math.Abs(m.Spent-float64(m.AnswersReceived)) > 1e-9 {
			t.Errorf("round %d: spent %v for %d unit-cost answers", m.Round, m.Spent, m.AnswersReceived)
		}
		cum += m.Spent
		if math.Abs(m.BudgetSpent-cum) > 1e-9 {
			t.Errorf("round %d: cumulative spend %v, want %v", m.Round, m.BudgetSpent, cum)
		}
	}
	if math.Abs(res.BudgetSpent-cum) > 1e-9 {
		t.Errorf("result spend %v disagrees with metrics %v", res.BudgetSpent, cum)
	}
	if res.BudgetSpent > cfg.Budget {
		t.Errorf("partial rounds overspent: %v > %v", res.BudgetSpent, cfg.Budget)
	}
	if len(cks) != len(rounds) {
		t.Fatalf("%d checkpoints for %d rounds", len(cks), len(rounds))
	}
	last := cks[len(cks)-1]
	if math.Abs(last.BudgetSpent-res.BudgetSpent) > 1e-9 {
		t.Errorf("final checkpoint spend %v, result %v", last.BudgetSpent, res.BudgetSpent)
	}
	var buf bytes.Buffer
	if err := last.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err != nil {
		t.Fatalf("partial-round checkpoint does not round-trip: %v", err)
	}
}
