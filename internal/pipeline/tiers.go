package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
)

// TierConfig describes one expert tier in the multi-level hierarchy
// discussed in §III-D ("whether the crowd can be divided into more groups
// than just two"): the labels are initialized once by CP and then checked
// sequentially by each tier, each with its own budget share.
type TierConfig struct {
	Experts crowd.Crowd
	Budget  float64
}

// RunTiers executes the concatenation design: initialization from the
// preliminary workers followed by one checking phase per tier, in order.
// Beliefs carry over between phases. The base config supplies K, Selector,
// Init, Source and the optional cost model; its Budget field is ignored in
// favor of the per-tier budgets.
func RunTiers(ctx context.Context, ds *dataset.Dataset, base Config, tiers []TierConfig) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(tiers) == 0 {
		return nil, errors.New("pipeline: no tiers")
	}
	if base.K < 1 {
		return nil, fmt.Errorf("pipeline: K = %d, need >= 1", base.K)
	}
	if base.Source == nil {
		return nil, errors.New("pipeline: Config.Source is required")
	}
	for i, tier := range tiers {
		if len(tier.Experts) == 0 {
			return nil, fmt.Errorf("pipeline: tier %d has no experts", i)
		}
		if err := tier.Experts.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: tier %d: %w", i, err)
		}
	}
	if base.Selector == nil {
		base.Selector = defaultSelector()
	}
	if base.Init == nil {
		base.Init = defaultInit()
	}
	beliefs, err := initFor(ds, base)
	if err != nil {
		return nil, err
	}
	var combined *Result
	for i, tier := range tiers {
		cfg := base
		cfg.Budget = tier.Budget
		res, err := runUniform(ctx, ds, cfg, tier.Experts, beliefs, nil, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("pipeline: tier %d: %w", i, err)
		}
		if combined == nil {
			combined = res
		} else {
			// Rounds continue numbering and cumulative budget across tiers.
			offR := len(combined.Rounds)
			offB := combined.BudgetSpent
			for _, r := range res.Rounds {
				r.Round += offR
				r.BudgetSpent += offB
				combined.Rounds = append(combined.Rounds, r)
			}
			combined.BudgetSpent += res.BudgetSpent
			combined.Quality = res.Quality
			combined.Accuracy = res.Accuracy
			combined.Labels = res.Labels
			combined.Beliefs = res.Beliefs
		}
	}
	return combined, nil
}

// SplitTiers divides a crowd into n expert tiers by descending accuracy
// above theta (tier 0 is the most accurate) plus the preliminary rest.
// Each tier receives an equal share of the budget.
func SplitTiers(c crowd.Crowd, theta float64, n int, budget float64) ([]TierConfig, crowd.Crowd, error) {
	if n < 1 {
		return nil, nil, errors.New("pipeline: need at least one tier")
	}
	ce, cp := c.Split(theta)
	if len(ce) == 0 {
		return nil, nil, errors.New("pipeline: no experts above theta")
	}
	if n > len(ce) {
		n = len(ce)
	}
	sorted := ce.SortByAccuracy()
	tiers := make([]TierConfig, n)
	per := budget / float64(n)
	for i, w := range sorted {
		tiers[i%n].Experts = append(tiers[i%n].Experts, w)
	}
	for i := range tiers {
		tiers[i].Budget = per
		sort.Slice(tiers[i].Experts, func(a, b int) bool {
			return tiers[i].Experts[a].ID < tiers[i].Experts[b].ID
		})
	}
	return tiers, cp, nil
}
