// Package rngutil provides the reproducible randomness substrate: a seeded
// source plus the non-uniform samplers (Gamma, Beta, Dirichlet,
// categorical) required by the dataset simulator and the sampling-based
// aggregation baselines (BCC Gibbs sampling). All samplers take an
// explicit *rand.Rand so every experiment is deterministic given its seed.
package rngutil

import (
	"math"
	"math/rand"
)

// New returns a rand.Rand seeded deterministically. Experiments derive all
// their randomness from one such source so that a run is reproducible from
// its seed alone.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent generator from rng; it is used to give each
// simulated worker its own stream so that adding workers does not perturb
// the answers of existing ones.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Categorical samples an index from an unnormalized non-negative weight
// vector. It panics if the weights are empty or sum to zero.
func Categorical(rng *rand.Rand, w []float64) int {
	if len(w) == 0 {
		panic("rngutil: Categorical with no weights")
	}
	var total float64
	for _, v := range w {
		if v < 0 || math.IsNaN(v) {
			panic("rngutil: Categorical weight negative or NaN")
		}
		total += v
	}
	if total == 0 {
		panic("rngutil: Categorical weights sum to zero")
	}
	u := rng.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1 // rounding fell off the end
}

// Gamma samples from a Gamma(shape, 1) distribution using the
// Marsaglia-Tsang squeeze method, with the standard boosting trick for
// shape < 1. The scale is applied by the caller if needed.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 || math.IsNaN(shape) {
		panic("rngutil: Gamma shape must be positive")
	}
	if shape < 1 {
		// G(a) = G(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples from a Beta(a, b) distribution via two Gamma draws.
func Beta(rng *rand.Rand, a, b float64) float64 {
	x := Gamma(rng, a)
	y := Gamma(rng, b)
	s := x + y
	if s == 0 {
		return 0.5 // both underflowed; split the difference
	}
	return x / s
}

// Dirichlet samples a probability vector from a Dirichlet distribution
// with the given concentration parameters.
func Dirichlet(rng *rand.Rand, alpha []float64) []float64 {
	p := make([]float64, len(alpha))
	var sum float64
	for i, a := range alpha {
		p[i] = Gamma(rng, a)
		sum += p[i]
	}
	if sum == 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// UniformIn returns a uniform draw from [lo, hi).
func UniformIn(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Shuffle permutes the ints in place.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
