package rngutil

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	rng := New(7)
	a := Split(rng)
	b := Split(rng)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams coincide on %d/100 draws", same)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := New(1)
	const n = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if Bernoulli(rng, p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	rng := New(2)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, w)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("Categorical freq[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	rng := New(3)
	for name, w := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
		"nan":      {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%s) did not panic", name)
				}
			}()
			Categorical(rng, w)
		}()
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	rng := New(4)
	w := []float64{0, 0, 3, 0}
	for i := 0; i < 100; i++ {
		if got := Categorical(rng, w); got != 2 {
			t.Fatalf("Categorical point mass returned %d", got)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	rng := New(5)
	const n = 200000
	for _, shape := range []float64{0.5, 1, 2, 9} {
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := Gamma(rng, shape)
			if x < 0 {
				t.Fatalf("Gamma(%v) produced negative sample %v", shape, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("Gamma(%v) mean = %v, want %v", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) variance = %v, want %v", shape, variance, shape)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	rng := New(6)
	for _, shape := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v) did not panic", shape)
				}
			}()
			Gamma(rng, shape)
		}()
	}
}

func TestBetaMoments(t *testing.T) {
	rng := New(7)
	const n = 200000
	cases := []struct{ a, b float64 }{{1, 1}, {2, 5}, {0.5, 0.5}, {10, 2}}
	for _, c := range cases {
		var sum float64
		for i := 0; i < n; i++ {
			x := Beta(rng, c.a, c.b)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) sample %v out of [0,1]", c.a, c.b, x)
			}
			sum += x
		}
		mean := sum / n
		want := c.a / (c.a + c.b)
		if math.Abs(mean-want) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", c.a, c.b, mean, want)
		}
	}
}

func TestDirichletSimplex(t *testing.T) {
	rng := New(8)
	alpha := []float64{1, 2, 3, 4}
	for i := 0; i < 1000; i++ {
		p := Dirichlet(rng, alpha)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("Dirichlet produced negative coordinate %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sample sums to %v", sum)
		}
	}
}

func TestDirichletMean(t *testing.T) {
	rng := New(9)
	alpha := []float64{2, 3, 5}
	const n = 100000
	means := make([]float64, 3)
	for i := 0; i < n; i++ {
		p := Dirichlet(rng, alpha)
		for j, v := range p {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= n
		want := alpha[j] / 10
		if math.Abs(means[j]-want) > 0.005 {
			t.Errorf("Dirichlet mean[%d] = %v, want %v", j, means[j], want)
		}
	}
}

func TestUniformIn(t *testing.T) {
	rng := New(10)
	for i := 0; i < 1000; i++ {
		x := UniformIn(rng, 0.6, 0.9)
		if x < 0.6 || x >= 0.9 {
			t.Fatalf("UniformIn out of range: %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(11)
	p := Perm(rng, 50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	rng := New(12)
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(rng, xs)
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}
