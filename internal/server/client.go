package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"time"
)

// StatusError reports a non-success HTTP status from the labeling
// service, keeping the code inspectable so callers can tell benign
// races (409: the round moved on; 410: the session finished) from real
// failures.
type StatusError struct {
	Path string
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s returned %d: %s", e.Path, e.Code, e.Msg)
}

// Client is the Go consumer of the hcserve HTTP API. Expert-side tools
// (or bridges to real crowdsourcing platforms) use it to poll for
// checking queries and post answers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client

	// Retry policy for transient transport errors inside AnswerLoop:
	// consecutive failures back off exponentially from RetryBaseDelay
	// (default 100 ms) capped at RetryMaxDelay (default 5 s), with ±25%
	// jitter; after MaxRetries consecutive failures (default 8) the loop
	// gives up and returns the last error. Any success resets the count.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	MaxRetries     int
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) getJSON(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, fmt.Errorf("server: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Experts lists the worker IDs the session accepts answers from.
func (c *Client) Experts(ctx context.Context) ([]string, error) {
	var out struct {
		Experts []string `json:"experts"`
	}
	code, err := c.getJSON(ctx, "/experts", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /experts returned %d", code)
	}
	return out.Experts, nil
}

// Query is one open checking round from the expert's point of view.
type Query struct {
	Round int   `json:"round"`
	Facts []int `json:"facts"`
}

// Queries fetches the open round for the worker; ok is false when there
// is nothing to answer right now.
func (c *Client) Queries(ctx context.Context, workerID string) (Query, bool, error) {
	var q Query
	code, err := c.getJSON(ctx, "/queries?worker="+url.QueryEscape(workerID), &q)
	if err != nil {
		return Query{}, false, err
	}
	switch code {
	case http.StatusOK:
		return q, true, nil
	case http.StatusNoContent:
		return Query{}, false, nil
	default:
		return Query{}, false, &StatusError{Path: "/queries", Code: code}
	}
}

// Answer posts one worker's answers for a round.
func (c *Client) Answer(ctx context.Context, round int, workerID string, values []bool) error {
	body, err := json.Marshal(map[string]any{
		"round": round, "worker": workerID, "values": values,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/answers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Path: "/answers", Code: resp.StatusCode, Msg: string(msg)}
	}
	return nil
}

// Status fetches the session's progress.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	code, err := c.getJSON(ctx, "/status", &st)
	if err != nil {
		return Status{}, err
	}
	if code != http.StatusOK {
		return Status{}, &StatusError{Path: "/status", Code: code}
	}
	return st, nil
}

// Labels fetches the final labels; it errors while labeling is still in
// progress.
func (c *Client) Labels(ctx context.Context) ([]bool, error) {
	var out struct {
		Labels []bool `json:"labels"`
	}
	code, err := c.getJSON(ctx, "/labels", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /labels returned %d", code)
	}
	return out.Labels, nil
}

// retryPolicy resolves the client's backoff knobs to their defaults.
func (c *Client) retryPolicy() (base, max time.Duration, retries int) {
	base, max, retries = c.RetryBaseDelay, c.RetryMaxDelay, c.MaxRetries
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if retries <= 0 {
		retries = 8
	}
	return base, max, retries
}

// backoffDelay is the capped exponential delay for the nth consecutive
// failure (n >= 1), with ±25% jitter so a fleet of experts does not
// hammer a recovering server in lockstep. The jitter source is an
// explicit *rand.Rand owned by the retry loop — never the process
// global, which the rand-hygiene lint bans so that simulation code can
// rely on seed-determinism.
func backoffDelay(jitter *rand.Rand, base, max time.Duration, n int) time.Duration {
	d := base << uint(n-1)
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	jittered := time.Duration(float64(d) * (0.75 + 0.5*jitter.Float64()))
	if jittered <= 0 {
		jittered = d
	}
	return jittered
}

// AnswerLoop polls for queries addressed to workerID and answers them
// with the supplied function until the session completes or ctx is
// cancelled. It is the building block for expert-side clients.
//
// The loop is resilient to the protocol's benign races and to transient
// transport failures: a 409 on POST /answers means the round completed
// (full panel or timeout) between Queries and Answer — the answer is
// simply stale, so the loop re-polls for the next round; a 410 means the
// session finished, which the next Status call confirms. Transport
// errors (dropped connections, a restarting server) retry with capped
// exponential backoff and jitter per the client's retry policy; only
// after MaxRetries consecutive failures — or on a non-benign HTTP status
// — does the loop give up.
func (c *Client) AnswerLoop(ctx context.Context, workerID string, answer func(facts []int) []bool, poll time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	base, max, retries := c.retryPolicy()
	// Each loop owns its jitter stream: time-seeded (this is the live
	// network path, not a simulation) so concurrent expert loops
	// desynchronize, and explicit so no labeling code path ever touches
	// the process-global RNG.
	jitter := rand.New(rand.NewSource(time.Now().UnixNano()))
	failures := 0
	// fail classifies an error: benign races clear, transport errors
	// back off until the retry budget runs out, HTTP errors are fatal.
	// The second return is the error to stop with, nil to keep looping.
	fail := func(err error) (stop bool, ret error) {
		var se *StatusError
		if errors.As(err, &se) {
			if se.Code == http.StatusConflict || se.Code == http.StatusGone {
				// The round moved on (or the session just finished); the
				// next Status/Queries poll resynchronizes.
				failures = 0
				return false, nil
			}
			return true, err // a real protocol error; retrying won't help
		}
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		failures++
		if failures > retries {
			return true, fmt.Errorf("server: giving up after %d consecutive failures: %w", failures, err)
		}
		select {
		case <-ctx.Done():
			return true, ctx.Err()
		case <-time.After(backoffDelay(jitter, base, max, failures)):
		}
		return false, nil
	}
	for {
		st, err := c.Status(ctx)
		if err != nil {
			if stop, ret := fail(err); stop {
				return ret
			}
			continue
		}
		failures = 0
		if st.Done {
			return nil
		}
		q, ok, err := c.Queries(ctx, workerID)
		if err != nil {
			if stop, ret := fail(err); stop {
				return ret
			}
			continue
		}
		if ok {
			if err := c.Answer(ctx, q.Round, workerID, answer(q.Facts)); err != nil {
				if stop, ret := fail(err); stop {
					return ret
				}
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
