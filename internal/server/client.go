package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
)

// defaultClientTimeout bounds each request when the caller configures
// neither an HTTPClient nor a Timeout.
const defaultClientTimeout = 10 * time.Second

// resolveTimeout maps the Timeout knob to an http.Client timeout: zero
// means the default, negative disables the whole-request timeout (the
// per-call context is then the only deadline).
func resolveTimeout(d time.Duration) time.Duration {
	switch {
	case d == 0:
		return defaultClientTimeout
	case d < 0:
		return 0
	default:
		return d
	}
}

// StatusError reports a non-success HTTP status from the labeling
// service, keeping the code inspectable so callers can tell benign
// races (409: the round moved on; 410: the session finished) from real
// failures.
type StatusError struct {
	Path string
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s returned %d: %s", e.Path, e.Code, e.Msg)
}

// Client is the Go consumer of the hcserve HTTP API. Expert-side tools
// (or bridges to real crowdsourcing platforms) use it to poll for
// checking queries and post answers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient, when non-nil, is used as-is for every request (and
	// Timeout is ignored — configure the client's own Timeout instead).
	HTTPClient *http.Client
	// Timeout bounds each whole request when HTTPClient is nil: 0 means
	// the 10 s default, negative disables the timeout so only the
	// per-call context deadline applies (long-poll friendly). It may be
	// changed between requests: the derived client is rebuilt when the
	// resolved timeout differs from the one it was built with, and
	// reused (so connections pool) while it does not. Do not mutate it
	// concurrently with in-flight requests.
	Timeout time.Duration

	// Retry policy for transient transport errors inside AnswerLoop:
	// consecutive failures back off exponentially from RetryBaseDelay
	// (default 100 ms) capped at RetryMaxDelay (default 5 s), with ±25%
	// jitter; after MaxRetries consecutive failures (default 8) the loop
	// gives up and returns the last error. Any success resets the count.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	MaxRetries     int

	mu             sync.Mutex
	derived        *http.Client  //hclint:guardedby mu
	derivedTimeout time.Duration //hclint:guardedby mu
}

// NewClient returns a client for the given server root with the default
// request timeout (tune via the Timeout field).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// NewSessionClient returns a client scoped to one managed session: the
// same expert-side API, rooted at /v1/sessions/{id} instead of the
// server root. baseURL is the service root, e.g. "http://127.0.0.1:8080".
func NewSessionClient(baseURL, id string) *Client {
	return NewClient(strings.TrimSuffix(baseURL, "/") + "/v1/sessions/" + url.PathEscape(id))
}

// http returns the cached timeout-scoped client, rebuilding it when
// the resolved Timeout changed since it was built — a Timeout set after
// the first request is honored instead of silently ignored, while an
// unchanged Timeout keeps reusing the client (and its connection pool).
func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	want := resolveTimeout(c.Timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.derived == nil || c.derivedTimeout != want {
		c.derived = &http.Client{Timeout: want}
		c.derivedTimeout = want
	}
	return c.derived
}

func (c *Client) getJSON(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, fmt.Errorf("server: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Experts lists the worker IDs the session accepts answers from.
func (c *Client) Experts(ctx context.Context) ([]string, error) {
	var out struct {
		Experts []string `json:"experts"`
	}
	code, err := c.getJSON(ctx, "/experts", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /experts returned %d", code)
	}
	return out.Experts, nil
}

// Query is one open checking round from the expert's point of view.
type Query struct {
	Round int   `json:"round"`
	Facts []int `json:"facts"`
}

// Queries fetches the open round for the worker; ok is false when there
// is nothing to answer right now.
func (c *Client) Queries(ctx context.Context, workerID string) (Query, bool, error) {
	var q Query
	code, err := c.getJSON(ctx, "/queries?worker="+url.QueryEscape(workerID), &q)
	if err != nil {
		return Query{}, false, err
	}
	switch code {
	case http.StatusOK:
		return q, true, nil
	case http.StatusNoContent:
		return Query{}, false, nil
	default:
		return Query{}, false, &StatusError{Path: "/queries", Code: code}
	}
}

// Answer posts one worker's answers for a round.
func (c *Client) Answer(ctx context.Context, round int, workerID string, values []bool) error {
	body, err := json.Marshal(map[string]any{
		"round": round, "worker": workerID, "values": values,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/answers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Path: "/answers", Code: resp.StatusCode, Msg: string(msg)}
	}
	return nil
}

// AdmitTasks posts a batch of task fragments into a streaming session
// (one created with a budget window); final closes the admission stream.
// AdmitTasks(ctx, nil, true) just closes it.
func (c *Client) AdmitTasks(ctx context.Context, frs []*dataset.Fragment, final bool) error {
	body, err := json.Marshal(AdmitTasksRequest{Fragments: frs, Final: final})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/tasks", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Path: "/tasks", Code: resp.StatusCode, Msg: string(msg)}
	}
	return nil
}

// Status fetches the session's progress.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	code, err := c.getJSON(ctx, "/status", &st)
	if err != nil {
		return Status{}, err
	}
	if code != http.StatusOK {
		return Status{}, &StatusError{Path: "/status", Code: code}
	}
	return st, nil
}

// Checkpoint fetches the session's latest warm checkpoint; ok is false
// before the first round completes. The returned checkpoint feeds
// pipeline.Resume / NewSessionResume (or a create payload's checkpoint
// field) for a warm restart.
func (c *Client) Checkpoint(ctx context.Context) (*pipeline.Checkpoint, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/checkpoint", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		ck, err := pipeline.ReadCheckpoint(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("server: decode /checkpoint: %w", err)
		}
		return ck, true, nil
	case http.StatusNoContent:
		return nil, false, nil
	default:
		return nil, false, &StatusError{Path: "/checkpoint", Code: resp.StatusCode}
	}
}

// Labels fetches the final labels; it errors while labeling is still in
// progress.
func (c *Client) Labels(ctx context.Context) ([]bool, error) {
	var out struct {
		Labels []bool `json:"labels"`
	}
	code, err := c.getJSON(ctx, "/labels", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /labels returned %d", code)
	}
	return out.Labels, nil
}

// retryPolicy resolves the client's backoff knobs to their defaults.
func (c *Client) retryPolicy() (base, max time.Duration, retries int) {
	base, max, retries = c.RetryBaseDelay, c.RetryMaxDelay, c.MaxRetries
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if retries <= 0 {
		retries = 8
	}
	return base, max, retries
}

// backoffDelay is the capped exponential delay for the nth consecutive
// failure (n >= 1), with ±25% jitter so a fleet of experts does not
// hammer a recovering server in lockstep. The jitter source is an
// explicit *rand.Rand owned by the retry loop — never the process
// global, which the rand-hygiene lint bans so that simulation code can
// rely on seed-determinism.
func backoffDelay(jitter *rand.Rand, base, max time.Duration, n int) time.Duration {
	d := base << uint(n-1)
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	jittered := time.Duration(float64(d) * (0.75 + 0.5*jitter.Float64()))
	if jittered <= 0 {
		jittered = d
	}
	return jittered
}

// AnswerLoop polls for queries addressed to workerID and answers them
// with the supplied function until the session completes or ctx is
// cancelled. It is the building block for expert-side clients.
//
// The loop is resilient to the protocol's benign races and to transient
// transport failures: a 409 on POST /answers means the round completed
// (full panel or timeout) between Queries and Answer — the answer is
// simply stale, so the loop re-polls for the next round; a 410 means the
// session finished, which the next Status call confirms; a 503 means the
// service is draining, so the loop keeps polling until the session
// reports Done (the drain closes it within the drain timeout). Transport
// errors (dropped connections, a restarting server) retry with capped
// exponential backoff and jitter per the client's retry policy; only
// after MaxRetries consecutive failures — or on a non-benign HTTP status
// — does the loop give up.
func (c *Client) AnswerLoop(ctx context.Context, workerID string, answer func(facts []int) []bool, poll time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	base, max, retries := c.retryPolicy()
	// Each loop owns its jitter stream: time-seeded (this is the live
	// network path, not a simulation) so concurrent expert loops
	// desynchronize, and explicit so no labeling code path ever touches
	// the process-global RNG.
	jitter := rand.New(rand.NewSource(time.Now().UnixNano()))
	failures := 0
	// fail classifies an error: benign races clear, transport errors
	// back off until the retry budget runs out, HTTP errors are fatal.
	// The second return is the error to stop with, nil to keep looping.
	fail := func(err error) (stop bool, ret error) {
		var se *StatusError
		if errors.As(err, &se) {
			if se.Code == http.StatusConflict || se.Code == http.StatusGone ||
				se.Code == http.StatusServiceUnavailable {
				// The round moved on, the session just finished, or the
				// service began draining; the next Status/Queries poll
				// resynchronizes (a draining session reports Done shortly).
				failures = 0
				return false, nil
			}
			return true, err // a real protocol error; retrying won't help
		}
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		failures++
		if failures > retries {
			return true, fmt.Errorf("server: giving up after %d consecutive failures: %w", failures, err)
		}
		select {
		case <-ctx.Done():
			return true, ctx.Err()
		case <-time.After(backoffDelay(jitter, base, max, failures)):
		}
		return false, nil
	}
	for {
		st, err := c.Status(ctx)
		if err != nil {
			if stop, ret := fail(err); stop {
				return ret
			}
			continue
		}
		failures = 0
		if st.Done {
			return nil
		}
		q, ok, err := c.Queries(ctx, workerID)
		if err != nil {
			if stop, ret := fail(err); stop {
				return ret
			}
			continue
		}
		if ok {
			if err := c.Answer(ctx, q.Round, workerID, answer(q.Facts)); err != nil {
				if stop, ret := fail(err); stop {
					return ret
				}
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// ManagerClient is the Go consumer of the manager's /v1 session API:
// create, list, inspect and cancel sessions, and mint session-scoped
// expert clients.
type ManagerClient struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient, when non-nil, is used as-is for every request (and
	// Timeout is ignored).
	HTTPClient *http.Client
	// Timeout bounds each whole request when HTTPClient is nil: 0 means
	// the 10 s default, negative disables the timeout (per-call context
	// deadlines still apply). It may be changed between requests; see
	// Client.Timeout.
	Timeout time.Duration

	mu             sync.Mutex
	derived        *http.Client  //hclint:guardedby mu
	derivedTimeout time.Duration //hclint:guardedby mu
}

// NewManagerClient returns a manager client for the given service root
// with the default request timeout (tune via the Timeout field).
func NewManagerClient(baseURL string) *ManagerClient {
	return &ManagerClient{BaseURL: strings.TrimSuffix(baseURL, "/")}
}

// http mirrors Client.http: cached while Timeout is unchanged, rebuilt
// when it differs.
func (c *ManagerClient) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	want := resolveTimeout(c.Timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.derived == nil || c.derivedTimeout != want {
		c.derived = &http.Client{Timeout: want}
		c.derivedTimeout = want
	}
	return c.derived
}

// do issues one request and decodes the JSON response into v (when
// non-nil and the status matches want); any other status becomes a
// StatusError carrying the server's error body.
func (c *ManagerClient) do(ctx context.Context, method, path string, body any, want int, v any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Path: path, Code: resp.StatusCode, Msg: string(msg)}
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return fmt.Errorf("server: decode %s: %w", path, err)
		}
	}
	return nil
}

// Create starts a new session from the payload and returns its info row
// (including the generated ID when req.Name was empty).
func (c *ManagerClient) Create(ctx context.Context, req CreateSessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, http.StatusCreated, &info)
	return info, err
}

// List returns every registered session in creation order.
func (c *ManagerClient) List(ctx context.Context) ([]SessionInfo, error) {
	var out struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, http.StatusOK, &out)
	return out.Sessions, err
}

// Info returns one session's info row.
func (c *ManagerClient) Info(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, http.StatusOK, &info)
	return info, err
}

// Cancel stops a session's run.
func (c *ManagerClient) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, http.StatusNoContent, nil)
}

// Session returns an expert-side client scoped to one session,
// inheriting this client's transport configuration.
func (c *ManagerClient) Session(id string) *Client {
	cl := NewSessionClient(c.BaseURL, id)
	cl.HTTPClient = c.HTTPClient
	cl.Timeout = c.Timeout
	return cl
}
