package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client is the Go consumer of the hcserve HTTP API. Expert-side tools
// (or bridges to real crowdsourcing platforms) use it to poll for
// checking queries and post answers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) getJSON(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, fmt.Errorf("server: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Experts lists the worker IDs the session accepts answers from.
func (c *Client) Experts(ctx context.Context) ([]string, error) {
	var out struct {
		Experts []string `json:"experts"`
	}
	code, err := c.getJSON(ctx, "/experts", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /experts returned %d", code)
	}
	return out.Experts, nil
}

// Query is one open checking round from the expert's point of view.
type Query struct {
	Round int   `json:"round"`
	Facts []int `json:"facts"`
}

// Queries fetches the open round for the worker; ok is false when there
// is nothing to answer right now.
func (c *Client) Queries(ctx context.Context, workerID string) (Query, bool, error) {
	var q Query
	code, err := c.getJSON(ctx, "/queries?worker="+url.QueryEscape(workerID), &q)
	if err != nil {
		return Query{}, false, err
	}
	switch code {
	case http.StatusOK:
		return q, true, nil
	case http.StatusNoContent:
		return Query{}, false, nil
	default:
		return Query{}, false, fmt.Errorf("server: /queries returned %d", code)
	}
}

// Answer posts one worker's answers for a round.
func (c *Client) Answer(ctx context.Context, round int, workerID string, values []bool) error {
	body, err := json.Marshal(map[string]any{
		"round": round, "worker": workerID, "values": values,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/answers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("server: /answers returned %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// Status fetches the session's progress.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	code, err := c.getJSON(ctx, "/status", &st)
	if err != nil {
		return Status{}, err
	}
	if code != http.StatusOK {
		return Status{}, fmt.Errorf("server: /status returned %d", code)
	}
	return st, nil
}

// Labels fetches the final labels; it errors while labeling is still in
// progress.
func (c *Client) Labels(ctx context.Context) ([]bool, error) {
	var out struct {
		Labels []bool `json:"labels"`
	}
	code, err := c.getJSON(ctx, "/labels", &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("server: /labels returned %d", code)
	}
	return out.Labels, nil
}

// AnswerLoop polls for queries addressed to workerID and answers them
// with the supplied function until the session completes or ctx is
// cancelled. It is the building block for expert-side clients.
func (c *Client) AnswerLoop(ctx context.Context, workerID string, answer func(facts []int) []bool, poll time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx)
		if err != nil {
			return err
		}
		if st.Done {
			return nil
		}
		q, ok, err := c.Queries(ctx, workerID)
		if err != nil {
			return err
		}
		if ok {
			if err := c.Answer(ctx, q.Round, workerID, answer(q.Facts)); err != nil {
				return err
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
