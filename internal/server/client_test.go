package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hcrowd/internal/pipeline"
)

func TestClientEndToEnd(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	experts, err := c.Experts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(experts) == 0 {
		t.Fatal("no experts")
	}

	// One AnswerLoop per expert, answering from ground truth.
	var wg sync.WaitGroup
	errs := make(chan error, len(experts))
	for _, id := range experts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			errs <- c.AnswerLoop(ctx, id, func(facts []int) []bool {
				values := make([]bool, len(facts))
				for i, f := range facts {
					values[i] = ds.Truth[f]
				}
				return values
			}, time.Millisecond)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("session not done after answer loops returned")
	}
	labels, err := c.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != ds.NumFacts() {
		t.Fatalf("labels = %d, want %d", len(labels), ds.NumFacts())
	}
	// Perfect checking answers: accuracy must be reported high.
	if st.Accuracy == nil || *st.Accuracy < 0.7 {
		t.Errorf("accuracy = %v", st.Accuracy)
	}
}

func TestClientQueriesNoContent(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, ok, err := c.Queries(ctx, "not-an-expert"); err != nil || ok {
		t.Errorf("queries for non-expert: ok=%v err=%v", ok, err)
	}
}

func TestClientErrors(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Experts(ctx); err == nil {
		t.Error("dead server gave experts")
	}
	if _, err := c.Status(ctx); err == nil {
		t.Error("dead server gave status")
	}
	if err := c.Answer(ctx, 1, "e0", []bool{true}); err == nil {
		t.Error("dead server accepted answers")
	}
	if _, err := c.Labels(ctx); err == nil {
		t.Error("dead server gave labels")
	}
}
