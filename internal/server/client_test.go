package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hcrowd/internal/pipeline"
)

func TestClientEndToEnd(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	experts, err := c.Experts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(experts) == 0 {
		t.Fatal("no experts")
	}

	// One AnswerLoop per expert, answering from ground truth.
	var wg sync.WaitGroup
	errs := make(chan error, len(experts))
	for _, id := range experts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			errs <- c.AnswerLoop(ctx, id, func(facts []int) []bool {
				values := make([]bool, len(facts))
				for i, f := range facts {
					values[i] = ds.Truth[f]
				}
				return values
			}, time.Millisecond)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("session not done after answer loops returned")
	}
	labels, err := c.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != ds.NumFacts() {
		t.Fatalf("labels = %d, want %d", len(labels), ds.NumFacts())
	}
	// Perfect checking answers: accuracy must be reported high.
	if st.Accuracy == nil || *st.Accuracy < 0.7 {
		t.Errorf("accuracy = %v", st.Accuracy)
	}
}

func TestClientQueriesNoContent(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, ok, err := c.Queries(ctx, "not-an-expert"); err != nil || ok {
		t.Errorf("queries for non-expert: ok=%v err=%v", ok, err)
	}
}

// TestClientTimeoutOption pins the configurable HTTP timeout: a client
// whose Timeout is shorter than the handler's response time must fail,
// one with a generous or disabled timeout must succeed, and the derived
// http.Client is built once and reused across calls.
func TestClientTimeoutOption(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		w.Write([]byte(`{"experts": []}`)) //nolint:errcheck
	}))
	defer srv.Close()
	ctx := context.Background()

	slow := NewClient(srv.URL)
	slow.Timeout = 50 * time.Millisecond
	if _, err := slow.Experts(ctx); err == nil {
		t.Error("50ms client survived a 200ms handler; the timeout option is not applied")
	}

	patient := NewClient(srv.URL)
	patient.Timeout = 5 * time.Second
	if _, err := patient.Experts(ctx); err != nil {
		t.Errorf("5s client failed against a 200ms handler: %v", err)
	}

	unlimited := NewClient(srv.URL)
	unlimited.Timeout = -1 // negative disables the timeout entirely
	if _, err := unlimited.Experts(ctx); err != nil {
		t.Errorf("no-timeout client failed: %v", err)
	}
	if unlimited.http().Timeout != 0 {
		t.Errorf("negative Timeout derived %v, want 0 (disabled)", unlimited.http().Timeout)
	}

	// The zero value keeps the historical 10s default, and the derived
	// client is cached — repeated calls must reuse one instance so
	// connection pooling works.
	def := NewClient(srv.URL)
	if got := def.http(); got.Timeout != defaultClientTimeout {
		t.Errorf("default timeout = %v, want %v", got.Timeout, defaultClientTimeout)
	} else if def.http() != got {
		t.Error("derived http.Client not cached across calls")
	}

	// An explicit HTTPClient wins over Timeout.
	custom := &http.Client{Timeout: time.Minute}
	override := NewClient(srv.URL)
	override.HTTPClient = custom
	override.Timeout = time.Nanosecond
	if override.http() != custom {
		t.Error("explicit HTTPClient not honored over the Timeout option")
	}

	mc := NewManagerClient(srv.URL)
	mc.Timeout = -1
	if mc.http().Timeout != 0 {
		t.Errorf("manager client negative Timeout derived %v, want 0", mc.http().Timeout)
	}
	if cl := mc.Session("s1"); cl.Timeout != mc.Timeout {
		t.Errorf("Session() dropped the manager's Timeout: got %v, want %v", cl.Timeout, mc.Timeout)
	}
}

func TestClientErrors(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Experts(ctx); err == nil {
		t.Error("dead server gave experts")
	}
	if _, err := c.Status(ctx); err == nil {
		t.Error("dead server gave status")
	}
	if err := c.Answer(ctx, 1, "e0", []bool{true}); err == nil {
		t.Error("dead server accepted answers")
	}
	if _, err := c.Labels(ctx); err == nil {
		t.Error("dead server gave labels")
	}
}

// TestClientTimeoutChangeHonored is the regression test for the cached
// derived client: before the fix it was built once (sync.Once) with
// whatever Timeout held at first use, so a Timeout set afterwards was
// silently ignored. Now a changed Timeout rebuilds the client — a
// too-short deadline starts failing requests, and restoring it heals
// them — while an unchanged one keeps reusing the same client.
func TestClientTimeoutChangeHonored(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(100 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"sessions":[]}`))
	}))
	defer slow.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	mc := NewManagerClient(slow.URL)
	mc.Timeout = 5 * time.Second
	if _, err := mc.List(ctx); err != nil {
		t.Fatalf("long timeout: %v", err)
	}
	first := mc.http()

	mc.Timeout = 10 * time.Millisecond
	if _, err := mc.List(ctx); err == nil {
		t.Fatal("10ms timeout against a 100ms handler succeeded; shrunk Timeout ignored")
	}
	if mc.http() == first {
		t.Error("changed Timeout did not rebuild the derived client")
	}

	mc.Timeout = 5 * time.Second
	if _, err := mc.List(ctx); err != nil {
		t.Fatalf("restored timeout: %v", err)
	}
	again := mc.http()
	if mc.http() != again {
		t.Error("unchanged Timeout rebuilt the derived client instead of caching it")
	}
}
