package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"time"

	"hcrowd/internal/cluster"
)

// maxHandoffBytes caps an accepted journal image. Journals compact to
// their newest checkpoint every CompactEvery rounds, so a legitimate
// image is far below this; anything larger is a confused or malicious
// peer, refused before it can balloon memory.
const maxHandoffBytes = 1 << 30

// defaultHandoffTimeout bounds the source->target push of one journal
// image when ClusterOptions.HTTPClient is nil.
const defaultHandoffTimeout = 30 * time.Second

// ClusterOptions configures a replica's routing layer.
type ClusterOptions struct {
	// Self is this replica's advertised address exactly as it appears in
	// Peers (e.g. "127.0.0.1:8081").
	Self string
	// Peers is the full static membership, Self included. Every replica
	// must be started with the same set (order is irrelevant — the ring
	// is order-independent).
	Peers []string
	// VNodes is the consistent-hash ring's virtual-node count per member
	// (0 = cluster.DefaultVNodes).
	VNodes int
	// Proxy switches misrouted session requests from 307 redirects to a
	// thin reverse proxy, for redirect-blind clients. Redirects stay the
	// default: they keep session traffic flowing replica-to-client
	// rather than replica-to-replica.
	Proxy bool
	// Logger receives routing and handoff lifecycle lines; nil silences
	// them.
	Logger *log.Logger
	// HTTPClient pushes handoff journal images to their target replica;
	// nil uses a client with a 30 s timeout.
	HTTPClient *http.Client
}

// Cluster is the replica-mode routing layer in front of a Manager: it
// owns a consistent-hash ring over the static membership and serves
//
//	GET  /v1/cluster               ring membership and routing mode
//	POST /v1/cluster/handoff/{id}  quiesce a local session, stream its
//	                               journal to a peer, retire the copy
//	POST /v1/cluster/accept/{id}   land a handed-off journal, recover it
//
// plus every route the wrapped Manager serves. Requests addressing
// /v1/sessions are routed by session ID: sessions present locally are
// served locally (presence wins over the ring, so a session accepted
// via handoff keeps working even though the ring still names its old
// owner); absent sessions owned elsewhere get a 307 to the owner (or a
// transparent proxy hop in Proxy mode) with an X-HC-Owner header either
// way. POST /v1/sessions peeks the payload's name to route creations;
// unnamed creations are served locally. GET /v1/sessions lists only
// this replica's sessions — membership is static, so clients aggregate
// across /v1/cluster's member list.
type Cluster struct {
	m       *Manager
	ring    *cluster.Ring
	self    string
	proxy   bool
	logger  *log.Logger
	httpc   *http.Client
	targets map[string]*url.URL // member -> base URL for the proxy
	rproxy  *httputil.ReverseProxy
	inner   http.Handler
	ctl     http.Handler // the instrumented /v1/cluster* router
	rt      *router
}

// ownerKey carries the proxy hop's target URL through the request
// context to the shared ReverseProxy's Rewrite.
type ownerKey struct{}

// NewCluster wraps the manager's handler with the replica routing
// layer. The manager must have a JournalDir: journal images are the
// only currency handoff deals in.
func NewCluster(m *Manager, opts ClusterOptions) (*Cluster, error) {
	if m.opts.JournalDir == "" {
		return nil, errors.New("server: cluster: manager has no JournalDir (handoff needs journals)")
	}
	ring, err := cluster.New(opts.Peers, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if !ring.Has(opts.Self) {
		return nil, fmt.Errorf("server: cluster: self %q is not a member of %v", opts.Self, ring.Members())
	}
	c := &Cluster{
		m:      m,
		ring:   ring,
		self:   opts.Self,
		proxy:  opts.Proxy,
		logger: opts.Logger,
		httpc:  opts.HTTPClient,
		inner:  m.Handler(),
	}
	if c.httpc == nil {
		c.httpc = &http.Client{Timeout: defaultHandoffTimeout}
	}
	c.targets = make(map[string]*url.URL, len(ring.Members()))
	for _, member := range ring.Members() {
		u, err := url.Parse(memberURL(member))
		if err != nil {
			return nil, fmt.Errorf("server: cluster: member %q: %w", member, err)
		}
		c.targets[member] = u
	}
	c.rproxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(pr.In.Context().Value(ownerKey{}).(*url.URL))
			pr.Out.URL.Path = pr.In.URL.Path // SetURL joins base paths; members have none
			pr.SetXForwarded()
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			c.logf("cluster: proxy %s %s: %v", r.Method, r.URL.Path, err)
			c.rt.httpError(w, http.StatusBadGateway, "owner replica unreachable: "+err.Error())
		},
	}
	rt := newRouter(m.metrics.http, opts.Logger)
	rt.handle("GET /v1/cluster", c.info)
	rt.handle("POST /v1/cluster/handoff/{id}", c.handoff)
	rt.handle("POST /v1/cluster/accept/{id}", c.accept)
	c.rt = rt
	c.ctl = rt.handler()
	return c, nil
}

// memberURL resolves a membership address to a base URL.
func memberURL(member string) string {
	if strings.Contains(member, "://") {
		return strings.TrimSuffix(member, "/")
	}
	return "http://" + member
}

func (c *Cluster) logf(format string, args ...any) {
	if c.logger != nil {
		c.logger.Printf(format, args...)
	}
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// Ring returns the replica's routing ring.
func (c *Cluster) Ring() *cluster.Ring { return c.ring }

// Handler returns the replica's full HTTP surface: the cluster control
// routes, the session routing layer, and everything the wrapped
// manager serves.
func (c *Cluster) Handler() http.Handler { return http.HandlerFunc(c.route) }

// route is the replica's dispatch: cluster control routes first, then
// session-ID routing, then the manager's remaining surface (metrics,
// lists) served locally.
func (c *Cluster) route(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Path
	switch {
	case p == "/v1/cluster" || strings.HasPrefix(p, "/v1/cluster/"):
		c.ctl.ServeHTTP(w, r)
	case p == "/v1/sessions" || p == "/v1/sessions/":
		if r.Method == http.MethodPost {
			c.routeCreate(w, r)
			return
		}
		c.inner.ServeHTTP(w, r)
	case strings.HasPrefix(p, "/v1/sessions/"):
		id := strings.TrimPrefix(p, "/v1/sessions/")
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id = id[:i]
		}
		if unescaped, err := url.PathUnescape(id); err == nil {
			id = unescaped
		}
		c.routeSession(w, r, id)
	default:
		c.inner.ServeHTTP(w, r)
	}
}

// routeSession serves a request addressed to one session: locally when
// the session lives here (presence beats the ring — handed-off and
// recovered sessions are reachable wherever they actually run), locally
// when the ring says this replica owns the — possibly not yet created —
// ID, and forwarded to the ring owner otherwise.
func (c *Cluster) routeSession(w http.ResponseWriter, r *http.Request, id string) {
	if _, ok := c.m.Get(id); ok {
		w.Header().Set("X-HC-Owner", c.self)
		c.inner.ServeHTTP(w, r)
		return
	}
	owner := c.ring.Owner(id)
	if owner == c.self {
		w.Header().Set("X-HC-Owner", c.self)
		c.inner.ServeHTTP(w, r) // this replica's 404 is authoritative
		return
	}
	c.forward(w, r, owner)
}

// routeCreate routes POST /v1/sessions by the payload's session name:
// named sessions are created on their ring owner (a 307 makes the
// client re-send the payload there; the proxy mode forwards it), while
// unnamed sessions — the manager generates an ID — are created locally.
func (c *Cluster) routeCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		c.rt.httpError(w, http.StatusBadRequest, "read create payload: "+err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	var peek struct {
		Name string `json:"name"`
	}
	// A payload that does not parse is the manager's 400 to give.
	if json.Unmarshal(body, &peek) != nil || peek.Name == "" {
		c.inner.ServeHTTP(w, r)
		return
	}
	if _, exists := c.m.Get(peek.Name); exists {
		// Serve the duplicate-name 409 locally rather than bouncing it.
		c.inner.ServeHTTP(w, r)
		return
	}
	if owner := c.ring.Owner(peek.Name); owner != c.self {
		c.forward(w, r, owner)
		return
	}
	w.Header().Set("X-HC-Owner", c.self)
	c.inner.ServeHTTP(w, r)
}

// forward sends a misrouted request to its owning replica: a 307
// Temporary Redirect (method- and body-preserving) by default, a
// reverse-proxy hop in Proxy mode. Either way X-HC-Owner names the
// owner so clients and operators can see the routing decision.
func (c *Cluster) forward(w http.ResponseWriter, r *http.Request, owner string) {
	w.Header().Set("X-HC-Owner", owner)
	if c.proxy {
		c.m.metrics.clusterProxied.Inc()
		ctx := context.WithValue(r.Context(), ownerKey{}, c.targets[owner])
		c.rproxy.ServeHTTP(w, r.WithContext(ctx))
		return
	}
	c.m.metrics.clusterRedirects.Inc()
	http.Redirect(w, r, memberURL(owner)+r.URL.RequestURI(), http.StatusTemporaryRedirect)
}

// info answers GET /v1/cluster with the replica's membership view.
func (c *Cluster) info(w http.ResponseWriter, r *http.Request) {
	c.rt.writeJSON(w, http.StatusOK, map[string]any{
		"self":    c.self,
		"members": c.ring.Members(),
		"vnodes":  c.ring.VNodes(),
		"proxy":   c.proxy,
	})
}

// handoff answers POST /v1/cluster/handoff/{id}: quiesce the local
// session, push its journal image to the target replica (?target=
// overrides the default — the session's ring owner), and retire the
// local copy once the target acks. A failed push leaves the session
// quiesced but intact (pinned against eviction, journal durable), so
// the operator retries the handoff or restarts the replica to resume
// it locally.
func (c *Cluster) handoff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	target := r.URL.Query().Get("target")
	if target == "" {
		target = c.ring.Owner(id)
	}
	if !c.ring.Has(target) {
		c.rt.httpError(w, http.StatusBadRequest, fmt.Sprintf("target %q is not a cluster member", target))
		return
	}
	if target == c.self {
		c.rt.httpError(w, http.StatusConflict, fmt.Sprintf("session %q already belongs here", id))
		return
	}
	data, err := c.m.Handoff(r.Context(), id)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknownSession):
			code = http.StatusNotFound
		case errors.Is(err, ErrNotJournaled):
			code = http.StatusConflict
		}
		c.rt.httpError(w, code, err.Error())
		return
	}
	if err := c.pushHandoff(r.Context(), target, id, data); err != nil {
		c.logf("cluster: handoff %s -> %s failed (journal retained locally): %v", id, target, err)
		c.rt.httpError(w, http.StatusBadGateway, fmt.Sprintf("handoff %s to %s: %v", id, target, err))
		return
	}
	if err := c.m.Retire(id); err != nil {
		// The target owns a running copy now; a local remnant that a
		// restart would resurrect is a split brain in the making, so the
		// failure is loud.
		c.rt.httpError(w, http.StatusInternalServerError, fmt.Sprintf("handoff %s: retire local copy: %v", id, err))
		return
	}
	c.m.metrics.clusterHandoffs.Inc()
	c.logf("cluster: session %s handed off to %s (%d bytes)", id, target, len(data))
	c.rt.writeJSON(w, http.StatusOK, map[string]any{"id": id, "target": target, "bytes": len(data)})
}

// pushHandoff POSTs a journal image to the target's accept endpoint and
// treats anything but 200 as a refusal.
func (c *Cluster) pushHandoff(ctx context.Context, target, id string, data []byte) error {
	u := memberURL(target) + "/v1/cluster/accept/" + url.PathEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Path: u, Code: resp.StatusCode, Msg: string(msg)}
	}
	return nil
}

// accept answers POST /v1/cluster/accept/{id}: the body is a complete
// journal image; landing it durably and recovering the session is the
// ack the source's retire step depends on.
func (c *Cluster) accept(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	if err != nil {
		c.rt.httpError(w, http.StatusBadRequest, "read journal image: "+err.Error())
		return
	}
	if err := c.m.AcceptHandoff(id, data); err != nil {
		code := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, ErrDuplicateSession):
			code = http.StatusConflict
		case errors.Is(err, ErrManagerDraining):
			code = http.StatusServiceUnavailable
		}
		c.rt.httpError(w, code, err.Error())
		return
	}
	c.m.metrics.clusterAccepts.Inc()
	c.logf("cluster: session %s accepted from peer (%d bytes)", id, len(data))
	c.rt.writeJSON(w, http.StatusOK, map[string]any{"id": id, "recovered": true})
}
