package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/pipeline"
)

// uninterruptedRun executes the whole job in one unjournaled session
// and returns its result and final checkpoint bytes — the reference
// every handoff scenario must match byte for byte.
func uninterruptedRun(t *testing.T, ctx context.Context, ds *dataset.Dataset, sc SessionConfig) (*pipeline.Result, []byte) {
	t.Helper()
	agg, err := aggregate.ByName("EBCC", sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := CostModelByName(sc.CostModel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{K: sc.K, Budget: sc.Budget, Init: agg, PriorCoupling: couple, Cost: cost}
	ref, err := NewSessionOpts(ctx, ds, cfg, SessionOptions{CostAware: sc.CostAware})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveFlip(ref, ds); err != nil {
		t.Fatalf("reference: %v", err)
	}
	res, err := ref.Wait(ctx)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ck := checkpointBytes(t, ref.Checkpoint())
	ref.Close()
	return res, ck
}

// handoffRoundTrip is the rebalance scenario both determinism tests
// share: start a journaled session on replica A, stop it mid-panel
// after 7 accepted answers, move the journal image to replica B's
// manager via AcceptHandoff, finish the job there, and demand the
// result is byte-identical to a run that never moved.
//
// kill=false is the orderly protocol — Manager.Handoff quiesces and
// fsyncs, Retire removes A's copy after B's ack. kill=true is the
// surviving-owner path: A is killed without a drain (Close, exactly the
// crash-test idiom), and B is handed whatever bytes A's journal had
// acknowledged, trimmed to the clean prefix the way an operator
// salvaging a dead replica's journal dir would (AcceptHandoff itself
// refuses torn images — in-flight truncation must not pass silently).
func handoffRoundTrip(t *testing.T, kill bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ds := sizedDataset(t, 8, 91)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	sc := SessionConfig{K: 1, Budget: 14, Seed: 9}
	refRes, refCk := uninterruptedRun(t, ctx, ds, sc)

	dirA, dirB := t.TempDir(), t.TempDir()
	mA := NewManager(ManagerOptions{JournalDir: dirA, CompactEvery: 3})
	id, s1, err := mA.CreateFromRequest(CreateSessionRequest{
		Name: "moving-job", Dataset: dsBuf.Bytes(), Config: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driveFlipN(s1, ds, 7); err != nil {
		t.Fatalf("pre-handoff drive: %v", err)
	}

	var image []byte
	if kill {
		s1.Close()
		raw, err := os.ReadFile(filepath.Join(dirA, id+".journal"))
		if err != nil {
			t.Fatal(err)
		}
		_, good, derr := journal.Decode(raw)
		if derr != nil {
			t.Fatalf("decode killed journal: %v", derr)
		}
		image = raw[:good]
	} else {
		if image, err = mA.Handoff(ctx, id); err != nil {
			t.Fatalf("handoff: %v", err)
		}
	}

	mB := NewManager(ManagerOptions{JournalDir: dirB, CompactEvery: 3})
	if err := mB.AcceptHandoff(id, image); err != nil {
		t.Fatalf("accept handoff: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dirB, id+".journal")); err != nil {
		t.Fatalf("accepted journal not on B's disk: %v", err)
	}
	if !kill {
		if err := mA.Retire(id); err != nil {
			t.Fatalf("retire: %v", err)
		}
		if _, ok := mA.Get(id); ok {
			t.Fatal("retired session still registered on the source")
		}
		if _, err := os.Stat(filepath.Join(dirA, id+".journal")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("source journal survives retire: %v", err)
		}
	}

	s2, ok := mB.Get(id)
	if !ok {
		t.Fatal("accepted session not registered on the target")
	}
	if err := driveFlip(s2, ds); err != nil {
		t.Fatalf("post-handoff drive: %v", err)
	}
	res, err := s2.Wait(ctx)
	if err != nil {
		t.Fatalf("post-handoff run: %v", err)
	}

	gotLabels, _ := json.Marshal(res.Labels)
	wantLabels, _ := json.Marshal(refRes.Labels)
	if !bytes.Equal(gotLabels, wantLabels) {
		t.Errorf("handed-off labels diverge from uninterrupted run\n got %s\nwant %s", gotLabels, wantLabels)
	}
	if res.BudgetSpent != refRes.BudgetSpent {
		t.Errorf("handed-off spend %v, uninterrupted %v", res.BudgetSpent, refRes.BudgetSpent)
	}
	if res.Quality != refRes.Quality {
		t.Errorf("handed-off quality %v, uninterrupted %v", res.Quality, refRes.Quality)
	}
	if gotCk := checkpointBytes(t, s2.Checkpoint()); !bytes.Equal(gotCk, refCk) {
		t.Errorf("handed-off final checkpoint diverges from uninterrupted run\n got %s\nwant %s", gotCk, refCk)
	}
}

// TestHandoffDeterministicGivenSeed proves the rebalance tentpole for
// the orderly protocol: quiesce → stream → recover on the new owner →
// retire, with byte-identical labels and final checkpoint. Runs in the
// -count=2 determinism suite.
func TestHandoffDeterministicGivenSeed(t *testing.T) {
	handoffRoundTrip(t, false)
}

// TestHandoffKillRecoverDeterministicGivenSeed is the kill-one-replica
// claim: the source dies without draining, the surviving owner recovers
// from the journal bytes alone, and the finished job is still
// byte-identical to a run that was never interrupted.
func TestHandoffKillRecoverDeterministicGivenSeed(t *testing.T) {
	handoffRoundTrip(t, true)
}

// startClusterPair boots two real replicas — separate managers,
// journal dirs and listeners — whose routing layers know each other,
// and returns the managers, clusters, and base URLs in listener order.
func startClusterPair(t *testing.T, proxy bool) ([2]*Manager, [2]*Cluster, [2]string) {
	t.Helper()
	var lns [2]net.Listener
	members := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = ln.Addr().String()
	}
	var mgrs [2]*Manager
	var clus [2]*Cluster
	var urls [2]string
	for i := range lns {
		mgrs[i] = NewManager(ManagerOptions{JournalDir: t.TempDir()})
		clu, err := NewCluster(mgrs[i], ClusterOptions{Self: members[i], Peers: members, Proxy: proxy})
		if err != nil {
			t.Fatal(err)
		}
		clus[i] = clu
		srv := &http.Server{Handler: clu.Handler()}
		go srv.Serve(lns[i]) //hclint:ignore errcheck-lite test server; Serve returns when the cleanup closes it
		t.Cleanup(func() { srv.Close() })
		urls[i] = "http://" + members[i]
	}
	return mgrs, clus, urls
}

// nameOwnedBy finds a session name the ring assigns to owner.
func nameOwnedBy(t *testing.T, c *Cluster, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("s-%d", i)
		if c.Ring().Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no candidate name owned by %s", owner)
	return ""
}

// noFollow is an http.Client that surfaces redirects instead of
// following them, so tests can inspect the 307 itself.
func noFollow() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

// TestClusterRedirectsToOwner pins the redirect contract: a request
// addressing a session the ring assigns elsewhere answers 307 with the
// owner's URL in Location and X-HC-Owner, and bumps
// cluster_redirects_total on the replica that bounced it.
func TestClusterRedirectsToOwner(t *testing.T) {
	mgrs, clus, urls := startClusterPair(t, false)
	name := nameOwnedBy(t, clus[0], clus[1].Self())

	resp, err := noFollow().Get(urls[0] + "/v1/sessions/" + name + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	if got, want := resp.Header.Get("X-HC-Owner"), clus[1].Self(); got != want {
		t.Errorf("X-HC-Owner = %q, want %q", got, want)
	}
	wantLoc := urls[1] + "/v1/sessions/" + name + "/status"
	if got := resp.Header.Get("Location"); got != wantLoc {
		t.Errorf("Location = %q, want %q", got, wantLoc)
	}
	if v := mgrs[0].metrics.clusterRedirects.Value(); v < 1 {
		t.Errorf("cluster_redirects_total = %v, want >= 1", v)
	}
}

// TestClusterCreateRoutedByName drives a create through the wrong
// replica with a stock redirect-following client: the 307 re-sends the
// payload to the ring owner, where the session materializes. The
// replica that owns the name serves its own creates locally with
// X-HC-Owner naming itself.
func TestClusterCreateRoutedByName(t *testing.T) {
	mgrs, clus, urls := startClusterPair(t, false)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	ds := sizedDataset(t, 6, 41)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	name := nameOwnedBy(t, clus[0], clus[1].Self())
	mc := NewManagerClient(urls[0]) // deliberately the non-owner
	info, err := mc.Create(ctx, CreateSessionRequest{
		Name: name, Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 6, Seed: 2},
	})
	if err != nil {
		t.Fatalf("create via non-owner: %v", err)
	}
	if info.ID != name {
		t.Fatalf("created id %q, want %q", info.ID, name)
	}
	if _, ok := mgrs[0].Get(name); ok {
		t.Error("session created on the bouncing replica, want owner only")
	}
	s, ok := mgrs[1].Get(name)
	if !ok {
		t.Fatal("session missing on its ring owner")
	}
	defer s.Close()
	if v := mgrs[0].metrics.clusterRedirects.Value(); v < 1 {
		t.Errorf("cluster_redirects_total = %v, want >= 1", v)
	}
}

// TestClusterProxyMode covers the redirect-blind escape hatch: with
// Proxy on, the non-owner forwards the request itself, the client sees
// one 2xx response carrying X-HC-Owner, and cluster_proxied_total moves
// instead of cluster_redirects_total.
func TestClusterProxyMode(t *testing.T) {
	mgrs, clus, urls := startClusterPair(t, true)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	ds := sizedDataset(t, 6, 43)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	name := nameOwnedBy(t, clus[0], clus[1].Self())
	mc := NewManagerClient(urls[0])
	mc.HTTPClient = noFollow() // a proxied create must not need redirect support
	if _, err := mc.Create(ctx, CreateSessionRequest{
		Name: name, Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 6, Seed: 2},
	}); err != nil {
		t.Fatalf("create via proxying non-owner: %v", err)
	}
	s, ok := mgrs[1].Get(name)
	if !ok {
		t.Fatal("session missing on its ring owner")
	}
	defer s.Close()
	if v := mgrs[0].metrics.clusterProxied.Value(); v < 1 {
		t.Errorf("cluster_proxied_total = %v, want >= 1", v)
	}
	if v := mgrs[0].metrics.clusterRedirects.Value(); v != 0 {
		t.Errorf("cluster_redirects_total = %v, want 0 in proxy mode", v)
	}

	resp, err := noFollow().Get(urls[0] + "/v1/sessions/" + name + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied status = %d, want 200", resp.StatusCode)
	}
	if got, want := resp.Header.Get("X-HC-Owner"), clus[1].Self(); got != want {
		t.Errorf("X-HC-Owner = %q, want %q", got, want)
	}
}

// TestClusterInfoEndpoint pins GET /v1/cluster: each replica reports
// itself, the full sorted membership, and the routing mode.
func TestClusterInfoEndpoint(t *testing.T) {
	_, clus, urls := startClusterPair(t, false)
	for i := range urls {
		resp, err := http.Get(urls[i] + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			Self    string   `json:"self"`
			Members []string `json:"members"`
			VNodes  int      `json:"vnodes"`
			Proxy   bool     `json:"proxy"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.Self != clus[i].Self() {
			t.Errorf("replica %d self = %q, want %q", i, info.Self, clus[i].Self())
		}
		if len(info.Members) != 2 || info.Proxy {
			t.Errorf("replica %d info = %+v, want 2 members, proxy off", i, info)
		}
		if info.VNodes != clus[i].Ring().VNodes() {
			t.Errorf("replica %d vnodes = %d, want %d", i, info.VNodes, clus[i].Ring().VNodes())
		}
	}
}

// TestClusterHandoffEndpoint is the tentpole protocol over real HTTP:
// a session living on A moves to B through POST /v1/cluster/handoff,
// after which B serves it locally (presence beats the ring) and A's
// journal copy is gone. The session is mid-run when it moves and
// finishes on B.
func TestClusterHandoffEndpoint(t *testing.T) {
	mgrs, clus, urls := startClusterPair(t, false)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ds := sizedDataset(t, 8, 47)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	name := nameOwnedBy(t, clus[0], clus[0].Self())
	mc := NewManagerClient(urls[0])
	if _, err := mc.Create(ctx, CreateSessionRequest{
		Name: name, Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 14, Seed: 5},
	}); err != nil {
		t.Fatal(err)
	}
	s1, _ := mgrs[0].Get(name)
	if _, err := driveFlipN(s1, ds, 7); err != nil {
		t.Fatal(err)
	}

	// Moving it "home" is a 409: the handoff endpoint refuses self-moves.
	resp, err := http.Post(urls[0]+"/v1/cluster/handoff/"+name+"?target="+clus[0].Self(), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("self-handoff status = %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(urls[0]+"/v1/cluster/handoff/"+name+"?target="+clus[1].Self(), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var moved struct {
		ID     string `json:"id"`
		Target string `json:"target"`
		Bytes  int    `json:"bytes"`
	}
	err = json.NewDecoder(resp.Body).Decode(&moved)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff status = %d (%+v)", resp.StatusCode, moved)
	}
	if err != nil || moved.ID != name || moved.Target != clus[1].Self() || moved.Bytes == 0 {
		t.Fatalf("handoff response = %+v, %v", moved, err)
	}
	if _, ok := mgrs[0].Get(name); ok {
		t.Error("session still registered on the source after handoff")
	}
	if v := mgrs[0].metrics.clusterHandoffs.Value(); v != 1 {
		t.Errorf("cluster_handoffs_total = %v, want 1", v)
	}
	if v := mgrs[1].metrics.clusterAccepts.Value(); v != 1 {
		t.Errorf("cluster_accepts_total = %v, want 1", v)
	}

	// B serves the moved session locally even though the ring still says
	// A owns the name — presence wins, no bounce-back loop.
	resp, err = noFollow().Get(urls[1] + "/v1/sessions/" + name + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status on new owner = %d, want 200", resp.StatusCode)
	}
	if got, want := resp.Header.Get("X-HC-Owner"), clus[1].Self(); got != want {
		t.Errorf("X-HC-Owner = %q, want %q", got, want)
	}

	s2, ok := mgrs[1].Get(name)
	if !ok {
		t.Fatal("session missing on the target")
	}
	if err := driveFlip(s2, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Wait(ctx); err != nil {
		t.Fatalf("finish on new owner: %v", err)
	}
}

// TestClusterAcceptRejectsBadImages pins the accept endpoint's refusal
// modes: bytes that are not a journal, a clean image addressed to the
// wrong session ID, and a torn (truncated) image are all 422 — and none
// of them leave a session or a journal file behind.
func TestClusterAcceptRejectsBadImages(t *testing.T) {
	mgrs, clus, urls := startClusterPair(t, false)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	post := func(id string, body []byte) int {
		t.Helper()
		resp, err := http.Post(urls[1]+"/v1/cluster/accept/"+id, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("garbage-job", []byte("definitely not a journal")); code != http.StatusUnprocessableEntity {
		t.Errorf("garbage image status = %d, want 422", code)
	}

	// A real image, produced by the orderly source half.
	ds := sizedDataset(t, 6, 53)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	name := nameOwnedBy(t, clus[0], clus[0].Self())
	id, s1, err := mgrs[0].CreateFromRequest(CreateSessionRequest{
		Name: name, Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 6, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driveFlipN(s1, ds, 3); err != nil {
		t.Fatal(err)
	}
	image, err := mgrs[0].Handoff(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	if code := post("not-"+name, image); code != http.StatusUnprocessableEntity {
		t.Errorf("wrong-id image status = %d, want 422", code)
	}
	if code := post(name, image[:len(image)-3]); code != http.StatusUnprocessableEntity {
		t.Errorf("torn image status = %d, want 422", code)
	}
	if _, ok := mgrs[1].Get(name); ok {
		t.Error("rejected image still registered a session")
	}

	// The intact image is accepted, and a second copy of a now-present
	// session is a 409, not a silent overwrite.
	if code := post(name, image); code != http.StatusOK {
		t.Errorf("clean image status = %d, want 200", code)
	}
	if code := post(name, image); code != http.StatusConflict {
		t.Errorf("duplicate image status = %d, want 409", code)
	}
	if s2, ok := mgrs[1].Get(name); ok {
		s2.Close()
	} else {
		t.Error("accepted session missing")
	}
}

// TestClientFollows307PreservingBody pins the client behavior replica
// routing leans on: a create bounced with 307 is re-sent — method and
// full JSON payload intact — to the redirect target.
func TestClientFollows307PreservingBody(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	mgr := NewManager(ManagerOptions{})
	owner := httptest.NewServer(mgr.Handler())
	defer owner.Close()
	bouncer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, owner.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	defer bouncer.Close()

	ds := sizedDataset(t, 6, 59)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	mc := NewManagerClient(bouncer.URL)
	info, err := mc.Create(ctx, CreateSessionRequest{
		Name: "bounced", Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 6, Seed: 2},
	})
	if err != nil {
		t.Fatalf("create through 307: %v", err)
	}
	if info.ID != "bounced" {
		t.Fatalf("created id %q, want bounced", info.ID)
	}
	s, ok := mgr.Get("bounced")
	if !ok {
		t.Fatal("session missing on redirect target")
	}
	s.Close()
}

// TestEvictionRetiresJournal is the regression test for the eviction
// leak: before the fix, evicting a finished session left its journal on
// disk, so the next restart resurrected sessions the retention policy
// had already discarded (and the journal dir grew without bound).
func TestEvictionRetiresJournal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir()
	m1 := NewManager(ManagerOptions{JournalDir: dir, Retention: 1})

	ds := sizedDataset(t, 6, 61)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"old-job", "new-job"} {
		_, s, err := m1.CreateFromRequest(CreateSessionRequest{
			Name: name, Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 8, Seed: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := driveFlip(s, ds); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The watcher evicts old-job once new-job finishes; both the registry
	// entry and the journal file must go.
	deadline := time.After(10 * time.Second)
	for {
		_, stillThere := m1.Get("old-job")
		_, statErr := os.Stat(filepath.Join(dir, "old-job.journal"))
		if !stillThere && errors.Is(statErr, os.ErrNotExist) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("evicted session not fully retired: registered=%v journal stat=%v", stillThere, statErr)
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Restart over the same dir: the evicted session must stay gone.
	m2 := NewManager(ManagerOptions{JournalDir: dir, Retention: 1})
	ids, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "new-job" {
		t.Fatalf("recovered %v after eviction, want [new-job]", ids)
	}
}

// TestWriteCheckpointFileAtomic pins the checkpoint persistence shape:
// the write lands under the final name only (no temp file left behind)
// and reads back byte-identical.
func TestWriteCheckpointFileAtomic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds := sizedDataset(t, 6, 67)
	_, want := uninterruptedRun(t, ctx, ds, SessionConfig{K: 1, Budget: 8, Seed: 6})

	dir := t.TempDir()
	path := filepath.Join(dir, "final.ckpt.json")
	ck, err := pipeline.ReadCheckpoint(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "final.ckpt.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir = %v, want exactly [final.ckpt.json]", names)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("checkpoint file diverges from in-memory checkpoint\n got %s\nwant %s", got, want)
	}
}
