package server

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"hcrowd/internal/dataset"
)

// AdmitTasksRequest is the POST /tasks payload of a streaming session:
// task fragments to admit, and optionally the final flag closing the
// admission stream ({"final": true} with no fragments just closes it).
type AdmitTasksRequest struct {
	Fragments []*dataset.Fragment `json:"fragments,omitempty"`
	Final     bool                `json:"final,omitempty"`
}

// Handler exposes a Session over HTTP:
//
//	GET  /experts              -> {"experts": ["e0", "e1"]}
//	GET  /queries?worker=e0    -> {"round": 3, "facts": [12, 40]} or 204
//	POST /answers              <- {"round": 3, "worker": "e0", "values": [true, false]}
//	GET  /status               -> Status JSON
//	GET  /labels               -> {"labels": [...]} once done, 409 before
//	GET  /checkpoint           -> warm pipeline checkpoint JSON, 204 before
//	                              the first round completes
//	GET  /metrics              -> the session's metrics snapshot (JSON)
//
// All bodies are JSON. The handler is safe for concurrent clients, and
// every route is instrumented: request counts and latency per route,
// in-flight gauge, and panic recovery to a JSON 500. Requests with the
// wrong method get 405 Method Not Allowed (with an Allow header),
// counted like any other response. POST /answers returns 409 when the
// round is closed or the answer is otherwise rejected, 410 once the
// session has finished, 503 while the service drains. The checkpoint
// endpoint lets an operator persist the session's progress and later
// restart the job with NewSessionResume (or hcrowd.Resume) without
// re-asking the experts anything.
//
// Handler is a thin wrapper over a one-entry Manager: the same routes
// the manager serves under /v1/sessions/{id}/ are mounted at the root
// for the single adopted session.
func Handler(s *Session) http.Handler {
	return HandlerLogged(s, nil)
}

// HandlerLogged is Handler with a logger for handler panics and response
// write failures; nil logger silences them (panics are still recovered
// and counted in the metrics).
func HandlerLogged(s *Session, logger *log.Logger) http.Handler {
	m := NewManager(ManagerOptions{Logger: logger})
	h, err := m.Adopt("default", s)
	if err != nil {
		// A fresh one-entry manager cannot collide or be draining.
		panic("server: adopting into fresh manager: " + err.Error())
	}
	return h
}

// sessionRoutes builds the per-session route set rooted at "/". The
// manager mounts it under /v1/sessions/{id}/; the legacy Handler serves
// it directly.
func sessionRoutes(s *Session, logger *log.Logger) http.Handler {
	rt := newRouter(s.Metrics().http, logger)
	h := &httpHandler{s: s, rt: rt}
	rt.handle("GET /experts", h.experts)
	rt.handle("GET /queries", h.queries)
	rt.handle("POST /answers", h.answers)
	rt.handle("POST /tasks", h.tasks)
	rt.handle("GET /status", h.status)
	rt.handle("GET /checkpoint", h.checkpoint)
	rt.handle("GET /labels", h.labels)
	metricsHandler := s.Metrics().Handler()
	rt.handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	})
	return rt.handler()
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// router registers routes with per-path method dispatch and the
// standard middleware. A request whose path matches but whose method
// does not is answered 405 Method Not Allowed with an Allow header —
// and, unlike the stock ServeMux 405, the rejection goes through the
// middleware, so it is counted per route and in methodRejected. The
// session handler and the manager handler each own a router bound to
// their respective instrument bundle.
type router struct {
	ins    *httpInstruments
	logger *log.Logger
	mux    *http.ServeMux
	paths  map[string]*pathMethods
}

// pathMethods is one path's method table.
type pathMethods struct {
	rt      *router
	path    string
	methods map[string]http.HandlerFunc // instrumented handlers
	reject  http.HandlerFunc            // instrumented 405
}

func newRouter(ins *httpInstruments, logger *log.Logger) *router {
	return &router{
		ins:    ins,
		logger: logger,
		mux:    http.NewServeMux(),
		paths:  make(map[string]*pathMethods),
	}
}

func (rt *router) handler() http.Handler { return rt.mux }

func (rt *router) logf(format string, args ...any) {
	if rt.logger != nil {
		rt.logger.Printf(format, args...)
	}
}

// handle registers fn under a "METHOD /path" pattern; a pattern without
// a method ("/path" or "/tree/{rest...}") accepts every method (the
// handler does its own dispatch — e.g. the manager's per-session proxy,
// whose sub-routes enforce methods themselves). Registration is
// construction-time only and not safe for concurrent use.
func (rt *router) handle(pattern string, fn http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		rt.mux.HandleFunc(pattern, rt.instrument(pattern, fn))
		return
	}
	pm := rt.paths[path]
	if pm == nil {
		pm = &pathMethods{rt: rt, path: path, methods: make(map[string]http.HandlerFunc)}
		// The 405 path is a route of its own, labeled by the bare path so
		// rejected methods do not fan the route label out per method.
		pm.reject = rt.instrument(path, pm.methodNotAllowed)
		rt.paths[path] = pm
		rt.mux.HandleFunc(path, pm.dispatch)
	}
	if _, dup := pm.methods[method]; dup {
		panic("server: duplicate route " + pattern)
	}
	pm.methods[method] = rt.instrument(pattern, fn)
}

func (pm *pathMethods) dispatch(w http.ResponseWriter, r *http.Request) {
	if fn, ok := pm.methods[r.Method]; ok {
		fn(w, r)
		return
	}
	pm.reject(w, r)
}

// methodNotAllowed answers 405 with the path's allowed methods.
func (pm *pathMethods) methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	pm.rt.ins.methodRejected.Inc()
	allowed := make([]string, 0, len(pm.methods))
	for m := range pm.methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	pm.rt.httpError(w, http.StatusMethodNotAllowed,
		"method "+r.Method+" not allowed on "+pm.path)
}

// instrument wraps fn with the standard middleware: in-flight gauge,
// per-route latency histogram, per-(route, code) request counter, and
// panic recovery to a JSON 500. label is the route string the counters
// carry; instrumentation is attached at registration time rather than
// by re-deriving the route per request.
func (rt *router) instrument(label string, fn http.HandlerFunc) http.HandlerFunc {
	latency := rt.ins.latency.With(label)
	return func(w http.ResponseWriter, r *http.Request) {
		rt.ins.inflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				rt.ins.panics.Inc()
				rt.logf("server: panic in %s: %v\n%s", label, p, debug.Stack())
				if !rec.wrote {
					rt.writeJSON(rec, http.StatusInternalServerError,
						map[string]string{"error": "internal server error"})
				}
			}
			latency.Observe(time.Since(start).Seconds())
			rt.ins.requests.With(label, strconv.Itoa(rec.code)).Inc()
			rt.ins.inflight.Dec()
		}()
		fn(rec, r)
	}
}

// writeJSON writes v as the response body. An encode/write failure (a
// client that hung up mid-body, an unencodable value) cannot be reported
// to the client — the status line is already gone — so it is counted and
// logged instead of silently dropped.
func (rt *router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.ins.writeErrors.Inc()
		rt.logf("server: write response (status %d): %v", code, err)
	}
}

func (rt *router) httpError(w http.ResponseWriter, code int, msg string) {
	rt.writeJSON(w, code, map[string]string{"error": msg})
}

// httpHandler carries the session and its router through the route
// handlers.
type httpHandler struct {
	s  *Session
	rt *router
}

func (h *httpHandler) experts(w http.ResponseWriter, r *http.Request) {
	h.rt.writeJSON(w, http.StatusOK, map[string]any{"experts": h.s.Experts()})
}

func (h *httpHandler) queries(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		h.rt.httpError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	round, facts, ok := h.s.Queries(worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h.rt.writeJSON(w, http.StatusOK, map[string]any{"round": round, "facts": facts})
}

func (h *httpHandler) answers(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Round  int    `json:"round"`
		Worker string `json:"worker"`
		Values []bool `json:"values"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		h.rt.httpError(w, http.StatusBadRequest, "bad answer payload: "+err.Error())
		return
	}
	if err := h.s.Answer(req.Round, req.Worker, req.Values); err != nil {
		code := http.StatusConflict
		switch {
		case errors.Is(err, ErrClosed):
			code = http.StatusGone
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		}
		h.rt.httpError(w, code, err.Error())
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// tasks admits a batch of task fragments into a streaming session (one
// created with a budget window). 202 acknowledges the batch is journaled
// and staged; 409 when the session is not streaming or the stream
// already ended; 422 when a fragment fails validation; 410 once the
// session has finished; 503 while draining.
func (h *httpHandler) tasks(w http.ResponseWriter, r *http.Request) {
	var req AdmitTasksRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		h.rt.httpError(w, http.StatusBadRequest, "bad admit payload: "+err.Error())
		return
	}
	if err := h.s.AdmitTasks(req.Fragments, req.Final); err != nil {
		code := http.StatusConflict
		switch {
		case errors.Is(err, ErrClosed):
			code = http.StatusGone
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrBadFragment):
			code = http.StatusUnprocessableEntity
		}
		h.rt.httpError(w, code, err.Error())
		return
	}
	h.rt.writeJSON(w, http.StatusAccepted,
		map[string]any{"accepted": len(req.Fragments), "final": req.Final})
}

func (h *httpHandler) status(w http.ResponseWriter, r *http.Request) {
	h.rt.writeJSON(w, http.StatusOK, h.s.Status())
}

func (h *httpHandler) checkpoint(w http.ResponseWriter, r *http.Request) {
	ck := h.s.Checkpoint()
	if ck == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h.rt.writeJSON(w, http.StatusOK, ck)
}

func (h *httpHandler) labels(w http.ResponseWriter, r *http.Request) {
	st := h.s.Status()
	if !st.Done {
		h.rt.httpError(w, http.StatusConflict, "labeling still in progress")
		return
	}
	// Snapshot under the lock, encode after: writeJSON blocks on the
	// client connection, and holding s.mu across a slow client would
	// stall every other handler and the engine itself.
	h.s.mu.Lock()
	runErr := h.s.runErr
	var labels []bool
	if h.s.result != nil {
		labels = h.s.result.Labels
	}
	h.s.mu.Unlock()
	if runErr != nil {
		h.rt.httpError(w, http.StatusInternalServerError, runErr.Error())
		return
	}
	h.rt.writeJSON(w, http.StatusOK, map[string]any{"labels": labels})
}
