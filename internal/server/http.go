package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler exposes a Session over HTTP:
//
//	GET  /experts              -> {"experts": ["e0", "e1"]}
//	GET  /queries?worker=e0    -> {"round": 3, "facts": [12, 40]} or 204
//	POST /answers              <- {"round": 3, "worker": "e0", "values": [true, false]}
//	GET  /status               -> Status JSON
//	GET  /labels               -> {"labels": [...]} once done, 409 before
//	GET  /checkpoint           -> warm pipeline checkpoint JSON, 204 before
//	                              the first round completes
//
// All bodies are JSON. The handler is safe for concurrent clients. The
// checkpoint endpoint lets an operator persist the session's progress and
// later restart the job with NewSessionResume (or hcrowd.Resume) without
// re-asking the experts anything.
func Handler(s *Session) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experts": s.Experts()})
	})
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		worker := r.URL.Query().Get("worker")
		if worker == "" {
			httpError(w, http.StatusBadRequest, "missing worker parameter")
			return
		}
		round, facts, ok := s.Queries(worker)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"round": round, "facts": facts})
	})
	mux.HandleFunc("POST /answers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Round  int    `json:"round"`
			Worker string `json:"worker"`
			Values []bool `json:"values"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad answer payload: "+err.Error())
			return
		}
		if err := s.Answer(req.Round, req.Worker, req.Values); err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrClosed) {
				code = http.StatusGone
			}
			httpError(w, code, err.Error())
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("GET /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		ck := s.Checkpoint()
		if ck == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, ck)
	})
	mux.HandleFunc("GET /labels", func(w http.ResponseWriter, r *http.Request) {
		st := s.Status()
		if !st.Done {
			httpError(w, http.StatusConflict, "labeling still in progress")
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.runErr != nil {
			httpError(w, http.StatusInternalServerError, s.runErr.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"labels": s.result.Labels})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
