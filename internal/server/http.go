package server

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// Handler exposes a Session over HTTP:
//
//	GET  /experts              -> {"experts": ["e0", "e1"]}
//	GET  /queries?worker=e0    -> {"round": 3, "facts": [12, 40]} or 204
//	POST /answers              <- {"round": 3, "worker": "e0", "values": [true, false]}
//	GET  /status               -> Status JSON
//	GET  /labels               -> {"labels": [...]} once done, 409 before
//	GET  /checkpoint           -> warm pipeline checkpoint JSON, 204 before
//	                              the first round completes
//	GET  /metrics              -> the session's metrics snapshot (JSON)
//
// All bodies are JSON. The handler is safe for concurrent clients, and
// every route is instrumented: request counts and latency per route,
// in-flight gauge, and panic recovery to a JSON 500. POST /answers
// returns 409 when the round is closed or the answer is otherwise
// rejected, 410 once the session has finished. The checkpoint endpoint
// lets an operator persist the session's progress and later restart the
// job with NewSessionResume (or hcrowd.Resume) without re-asking the
// experts anything.
func Handler(s *Session) http.Handler {
	return HandlerLogged(s, nil)
}

// HandlerLogged is Handler with a logger for handler panics and response
// write failures; nil logger silences them (panics are still recovered
// and counted in the metrics).
func HandlerLogged(s *Session, logger *log.Logger) http.Handler {
	h := &httpHandler{s: s, m: s.Metrics(), logger: logger}
	mux := http.NewServeMux()
	h.route(mux, "GET /experts", h.experts)
	h.route(mux, "GET /queries", h.queries)
	h.route(mux, "POST /answers", h.answers)
	h.route(mux, "GET /status", h.status)
	h.route(mux, "GET /checkpoint", h.checkpoint)
	h.route(mux, "GET /labels", h.labels)
	h.route(mux, "GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		h.m.Handler().ServeHTTP(w, r)
	})
	return mux
}

// httpHandler carries the session, its metrics and the logger through
// the route handlers.
type httpHandler struct {
	s      *Session
	m      *Metrics
	logger *log.Logger
}

func (h *httpHandler) logf(format string, args ...any) {
	if h.logger != nil {
		h.logger.Printf(format, args...)
	}
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// route registers fn under pattern with the standard middleware:
// in-flight gauge, per-route latency histogram, per-(route, code)
// request counter, and panic recovery to a JSON 500. The pattern string
// is the route label, so instrumentation is attached at registration
// time rather than by re-deriving the route per request.
func (h *httpHandler) route(mux *http.ServeMux, pattern string, fn http.HandlerFunc) {
	latency := h.m.httpLatency.With(pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		h.m.httpInflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				h.m.httpPanics.Inc()
				h.logf("server: panic in %s: %v\n%s", pattern, p, debug.Stack())
				if !rec.wrote {
					h.writeJSON(rec, http.StatusInternalServerError,
						map[string]string{"error": "internal server error"})
				}
			}
			latency.Observe(time.Since(start).Seconds())
			h.m.httpRequests.With(pattern, strconv.Itoa(rec.code)).Inc()
			h.m.httpInflight.Dec()
		}()
		fn(rec, r)
	})
}

func (h *httpHandler) experts(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, map[string]any{"experts": h.s.Experts()})
}

func (h *httpHandler) queries(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		h.httpError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	round, facts, ok := h.s.Queries(worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]any{"round": round, "facts": facts})
}

func (h *httpHandler) answers(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Round  int    `json:"round"`
		Worker string `json:"worker"`
		Values []bool `json:"values"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "bad answer payload: "+err.Error())
		return
	}
	if err := h.s.Answer(req.Round, req.Worker, req.Values); err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrClosed) {
			code = http.StatusGone
		}
		h.httpError(w, code, err.Error())
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (h *httpHandler) status(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, h.s.Status())
}

func (h *httpHandler) checkpoint(w http.ResponseWriter, r *http.Request) {
	ck := h.s.Checkpoint()
	if ck == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h.writeJSON(w, http.StatusOK, ck)
}

func (h *httpHandler) labels(w http.ResponseWriter, r *http.Request) {
	st := h.s.Status()
	if !st.Done {
		h.httpError(w, http.StatusConflict, "labeling still in progress")
		return
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	if h.s.runErr != nil {
		h.httpError(w, http.StatusInternalServerError, h.s.runErr.Error())
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]any{"labels": h.s.result.Labels})
}

// writeJSON writes v as the response body. An encode/write failure (a
// client that hung up mid-body, an unencodable value) cannot be reported
// to the client — the status line is already gone — so it is counted and
// logged instead of silently dropped.
func (h *httpHandler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		h.m.writeErrors.Inc()
		h.logf("server: write response (status %d): %v", code, err)
	}
}

func (h *httpHandler) httpError(w http.ResponseWriter, code int, msg string) {
	h.writeJSON(w, code, map[string]string{"error": msg})
}
