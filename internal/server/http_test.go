package server

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
)

// brokenWriter is a ResponseWriter whose body writes always fail — a
// client that hung up mid-response.
type brokenWriter struct {
	header http.Header
	code   int
}

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *brokenWriter) WriteHeader(code int)      { w.code = code }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// TestWriteJSONBrokenWriter pins the satellite fix: an encode failure is
// counted and logged instead of silently discarded.
func TestWriteJSONBrokenWriter(t *testing.T) {
	logBuf := &syncBuffer{}
	rt := newRouter(NewMetrics().http, log.New(logBuf, "", 0))
	rt.writeJSON(&brokenWriter{}, http.StatusOK, map[string]string{"k": "v"})
	if got := rt.ins.writeErrors.Value(); got != 1 {
		t.Errorf("write errors = %v, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "write response") {
		t.Errorf("failure not logged: %q", logBuf.String())
	}
	// An unencodable value fails the same way.
	rt.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]any{"bad": func() {}})
	if got := rt.ins.writeErrors.Value(); got != 2 {
		t.Errorf("write errors = %v, want 2", got)
	}
}

// TestMiddlewarePanicRecovery checks that a panicking handler is turned
// into a JSON 500, counted, logged, and does not kill the server.
func TestMiddlewarePanicRecovery(t *testing.T) {
	logBuf := &syncBuffer{}
	rt := newRouter(NewMetrics().http, log.New(logBuf, "", 0))
	rt.handle("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	rt.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Errorf("500 body = %q", rec.Body.String())
	}
	if got := rt.ins.panics.Value(); got != 1 {
		t.Errorf("panics = %v, want 1", got)
	}
	if got := rt.ins.requests.With("GET /boom", "500").Value(); got != 1 {
		t.Errorf("request counter = %v, want 1", got)
	}
	if got := rt.ins.inflight.Value(); got != 0 {
		t.Errorf("inflight after panic = %v, want 0", got)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}
}

// TestMethodNotAllowed pins the hardening satellite: a wrong-method
// request on a known path gets an instrumented 405 with an Allow
// header — not the stock ServeMux rejection that would bypass the
// request counters — and the rejection is tallied in
// http_method_rejected_total.
func TestMethodNotAllowed(t *testing.T) {
	s := newTestSession(t, 4)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	cases := []struct {
		method, path string
		wantAllow    string
	}{
		{http.MethodPost, "/status", "GET"},
		{http.MethodDelete, "/queries", "GET"},
		{http.MethodGet, "/answers", "POST"},
		{http.MethodPut, "/labels", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: non-JSON 405 body: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if body["error"] == "" {
			t.Errorf("%s %s: empty error body", tc.method, tc.path)
		}
	}

	ins := s.Metrics().http
	if got := ins.methodRejected.Value(); got != float64(len(cases)) {
		t.Errorf("method rejected counter = %v, want %d", got, len(cases))
	}
	// The rejections are visible in the per-route request counter under
	// the bare path (not fanned out per wrong method).
	if got := ins.requests.With("/status", "405").Value(); got != 1 {
		t.Errorf(`requests{"/status","405"} = %v, want 1`, got)
	}
	// A request for a path that exists only under another method must
	// not disturb the real route's counters.
	if got := ins.requests.With("GET /status", "405").Value(); got != 0 {
		t.Errorf(`requests{"GET /status","405"} = %v, want 0`, got)
	}
}

// TestMiddlewareCountsRoutes drives a few requests and checks the
// per-(route, code) counters and latency histograms fill in.
func TestMiddlewareCountsRoutes(t *testing.T) {
	s := newTestSession(t, 4)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/queries") // missing worker → 400
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ins := s.Metrics().http
	if got := ins.requests.With("GET /status", "200").Value(); got != 3 {
		t.Errorf("GET /status 200 = %v, want 3", got)
	}
	if got := ins.requests.With("GET /queries", "400").Value(); got != 1 {
		t.Errorf("GET /queries 400 = %v, want 1", got)
	}
	if got := ins.latency.With("GET /status").Count(); got != 3 {
		t.Errorf("latency observations = %v, want 3", got)
	}
}

// TestMetricsEndpointEndToEnd is the acceptance check at the package
// level: drive a session to completion over HTTP, scrape GET /metrics,
// and assert the snapshot carries per-route HTTP stats and per-round
// pipeline/selector counters.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, id := range s.Experts() {
		go func(id string) {
			_ = c.AnswerLoop(ctx, id, func(facts []int) []bool {
				values := make([]bool, len(facts))
				for i, f := range facts {
					values[i] = ds.Truth[f]
				}
				return values
			}, time.Millisecond)
		}(id)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	var snap map[string]obsv.MetricSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	counter := func(name string) float64 {
		t.Helper()
		ms, ok := snap[name]
		if !ok || ms.Value == nil {
			t.Fatalf("metric %q missing from snapshot", name)
		}
		return *ms.Value
	}
	if counter("pipeline_rounds_total") <= 0 {
		t.Error("no pipeline rounds recorded")
	}
	if counter("selector_evals_total") <= 0 {
		t.Error("no selector evals recorded")
	}
	if counter("pipeline_answers_received_total") != counter("pipeline_answers_requested_total") {
		t.Error("full-panel run received != requested")
	}
	if counter("pipeline_budget_spent") != 8 {
		t.Errorf("budget spent gauge = %v, want 8", counter("pipeline_budget_spent"))
	}
	httpStats, ok := snap["http_requests_total"]
	if !ok || len(httpStats.Values) == 0 {
		t.Fatalf("http_requests_total missing or empty: %+v", httpStats)
	}
	foundAnswers := false
	for k := range httpStats.Values {
		if strings.HasPrefix(k, "POST /answers") {
			foundAnswers = true
		}
	}
	if !foundAnswers {
		t.Errorf("no POST /answers stats in %v", httpStats.Values)
	}
	if rs, ok := snap["pipeline_round_seconds"]; !ok || rs.Histogram == nil || rs.Histogram.Count <= 0 {
		t.Errorf("pipeline_round_seconds missing observations: %+v", snap["pipeline_round_seconds"])
	}
}

// stallingWriter blocks on the first body write until released — a client
// draining its response very slowly.
type stallingWriter struct {
	header  http.Header
	entered chan struct{} // closed when Write first blocks
	release chan struct{}
	once    sync.Once
}

func (w *stallingWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *stallingWriter) WriteHeader(int) {}
func (w *stallingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.entered)
		<-w.release
	})
	return len(p), nil
}

// TestLabelsSlowClientDoesNotHoldSessionLock pins the lock-discipline fix
// in the labels handler: the result snapshot is taken under s.mu but the
// response is encoded after the unlock, so a client that stalls mid-body
// cannot wedge the session lock (and with it every other handler and the
// engine).
func TestLabelsSlowClientDoesNotHoldSessionLock(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := answerAll(s, ds); err != nil {
		t.Fatal(err)
	}

	w := &stallingWriter{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		Handler(s).ServeHTTP(w, httptest.NewRequest("GET", "/labels", nil))
	}()

	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("labels handler never reached the body write")
	}
	// The handler is parked inside the client write. The session lock
	// must be free — before the fix this TryLock failed.
	if !s.mu.TryLock() {
		t.Error("s.mu held across the response write to a stalled client")
	} else {
		s.mu.Unlock()
	}
	close(w.release)
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("labels handler did not finish after release")
	}
}
