package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
)

// Journal record types. The journal is a write-ahead log of the
// session's externally visible history: everything the service
// acknowledged to a client (an accepted answer, a sealed round) is on
// disk — fsynced — before the acknowledgement, so a kill -9 can lose at
// most work nobody was told succeeded.
//
//	created     the full CreateSessionRequest (dataset + config), the
//	            recipe recovery rebuilds the session from; always the
//	            journal's first record, preserved across compaction
//	roundOpen   a published round: id, sorted facts, panel worker IDs
//	answer      one accepted expert answer (the ack commit point)
//	roundSeal   the round completed (full panel or timeout) with its
//	            final answer count
//	checkpoint  the engine's per-round warm checkpoint plus the server
//	            round counter — the compaction target: every record
//	            before it is folded into it
//	taskAdmit   one streaming-admitted task fragment (the ack commit
//	            point of POST /tasks), with its admission sequence
//	            number; preserved across compaction because the dataset
//	            rebuild needs every fragment, folded or not
const (
	recCreated    byte = 1
	recRoundOpen  byte = 2
	recAnswer     byte = 3
	recRoundSeal  byte = 4
	recCheckpoint byte = 5
	recTaskAdmit  byte = 6
)

// roundOpenRec is recRoundOpen's payload. AdmitSeq is the highest
// admission sequence folded into the engine when the round was planned:
// recovery re-applies exactly the fragments up to it before re-planning
// the round, so the replayed selection sees the identical problem.
type roundOpenRec struct {
	Round    int      `json:"round"`
	Facts    []int    `json:"facts"`
	Panel    []string `json:"panel"`
	AdmitSeq int      `json:"admit_seq,omitempty"`
}

// taskAdmitRec is recTaskAdmit's payload: one admitted fragment under
// its session-assigned sequence number. Final marks the end of the
// admission stream (no further admits are valid); a Final record may
// carry no fragment — a pure stream close.
type taskAdmitRec struct {
	Seq      int               `json:"seq"`
	Final    bool              `json:"final,omitempty"`
	Fragment *dataset.Fragment `json:"fragment,omitempty"`
}

// answerRec is recAnswer's payload.
type answerRec struct {
	Round  int    `json:"round"`
	Worker string `json:"worker"`
	Values []bool `json:"values"`
}

// roundSealRec is recRoundSeal's payload.
type roundSealRec struct {
	Round   int `json:"round"`
	Answers int `json:"answers"`
}

// checkpointRec is recCheckpoint's payload: the pipeline checkpoint
// document plus the server's round counter, which compaction would
// otherwise lose (round IDs must stay monotonic across recoveries so a
// client never sees an ID reused for different facts). AdmitSeq is the
// highest admission sequence folded into the checkpointed state:
// recovery admits fragments up to it into the rebuilt dataset before
// resuming, and stages the rest for the engine to re-apply live.
type checkpointRec struct {
	NextRound  int             `json:"next_round"`
	AdmitSeq   int             `json:"admit_seq,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// sessionJournal is one session's write-ahead log plus its compaction
// policy and instruments. Its own mutex (not the session's) serializes
// file access: the answer path appends under Session.mu, while the
// engine's CommitRound appends from the pipeline goroutine.
type sessionJournal struct {
	mu  sync.Mutex
	w   *journal.Writer
	ins *journalInstruments

	// created is the recCreated payload, re-written as the first record
	// of every compacted log.
	created []byte
	// admits holds every taskAdmit payload in sequence order. Compaction
	// re-writes them all between the created record and the checkpoint:
	// the checkpoint's beliefs cover the admitted tasks, but only the
	// fragments themselves let recovery rebuild the grown dataset.
	admits [][]byte //hclint:guardedby mu
	// compactEvery folds the log into its latest checkpoint record after
	// this many checkpoint commits; 0 never compacts.
	compactEvery int
	sinceCompact int //hclint:guardedby mu
}

func newSessionJournal(w *journal.Writer, created []byte, compactEvery int, ins *journalInstruments) *sessionJournal {
	if ins == nil {
		// Unobserved journals still count into a private registry rather
		// than nil-checking every instrument touch.
		ins = newJournalInstruments(obsv.NewRegistry())
	}
	return &sessionJournal{w: w, ins: ins, created: created, compactEvery: compactEvery}
}

// appendLocked writes one record, optionally fsyncing — the commit
// point. Callers hold j.mu.
func (j *sessionJournal) appendLocked(typ byte, v any, commit bool) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := j.w.Append(journal.Record{Type: typ, Payload: payload}); err != nil {
		j.ins.errors.Inc()
		return err
	}
	j.ins.appends.Inc()
	j.ins.bytes.Add(float64(len(payload) + 9)) // frame = len + type + payload + crc
	if commit {
		start := time.Now()
		if err := j.w.Sync(); err != nil {
			j.ins.errors.Inc()
			return err
		}
		j.ins.syncs.Inc()
		j.ins.syncSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// logCreated journals the session's creation — the ack point of POST
// /v1/sessions: only after this sync does Create return success.
func (j *sessionJournal) logCreated() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recCreated, json.RawMessage(j.created), true)
}

// roundOpened journals a published round. Not synced: if the append is
// lost, the recovered engine deterministically re-plans the identical
// round, and a later answer's fsync makes it durable anyway (appends
// are ordered, so an answer can never be durable without its round).
// admitSeq is the admission high-water mark at planning time; any
// fsynced taskAdmit up to it precedes this record, so a durable answer
// implies the round's full admission context is durable too.
func (j *sessionJournal) roundOpened(round int, facts []int, panel []string, admitSeq int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recRoundOpen, roundOpenRec{Round: round, Facts: facts, Panel: panel, AdmitSeq: admitSeq}, false)
}

// taskAdmitted journals one admitted fragment — the ack commit point of
// POST /tasks when commit is true (callers batching several fragments
// sync only the last, which carries the whole batch to disk). The
// payload is retained for compaction.
func (j *sessionJournal) taskAdmitted(seq int, final bool, fr *dataset.Fragment, commit bool) error {
	rec := taskAdmitRec{Seq: seq, Final: final, Fragment: fr}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(recTaskAdmit, json.RawMessage(payload), commit); err != nil {
		return err
	}
	j.admits = append(j.admits, payload)
	return nil
}

// seedAdmits primes the retained admit payloads from a recovered
// journal, so the next compaction preserves pre-crash admissions.
func (j *sessionJournal) seedAdmits(payloads [][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.admits = append(j.admits, payloads...)
}

// answerAccepted journals one accepted answer and syncs — the answer is
// acknowledged to the expert only after this returns.
func (j *sessionJournal) answerAccepted(round int, worker string, values []bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recAnswer, answerRec{Round: round, Worker: worker, Values: values}, true)
}

// roundSealed journals a round's completion and syncs: a timeout-sealed
// partial round must proceed as a partial round after recovery, not
// reopen and wait for the full panel.
func (j *sessionJournal) roundSealed(round, answers int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recRoundSeal, roundSealRec{Round: round, Answers: answers}, true)
}

// commitRound journals the engine's per-round checkpoint (the
// pipeline.RoundRecorder commit point) and, every compactEvery commits,
// folds the whole log into {created, checkpoint} via an atomic rewrite.
// Compaction happens here because this is the one quiescent point: the
// engine has consumed every published round, so no round or answer
// record past the checkpoint exists to preserve.
func (j *sessionJournal) commitRound(nextRound, admitSeq int, ck *pipeline.Checkpoint) error {
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		return err
	}
	rec := checkpointRec{NextRound: nextRound, AdmitSeq: admitSeq, Checkpoint: json.RawMessage(bytes.TrimSpace(buf.Bytes()))}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(recCheckpoint, rec, true); err != nil {
		return err
	}
	if j.compactEvery <= 0 {
		return nil
	}
	j.sinceCompact++
	if j.sinceCompact < j.compactEvery {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	// Admit records survive compaction in sequence order: the checkpoint
	// folds their effect on beliefs, but the dataset rebuild needs the
	// fragments themselves, and the staged (not yet applied) suffix must
	// re-enter the admission queue on recovery.
	recs := make([]journal.Record, 0, len(j.admits)+2)
	recs = append(recs, journal.Record{Type: recCreated, Payload: j.created})
	for _, a := range j.admits {
		recs = append(recs, journal.Record{Type: recTaskAdmit, Payload: a})
	}
	recs = append(recs, journal.Record{Type: recCheckpoint, Payload: payload})
	if err := j.w.Reset(recs); err != nil {
		j.ins.errors.Inc()
		return err
	}
	j.sinceCompact = 0
	j.ins.compactions.Inc()
	return nil
}

// close releases the journal file (the log stays on disk for recovery).
func (j *sessionJournal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}

// path returns the journal's file path.
func (j *sessionJournal) path() string {
	return j.w.Path()
}

// replayRound is one journaled round awaiting republication during
// recovery: the rebuilt engine re-plans it, publish validates the
// republished facts and panel against the journal, and the journaled
// answers are injected through the session's answer path without being
// re-journaled.
type replayRound struct {
	Round   int
	Facts   []int
	Panel   []string
	Answers []answerRec // journal order
	Sealed  bool
	// AdmitSeq is the admission high-water mark the round was planned
	// under; the replay admission source withholds later fragments until
	// this round is consumed.
	AdmitSeq int
}

// recoveredSession is a journal's parsed content: the creation recipe,
// the newest checkpoint (nil = cold start from the dataset), the round
// counter to resume from, the round suffix to replay, and the full
// admission history (fragments up to baseAdmitSeq are folded into the
// rebuilt dataset; the rest re-enter the admission queue).
type recoveredSession struct {
	req          CreateSessionRequest
	base         *pipeline.Checkpoint
	nextRound    int
	replay       []*replayRound
	admits       []taskAdmitRec // sequence order, contiguous from 1
	admitRaw     [][]byte       // the raw payloads, for compaction reseeding
	admitFinal   bool
	baseAdmitSeq int // admissions folded into base; 0 without a checkpoint
}

// parseJournal validates and folds a journal's record stream. The
// stream grammar is strict — created, then (roundOpen answer* roundSeal?)*
// interleaved with checkpoints at quiescent points and taskAdmit records
// anywhere after created (contiguous ascending sequence, none after a
// final) — and any violation, including an unknown record type, is a
// loud error: a journal the parser does not fully understand must never
// be half-replayed.
func parseJournal(recs []journal.Record) (*recoveredSession, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal has no records")
	}
	if recs[0].Type != recCreated {
		return nil, fmt.Errorf("first record has type %d, want created (%d)", recs[0].Type, recCreated)
	}
	state := &recoveredSession{}
	dec := json.NewDecoder(bytes.NewReader(recs[0].Payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&state.req); err != nil {
		return nil, fmt.Errorf("created record: %w", err)
	}
	var open *replayRound
	admitFloor := 0 // high-water mark the next roundOpen/checkpoint must not run behind
	for i, r := range recs[1:] {
		switch r.Type {
		case recCreated:
			return nil, fmt.Errorf("record %d: duplicate created record", i+1)
		case recTaskAdmit:
			var ta taskAdmitRec
			if err := json.Unmarshal(r.Payload, &ta); err != nil {
				return nil, fmt.Errorf("record %d: task admit: %w", i+1, err)
			}
			if state.admitFinal {
				return nil, fmt.Errorf("record %d: task admit seq %d after the stream was finalized", i+1, ta.Seq)
			}
			if ta.Seq != len(state.admits)+1 {
				return nil, fmt.Errorf("record %d: task admit seq %d, want %d (contiguous ascending)", i+1, ta.Seq, len(state.admits)+1)
			}
			if ta.Fragment == nil && !ta.Final {
				return nil, fmt.Errorf("record %d: task admit seq %d has no fragment and is not final", i+1, ta.Seq)
			}
			if ta.Fragment != nil {
				if err := ta.Fragment.Validate(); err != nil {
					return nil, fmt.Errorf("record %d: task admit seq %d: %w", i+1, ta.Seq, err)
				}
			}
			state.admits = append(state.admits, ta)
			state.admitRaw = append(state.admitRaw, append([]byte(nil), r.Payload...))
			if ta.Final {
				state.admitFinal = true
			}
		case recRoundOpen:
			var ro roundOpenRec
			if err := json.Unmarshal(r.Payload, &ro); err != nil {
				return nil, fmt.Errorf("record %d: round open: %w", i+1, err)
			}
			if open != nil && !open.Sealed {
				return nil, fmt.Errorf("record %d: round %d opened while round %d is still open", i+1, ro.Round, open.Round)
			}
			if ro.Round <= state.nextRound {
				return nil, fmt.Errorf("record %d: round %d opened after round %d", i+1, ro.Round, state.nextRound)
			}
			if ro.AdmitSeq > len(state.admits) {
				return nil, fmt.Errorf("record %d: round %d planned under admit seq %d but only %d admits journaled",
					i+1, ro.Round, ro.AdmitSeq, len(state.admits))
			}
			if ro.AdmitSeq < admitFloor {
				return nil, fmt.Errorf("record %d: round %d admit seq %d behind the prior high-water mark %d",
					i+1, ro.Round, ro.AdmitSeq, admitFloor)
			}
			admitFloor = ro.AdmitSeq
			open = &replayRound{Round: ro.Round, Facts: ro.Facts, Panel: ro.Panel, AdmitSeq: ro.AdmitSeq}
			state.replay = append(state.replay, open)
			state.nextRound = ro.Round
		case recAnswer:
			var a answerRec
			if err := json.Unmarshal(r.Payload, &a); err != nil {
				return nil, fmt.Errorf("record %d: answer: %w", i+1, err)
			}
			if open == nil || open.Sealed || a.Round != open.Round {
				return nil, fmt.Errorf("record %d: answer for round %d, which is not open", i+1, a.Round)
			}
			for _, prev := range open.Answers {
				if prev.Worker == a.Worker {
					return nil, fmt.Errorf("record %d: duplicate answer from %s in round %d", i+1, a.Worker, a.Round)
				}
			}
			inPanel := false
			for _, id := range open.Panel {
				if id == a.Worker {
					inPanel = true
					break
				}
			}
			if !inPanel {
				return nil, fmt.Errorf("record %d: answer from %s, not in round %d's panel", i+1, a.Worker, a.Round)
			}
			open.Answers = append(open.Answers, a)
		case recRoundSeal:
			var sr roundSealRec
			if err := json.Unmarshal(r.Payload, &sr); err != nil {
				return nil, fmt.Errorf("record %d: round seal: %w", i+1, err)
			}
			if open == nil || open.Sealed || sr.Round != open.Round {
				return nil, fmt.Errorf("record %d: seal for round %d, which is not open", i+1, sr.Round)
			}
			if sr.Answers != len(open.Answers) {
				return nil, fmt.Errorf("record %d: round %d sealed with %d answers but %d journaled",
					i+1, sr.Round, sr.Answers, len(open.Answers))
			}
			if len(open.Answers) == 0 {
				return nil, fmt.Errorf("record %d: round %d sealed with no answers", i+1, sr.Round)
			}
			open.Sealed = true
		case recCheckpoint:
			if open != nil && !open.Sealed {
				return nil, fmt.Errorf("record %d: checkpoint while round %d is still open", i+1, open.Round)
			}
			var cr checkpointRec
			if err := json.Unmarshal(r.Payload, &cr); err != nil {
				return nil, fmt.Errorf("record %d: checkpoint: %w", i+1, err)
			}
			ck, err := pipeline.ReadCheckpoint(bytes.NewReader(cr.Checkpoint))
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			if cr.AdmitSeq > len(state.admits) {
				return nil, fmt.Errorf("record %d: checkpoint folds admit seq %d but only %d admits journaled",
					i+1, cr.AdmitSeq, len(state.admits))
			}
			if cr.AdmitSeq < admitFloor {
				return nil, fmt.Errorf("record %d: checkpoint admit seq %d behind the prior high-water mark %d",
					i+1, cr.AdmitSeq, admitFloor)
			}
			admitFloor = cr.AdmitSeq
			// Every round before a checkpoint is folded into it; only the
			// suffix past the newest checkpoint replays.
			state.base = ck
			state.baseAdmitSeq = cr.AdmitSeq
			state.replay = nil
			open = nil
			// The counter restores round-ID monotonicity past compaction, so
			// it is usually ahead of the (folded-away) round records; it may
			// never run behind them.
			if cr.NextRound < state.nextRound {
				return nil, fmt.Errorf("record %d: checkpoint round counter %d behind journaled rounds (%d)",
					i+1, cr.NextRound, state.nextRound)
			}
			state.nextRound = cr.NextRound
		default:
			return nil, fmt.Errorf("record %d: unknown journal record type %d (newer format?)", i+1, r.Type)
		}
	}
	return state, nil
}
