package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hcrowd/internal/journal"
	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
)

// Journal record types. The journal is a write-ahead log of the
// session's externally visible history: everything the service
// acknowledged to a client (an accepted answer, a sealed round) is on
// disk — fsynced — before the acknowledgement, so a kill -9 can lose at
// most work nobody was told succeeded.
//
//	created     the full CreateSessionRequest (dataset + config), the
//	            recipe recovery rebuilds the session from; always the
//	            journal's first record, preserved across compaction
//	roundOpen   a published round: id, sorted facts, panel worker IDs
//	answer      one accepted expert answer (the ack commit point)
//	roundSeal   the round completed (full panel or timeout) with its
//	            final answer count
//	checkpoint  the engine's per-round warm checkpoint plus the server
//	            round counter — the compaction target: every record
//	            before it is folded into it
const (
	recCreated    byte = 1
	recRoundOpen  byte = 2
	recAnswer     byte = 3
	recRoundSeal  byte = 4
	recCheckpoint byte = 5
)

// roundOpenRec is recRoundOpen's payload.
type roundOpenRec struct {
	Round int      `json:"round"`
	Facts []int    `json:"facts"`
	Panel []string `json:"panel"`
}

// answerRec is recAnswer's payload.
type answerRec struct {
	Round  int    `json:"round"`
	Worker string `json:"worker"`
	Values []bool `json:"values"`
}

// roundSealRec is recRoundSeal's payload.
type roundSealRec struct {
	Round   int `json:"round"`
	Answers int `json:"answers"`
}

// checkpointRec is recCheckpoint's payload: the pipeline checkpoint
// document plus the server's round counter, which compaction would
// otherwise lose (round IDs must stay monotonic across recoveries so a
// client never sees an ID reused for different facts).
type checkpointRec struct {
	NextRound  int             `json:"next_round"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// sessionJournal is one session's write-ahead log plus its compaction
// policy and instruments. Its own mutex (not the session's) serializes
// file access: the answer path appends under Session.mu, while the
// engine's CommitRound appends from the pipeline goroutine.
type sessionJournal struct {
	mu  sync.Mutex
	w   *journal.Writer
	ins *journalInstruments

	// created is the recCreated payload, re-written as the first record
	// of every compacted log.
	created []byte
	// compactEvery folds the log into its latest checkpoint record after
	// this many checkpoint commits; 0 never compacts.
	compactEvery int
	sinceCompact int
}

func newSessionJournal(w *journal.Writer, created []byte, compactEvery int, ins *journalInstruments) *sessionJournal {
	if ins == nil {
		// Unobserved journals still count into a private registry rather
		// than nil-checking every instrument touch.
		ins = newJournalInstruments(obsv.NewRegistry())
	}
	return &sessionJournal{w: w, ins: ins, created: created, compactEvery: compactEvery}
}

// appendLocked writes one record, optionally fsyncing — the commit
// point. Callers hold j.mu.
func (j *sessionJournal) appendLocked(typ byte, v any, commit bool) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := j.w.Append(journal.Record{Type: typ, Payload: payload}); err != nil {
		j.ins.errors.Inc()
		return err
	}
	j.ins.appends.Inc()
	j.ins.bytes.Add(float64(len(payload) + 9)) // frame = len + type + payload + crc
	if commit {
		start := time.Now()
		if err := j.w.Sync(); err != nil {
			j.ins.errors.Inc()
			return err
		}
		j.ins.syncs.Inc()
		j.ins.syncSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// logCreated journals the session's creation — the ack point of POST
// /v1/sessions: only after this sync does Create return success.
func (j *sessionJournal) logCreated() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recCreated, json.RawMessage(j.created), true)
}

// roundOpened journals a published round. Not synced: if the append is
// lost, the recovered engine deterministically re-plans the identical
// round, and a later answer's fsync makes it durable anyway (appends
// are ordered, so an answer can never be durable without its round).
func (j *sessionJournal) roundOpened(round int, facts []int, panel []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recRoundOpen, roundOpenRec{Round: round, Facts: facts, Panel: panel}, false)
}

// answerAccepted journals one accepted answer and syncs — the answer is
// acknowledged to the expert only after this returns.
func (j *sessionJournal) answerAccepted(round int, worker string, values []bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recAnswer, answerRec{Round: round, Worker: worker, Values: values}, true)
}

// roundSealed journals a round's completion and syncs: a timeout-sealed
// partial round must proceed as a partial round after recovery, not
// reopen and wait for the full panel.
func (j *sessionJournal) roundSealed(round, answers int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recRoundSeal, roundSealRec{Round: round, Answers: answers}, true)
}

// commitRound journals the engine's per-round checkpoint (the
// pipeline.RoundRecorder commit point) and, every compactEvery commits,
// folds the whole log into {created, checkpoint} via an atomic rewrite.
// Compaction happens here because this is the one quiescent point: the
// engine has consumed every published round, so no round or answer
// record past the checkpoint exists to preserve.
func (j *sessionJournal) commitRound(nextRound int, ck *pipeline.Checkpoint) error {
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		return err
	}
	rec := checkpointRec{NextRound: nextRound, Checkpoint: json.RawMessage(bytes.TrimSpace(buf.Bytes()))}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(recCheckpoint, rec, true); err != nil {
		return err
	}
	if j.compactEvery <= 0 {
		return nil
	}
	j.sinceCompact++
	if j.sinceCompact < j.compactEvery {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := j.w.Reset([]journal.Record{
		{Type: recCreated, Payload: j.created},
		{Type: recCheckpoint, Payload: payload},
	}); err != nil {
		j.ins.errors.Inc()
		return err
	}
	j.sinceCompact = 0
	j.ins.compactions.Inc()
	return nil
}

// close releases the journal file (the log stays on disk for recovery).
func (j *sessionJournal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}

// path returns the journal's file path.
func (j *sessionJournal) path() string {
	return j.w.Path()
}

// replayRound is one journaled round awaiting republication during
// recovery: the rebuilt engine re-plans it, publish validates the
// republished facts and panel against the journal, and the journaled
// answers are injected through the session's answer path without being
// re-journaled.
type replayRound struct {
	Round   int
	Facts   []int
	Panel   []string
	Answers []answerRec // journal order
	Sealed  bool
}

// recoveredSession is a journal's parsed content: the creation recipe,
// the newest checkpoint (nil = cold start from the dataset), the round
// counter to resume from, and the round suffix to replay.
type recoveredSession struct {
	req       CreateSessionRequest
	base      *pipeline.Checkpoint
	nextRound int
	replay    []*replayRound
}

// parseJournal validates and folds a journal's record stream. The
// stream grammar is strict — created, then (roundOpen answer* roundSeal?)*
// interleaved with checkpoints at quiescent points — and any violation,
// including an unknown record type, is a loud error: a journal the
// parser does not fully understand must never be half-replayed.
func parseJournal(recs []journal.Record) (*recoveredSession, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal has no records")
	}
	if recs[0].Type != recCreated {
		return nil, fmt.Errorf("first record has type %d, want created (%d)", recs[0].Type, recCreated)
	}
	state := &recoveredSession{}
	dec := json.NewDecoder(bytes.NewReader(recs[0].Payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&state.req); err != nil {
		return nil, fmt.Errorf("created record: %w", err)
	}
	var open *replayRound
	for i, r := range recs[1:] {
		switch r.Type {
		case recCreated:
			return nil, fmt.Errorf("record %d: duplicate created record", i+1)
		case recRoundOpen:
			var ro roundOpenRec
			if err := json.Unmarshal(r.Payload, &ro); err != nil {
				return nil, fmt.Errorf("record %d: round open: %w", i+1, err)
			}
			if open != nil && !open.Sealed {
				return nil, fmt.Errorf("record %d: round %d opened while round %d is still open", i+1, ro.Round, open.Round)
			}
			if ro.Round <= state.nextRound {
				return nil, fmt.Errorf("record %d: round %d opened after round %d", i+1, ro.Round, state.nextRound)
			}
			open = &replayRound{Round: ro.Round, Facts: ro.Facts, Panel: ro.Panel}
			state.replay = append(state.replay, open)
			state.nextRound = ro.Round
		case recAnswer:
			var a answerRec
			if err := json.Unmarshal(r.Payload, &a); err != nil {
				return nil, fmt.Errorf("record %d: answer: %w", i+1, err)
			}
			if open == nil || open.Sealed || a.Round != open.Round {
				return nil, fmt.Errorf("record %d: answer for round %d, which is not open", i+1, a.Round)
			}
			for _, prev := range open.Answers {
				if prev.Worker == a.Worker {
					return nil, fmt.Errorf("record %d: duplicate answer from %s in round %d", i+1, a.Worker, a.Round)
				}
			}
			inPanel := false
			for _, id := range open.Panel {
				if id == a.Worker {
					inPanel = true
					break
				}
			}
			if !inPanel {
				return nil, fmt.Errorf("record %d: answer from %s, not in round %d's panel", i+1, a.Worker, a.Round)
			}
			open.Answers = append(open.Answers, a)
		case recRoundSeal:
			var sr roundSealRec
			if err := json.Unmarshal(r.Payload, &sr); err != nil {
				return nil, fmt.Errorf("record %d: round seal: %w", i+1, err)
			}
			if open == nil || open.Sealed || sr.Round != open.Round {
				return nil, fmt.Errorf("record %d: seal for round %d, which is not open", i+1, sr.Round)
			}
			if sr.Answers != len(open.Answers) {
				return nil, fmt.Errorf("record %d: round %d sealed with %d answers but %d journaled",
					i+1, sr.Round, sr.Answers, len(open.Answers))
			}
			if len(open.Answers) == 0 {
				return nil, fmt.Errorf("record %d: round %d sealed with no answers", i+1, sr.Round)
			}
			open.Sealed = true
		case recCheckpoint:
			if open != nil && !open.Sealed {
				return nil, fmt.Errorf("record %d: checkpoint while round %d is still open", i+1, open.Round)
			}
			var cr checkpointRec
			if err := json.Unmarshal(r.Payload, &cr); err != nil {
				return nil, fmt.Errorf("record %d: checkpoint: %w", i+1, err)
			}
			ck, err := pipeline.ReadCheckpoint(bytes.NewReader(cr.Checkpoint))
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			// Every round before a checkpoint is folded into it; only the
			// suffix past the newest checkpoint replays.
			state.base = ck
			state.replay = nil
			open = nil
			// The counter restores round-ID monotonicity past compaction, so
			// it is usually ahead of the (folded-away) round records; it may
			// never run behind them.
			if cr.NextRound < state.nextRound {
				return nil, fmt.Errorf("record %d: checkpoint round counter %d behind journaled rounds (%d)",
					i+1, cr.NextRound, state.nextRound)
			}
			state.nextRound = cr.NextRound
		default:
			return nil, fmt.Errorf("record %d: unknown journal record type %d (newer format?)", i+1, r.Type)
		}
	}
	return state, nil
}
